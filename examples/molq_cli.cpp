// molq_cli — command-line front end for the library.
//
//   molq_cli generate --class=STM --count=1000 --out=stm.csv
//       [--seed=1] [--world=10000]
//     Samples a synthetic POI layer (classes: STM, CH, SCH, PPL, BLDG)
//     into a CSV of `x,y,type_weight,object_weight` rows.
//
//   molq_cli solve --inputs=a.csv,b.csv[,c.csv...]
//       [--algorithm=rrb|mbrb|ssc] [--epsilon=1e-3] [--topk=1]
//       [--world=10000] [--svg=answer.svg] [--prune] [--threads=1]
//       [--json] [--trace=out.json]
//       [--allow=x,y;x,y;x,y...] [--exclude=x,y;...] [--audit]
//     Evaluates MOLQ over the given object sets (one CSV per type) and
//     prints the answer(s) as JSON lines. --threads=N parallelises the
//     pipeline (0 = one thread per hardware thread); the answer is
//     identical for every thread count. --json routes the solve through
//     the serving engine (src/serve) and prints its response object —
//     the same code path and answer serializer movd_serve uses, so the
//     CLI output is byte-identical to a served answer (timing fields are
//     left to stderr so stdout is deterministic and diffable).
//     --allow/--exclude turn the solve into a constrained MOLQ (RRB only;
//     the answer must fall inside the --allow polygon and outside every
//     --exclude polygon's interior), routed through the serving engine
//     like --json. --trace=FILE records a hierarchical span trace of the
//     solve and writes it as Chrome trace_event JSON (open in
//     chrome://tracing or Perfetto); an aggregated per-phase table goes to
//     stderr. Tracing never changes the answer bytes.
//
//   molq_cli skyline --inputs=... [--algorithm=rrb|mbrb] [--epsilon=]
//       [--threads=] [--json] [--audit]
//     The multi-criteria skyline: every candidate site not Pareto-
//     dominated on its per-set criteria vector, one JSON line per member
//     (with --json, the full response object movd_serve would send).
//
//   molq_cli diverse --inputs=... --topk=K --min_dist=D
//       [--algorithm=rrb|mbrb] [--epsilon=] [--threads=] [--json] [--audit]
//     Diversified top-k: the K best sites with pairwise distance >= D.
//
//   molq_cli whatif --inputs=... --sweep=s,s|s,s|... [--topk=1]
//       [--algorithm=rrb|mbrb] [--epsilon=] [--threads=] [--json] [--audit]
//     Batched what-if sweep: one top-k ranking per '|'-separated weight
//     vector (one comma-separated scale per input set), all served from a
//     single MOVD build. Prints the response object ({"sweeps": [...]}).
//
//   --audit runs the src/audit re-check validators on the answer before
//   printing (a validator failure is a hard error), on every shape above.

#include <cstdio>
#include <string>
#include <vector>

#include "core/molq.h"
#include "core/topk.h"
#include "core/weighted_distance.h"
#include "data/csv.h"
#include "data/generate.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "trace/trace.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "viz/svg.h"

namespace {

using namespace movd;

std::vector<std::string> SplitList(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t at = text.find(sep, pos);
    if (at == std::string::npos) {
      if (pos < text.size()) out.push_back(text.substr(pos));
      break;
    }
    out.push_back(text.substr(pos, at - pos));
    pos = at + 1;
  }
  return out;
}

std::vector<std::string> SplitCsvList(const std::string& csv) {
  return SplitList(csv, ',');
}

// Loads the --inputs CSV layers into `query` and grows `world` to cover
// them (overridden by --world). Returns 0 on success, else an exit code.
int LoadQueryFromFlags(const Flags& flags, const char* cmd, MolqQuery* query,
                       Rect* world) {
  const auto inputs = SplitCsvList(flags.GetString("inputs", ""));
  if (inputs.size() < 1) {
    std::fprintf(stderr, "%s: --inputs=a.csv,b.csv,... is required\n", cmd);
    return 2;
  }
  for (const std::string& path : inputs) {
    const auto objects = LoadObjectsCsv(path);
    if (!objects.has_value() || objects->empty()) {
      std::fprintf(stderr, "%s: cannot read objects from %s\n", cmd,
                   path.c_str());
      return 1;
    }
    ObjectSet set;
    set.name = path;
    set.objects = *objects;
    for (const SpatialObject& obj : set.objects) world->Expand(obj.location);
    query->sets.push_back(std::move(set));
  }
  if (flags.Has("world")) {
    const double w = flags.GetDouble("world", 10000.0);
    *world = Rect(0, 0, w, w);
  }
  return 0;
}

int Generate(const Flags& flags) {
  const std::string cls = flags.GetString("class", "STM");
  const size_t count = static_cast<size_t>(flags.GetInt("count", 1000));
  const std::string out = flags.GetString("out", "");
  const double world = flags.GetDouble("world", 10000.0);
  const uint64_t seed = flags.GetInt("seed", 1);
  flags.WarnUnused(stderr);
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const auto points =
      SamplePoiClass(cls, count, Rect(0, 0, world, world), seed);
  std::vector<SpatialObject> objects;
  objects.reserve(points.size());
  for (const Point& p : points) {
    SpatialObject obj;
    obj.location = p;
    objects.push_back(obj);
  }
  if (!SaveObjectsCsv(out, objects)) {
    std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s objects to %s\n", objects.size(), cls.c_str(),
              out.c_str());
  return 0;
}

// One answer as a JSON line, through the serializer shared with the
// serving engine's wire responses (serve/protocol.h).
void PrintAnswerJson(const MolqQuery& query, const Point& location,
                     double cost, const std::vector<PoiRef>& group) {
  ServeAnswer answer;
  answer.location = location;
  answer.cost = cost;
  answer.group = group;
  std::printf("%s\n", AnswerJson(query, answer).c_str());
}

// Routes a fully-built request through the serving engine and prints the
// result: with full_object (or for a sweep, whose natural container is
// the response object) the engine's ResponseJson without timing fields,
// otherwise one AnswerJson line per answer — both byte-identical run to
// run. Timing goes to stderr. Shared by every query-algebra subcommand
// and by solve --json / --allow / --exclude.
int ServeAndPrint(const MolqQuery& query, const Rect& world,
                  ServeRequest request, const char* cmd, bool full_object,
                  Point* answer_out) {
  QueryEngine engine;
  engine.RegisterDataset("cli", query, world);
  request.id = "cli";
  request.dataset = "cli";
  const ServeResponse resp = engine.Solve(request);
  if (resp.status != ServeStatus::kOk) {
    std::fprintf(stderr, "%s: %s %s\n", cmd, ServeStatusName(resp.status),
                 resp.error.c_str());
    return 1;
  }
  // The snapshot the response pinned resolves answer group refs.
  const MolqQuery& resolved = resp.snapshot->query;
  if (full_object || !resp.sweep_answers.empty()) {
    std::printf("%s\n",
                ResponseJson(resolved, resp, /*include_timing=*/false).c_str());
  } else {
    for (const ServeAnswer& answer : resp.answers) {
      std::printf("%s\n", AnswerJson(resolved, answer).c_str());
    }
  }
  if (resp.answers.empty() && resp.sweep_answers.empty()) {
    std::fprintf(stderr, "%s: no feasible answer\n", cmd);
  }
  std::fprintf(stderr, "serve: cache_hit=%s seconds=%.6f\n",
               resp.cache_hit ? "true" : "false", resp.seconds);
  if (answer_out != nullptr && !resp.answers.empty()) {
    *answer_out = resp.answers.front().location;
  }
  return 0;
}

int Solve(const Flags& flags) {
  MolqQuery query;
  Rect world;
  if (const int rc = LoadQueryFromFlags(flags, "solve", &query, &world)) {
    return rc;
  }

  MolqOptions options;
  const std::string algo = flags.GetString("algorithm", "rrb");
  if (algo == "rrb") {
    options.algorithm = MolqAlgorithm::kRrb;
  } else if (algo == "mbrb") {
    options.algorithm = MolqAlgorithm::kMbrb;
  } else if (algo == "ssc") {
    options.algorithm = MolqAlgorithm::kSsc;
  } else {
    std::fprintf(stderr, "solve: unknown --algorithm=%s\n", algo.c_str());
    return 2;
  }
  options.epsilon = flags.GetDouble("epsilon", 1e-3);
  options.use_overlap_pruning = flags.GetBool("prune", false);
  options.exec.threads = static_cast<int>(flags.GetInt("threads", 1));
  if (flags.GetBool("audit", false)) options.exec.audit = true;

  const size_t k = static_cast<size_t>(flags.GetInt("topk", 1));
  const bool json = flags.GetBool("json", false);
  const std::string svg_path = flags.GetString("svg", "");
  const std::string trace_path = flags.GetString("trace", "");
  const std::string allow = flags.GetString("allow", "");
  const std::string exclude = flags.GetString("exclude", "");
  const bool constrained = !allow.empty() || !exclude.empty();
  if (constrained && options.algorithm != MolqAlgorithm::kRrb) {
    std::fprintf(stderr,
                 "solve: --allow/--exclude require --algorithm=rrb "
                 "(the clipper needs real region boundaries)\n");
    return 2;
  }
  Trace trace;
  if (!trace_path.empty()) options.exec.trace = &trace;
  flags.WarnUnused(stderr);
  Stopwatch sw;
  Point answer;
  if (json || constrained) {
    // Serve the query through the resident engine: same validation, same
    // solve path, same serializer as a movd_serve SOLVE (or CONSTRAIN)
    // request. Timing is excluded from stdout (it varies run to run) and
    // reported on stderr, so stdout stays byte-identical across runs and
    // trace modes.
    if (options.use_overlap_pruning) {
      std::fprintf(stderr, "solve: --prune is ignored with --json\n");
    }
    ServeRequest request;
    request.algorithm = options.algorithm;
    request.epsilon = options.epsilon;
    request.exec = options.exec;
    if (constrained) {
      request.kind = ServeQueryKind::kConstrained;
      if (k > 1) {
        std::fprintf(stderr,
                     "solve: --topk is ignored with --allow/--exclude "
                     "(constrained MOLQ returns the single optimum)\n");
      }
      if (!allow.empty()) {
        if (const Status s = ParsePolygonSpec(allow, &request.constraint.boundary);
            !s.ok()) {
          std::fprintf(stderr, "solve: --allow: %s\n", s.message().c_str());
          return 2;
        }
      }
      // '+' separates multiple exclusion polygons ("x,y;x,y;x,y+x,y;...")
      // since the flag parser keeps only the last --exclude occurrence.
      for (const std::string& spec : SplitList(exclude, '+')) {
        Polygon poly;
        if (const Status s = ParsePolygonSpec(spec, &poly); !s.ok()) {
          std::fprintf(stderr, "solve: --exclude: %s\n", s.message().c_str());
          return 2;
        }
        request.constraint.exclusions.push_back(std::move(poly));
      }
    } else {
      request.topk = k;
    }
    const int rc = ServeAndPrint(query, world, std::move(request), "solve",
                                 json, &answer);
    if (rc != 0) return rc;
  } else if (k > 1 && options.algorithm != MolqAlgorithm::kSsc) {
    const MolqResult top = SolveMolqTopK(query, world, k, options);
    for (const RankedLocation& r : top.ranked) {
      PrintAnswerJson(query, r.location, r.cost, r.group);
    }
    if (!top.ranked.empty()) answer = top.ranked.front().location;
  } else {
    const MolqResult r = SolveMolq(query, world, options);
    PrintAnswerJson(query, r.location, r.cost, r.group);
    answer = r.location;
    std::fprintf(stderr,
                 "stages: vd=%.3fs overlap=%.3fs optimize=%.3fs "
                 "(threads=%d)\n",
                 r.stats.vd_seconds, r.stats.overlap_seconds,
                 r.stats.optimize_seconds, r.stats.threads);
  }
  std::fprintf(stderr, "solved in %.3fs\n", sw.ElapsedSeconds());

  if (!trace_path.empty()) {
    const Status written = trace.WriteChromeJson(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "solve: trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
    trace.PrintPhaseTable(stderr);
  }

  if (!svg_path.empty()) {
    SvgWriter svg(world, 800);
    const char* colors[] = {"#1f77b4", "#2ca02c", "#d62728", "#9467bd",
                            "#8c564b"};
    for (size_t s = 0; s < query.sets.size(); ++s) {
      for (const SpatialObject& obj : query.sets[s].objects) {
        svg.AddCircle(obj.location, 3.0, colors[s % 5]);
      }
    }
    svg.AddCircle(answer, 8.0, "#ff7f0e");
    if (const Status s = svg.Save(svg_path); !s.ok()) {
      std::fprintf(stderr, "solve: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", svg_path.c_str());
  }
  return 0;
}

// skyline / diverse / whatif — the query-algebra shapes, all routed
// through the serving engine so the CLI exercises exactly the code path
// (validation, artifact cache, serializer) movd_serve runs.
int RunShape(const Flags& flags, ServeQueryKind kind, const char* cmd) {
  MolqQuery query;
  Rect world;
  if (const int rc = LoadQueryFromFlags(flags, cmd, &query, &world)) {
    return rc;
  }

  ServeRequest request;
  request.kind = kind;
  const std::string algo = flags.GetString("algorithm", "rrb");
  if (algo == "rrb") {
    request.algorithm = MolqAlgorithm::kRrb;
  } else if (algo == "mbrb") {
    request.algorithm = MolqAlgorithm::kMbrb;
  } else {
    std::fprintf(stderr, "%s: --algorithm must be rrb or mbrb (got %s)\n",
                 cmd, algo.c_str());
    return 2;
  }
  request.epsilon = flags.GetDouble("epsilon", 1e-3);
  request.exec.threads = static_cast<int>(flags.GetInt("threads", 1));
  if (flags.GetBool("audit", false)) request.exec.audit = true;
  const bool json = flags.GetBool("json", false);

  if (kind == ServeQueryKind::kDiverse) {
    if (!flags.Has("topk") || !flags.Has("min_dist")) {
      std::fprintf(stderr, "%s: --topk and --min_dist are required\n", cmd);
      return 2;
    }
    request.topk = static_cast<size_t>(flags.GetInt("topk", 1));
    request.min_distance = flags.GetDouble("min_dist", 0.0);
  } else if (kind == ServeQueryKind::kWhatIf) {
    const std::string sweep = flags.GetString("sweep", "");
    if (sweep.empty()) {
      std::fprintf(stderr, "%s: --sweep=s,s|s,s|... is required\n", cmd);
      return 2;
    }
    if (const Status s = ParseSweepSpec(sweep, &request.sweep); !s.ok()) {
      std::fprintf(stderr, "%s: --sweep: %s\n", cmd, s.message().c_str());
      return 2;
    }
    request.topk = static_cast<size_t>(flags.GetInt("topk", 1));
  }
  flags.WarnUnused(stderr);
  Stopwatch sw;
  const int rc =
      ServeAndPrint(query, world, std::move(request), cmd, json, nullptr);
  std::fprintf(stderr, "solved in %.3fs\n", sw.ElapsedSeconds());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: molq_cli <generate|solve|skyline|diverse|whatif> "
                 "[flags]\n"
                 "  generate --class=STM --count=1000 --out=file.csv\n"
                 "  solve --inputs=a.csv,b.csv[,...] [--algorithm=rrb] "
                 "[--topk=3] [--svg=out.svg] [--threads=1] [--json]\n"
                 "        [--allow=x,y;x,y;x,y] [--exclude=x,y;...[+x,y;...]]\n"
                 "  skyline --inputs=... [--algorithm=rrb|mbrb] [--json]\n"
                 "  diverse --inputs=... --topk=K --min_dist=D [--json]\n"
                 "  whatif --inputs=... --sweep=s,s|s,s[|...] [--topk=1] "
                 "[--json]\n");
    return 2;
  }
  const std::string& command = flags.positional()[0];
  if (command == "generate") return Generate(flags);
  if (command == "solve") return Solve(flags);
  if (command == "skyline") {
    return RunShape(flags, ServeQueryKind::kSkyline, "skyline");
  }
  if (command == "diverse") {
    return RunShape(flags, ServeQueryKind::kDiverse, "diverse");
  }
  if (command == "whatif") {
    return RunShape(flags, ServeQueryKind::kWhatIf, "whatif");
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
