// molq_cli — command-line front end for the library.
//
//   molq_cli generate --class=STM --count=1000 --out=stm.csv
//       [--seed=1] [--world=10000]
//     Samples a synthetic POI layer (classes: STM, CH, SCH, PPL, BLDG)
//     into a CSV of `x,y,type_weight,object_weight` rows.
//
//   molq_cli solve --inputs=a.csv,b.csv[,c.csv...]
//       [--algorithm=rrb|mbrb|ssc] [--epsilon=1e-3] [--topk=1]
//       [--world=10000] [--svg=answer.svg] [--prune] [--threads=1]
//       [--json] [--trace=out.json]
//     Evaluates MOLQ over the given object sets (one CSV per type) and
//     prints the answer(s) as JSON lines. --threads=N parallelises the
//     pipeline (0 = one thread per hardware thread); the answer is
//     identical for every thread count. --json routes the solve through
//     the serving engine (src/serve) and prints its response object —
//     the same code path and answer serializer movd_serve uses, so the
//     CLI output is byte-identical to a served answer (timing fields are
//     left to stderr so stdout is deterministic and diffable).
//     --trace=FILE records a hierarchical span trace of the solve and
//     writes it as Chrome trace_event JSON (open in chrome://tracing or
//     Perfetto); an aggregated per-phase table goes to stderr. Tracing
//     never changes the answer bytes.

#include <cstdio>
#include <string>
#include <vector>

#include "core/molq.h"
#include "core/topk.h"
#include "core/weighted_distance.h"
#include "data/csv.h"
#include "data/generate.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "trace/trace.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "viz/svg.h"

namespace {

using namespace movd;

std::vector<std::string> SplitCsvList(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) {
      if (pos < csv.size()) out.push_back(csv.substr(pos));
      break;
    }
    out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

int Generate(const Flags& flags) {
  const std::string cls = flags.GetString("class", "STM");
  const size_t count = static_cast<size_t>(flags.GetInt("count", 1000));
  const std::string out = flags.GetString("out", "");
  const double world = flags.GetDouble("world", 10000.0);
  const uint64_t seed = flags.GetInt("seed", 1);
  flags.WarnUnused(stderr);
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const auto points =
      SamplePoiClass(cls, count, Rect(0, 0, world, world), seed);
  std::vector<SpatialObject> objects;
  objects.reserve(points.size());
  for (const Point& p : points) {
    SpatialObject obj;
    obj.location = p;
    objects.push_back(obj);
  }
  if (!SaveObjectsCsv(out, objects)) {
    std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu %s objects to %s\n", objects.size(), cls.c_str(),
              out.c_str());
  return 0;
}

// One answer as a JSON line, through the serializer shared with the
// serving engine's wire responses (serve/protocol.h).
void PrintAnswerJson(const MolqQuery& query, const Point& location,
                     double cost, const std::vector<PoiRef>& group) {
  ServeAnswer answer;
  answer.location = location;
  answer.cost = cost;
  answer.group = group;
  std::printf("%s\n", AnswerJson(query, answer).c_str());
}

int Solve(const Flags& flags) {
  const auto inputs = SplitCsvList(flags.GetString("inputs", ""));
  if (inputs.size() < 1) {
    std::fprintf(stderr, "solve: --inputs=a.csv,b.csv,... is required\n");
    return 2;
  }
  MolqQuery query;
  Rect world;
  for (const std::string& path : inputs) {
    const auto objects = LoadObjectsCsv(path);
    if (!objects.has_value() || objects->empty()) {
      std::fprintf(stderr, "solve: cannot read objects from %s\n",
                   path.c_str());
      return 1;
    }
    ObjectSet set;
    set.name = path;
    set.objects = *objects;
    for (const SpatialObject& obj : set.objects) world.Expand(obj.location);
    query.sets.push_back(std::move(set));
  }
  if (flags.Has("world")) {
    const double w = flags.GetDouble("world", 10000.0);
    world = Rect(0, 0, w, w);
  }

  MolqOptions options;
  const std::string algo = flags.GetString("algorithm", "rrb");
  if (algo == "rrb") {
    options.algorithm = MolqAlgorithm::kRrb;
  } else if (algo == "mbrb") {
    options.algorithm = MolqAlgorithm::kMbrb;
  } else if (algo == "ssc") {
    options.algorithm = MolqAlgorithm::kSsc;
  } else {
    std::fprintf(stderr, "solve: unknown --algorithm=%s\n", algo.c_str());
    return 2;
  }
  options.epsilon = flags.GetDouble("epsilon", 1e-3);
  options.use_overlap_pruning = flags.GetBool("prune", false);
  options.exec.threads = static_cast<int>(flags.GetInt("threads", 1));

  const size_t k = static_cast<size_t>(flags.GetInt("topk", 1));
  const bool json = flags.GetBool("json", false);
  const std::string svg_path = flags.GetString("svg", "");
  const std::string trace_path = flags.GetString("trace", "");
  Trace trace;
  if (!trace_path.empty()) options.exec.trace = &trace;
  flags.WarnUnused(stderr);
  Stopwatch sw;
  Point answer;
  if (json) {
    // Serve the query through the resident engine: same validation, same
    // solve path, same serializer as a movd_serve SOLVE request.
    if (options.use_overlap_pruning) {
      std::fprintf(stderr, "solve: --prune is ignored with --json\n");
    }
    QueryEngine engine;
    engine.RegisterDataset("cli", query, world);
    ServeRequest request;
    request.id = "cli";
    request.dataset = "cli";
    request.algorithm = options.algorithm;
    request.epsilon = options.epsilon;
    request.topk = k;
    request.exec = options.exec;
    const ServeResponse resp = engine.Solve(request);
    if (resp.status != ServeStatus::kOk) {
      std::fprintf(stderr, "solve: %s %s\n", ServeStatusName(resp.status),
                   resp.error.c_str());
      return 1;
    }
    // Timing is excluded from stdout (it varies run to run); report it on
    // stderr so stdout stays byte-identical across runs and trace modes.
    std::printf("%s\n", ResponseJson(*engine.dataset_query("cli"), resp,
                                     /*include_timing=*/false)
                            .c_str());
    std::fprintf(stderr, "serve: cache_hit=%s seconds=%.6f\n",
                 resp.cache_hit ? "true" : "false", resp.seconds);
    if (!resp.answers.empty()) answer = resp.answers.front().location;
  } else if (k > 1 && options.algorithm != MolqAlgorithm::kSsc) {
    const MolqResult top = SolveMolqTopK(query, world, k, options);
    for (const RankedLocation& r : top.ranked) {
      PrintAnswerJson(query, r.location, r.cost, r.group);
    }
    if (!top.ranked.empty()) answer = top.ranked.front().location;
  } else {
    const MolqResult r = SolveMolq(query, world, options);
    PrintAnswerJson(query, r.location, r.cost, r.group);
    answer = r.location;
    std::fprintf(stderr,
                 "stages: vd=%.3fs overlap=%.3fs optimize=%.3fs "
                 "(threads=%d)\n",
                 r.stats.vd_seconds, r.stats.overlap_seconds,
                 r.stats.optimize_seconds, r.stats.threads);
  }
  std::fprintf(stderr, "solved in %.3fs\n", sw.ElapsedSeconds());

  if (!trace_path.empty()) {
    const Status written = trace.WriteChromeJson(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "solve: trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
    trace.PrintPhaseTable(stderr);
  }

  if (!svg_path.empty()) {
    SvgWriter svg(world, 800);
    const char* colors[] = {"#1f77b4", "#2ca02c", "#d62728", "#9467bd",
                            "#8c564b"};
    for (size_t s = 0; s < query.sets.size(); ++s) {
      for (const SpatialObject& obj : query.sets[s].objects) {
        svg.AddCircle(obj.location, 3.0, colors[s % 5]);
      }
    }
    svg.AddCircle(answer, 8.0, "#ff7f0e");
    if (const Status s = svg.Save(svg_path); !s.ok()) {
      std::fprintf(stderr, "solve: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", svg_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "usage: molq_cli <generate|solve> [flags]\n"
                 "  generate --class=STM --count=1000 --out=file.csv\n"
                 "  solve --inputs=a.csv,b.csv[,...] [--algorithm=rrb] "
                 "[--topk=3] [--svg=out.svg] [--threads=1] [--json]\n");
    return 2;
  }
  const std::string& command = flags.positional()[0];
  if (command == "generate") return Generate(flags);
  if (command == "solve") return Solve(flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
