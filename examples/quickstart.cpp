// Quickstart: the smallest useful MOLQ program.
//
// Three object types (schools, bus stops, supermarkets), a handful of
// objects each, multiplicative weights. Finds the location minimising the
// total weighted distance to the nearest object of each type, using the
// RRB pipeline, and cross-checks against the SSC baseline.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/molq.h"

using movd::MolqAlgorithm;
using movd::MolqOptions;
using movd::MolqQuery;
using movd::ObjectSet;
using movd::Point;
using movd::Rect;
using movd::SpatialObject;

namespace {

ObjectSet MakeSet(const char* name,
                  std::initializer_list<std::pair<Point, double>> objects) {
  ObjectSet set;
  set.name = name;
  for (const auto& [location, type_weight] : objects) {
    SpatialObject obj;
    obj.location = location;
    obj.type_weight = type_weight;  // smaller = more important
    set.objects.push_back(obj);
  }
  return set;
}

}  // namespace

int main() {
  // A 10km x 10km city, coordinates in meters.
  const Rect city(0, 0, 10000, 10000);

  MolqQuery query;
  query.sets.push_back(MakeSet("school", {{{2000, 7000}, 1.0},
                                          {{5500, 6500}, 1.0},
                                          {{8000, 2000}, 1.0}}));
  query.sets.push_back(MakeSet("bus_stop", {{{1500, 6000}, 0.5},
                                            {{5000, 5000}, 0.5},
                                            {{6000, 8500}, 0.5},
                                            {{8500, 3000}, 0.5}}));
  query.sets.push_back(MakeSet("supermarket", {{{3000, 3000}, 2.0},
                                               {{7000, 7000}, 2.0}}));

  MolqOptions options;
  options.algorithm = MolqAlgorithm::kRrb;
  options.epsilon = 1e-6;
  const auto rrb = SolveMolq(query, city, options);

  std::printf("Optimal location: (%.1f, %.1f)\n", rrb.location.x,
              rrb.location.y);
  std::printf("Total weighted distance: %.1f\n", rrb.cost);
  std::printf("OVRs examined: %zu (of %zu basic combinations)\n",
              rrb.stats.final_ovrs,
              query.sets[0].objects.size() * query.sets[1].objects.size() *
                  query.sets[2].objects.size());

  // Cross-check with the brute-force SSC baseline.
  options.algorithm = MolqAlgorithm::kSsc;
  const auto ssc = SolveMolq(query, city, options);
  std::printf("SSC agrees: cost %.1f (deviation %.2e)\n", ssc.cost,
              std::abs(ssc.cost - rrb.cost) / ssc.cost);
  return 0;
}
