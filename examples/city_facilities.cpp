// Facility-scale comparison: runs the three MOLQ solvers on a larger
// synthetic city built from the GeoNames-like catalog (streams, churches,
// schools) and reports per-stage timings — a miniature of the paper's
// Fig. 8 experiment with visible pipeline internals.
//
// Build & run:  ./examples/city_facilities [--objects=64] [--epsilon=1e-3]

#include <cstdio>

#include "bench/bench_common.h"
#include "core/molq.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace {

using namespace movd;
using movd::bench::kWorld;
using movd::bench::MakeQuery;

void Report(const char* name, const MolqResult& r, double total_seconds) {
  std::printf("%-5s cost=%-12.1f at (%7.1f, %7.1f)  total=%6.3fs", name,
              r.cost, r.location.x, r.location.y, total_seconds);
  if (r.stats.final_ovrs > 0) {
    std::printf("  [vd=%.3fs overlap=%.3fs optimize=%.3fs, %zu OVRs, "
                "%zu FW problems, %llu iterations]",
                r.stats.vd_seconds, r.stats.overlap_seconds,
                r.stats.optimize_seconds, r.stats.final_ovrs,
                static_cast<size_t>(r.stats.optimizer.problems),
                static_cast<unsigned long long>(
                    r.stats.optimizer.total_iterations));
  } else {
    std::printf("  [%llu combinations, %llu filtered]",
                static_cast<unsigned long long>(r.stats.ssc.combinations),
                static_cast<unsigned long long>(
                    r.stats.ssc.skipped_prefilter));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("objects", 64));
  const double epsilon = flags.GetDouble("epsilon", 1e-3);
  flags.WarnUnused(stderr);

  std::printf("City with %zu streams, %zu churches, %zu schools "
              "(type weights U[0,10))\n\n", n, n, n);
  const MolqQuery query = MakeQuery({n, n, n}, /*seed=*/7);

  MolqOptions options;
  options.epsilon = epsilon;
  for (const auto& [algo, name] :
       {std::pair{MolqAlgorithm::kSsc, "SSC"},
        std::pair{MolqAlgorithm::kRrb, "RRB"},
        std::pair{MolqAlgorithm::kMbrb, "MBRB"}}) {
    options.algorithm = algo;
    Stopwatch sw;
    const MolqResult r = SolveMolq(query, kWorld, options);
    Report(name, r, sw.ElapsedSeconds());
  }
  return 0;
}
