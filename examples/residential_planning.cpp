// Residential location selection — the paper's motivating example (Fig. 1).
//
// A city has schools, bus stops and supermarkets. A family weighs the
// importance of each amenity type (type weights) and their preference for
// individual amenities (object weights, e.g. school quality). The query
// returns the residence location minimising the total weighted distance to
// the closest amenity of each type.
//
// The example runs the query twice — once with uniform weights, once with
// personalised ones — and renders both answers into SVG maps.
//
// Build & run:  ./examples/residential_planning [output_dir]

#include <cstdio>
#include <string>

#include "core/molq.h"
#include "core/weighted_distance.h"
#include "data/generate.h"
#include "util/rng.h"
#include "util/status.h"
#include "viz/svg.h"

namespace {

using namespace movd;

constexpr Rect kCity(0, 0, 10000, 10000);

MolqQuery MakeCity(uint64_t seed) {
  Rng rng(seed);
  MolqQuery query;
  const struct {
    const char* name;
    size_t count;
    double type_weight;
  } specs[] = {
      {"school", 12, 1.0},
      {"bus_stop", 25, 0.6},
      {"supermarket", 8, 1.5},
  };
  for (const auto& spec : specs) {
    ObjectSet set;
    set.name = spec.name;
    GeneratorConfig config;
    config.distribution = Distribution::kGaussianClusters;
    config.count = spec.count;
    config.bounds = kCity;
    config.clusters = 5;
    config.spread_fraction = 0.08;
    config.seed = seed ^ spec.count;
    for (const Point& p : GeneratePoints(config)) {
      SpatialObject obj;
      obj.location = p;
      obj.type_weight = spec.type_weight;
      obj.object_weight = 1.0;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

void Render(const MolqQuery& query, const MolqResult& result,
            const std::string& path) {
  SvgWriter svg(kCity, 800);
  const char* colors[] = {"#1f77b4", "#2ca02c", "#d62728"};
  // Voronoi cells of the first type for context.
  const Movd basic = BuildBasicMovd(query, 0, kCity, 128);
  for (const Ovr& ovr : basic.ovrs) {
    for (const ConvexPolygon& piece : ovr.region.pieces()) {
      svg.AddPolygon(piece, "none", "#cccccc", 0.5);
    }
  }
  for (size_t s = 0; s < query.sets.size(); ++s) {
    for (const SpatialObject& obj : query.sets[s].objects) {
      svg.AddCircle(obj.location, 4.0, colors[s % 3]);
    }
  }
  // The winning group and the answer.
  const auto group = ArgMinGroup(query, result.location);
  for (size_t s = 0; s < group.size(); ++s) {
    svg.AddLine(result.location, query.sets[s].objects[group[s]].location,
                "#555555", 1.5);
  }
  svg.AddCircle(result.location, 8.0, "#ff7f0e");
  svg.AddText(result.location + Point{150, 150}, "optimal residence", 16);
  if (const Status s = svg.Save(path); s.ok()) {
    std::printf("  wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  MolqQuery query = MakeCity(2026);

  MolqOptions options;
  options.algorithm = MolqAlgorithm::kRrb;
  options.epsilon = 1e-6;

  std::printf("Uniform preferences:\n");
  const MolqResult uniform = SolveMolq(query, kCity, options);
  std::printf("  residence at (%.0f, %.0f), weighted distance %.0f\n",
              uniform.location.x, uniform.location.y, uniform.cost);
  Render(query, uniform, out_dir + "/residential_uniform.svg");

  // Personalised: schools matter twice as much, and the family dislikes
  // the specific supermarket serving the uniform answer. The dislike is an
  // *additive* object weight — a fixed 2.5 km inconvenience no matter how
  // close one lives — which demonstrates mixing weight functions per type
  // (multiplicative for schools/bus stops, additive for supermarkets).
  std::printf("Personalised preferences (schools 2x important; the "
              "supermarket nearest the first answer is disliked):\n");
  for (SpatialObject& obj : query.sets[0].objects) obj.type_weight *= 0.5;
  const auto disliked = ArgMinGroup(query, uniform.location);
  query.object_functions = {WeightFunctionKind::kMultiplicative,
                            WeightFunctionKind::kMultiplicative,
                            WeightFunctionKind::kAdditive};
  for (SpatialObject& obj : query.sets[2].objects) obj.object_weight = 0.0;
  query.sets[2].objects[disliked[2]].object_weight = 2500.0;
  const MolqResult personalised = SolveMolq(query, kCity, options);
  std::printf("  residence at (%.0f, %.0f), weighted distance %.0f\n",
              personalised.location.x, personalised.location.y,
              personalised.cost);
  Render(query, personalised, out_dir + "/residential_personalised.svg");

  const double moved = Distance(uniform.location, personalised.location);
  std::printf("Preferences moved the answer %.0f meters.\n", moved);
  return 0;
}
