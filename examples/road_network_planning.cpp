// Road-network facility placement: the Euclidean MOLQ answer vs the
// network-aware answer on the same city. Sparse road networks force
// detours, so the two can differ substantially — this example quantifies
// the gap and renders both onto the road map.
//
// Build & run:  ./examples/road_network_planning [output_dir]

#include <cstdio>
#include <string>

#include "core/molq.h"
#include "network/graph.h"
#include "network/network_molq.h"
#include "util/rng.h"
#include "util/status.h"
#include "viz/svg.h"

namespace {

using namespace movd;

constexpr Rect kCity(0, 0, 10000, 10000);

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A sparse road network (5% of the Delaunay edges beyond a spanning
  // skeleton) and three object types placed at random road vertices.
  const RoadNetwork roads = RandomRoadNetwork(600, kCity, 0.05, 99);
  Rng rng(100);
  MolqQuery query;
  const char* names[] = {"school", "clinic", "market"};
  for (int s = 0; s < 3; ++s) {
    ObjectSet set;
    set.name = names[s];
    for (int i = 0; i < 6; ++i) {
      SpatialObject obj;
      obj.location =
          roads.vertices()[rng.NextBelow(roads.num_vertices())];
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }

  // Euclidean answer (the paper's setting).
  MolqOptions options;
  options.epsilon = 1e-6;
  const MolqResult euclidean = SolveMolq(query, kCity, options);

  // Network answer (shortest-path distances, exact vertex optimum).
  const auto sets = SnapQueryToNetwork(roads, query);
  const NetworkMolqResult network = SolveNetworkMolq(roads, sets);
  const Point network_at = roads.vertices()[network.vertex];

  // Evaluate the Euclidean answer's quality *on the network*: snap it to
  // its nearest road vertex and compare network costs.
  const int32_t snapped = roads.NearestVertex(euclidean.location);
  double snapped_cost = 0.0;
  for (const auto& set : sets) {
    const auto dist = NearestSourceDistances(roads, set.vertices);
    snapped_cost += set.type_weight * dist[snapped];
  }

  std::printf("Euclidean optimum: (%.0f, %.0f), straight-line cost %.0f\n",
              euclidean.location.x, euclidean.location.y, euclidean.cost);
  std::printf("Network optimum:   vertex %d at (%.0f, %.0f), road cost "
              "%.0f\n", network.vertex, network_at.x, network_at.y,
              network.cost);
  std::printf("Euclidean answer snapped onto the roads costs %.0f "
              "(%.1f%% worse than the network optimum)\n", snapped_cost,
              100.0 * (snapped_cost / network.cost - 1.0));

  SvgWriter svg(kCity, 900);
  for (size_t v = 0; v < roads.num_vertices(); ++v) {
    for (const RoadNetwork::Arc& arc : roads.Neighbors(static_cast<int32_t>(v))) {
      if (arc.to > static_cast<int32_t>(v)) {
        svg.AddLine(roads.vertices()[v], roads.vertices()[arc.to],
                    "#bbbbbb", 0.8);
      }
    }
  }
  const char* colors[] = {"#1f77b4", "#2ca02c", "#d62728"};
  for (size_t s = 0; s < query.sets.size(); ++s) {
    for (const SpatialObject& obj : query.sets[s].objects) {
      svg.AddCircle(obj.location, 5.0, colors[s]);
    }
  }
  svg.AddCircle(euclidean.location, 9.0, "#ff7f0e");
  svg.AddText(euclidean.location + Point{120, 120}, "euclidean", 14);
  svg.AddCircle(network_at, 9.0, "#9467bd");
  svg.AddText(network_at + Point{120, -120}, "network", 14);
  const std::string path = out_dir + "/road_network_planning.svg";
  if (const Status s = svg.Save(path); s.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}
