// Voronoi gallery: renders the building blocks of the OVD model as SVG —
// an ordinary Voronoi diagram, a multiplicatively weighted diagram
// (approximated), and the overlap of two diagrams with the OVR structure
// visible (the paper's Figs. 2, 4 and 5).
//
// Build & run:  ./examples/voronoi_gallery [output_dir]

#include <cstdio>
#include <string>

#include "model/movd_model.h"
#include "core/overlap.h"
#include "util/rng.h"
#include "util/status.h"
#include "viz/svg.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace {

using namespace movd;

constexpr Rect kWorld(0, 0, 1000, 1000);

std::vector<Point> RandomSites(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(50, 950), rng.Uniform(50, 950)});
  }
  return pts;
}

const char* Palette(size_t i) {
  static const char* kColors[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
                                  "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};
  return kColors[i % 8];
}

void RenderOrdinary(const std::string& path) {
  const auto vd = VoronoiDiagram::Build(RandomSites(24, 101), kWorld);
  SvgWriter svg(kWorld, 640);
  for (size_t i = 0; i < vd.cells().size(); ++i) {
    svg.AddPolygon(vd.cells()[i].region, Palette(i), "#444444", 1.0, 0.55);
    svg.AddCircle(vd.sites()[i], 3.0, "#000000");
  }
  if (const Status s = svg.Save(path); s.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
}

void RenderWeighted(const std::string& path) {
  Rng rng(102);
  std::vector<WeightedSite> sites;
  for (const Point& p : RandomSites(10, 103)) {
    sites.push_back(MultiplicativeSite(p, rng.Uniform(0.5, 3.0)));
  }
  WeightedOptions wopts;
  wopts.resolution = 192;
  const auto cells = BuildWeightedCells(sites, kWorld, wopts);
  SvgWriter svg(kWorld, 640);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].empty) continue;
    svg.AddPolygon(cells[i].hull, Palette(i), "#444444", 1.0, 0.45);
    svg.AddRect(cells[i].mbr, "none", "#aa0000", 0.8, 0.0);
    svg.AddCircle(sites[i].location, 3.0, "#000000");
    char label[32];
    std::snprintf(label, sizeof(label), "w=%.1f", sites[i].multiplier);
    svg.AddText(sites[i].location + Point{8, 8}, label, 11);
  }
  if (const Status s = svg.Save(path); s.ok()) {
    std::printf("wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
}

void RenderOverlap(const std::string& path) {
  const auto va = VoronoiDiagram::Build(RandomSites(8, 104), kWorld);
  const auto vb = VoronoiDiagram::Build(RandomSites(8, 105), kWorld);
  std::vector<int32_t> ids(8);
  for (int32_t i = 0; i < 8; ++i) ids[i] = i;
  const Movd a = MovdFromVoronoi(va, 0, ids);
  const Movd b = MovdFromVoronoi(vb, 1, ids);
  const Movd overlap = Overlap(a, b, BoundaryMode::kRealRegion);

  SvgWriter svg(kWorld, 640);
  for (size_t i = 0; i < overlap.ovrs.size(); ++i) {
    for (const ConvexPolygon& piece : overlap.ovrs[i].region.pieces()) {
      svg.AddPolygon(piece, Palette(i), "#333333", 0.8, 0.5);
    }
  }
  for (const Point& p : va.sites()) svg.AddCircle(p, 4.0, "#d62728");
  for (const Point& p : vb.sites()) svg.AddCircle(p, 4.0, "#1f77b4");
  if (const Status s = svg.Save(path); s.ok()) {
    std::printf("wrote %s (%zu OVRs from 8 x 8 cells)\n", path.c_str(),
                overlap.ovrs.size());
  } else {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : ".";
  RenderOrdinary(out + "/gallery_ordinary_voronoi.svg");
  RenderWeighted(out + "/gallery_weighted_voronoi.svg");
  RenderOverlap(out + "/gallery_overlapped.svg");
  return 0;
}
