#include "index/rtree.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace movd {

struct RTree::Node {
  int level = 0;  // 0 = leaf
  Rect box;
  std::vector<Entry> entries;                  // level == 0
  std::vector<std::unique_ptr<Node>> children;  // level > 0

  bool IsLeaf() const { return level == 0; }

  void RecomputeBox() {
    box = Rect();
    if (IsLeaf()) {
      for (const Entry& e : entries) box.Expand(e.box);
    } else {
      for (const auto& c : children) box.Expand(c->box);
    }
  }

  size_t FanOut() const {
    return IsLeaf() ? entries.size() : children.size();
  }
};

namespace {

using Node = RTree::Node;

// Builds one tree level by tiling `boxes` (already associated with payloads)
// into groups of at most kMaxEntries using the STR recipe: sort by center x,
// cut into vertical slabs of ~sqrt(#groups) groups, sort each slab by
// center y, emit runs.
template <typename T, typename GetBox>
std::vector<std::vector<T>> StrTile(std::vector<T> items, GetBox get_box) {
  const size_t cap = RTree::kMaxEntries;
  const size_t n = items.size();
  const size_t num_groups = (n + cap - 1) / cap;
  const size_t num_slabs =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_groups))));
  const size_t slab_size = (n + num_slabs - 1) / num_slabs;

  // stable_sort: the caller hands items in deterministic order, so ties on
  // the slab key group identically under every sort implementation and the
  // packed tree shape is reproducible.
  std::stable_sort(items.begin(), items.end(), [&](const T& a, const T& b) {
    return get_box(a).Center().x < get_box(b).Center().x;
  });

  std::vector<std::vector<T>> groups;
  for (size_t s = 0; s * slab_size < n; ++s) {
    const size_t lo = s * slab_size;
    const size_t hi = std::min(n, lo + slab_size);
    std::stable_sort(items.begin() + lo, items.begin() + hi,
                     [&](const T& a, const T& b) {
                       return get_box(a).Center().y < get_box(b).Center().y;
                     });
    for (size_t i = lo; i < hi; i += cap) {
      const size_t end = std::min(hi, i + cap);
      groups.emplace_back(std::make_move_iterator(items.begin() + i),
                          std::make_move_iterator(items.begin() + end));
    }
  }
  return groups;
}

// Quadratic-split seed selection: the pair wasting the most area.
template <typename GetBox, typename T>
std::pair<size_t, size_t> PickSeeds(const std::vector<T>& items,
                                    GetBox get_box) {
  size_t s1 = 0, s2 = 1;
  double worst = -1.0;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      const Rect u = Rect::Union(get_box(items[i]), get_box(items[j]));
      const double waste =
          u.Area() - get_box(items[i]).Area() - get_box(items[j]).Area();
      if (waste > worst) {
        worst = waste;
        s1 = i;
        s2 = j;
      }
    }
  }
  return {s1, s2};
}

// Guttman quadratic split of `items` into two groups.
template <typename T, typename GetBox>
void QuadraticSplit(std::vector<T>* items, GetBox get_box,
                    std::vector<T>* group_a, std::vector<T>* group_b) {
  const auto [s1, s2] = PickSeeds(*items, get_box);
  Rect box_a = get_box((*items)[s1]);
  Rect box_b = get_box((*items)[s2]);
  group_a->push_back(std::move((*items)[s1]));
  group_b->push_back(std::move((*items)[s2]));
  std::vector<T> rest;
  for (size_t i = 0; i < items->size(); ++i) {
    if (i != s1 && i != s2) rest.push_back(std::move((*items)[i]));
  }
  items->clear();

  const size_t min_fill = RTree::kMinEntries;
  while (!rest.empty()) {
    // Force-assign when one side must take everything left to reach minimum.
    if (group_a->size() + rest.size() == min_fill) {
      for (auto& r : rest) {
        box_a.Expand(get_box(r));
        group_a->push_back(std::move(r));
      }
      break;
    }
    if (group_b->size() + rest.size() == min_fill) {
      for (auto& r : rest) {
        box_b.Expand(get_box(r));
        group_b->push_back(std::move(r));
      }
      break;
    }
    // Pick the item with maximal preference for one group.
    size_t best = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < rest.size(); ++i) {
      const Rect& r = get_box(rest[i]);
      const double da = Rect::Union(box_a, r).Area() - box_a.Area();
      const double db = Rect::Union(box_b, r).Area() - box_b.Area();
      const double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const Rect& r = get_box(rest[best]);
    const double da = Rect::Union(box_a, r).Area() - box_a.Area();
    const double db = Rect::Union(box_b, r).Area() - box_b.Area();
    const bool to_a = da < db || (da == db && box_a.Area() <= box_b.Area());
    if (to_a) {
      box_a.Expand(r);
      group_a->push_back(std::move(rest[best]));
    } else {
      box_b.Expand(r);
      group_b->push_back(std::move(rest[best]));
    }
    rest.erase(rest.begin() + static_cast<ptrdiff_t>(best));
  }
}

void CollectRange(const Node* node, const Rect& query,
                  std::vector<int64_t>* out) {
  if (!node->box.Intersects(query)) return;
  if (node->IsLeaf()) {
    for (const RTree::Entry& e : node->entries) {
      if (e.box.Intersects(query)) out->push_back(e.id);
    }
  } else {
    for (const auto& c : node->children) CollectRange(c.get(), query, out);
  }
}

int Height(const Node* node) { return node == nullptr ? 0 : node->level + 1; }

}  // namespace

RTree::RTree() : root_(std::make_unique<Node>()) {}
RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

RTree RTree::BulkLoad(std::vector<Entry> entries) {
  RTree tree;
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  // Leaf level.
  std::vector<std::unique_ptr<Node>> level;
  for (auto& group :
       StrTile(std::move(entries), [](const Entry& e) { return e.box; })) {
    auto node = std::make_unique<Node>();
    node->level = 0;
    node->entries = std::move(group);
    node->RecomputeBox();
    level.push_back(std::move(node));
  }
  // Upper levels.
  int lvl = 1;
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    for (auto& group : StrTile(std::move(level),
                               [](const std::unique_ptr<Node>& n) {
                                 return n->box;
                               })) {
      auto node = std::make_unique<Node>();
      node->level = lvl;
      node->children = std::move(group);
      node->RecomputeBox();
      next.push_back(std::move(node));
    }
    level = std::move(next);
    ++lvl;
  }
  tree.root_ = std::move(level.front());
  return tree;
}

RTree RTree::BulkLoadPoints(const std::vector<Point>& points) {
  std::vector<Entry> entries;
  entries.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    entries.push_back({Rect::OfPoint(points[i]), static_cast<int64_t>(i)});
  }
  return BulkLoad(std::move(entries));
}

void RTree::Insert(const Entry& entry) {
  InsertRec(root_.get(), entry, 0);
  ++size_;
  // Root overflow: grow the tree by one level.
  if (root_->FanOut() > kMaxEntries) {
    auto old_root = std::move(root_);
    auto sib_a = std::make_unique<Node>();
    auto sib_b = std::make_unique<Node>();
    sib_a->level = sib_b->level = old_root->level;
    if (old_root->IsLeaf()) {
      QuadraticSplit(
          &old_root->entries, [](const Entry& e) { return e.box; },
          &sib_a->entries, &sib_b->entries);
    } else {
      QuadraticSplit(
          &old_root->children,
          [](const std::unique_ptr<Node>& n) { return n->box; },
          &sib_a->children, &sib_b->children);
    }
    sib_a->RecomputeBox();
    sib_b->RecomputeBox();
    root_ = std::make_unique<Node>();
    root_->level = sib_a->level + 1;
    root_->children.push_back(std::move(sib_a));
    root_->children.push_back(std::move(sib_b));
    root_->RecomputeBox();
  }
}

void RTree::InsertRec(Node* node, const Entry& entry, int target_level) {
  node->box.Expand(entry.box);
  if (node->level == target_level) {
    MOVD_CHECK(node->IsLeaf());
    node->entries.push_back(entry);
    return;
  }
  // ChooseSubtree: minimal area enlargement, ties by smaller area.
  Node* best = nullptr;
  double best_enlarge = 0.0;
  for (const auto& c : node->children) {
    const double enlarge =
        Rect::Union(c->box, entry.box).Area() - c->box.Area();
    if (best == nullptr || enlarge < best_enlarge ||
        (enlarge == best_enlarge && c->box.Area() < best->box.Area())) {
      best = c.get();
      best_enlarge = enlarge;
    }
  }
  MOVD_CHECK(best != nullptr);
  InsertRec(best, entry, target_level);

  if (best->FanOut() > kMaxEntries) {
    auto sibling = std::make_unique<Node>();
    sibling->level = best->level;
    if (best->IsLeaf()) {
      std::vector<Entry> items = std::move(best->entries);
      best->entries.clear();
      QuadraticSplit(
          &items, [](const Entry& e) { return e.box; }, &best->entries,
          &sibling->entries);
    } else {
      std::vector<std::unique_ptr<Node>> items = std::move(best->children);
      best->children.clear();
      QuadraticSplit(
          &items, [](const std::unique_ptr<Node>& n) { return n->box; },
          &best->children, &sibling->children);
    }
    best->RecomputeBox();
    sibling->RecomputeBox();
    node->children.push_back(std::move(sibling));
  }
}

bool RTree::RemoveRec(Node* node, const Entry& entry,
                      std::vector<Entry>* orphans) {
  if (!node->box.Contains(entry.box)) return false;
  if (node->IsLeaf()) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].id == entry.id &&
          node->entries[i].box == entry.box) {
        node->entries.erase(node->entries.begin() +
                            static_cast<ptrdiff_t>(i));
        node->RecomputeBox();
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    Node* child = node->children[i].get();
    if (!RemoveRec(child, entry, orphans)) continue;
    // CondenseTree: drop underfull children and queue their leaf entries
    // for reinsertion.
    if (child->FanOut() < static_cast<size_t>(kMinEntries)) {
      std::vector<std::unique_ptr<Node>> stack;
      stack.push_back(std::move(node->children[i]));
      node->children.erase(node->children.begin() +
                           static_cast<ptrdiff_t>(i));
      while (!stack.empty()) {
        std::unique_ptr<Node> cur = std::move(stack.back());
        stack.pop_back();
        if (cur->IsLeaf()) {
          for (const Entry& e : cur->entries) orphans->push_back(e);
        } else {
          for (auto& grandchild : cur->children) {
            stack.push_back(std::move(grandchild));
          }
        }
      }
    }
    node->RecomputeBox();
    return true;
  }
  return false;
}

bool RTree::Remove(const Entry& entry) {
  if (size_ == 0) return false;
  std::vector<Entry> orphans;
  if (!RemoveRec(root_.get(), entry, &orphans)) return false;
  --size_;
  // Shrink the root while it has a single internal child.
  while (!root_->IsLeaf() && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (!root_->IsLeaf() && root_->children.empty()) {
    root_ = std::make_unique<Node>();
  }
  // Reinsert entries orphaned by condensation. They are still counted in
  // size_ (detaching their node never decremented it), so compensate for
  // Insert's increment.
  for (const Entry& e : orphans) {
    --size_;
    Insert(e);
  }
  return true;
}

namespace {

// Recursive structural check; returns the leaf depth or -1 on violation.
int ValidateRec(const Node* node, bool is_root, size_t* entries_seen) {
  const size_t fan = node->FanOut();
  if (fan > static_cast<size_t>(RTree::kMaxEntries)) return -1;
  // Note: kMinEntries is not asserted — STR bulk loading legitimately
  // leaves one trailing node per level below the minimum fill.
  if (!is_root && fan == 0) return -1;
  if (node->IsLeaf()) {
    *entries_seen += node->entries.size();
    if (node->entries.empty()) return is_root ? 0 : -1;
    Rect box;
    for (const RTree::Entry& e : node->entries) box.Expand(e.box);
    return box == node->box ? 0 : -1;
  }
  Rect box;
  int depth = -2;
  for (const auto& child : node->children) {
    if (!node->box.Contains(child->box)) return -1;
    box.Expand(child->box);
    const int d = ValidateRec(child.get(), false, entries_seen);
    if (d < 0) return -1;
    if (depth == -2) depth = d;
    if (d != depth) return -1;  // non-uniform leaf depth
  }
  if (!(box == node->box)) return -1;
  return depth + 1;
}

}  // namespace

bool RTree::Validate() const {
  size_t entries_seen = 0;
  const int depth = ValidateRec(root_.get(), true, &entries_seen);
  return depth >= 0 && entries_seen == size_;
}

std::vector<int64_t> RTree::RangeQuery(const Rect& query) const {
  std::vector<int64_t> out;
  if (size_ > 0) CollectRange(root_.get(), query, &out);
  return out;
}

std::vector<RTree::Neighbor> RTree::Nearest(const Point& p, size_t k) const {
  std::vector<Neighbor> out;
  NearestStream stream(*this, p);
  Neighbor nb;
  while (out.size() < k && stream.Next(&nb)) out.push_back(nb);
  return out;
}

int RTree::height() const { return Height(root_.get()); }

RTree::NearestStream::NearestStream(const RTree& tree, const Point& p)
    : tree_(&tree), query_(p) {
  if (tree.size_ > 0) {
    heap_.push({tree.root_->box.MinDistance2(p), tree.root_.get(), 0, false});
  }
}

bool RTree::NearestStream::Next(Neighbor* out) {
  while (!heap_.empty()) {
    const QueueItem item = heap_.top();
    heap_.pop();
    if (item.is_entry) {
      out->id = item.id;
      out->distance2 = item.distance2;
      return true;
    }
    const Node* node = static_cast<const Node*>(item.node);
    if (node->IsLeaf()) {
      for (const Entry& e : node->entries) {
        heap_.push({e.box.MinDistance2(query_), nullptr, e.id, true});
      }
    } else {
      for (const auto& c : node->children) {
        heap_.push({c->box.MinDistance2(query_), c.get(), 0, false});
      }
    }
  }
  return false;
}

}  // namespace movd
