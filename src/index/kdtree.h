#ifndef MOVD_INDEX_KDTREE_H_
#define MOVD_INDEX_KDTREE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// A static 2-d tree over points, built by median splitting (O(n log n),
/// contiguous node storage). Supports exact k-nearest-neighbour queries,
/// incremental nearest-neighbour streaming and rectangular range queries —
/// the same query surface as RTree, so either can back the Voronoi cell
/// builder. Ids are the indices of the construction points.
class KdTree {
 public:
  struct Neighbor {
    int64_t id = 0;
    double distance2 = 0.0;
  };

  KdTree() = default;

  /// Builds the tree over `points` (duplicates allowed, kept distinct).
  static KdTree Build(const std::vector<Point>& points);

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// The k nearest points to `p`, ascending by distance.
  std::vector<Neighbor> Nearest(const Point& p, size_t k) const;

  /// Ids of all points inside the closed rectangle.
  std::vector<int64_t> RangeQuery(const Rect& query) const;

  /// Incremental best-first nearest-neighbour stream (see
  /// RTree::NearestStream). The tree must outlive the stream.
  class NearestStream {
   public:
    NearestStream(const KdTree& tree, const Point& p);
    bool Next(Neighbor* out);

   private:
    struct QueueItem {
      double distance2;
      int32_t node;  // -1 for point entries
      int64_t id;
      bool operator>(const QueueItem& o) const {
        return distance2 > o.distance2;
      }
    };
    const KdTree* tree_;
    Point query_;
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        heap_;
  };

 private:
  friend class NearestStream;

  struct Node {
    Rect box;          // bounding box of the subtree
    int32_t left = -1;   // child node ids; -1 for leaves
    int32_t right = -1;
    int32_t begin = 0;  // leaf: range in ids_
    int32_t end = 0;
  };

  static constexpr int kLeafSize = 8;

  int32_t BuildNode(std::vector<int32_t>* ids, int32_t begin, int32_t end,
                    int depth);

  std::vector<Point> points_;
  std::vector<int32_t> ids_;  // permutation of point indices, leaf-grouped
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace movd

#endif  // MOVD_INDEX_KDTREE_H_
