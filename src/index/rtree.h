#ifndef MOVD_INDEX_RTREE_H_
#define MOVD_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// An in-memory R-tree over (MBR, id) entries.
///
/// Construction is either STR bulk load (preferred for static data sets,
/// produces near-optimally packed nodes) or one-at-a-time Insert with
/// Guttman's quadratic split. Supports range queries, k-nearest-neighbour
/// queries, and an incremental nearest-neighbour stream (best-first search)
/// used by the Voronoi cell builder.
class RTree {
 public:
  struct Entry {
    Rect box;
    int64_t id = 0;
  };

  /// Result of a nearest-neighbour query.
  struct Neighbor {
    int64_t id = 0;
    double distance2 = 0.0;  // squared distance from the query point
  };

  static constexpr int kMaxEntries = 16;
  static constexpr int kMinEntries = 6;

  struct Node;  // exposed for the implementation; not part of the API

  RTree();
  ~RTree();
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Builds a packed tree over `entries` (Sort-Tile-Recursive).
  static RTree BulkLoad(std::vector<Entry> entries);

  /// Convenience bulk load over points; ids are the point indices.
  static RTree BulkLoadPoints(const std::vector<Point>& points);

  /// Inserts one entry (Guttman quadratic split on overflow).
  void Insert(const Entry& entry);

  /// Removes one entry matching (box, id) exactly. Underfull nodes are
  /// condensed: their remaining entries are reinserted (Guttman's
  /// CondenseTree). Returns false when no such entry exists.
  bool Remove(const Entry& entry);

  /// Structural invariant check (tests): node fan-outs within bounds,
  /// parent boxes cover children, uniform leaf depth, size consistent.
  bool Validate() const;

  /// Ids of all entries whose MBR intersects `query`.
  std::vector<int64_t> RangeQuery(const Rect& query) const;

  /// The k entries nearest to `p` by MBR distance, ascending.
  std::vector<Neighbor> Nearest(const Point& p, size_t k) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const;

  /// Incremental best-first nearest-neighbour enumeration. Each Next() call
  /// returns the next-closest entry, or nullopt when exhausted. The stream
  /// holds a pointer to the tree, which must outlive it.
  class NearestStream {
   public:
    NearestStream(const RTree& tree, const Point& p);

    /// Advances and returns the next nearest entry; nullopt when done.
    bool Next(Neighbor* out);

   private:
    struct QueueItem {
      double distance2;
      const void* node;  // internal node or leaf-entry marker
      int64_t id;
      bool is_entry;
      bool operator>(const QueueItem& o) const {
        return distance2 > o.distance2;
      }
    };
    const RTree* tree_;
    Point query_;
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        heap_;
  };

 private:
  friend class NearestStream;

  void InsertRec(Node* node, const Entry& entry, int target_level);
  bool RemoveRec(Node* node, const Entry& entry,
                 std::vector<Entry>* orphans);
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace movd

#endif  // MOVD_INDEX_RTREE_H_
