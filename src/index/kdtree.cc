#include "index/kdtree.h"

#include <algorithm>

#include "util/check.h"

namespace movd {

KdTree KdTree::Build(const std::vector<Point>& points) {
  KdTree tree;
  tree.points_ = points;
  tree.ids_.resize(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    tree.ids_[i] = static_cast<int32_t>(i);
  }
  if (!points.empty()) {
    tree.nodes_.reserve(2 * points.size() / kLeafSize + 2);
    tree.root_ = tree.BuildNode(&tree.ids_, 0,
                                static_cast<int32_t>(points.size()), 0);
  }
  return tree;
}

int32_t KdTree::BuildNode(std::vector<int32_t>* ids, int32_t begin,
                          int32_t end, int depth) {
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back({});
  Rect box;
  for (int32_t i = begin; i < end; ++i) box.Expand(points_[(*ids)[i]]);
  nodes_[node_id].box = box;

  if (end - begin <= kLeafSize) {
    nodes_[node_id].begin = begin;
    nodes_[node_id].end = end;
    return node_id;
  }
  const bool split_x = depth % 2 == 0;
  const int32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids->begin() + begin, ids->begin() + mid,
                   ids->begin() + end, [&](int32_t a, int32_t b) {
                     return split_x ? points_[a].x < points_[b].x
                                    : points_[a].y < points_[b].y;
                   });
  const int32_t left = BuildNode(ids, begin, mid, depth + 1);
  const int32_t right = BuildNode(ids, mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

std::vector<KdTree::Neighbor> KdTree::Nearest(const Point& p,
                                              size_t k) const {
  std::vector<Neighbor> out;
  NearestStream stream(*this, p);
  Neighbor nb;
  while (out.size() < k && stream.Next(&nb)) out.push_back(nb);
  return out;
}

std::vector<int64_t> KdTree::RangeQuery(const Rect& query) const {
  std::vector<int64_t> out;
  if (root_ < 0) return out;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.left < 0) {
      for (int32_t i = node.begin; i < node.end; ++i) {
        if (query.Contains(points_[ids_[i]])) out.push_back(ids_[i]);
      }
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  return out;
}

KdTree::NearestStream::NearestStream(const KdTree& tree, const Point& p)
    : tree_(&tree), query_(p) {
  if (tree.root_ >= 0) {
    heap_.push({tree.nodes_[tree.root_].box.MinDistance2(p), tree.root_, 0});
  }
}

bool KdTree::NearestStream::Next(Neighbor* out) {
  while (!heap_.empty()) {
    const QueueItem item = heap_.top();
    heap_.pop();
    if (item.node < 0) {
      out->id = item.id;
      out->distance2 = item.distance2;
      return true;
    }
    const Node& node = tree_->nodes_[item.node];
    if (node.left < 0) {
      for (int32_t i = node.begin; i < node.end; ++i) {
        const int32_t id = tree_->ids_[i];
        heap_.push({Distance2(query_, tree_->points_[id]), -1, id});
      }
    } else {
      heap_.push({tree_->nodes_[node.left].box.MinDistance2(query_),
                  node.left, 0});
      heap_.push({tree_->nodes_[node.right].box.MinDistance2(query_),
                  node.right, 0});
    }
  }
  return false;
}

}  // namespace movd
