#ifndef MOVD_FERMAT_FERMAT_WEBER_H_
#define MOVD_FERMAT_FERMAT_WEBER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "geom/point.h"

namespace movd {

/// A Fermat–Weber demand point: a location and a positive weight. In the
/// MOLQ pipeline the weight is the (type-)weighted coefficient the paper's
/// cost function (Eq. 7) attaches to each object.
struct WeightedPoint {
  Point location;
  double weight = 1.0;
};

/// The Fermat–Weber cost c(q, G) = sum_i w_i * d(q, p_i)   (paper Eq. 7).
double FermatWeberCost(const std::vector<WeightedPoint>& points,
                       const Point& q);

/// Lower bound on the optimal cost, evaluated at iterate `at` (paper
/// Eq. 10): per coordinate axis, the exact optimum of a 1-D weighted median
/// problem whose weights are the projections of the unit vectors from `at`
/// to the demand points. Always <= min_q c(q, G).
double FermatWeberLowerBound(const std::vector<WeightedPoint>& points,
                             const Point& at);

/// If all demand points are collinear, returns the exact optimum (weighted
/// median along the line, linear-time after sort); otherwise nullopt.
std::optional<Point> SolveCollinear(const std::vector<WeightedPoint>& points);

/// Exact solution of the three-point problem. Vertex optima are detected by
/// the weighted optimality test |sum_{i != j} w_i u_i| <= w_j; interior
/// optima use the Torricelli construction when weights are equal and a
/// machine-precision iteration otherwise.
Point SolveTriangle(const std::vector<WeightedPoint>& points);

/// Unweighted Torricelli construction for a strictly interior Fermat point
/// of triangle (a, b, c): intersection of the lines joining each vertex to
/// the apex of the outward equilateral triangle on the opposite edge.
/// Precondition: all angles < 120 degrees.
Point TorricelliPoint(const Point& a, const Point& b, const Point& c);

/// Options for the iterative (Weiszfeld) solver.
struct FermatWeberOptions {
  /// Relative error bound epsilon: stop when (cost - lb) / lb <= epsilon,
  /// the paper's stopping rule with the optimum approximated by Eq. 10.
  double epsilon = 1e-3;

  /// Hard iteration cap (safety net; the stopping rule fires first).
  int max_iterations = 100000;

  /// Global cost bound (Algorithm 5): iteration aborts as soon as the
  /// lower bound proves this problem cannot beat `cost_bound`.
  double cost_bound = std::numeric_limits<double>::infinity();

  /// Live shared cost bound for concurrent batch solving (§5.4 across
  /// threads). When set, it supersedes `cost_bound`: every iteration
  /// reloads the current global bound and prunes when
  ///   lower_bound + shared_bound_offset > *shared_cost_bound
  /// (strictly greater, unlike the `>=` of the scalar bound, so a problem
  /// whose optimum exactly ties the bound still completes — ties are then
  /// resolved deterministically by the caller's (cost, index) reduction,
  /// independent of thread arrival order). `shared_bound_offset` is the
  /// constant term of the caller's weighted-distance decomposition, which
  /// the bound tracks but this solver does not see.
  const std::atomic<double>* shared_cost_bound = nullptr;
  double shared_bound_offset = 0.0;

  /// When true (default), problems of size 3 / collinear problems are
  /// routed to the exact solvers, as the paper prescribes (§5.4).
  bool use_exact_special_cases = true;

  /// Over-relaxation factor for the Weiszfeld step (Ostresh 1978 proves
  /// convergence for factors in (0, 2]): the iterate moves
  /// q + relaxation * (T(q) - q). 1.0 is the paper's plain iteration;
  /// ~1.8 roughly halves the iteration count. Steps that fail to decrease
  /// the cost fall back to the plain step, preserving monotonicity.
  double relaxation = 1.0;
};

/// Result of one Fermat–Weber solve.
struct FermatWeberResult {
  Point location;
  double cost = 0.0;
  /// Weiszfeld iterations executed (0 for exact special cases).
  int iterations = 0;
  /// True when the epsilon stopping rule was satisfied.
  bool converged = false;
  /// True when iteration stopped early because the lower bound crossed
  /// options.cost_bound; `location`/`cost` hold the last iterate.
  bool pruned = false;
};

/// Solves one Fermat–Weber problem with the modified Weiszfeld iteration
/// (Eq. 8/9; Vardi–Zhang step when an iterate coincides with a demand
/// point). Requires at least one point; equal points are handled.
FermatWeberResult SolveFermatWeber(const std::vector<WeightedPoint>& points,
                                   const FermatWeberOptions& options = {});

}  // namespace movd

#endif  // MOVD_FERMAT_FERMAT_WEBER_H_
