#ifndef MOVD_FERMAT_BATCH_H_
#define MOVD_FERMAT_BATCH_H_

#include <cstdint>
#include <vector>

#include "fermat/fermat_weber.h"
#include "util/exec_options.h"

namespace movd {

/// Options for the multi-problem Fermat–Weber solver (paper §5.4).
struct BatchOptions {
  /// Stopping-rule error bound for each problem.
  double epsilon = 1e-3;

  /// Algorithm 5's global cost bound: the best cost found so far caps all
  /// later problems (per-iteration lower-bound pruning). When false, every
  /// problem is solved to its own stopping rule ("Original" in Fig. 10).
  bool use_cost_bound = true;

  /// Algorithm 5 lines 8-12 / Algorithm 1 lines 4-5: solve the exact
  /// two-point prefix first and skip the problem when even that optimum
  /// exceeds the global bound. Independent toggle for ablation.
  bool use_two_point_prefilter = true;

  /// Shared execution knobs (util/exec_options.h). `exec.threads` fans the
  /// problems out over workers all sharing the cost bound through an
  /// atomic CAS-min; the returned (location, cost, winner) triple is
  /// identical for every thread count — the winner is resolved by a
  /// (cost, index) reduction, never by arrival order — though the
  /// iteration/prune counters may vary with timing.
  ExecOptions exec;
};

/// Aggregate result of solving a set of Fermat–Weber problems and keeping
/// the best optimum (§5.4.1).
struct BatchResult {
  Point location;          ///< best optimal location across all problems
  double cost = 0.0;       ///< its cost within its own problem
  size_t winner = 0;       ///< index of the winning problem
  uint64_t total_iterations = 0;  ///< Weiszfeld iterations across the batch
  uint64_t pruned_by_bound = 0;   ///< problems cut off mid-iteration
  uint64_t skipped_by_prefilter = 0;  ///< problems skipped before iterating
};

/// Solves every problem (each a vector of weighted demand points) and
/// returns the minimum-cost optimum (Algorithm 5). Problems must be
/// non-empty.
BatchResult SolveFermatWeberBatch(
    const std::vector<std::vector<WeightedPoint>>& problems,
    const BatchOptions& options = {});

}  // namespace movd

#endif  // MOVD_FERMAT_BATCH_H_
