#include "fermat/fermat_weber.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"
#include "util/check.h"

namespace movd {
namespace {

// Weighted-median objective: returns min_y sum_i w_i |y - x_i| given
// (position, weight) pairs. Exact via sorting.
double WeightedMedianCost(std::vector<std::pair<double, double>>* items) {
  if (items->empty()) return 0.0;
  std::sort(items->begin(), items->end());
  double total = 0.0;
  for (const auto& [x, w] : *items) total += w;
  // Find the weighted median position.
  double acc = 0.0;
  double median = items->back().first;
  for (const auto& [x, w] : *items) {
    acc += w;
    if (acc >= 0.5 * total) {
      median = x;
      break;
    }
  }
  double cost = 0.0;
  for (const auto& [x, w] : *items) cost += w * std::fabs(median - x);
  return cost;
}

// Sum of weighted unit vectors from q toward every point except index
// `skip` (-1 to include all). Points coinciding with q are ignored.
Point PullVector(const std::vector<WeightedPoint>& points, const Point& q,
                 int skip) {
  Point pull{0.0, 0.0};
  for (size_t i = 0; i < points.size(); ++i) {
    if (static_cast<int>(i) == skip) continue;
    const Point diff = points[i].location - q;
    const double d = diff.Norm();
    if (d == 0.0) continue;
    pull = pull + diff * (points[i].weight / d);
  }
  return pull;
}

// One Weiszfeld step (paper Eq. 8/9), with the Vardi–Zhang correction when
// q coincides with a demand point. Returns q unchanged when q is optimal.
Point WeiszfeldStep(const std::vector<WeightedPoint>& points, const Point& q) {
  // Detect coincidence with a demand point.
  int at = -1;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].location == q) {
      at = static_cast<int>(i);
      break;
    }
  }
  if (at >= 0) {
    // Vertex optimality test: q == p_at is optimal iff the pull of the
    // remaining points does not exceed w_at.
    const Point pull = PullVector(points, q, at);
    const double r = pull.Norm();
    const double w = points[at].weight;
    if (r <= w) return q;
    // Vardi–Zhang: move along the pull direction by the damped step.
    double denom = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      if (static_cast<int>(i) == at) continue;
      const double d = Distance(points[i].location, q);
      if (d > 0.0) denom += points[i].weight / d;
    }
    MOVD_DCHECK(denom > 0.0);
    const double step = (r - w) / denom;
    return q + pull * (step / r);
  }
  // Standard step: convex combination with coefficients w_i / d_i.
  double denom = 0.0;
  Point num{0.0, 0.0};
  for (const WeightedPoint& p : points) {
    const double d = Distance(p.location, q);
    MOVD_DCHECK(d > 0.0);
    const double g = p.weight / d;
    num = num + p.location * g;
    denom += g;
  }
  return num / denom;
}

Point Centroid(const std::vector<WeightedPoint>& points) {
  Point c{0.0, 0.0};
  double w = 0.0;
  for (const WeightedPoint& p : points) {
    c = c + p.location * p.weight;
    w += p.weight;
  }
  return w > 0.0 ? c / w : points.front().location;
}

}  // namespace

double FermatWeberCost(const std::vector<WeightedPoint>& points,
                       const Point& q) {
  double cost = 0.0;
  for (const WeightedPoint& p : points) {
    cost += p.weight * Distance(q, p.location);
  }
  return cost;
}

double FermatWeberLowerBound(const std::vector<WeightedPoint>& points,
                             const Point& at) {
  // d(q, p) >= |q.x - p.x| * cx + |q.y - p.y| * cy for any (cx, cy) with
  // cx^2 + cy^2 <= 1 (Cauchy–Schwarz); pick c from the unit vector at->p.
  std::vector<std::pair<double, double>> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const WeightedPoint& p : points) {
    const double d = Distance(at, p.location);
    if (d == 0.0) continue;  // contributes a zero lower-bound term
    const double cx = std::fabs(at.x - p.location.x) / d;
    const double cy = std::fabs(at.y - p.location.y) / d;
    xs.emplace_back(p.location.x, p.weight * cx);
    ys.emplace_back(p.location.y, p.weight * cy);
  }
  return WeightedMedianCost(&xs) + WeightedMedianCost(&ys);
}

std::optional<Point> SolveCollinear(const std::vector<WeightedPoint>& points) {
  MOVD_CHECK(!points.empty());
  // Find two distinct anchor points.
  const Point& a = points.front().location;
  int second = -1;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].location != a) {
      second = static_cast<int>(i);
      break;
    }
  }
  if (second < 0) return a;  // all points identical
  const Point& b = points[second].location;
  for (const WeightedPoint& p : points) {
    if (Orient2D(a, b, p.location) != 0.0) return std::nullopt;
  }
  // Project on the line direction and take the weighted median.
  const Point dir = b - a;
  std::vector<std::pair<double, double>> ts;  // (parameter, weight)
  ts.reserve(points.size());
  for (const WeightedPoint& p : points) {
    ts.emplace_back((p.location - a).Dot(dir), p.weight);
  }
  std::sort(ts.begin(), ts.end());
  double total = 0.0;
  for (const auto& [t, w] : ts) total += w;
  double acc = 0.0;
  double median_t = ts.back().first;
  for (const auto& [t, w] : ts) {
    acc += w;
    if (acc >= 0.5 * total) {
      median_t = t;
      break;
    }
  }
  return a + dir * (median_t / dir.Norm2());
}

Point TorricelliPoint(const Point& a, const Point& b, const Point& c) {
  // Sliver triangles can pass the exact collinearity test while being far
  // too flat for the equilateral construction: the "away from w" side
  // choice keys on cross products at underflow scale, flips inconsistently
  // between the two apexes, and the lines then intersect at the Fermat
  // point of a phantom non-degenerate triangle. Weiszfeld has no such
  // degeneracy; iterate instead of intersecting.
  const double area2 = std::fabs((b - a).Cross(c - a));
  const double scale =
      std::max({(b - a).Norm2(), (c - a).Norm2(), (c - b).Norm2()});
  if (area2 <= 1e-12 * scale) {
    const std::vector<WeightedPoint> pts = {{a, 1.0}, {b, 1.0}, {c, 1.0}};
    FermatWeberOptions opts;
    opts.epsilon = 1e-12;
    opts.use_exact_special_cases = false;  // avoid recursing through here
    return SolveFermatWeber(pts, opts).location;
  }
  // Apex of the outward equilateral triangle on edge (u, v), on the side
  // away from w: rotate (v - u) by +-60 degrees around u.
  const auto apex = [](const Point& u, const Point& v, const Point& w) {
    constexpr double kCos60 = 0.5;
    const double kSin60 = std::sqrt(3.0) / 2.0;
    const Point d = v - u;
    const Point rot_pos{kCos60 * d.x - kSin60 * d.y,
                        kSin60 * d.x + kCos60 * d.y};
    const Point apex_pos = u + rot_pos;
    const Point rot_neg{kCos60 * d.x + kSin60 * d.y,
                        -kSin60 * d.x + kCos60 * d.y};
    const Point apex_neg = u + rot_neg;
    // Pick the apex on the opposite side of (u, v) from w.
    const double side_w = (v - u).Cross(w - u);
    const double side_pos = (v - u).Cross(apex_pos - u);
    return side_w * side_pos < 0.0 ? apex_pos : apex_neg;
  };
  // Fermat point = intersection of a->apex(b,c) and b->apex(a,c).
  const Point pa = apex(b, c, a);
  const Point pb = apex(a, c, b);
  const Point d1 = pa - a;
  const Point d2 = pb - b;
  const double denom = d1.Cross(d2);
  // Backstop for the flatness test above: if the construction lines still
  // come out numerically parallel the intersection is meaningless, so
  // iterate rather than divide by a rounding residue.
  if (std::fabs(denom) <= 1e-12 * d1.Norm() * d2.Norm()) {
    const std::vector<WeightedPoint> pts = {{a, 1.0}, {b, 1.0}, {c, 1.0}};
    FermatWeberOptions opts;
    opts.epsilon = 1e-12;
    opts.use_exact_special_cases = false;  // avoid recursing through here
    return SolveFermatWeber(pts, opts).location;
  }
  const double t = (b - a).Cross(d2) / denom;
  return a + d1 * t;
}

Point SolveTriangle(const std::vector<WeightedPoint>& points) {
  MOVD_CHECK(points.size() == 3);
  // Vertex optimality (generalises the 120-degree rule to weights).
  for (int j = 0; j < 3; ++j) {
    const Point pull = PullVector(points, points[j].location, j);
    if (pull.Norm() <= points[j].weight) return points[j].location;
  }
  const bool equal_weights = points[0].weight == points[1].weight &&
                             points[1].weight == points[2].weight;
  if (equal_weights &&
      !Collinear(points[0].location, points[1].location, points[2].location)) {
    return TorricelliPoint(points[0].location, points[1].location,
                           points[2].location);
  }
  // Weighted interior optimum: no simple closed form; iterate to machine
  // precision (converges in tens of iterations for a triangle).
  FermatWeberOptions opts;
  opts.epsilon = 1e-12;
  opts.max_iterations = 100000;
  opts.use_exact_special_cases = false;
  return SolveFermatWeber(points, opts).location;
}

FermatWeberResult SolveFermatWeber(const std::vector<WeightedPoint>& points,
                                   const FermatWeberOptions& options) {
  MOVD_CHECK_MSG(!points.empty(),
                 "a Fermat-Weber problem needs at least one point");
  FermatWeberResult result;

  if (options.use_exact_special_cases) {
    if (points.size() == 1) {
      result.location = points.front().location;
      result.cost = 0.0;
      result.converged = true;
      return result;
    }
    if (points.size() == 2) {
      // Optimum at the heavier endpoint (anywhere on the segment for ties).
      const bool first = points[0].weight >= points[1].weight;
      result.location = (first ? points[0] : points[1]).location;
      result.cost = FermatWeberCost(points, result.location);
      result.converged = true;
      return result;
    }
    if (const auto collinear = SolveCollinear(points)) {
      result.location = *collinear;
      result.cost = FermatWeberCost(points, result.location);
      result.converged = true;
      return result;
    }
    if (points.size() == 3) {
      result.location = SolveTriangle(points);
      result.cost = FermatWeberCost(points, result.location);
      result.converged = true;
      return result;
    }
  }

  MOVD_CHECK(options.relaxation > 0.0 && options.relaxation <= 2.0);
  Point q = Centroid(points);
  double cost = FermatWeberCost(points, q);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    Point next = WeiszfeldStep(points, q);
    result.iterations = iter;
    double next_cost = FermatWeberCost(points, next);
    if (options.relaxation != 1.0) {
      // Over-relaxed trial step; keep it only when it beats the plain one.
      const Point trial = q + (next - q) * options.relaxation;
      const double trial_cost = FermatWeberCost(points, trial);
      if (trial_cost < next_cost) {
        next = trial;
        next_cost = trial_cost;
      }
    }
    const bool moved = next != q;
    const bool improved = next_cost < cost;
    // Weiszfeld decreases the cost monotonically (in exact arithmetic);
    // reject steps that do not, which only happens at float-noise level.
    if (improved) {
      q = next;
      cost = next_cost;
    }
    const double lb = FermatWeberLowerBound(points, q);
    // Cost-bound pruning (Algorithm 5, lines 15-16): once even the lower
    // bound cannot beat the global bound, further iterations are wasted.
    // The shared bound is compared strictly (ties survive) so concurrent
    // solvers stay deterministic; see FermatWeberOptions.
    const bool bound_hit =
        options.shared_cost_bound != nullptr
            ? lb + options.shared_bound_offset >
                  options.shared_cost_bound->load(std::memory_order_relaxed)
            : lb >= options.cost_bound;
    if (bound_hit) {
      result.pruned = true;
      break;
    }
    // Paper stopping rule: relative deviation from the (bounded) optimum,
    // with the optimum approximated from below by Eq. 10.
    if ((lb > 0.0 && (cost - lb) / lb <= options.epsilon) || cost == 0.0) {
      result.converged = true;
      break;
    }
    // Numerical fixed point: the iteration cannot make further progress in
    // double precision (this includes optimal demand-point vertices, which
    // WeiszfeldStep returns unchanged).
    if (!moved || !improved) {
      result.converged = true;
      break;
    }
  }
  result.location = q;
  result.cost = cost;
  return result;
}

}  // namespace movd
