#include "fermat/batch.h"

#include <limits>

#include "util/check.h"

namespace movd {
namespace {

// Exact optimal cost of the two-point prefix subproblem: the optimum sits
// at the heavier point, so the cost is min(w1, w2) * d. A valid lower bound
// for the full problem's optimum because dropping demand points can only
// lower the optimal cost.
double TwoPointPrefixCost(const std::vector<WeightedPoint>& points) {
  if (points.size() < 2) return 0.0;
  const WeightedPoint& a = points[0];
  const WeightedPoint& b = points[1];
  return std::min(a.weight, b.weight) * Distance(a.location, b.location);
}

}  // namespace

BatchResult SolveFermatWeberBatch(
    const std::vector<std::vector<WeightedPoint>>& problems,
    const BatchOptions& options) {
  MOVD_CHECK(!problems.empty());
  BatchResult result;
  double bound = std::numeric_limits<double>::infinity();
  bool have_answer = false;

  for (size_t i = 0; i < problems.size(); ++i) {
    const std::vector<WeightedPoint>& points = problems[i];
    MOVD_CHECK(!points.empty());

    if (options.use_two_point_prefilter && points.size() > 3 &&
        TwoPointPrefixCost(points) > bound) {
      ++result.skipped_by_prefilter;
      continue;
    }

    FermatWeberOptions fw;
    fw.epsilon = options.epsilon;
    if (options.use_cost_bound) fw.cost_bound = bound;
    const FermatWeberResult r = SolveFermatWeber(points, fw);
    result.total_iterations += static_cast<uint64_t>(r.iterations);
    if (r.pruned) {
      ++result.pruned_by_bound;
      continue;
    }
    if (!have_answer || r.cost < result.cost) {
      have_answer = true;
      result.cost = r.cost;
      result.location = r.location;
      result.winner = i;
      bound = r.cost;
    }
  }
  MOVD_CHECK(have_answer);
  return result;
}

}  // namespace movd
