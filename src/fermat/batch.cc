#include "fermat/batch.h"

#include <atomic>
#include <limits>

#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {
namespace {

// Exact optimal cost of the two-point prefix subproblem: the optimum sits
// at the heavier point, so the cost is min(w1, w2) * d. A valid lower bound
// for the full problem's optimum because dropping demand points can only
// lower the optimal cost.
double TwoPointPrefixCost(const std::vector<WeightedPoint>& points) {
  if (points.size() < 2) return 0.0;
  const WeightedPoint& a = points[0];
  const WeightedPoint& b = points[1];
  return std::min(a.weight, b.weight) * Distance(a.location, b.location);
}

struct ProblemOutcome {
  Point location;
  double cost = 0.0;
  bool solved = false;
};

}  // namespace

BatchResult SolveFermatWeberBatch(
    const std::vector<std::vector<WeightedPoint>>& problems,
    const BatchOptions& options) {
  MOVD_CHECK_MSG(!problems.empty(),
                 "the batch solver needs at least one problem");
  BatchResult result;

  // The §5.4 global cost bound, shared by all workers. It only decreases
  // (CAS-min), so a worker reading a stale value merely prunes less.
  std::atomic<double> bound{std::numeric_limits<double>::infinity()};
  std::vector<ProblemOutcome> outcomes(problems.size());
  std::atomic<uint64_t> total_iterations{0};
  std::atomic<uint64_t> pruned_by_bound{0};
  std::atomic<uint64_t> skipped_by_prefilter{0};

  const Trace::Context trace_ctx = Trace::CaptureContext();
  ParallelFor(options.exec.threads, problems.size(), [&](size_t i) {
    const std::vector<WeightedPoint>& points = problems[i];
    MOVD_CHECK(!points.empty());
    TraceContextScope trace_scope(trace_ctx);
    TraceSpan span("fermat_batch_problem");

    // Strict >: a prefix that exactly ties the bound cannot disprove a tie
    // with the current best, so the problem still runs and the winner stays
    // a pure (cost, index) decision.
    if (options.use_two_point_prefilter && points.size() > 3 &&
        TwoPointPrefixCost(points) > bound.load(std::memory_order_relaxed)) {
      skipped_by_prefilter.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    FermatWeberOptions fw;
    fw.epsilon = options.epsilon;
    if (options.use_cost_bound) fw.shared_cost_bound = &bound;
    const FermatWeberResult r = SolveFermatWeber(points, fw);
    total_iterations.fetch_add(static_cast<uint64_t>(r.iterations),
                               std::memory_order_relaxed);
    span.Counter("weiszfeld_iters", r.iterations);
    if (r.pruned) {
      pruned_by_bound.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    outcomes[i] = {r.location, r.cost, true};
    AtomicMinDouble(&bound, r.cost);
  });

  result.total_iterations = total_iterations.load();
  result.pruned_by_bound = pruned_by_bound.load();
  result.skipped_by_prefilter = skipped_by_prefilter.load();

  // Deterministic reduction: minimum cost, lowest index on ties. Any
  // problem tying the global minimum is never pruned (its lower bound can
  // never strictly exceed the bound), so every tied candidate is present
  // here regardless of scheduling.
  bool have_answer = false;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ProblemOutcome& o = outcomes[i];
    if (!o.solved) continue;
    if (!have_answer || o.cost < result.cost) {
      have_answer = true;
      result.cost = o.cost;
      result.location = o.location;
      result.winner = i;
    }
  }
  MOVD_CHECK(have_answer);
  return result;
}

}  // namespace movd
