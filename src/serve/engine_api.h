#ifndef MOVD_SERVE_ENGINE_API_H_
#define MOVD_SERVE_ENGINE_API_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/molq.h"
#include "model/query_model.h"
#include "model/update_model.h"
#include "serve/metrics.h"
#include "util/exec_options.h"
#include "util/status.h"

namespace movd {

/// The typed serving API (DESIGN.md §15). Every front end — the line
/// protocol, the sharded router, the typed client library, molq_cli —
/// speaks `EngineRequest`/`EngineResponse` against the abstract `Engine`
/// interface below, so parsing, admission control, sharding, and metrics
/// all hang off one `Engine::Handle` surface. The per-verb payloads are a
/// std::variant over small spec structs wrapping the query-algebra model
/// vocabulary (model/query_model.h) and the mutation model
/// (model/update_model.h); the flat `ServeRequest` remains as the
/// engine-internal execution form, built at exactly one choke point
/// (FlattenRequest).

/// Which query shape a request evaluates (DESIGN.md §13). All shapes run
/// against the same cached MOVD artifacts; only the per-request evaluation
/// differs. SSC is a plain-MOLQ-only baseline, so every shape other than
/// kMolq rejects algo=ssc, and kConstrained additionally rejects mbrb (the
/// constraint clipper needs real regions).
enum class ServeQueryKind {
  kMolq,         ///< SOLVE: top-k optimal locations
  kSkyline,      ///< SKYLINE: Pareto-optimal candidate sites
  kDiverse,      ///< DIVERSE: top-k with a minimum pairwise distance
  kConstrained,  ///< CONSTRAIN: optimum inside a polygon, minus exclusions
  kWhatIf,       ///< WHATIF: batched rankings under scaled type weights
};

/// One immutable version of a registered dataset (DESIGN.md §14). Every
/// request pins exactly one snapshot for its whole evaluation, so its
/// answer is bit-identical under concurrent mutation; a mutation copies
/// the current snapshot, applies itself, and publishes the copy as
/// version + 1. Snapshots are shared out as shared_ptr<const> and never
/// mutated after publication.
struct DatasetSnapshot {
  uint64_t version = 0;    ///< monotonic per dataset, starting at 1
  MolqQuery query;         ///< the object sets at this version
  Rect world;              ///< search space (fixed across versions)
  std::string weight_tag;  ///< weight-mode component of cache keys
};

/// Counters for one applied mutation (the body of an INSERT/DELETE
/// response).
struct MutationStats {
  size_t recomputed_cells = 0;   ///< layer cells rebuilt by the patch
  size_t patched_artifacts = 0;  ///< cached artifacts patched in place
  size_t dropped_artifacts = 0;  ///< cached artifacts invalidated instead
  bool full_rebuild = false;     ///< incremental path unavailable/stalled
};

/// The engine-internal flat execution form of one request. Front ends do
/// not build this directly: they build an EngineRequest (below) and the
/// engine flattens it through FlattenRequest — the single translation
/// choke point. It stays public because the engine's own tests and the
/// sharded router exercise the execution layer directly.
struct ServeRequest {
  std::string id = "-";         ///< client-chosen id, echoed in the response
  std::string dataset;          ///< registered dataset name
  std::vector<int32_t> layers;  ///< dataset layer indices; empty = all
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
  double epsilon = 1e-3;
  size_t topk = 1;
  /// Per-request execution knobs (the same ExecOptions the core pipeline
  /// takes). exec.threads is per-request pipeline parallelism — the answer
  /// is bit-identical for every value. exec.trace (when non-null) traces
  /// this request. exec.cancel and exec.weighted_grid_resolution are
  /// overwritten by the engine (deadline token / engine-wide resolution).
  ExecOptions exec;
  /// Deadline budget in milliseconds, measured from the moment the engine
  /// picks the request up (Solve entry / queue dequeue). <= 0 means none.
  /// A fired deadline yields kDeadlineExceeded with no answer — never a
  /// partial one.
  double deadline_ms = 0.0;
  /// When false the request bypasses the artifact cache entirely (cold
  /// rebuild; used by the load generator to measure the cold path through
  /// the same engine).
  bool use_cache = true;
  /// Query shape; the fields below it apply only to the shapes noted.
  ServeQueryKind kind = ServeQueryKind::kMolq;
  /// kDiverse: minimum pairwise distance between selected sites (>= 0).
  double min_distance = 0.0;
  /// kConstrained: the feasible-set polygons (ValidateConstraint'd before
  /// evaluation; an invalid constraint is an error response, not a crash).
  QueryConstraint constraint;
  /// kWhatIf: one scale vector per sweep entry, each with exactly one
  /// entry per SELECTED layer (in ascending layer order). The engine pads
  /// them to full-dataset vectors with the identity adjustment.
  std::vector<std::vector<double>> sweep;
  /// Mutation requests (INSERT/DELETE): when `mutate` is set the request
  /// takes the engine's mutation path (apply `mutation`, publish a new
  /// snapshot version) instead of the solver; the query fields above are
  /// ignored.
  bool mutate = false;
  SiteMutation mutation;
  /// Admission-control cost class, set by the protocol parser from the
  /// verb registry (queries 1, mutations heavier). Clamped to >= 1.
  int cost_units = 1;
  /// kSkyline, internal (never parsed from the wire): when set, only
  /// candidate combinations whose anchor point passes are solved. The
  /// sharded router's scatter path uses this to split one skyline's
  /// Fermat–Weber work across shards; the merged result is bit-identical
  /// to an unfiltered evaluation (DESIGN.md §15).
  std::function<bool(const Point&)> candidate_filter;
};

/// One ranked answer: the location, its cost, and the winning object
/// combination (PoiRef::set is the DATASET layer index).
struct ServeAnswer {
  Point location;
  double cost = 0.0;
  std::vector<PoiRef> group;
  /// Per-member criteria vector (skyline/diverse/constrained/what-if
  /// answers); empty for plain MOLQ, and omitted from the JSON then, so
  /// MOLQ response bytes are unchanged by the query-algebra shapes.
  std::vector<double> criteria;
};

/// The engine's reply to one request.
struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  std::string id = "-";
  std::string error;                 ///< human-readable detail on non-kOk
  std::vector<ServeAnswer> answers;  ///< ascending by cost; empty on error
  /// kWhatIf only: one ranking per sweep vector, in request order
  /// (`answers` stays empty — a sweep has no single answer list).
  std::vector<std::vector<ServeAnswer>> sweep_answers;
  bool cache_hit = false;  ///< overlay artifact came straight from cache
  double seconds = 0.0;    ///< service time (solve, excluding queue wait)
  /// The dataset snapshot this response was computed against (set on OK
  /// responses): the version a query pinned, or the version a mutation
  /// published. Response formatting resolves group refs through it, so a
  /// response never races a concurrent mutation.
  std::shared_ptr<const DatasetSnapshot> snapshot;
  uint64_t version = 0;      ///< snapshot->version (0 when no snapshot)
  bool is_mutation = false;  ///< response body is mutation stats, not answers
  MutationStats mutation;    ///< filled for mutation responses
};

/// Engine replies are the same type whichever Engine produced them; the
/// alias names the typed-API side of the pair.
using EngineResponse = ServeResponse;

/// ---- Typed per-verb request payloads -----------------------------------
///
/// One small spec struct per verb, each carrying only the fields its verb
/// accepts (the registry's allowed_args mask and these structs stay in
/// lockstep — a field absent here cannot be parsed, set, or routed).

/// SOLVE: top-k optimal locations.
struct SolveSpec {
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
  size_t topk = 1;
};

/// SKYLINE: Pareto-optimal candidate sites (rrb|mbrb).
struct SkylineSpec {
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
};

/// DIVERSE: top-k with a minimum pairwise distance (rrb|mbrb).
struct DiverseSpec {
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
  size_t topk = 1;
  double min_distance = 0.0;
};

/// CONSTRAIN: optimum inside a polygon, minus exclusions (RRB only, so no
/// algorithm field — the flattener pins kRrb).
struct ConstrainSpec {
  QueryConstraint constraint;
};

/// WHATIF: batched top-k rankings under scaled type weights.
struct WhatIfSpec {
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
  size_t topk = 1;
  /// One scale vector per sweep entry, each with exactly one entry per
  /// selected layer (ascending layer order).
  std::vector<std::vector<double>> sweep;
};

/// The per-verb payload: one alternative per non-control verb. Mutations
/// ride the model's own SiteMutation (model/update_model.h) directly.
using EngineOp = std::variant<SolveSpec, SkylineSpec, DiverseSpec,
                              ConstrainSpec, WhatIfSpec, SiteMutation>;

/// One typed request: the envelope every verb shares plus the per-verb
/// payload. This is what front ends build and Engine::Handle takes.
struct EngineRequest {
  std::string id = "-";         ///< client-chosen id, echoed in the response
  std::string dataset;          ///< registered dataset name
  std::vector<int32_t> layers;  ///< dataset layer indices; empty = all
  double epsilon = 1e-3;
  /// Per-request execution knobs; see ServeRequest::exec.
  ExecOptions exec;
  double deadline_ms = 0.0;  ///< solve budget; <= 0 means none
  bool use_cache = true;     ///< false = bypass the artifact cache
  /// Admission-control cost class (set from the verb registry row).
  int cost_units = 1;
  /// Optional routing hint (wire arg "rect="): the spatial region this
  /// request is about. The sharded router sends the request to the shard
  /// owning the rect's center; answers are identical with or without it —
  /// routing only decides which shard's cache warms. Empty = no hint.
  Rect routing_rect;
  /// The per-verb payload.
  EngineOp op;
};

/// The query shape an EngineRequest evaluates (mutations report kMolq —
/// check IsMutation first).
ServeQueryKind EngineRequestKind(const EngineRequest& request);

/// Whether the request is an INSERT/DELETE mutation.
bool IsMutation(const EngineRequest& request);

/// Flattens a typed request into the engine-internal execution form — the
/// single translation choke point between the typed API and the solver
/// (every Engine implementation and the protocol-compat shim route through
/// here, so the two forms cannot drift apart).
ServeRequest FlattenRequest(const EngineRequest& request);

/// Outcome of a warm-start cache load.
struct WarmLoadResult {
  size_t loaded = 0;  ///< artifacts inserted into the cache
  size_t failed = 0;  ///< artifacts skipped (corrupt/truncated/missing)
  Status status;      ///< non-OK when the manifest itself was bad
};

/// The abstract serving engine: one resident QueryEngine or a sharded
/// fleet of them (serve/shard.h) — callers cannot tell the difference,
/// and the determinism contract does not let them: answers are
/// bit-identical for any shard count.
///
/// Thread-safety: RegisterDataset must finish before serving starts;
/// Handle/HandleAsync are then safe from any number of threads.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Registers (or replaces) a dataset: the object sets, their weight
  /// functions, and the search space queries run over.
  virtual void RegisterDataset(const std::string& name, MolqQuery query,
                               const Rect& world) = 0;

  /// The dataset's current snapshot; null when unknown. The pointer stays
  /// valid (and immutable) for as long as the caller holds it.
  virtual std::shared_ptr<const DatasetSnapshot> dataset_snapshot(
      const std::string& name) const = 0;

  /// Serves one typed request synchronously on the calling thread.
  virtual EngineResponse Handle(const EngineRequest& request) = 0;

  /// Enqueues one typed request onto the engine's worker pool(s); the
  /// returned future resolves when it has been served. Admission control
  /// applies here (a request may resolve immediately to kOverloaded).
  virtual std::future<EngineResponse> HandleAsync(EngineRequest request) = 0;

  /// Serving metrics as the STATS JSON body / a human-readable table.
  virtual std::string MetricsJson() const = 0;
  virtual void DumpMetrics(std::FILE* out) const = 0;

  /// Warm-start persistence (see QueryEngine::SaveCache/LoadCache).
  virtual Status SaveCache(const std::string& dir) const = 0;
  virtual WarmLoadResult LoadCache(const std::string& dir) = 0;
};

}  // namespace movd

#endif  // MOVD_SERVE_ENGINE_API_H_
