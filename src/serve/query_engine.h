#ifndef MOVD_SERVE_QUERY_ENGINE_H_
#define MOVD_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/molq.h"
#include "core/topk.h"
#include "core/update.h"
#include "model/query_model.h"
#include "model/update_model.h"
#include "serve/artifact_cache.h"
#include "serve/engine_api.h"
#include "serve/metrics.h"
#include "util/exec_options.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace movd {

struct QueryEngineOptions {
  /// Artifact-cache budget in bytes (ArtifactBytes accounting). 0 disables
  /// caching — every request rebuilds from scratch.
  size_t cache_bytes = 256ull << 20;
  /// Worker threads draining the request queue (SubmitAsync). 0 = one per
  /// hardware thread. Workers only control cross-request concurrency;
  /// per-request parallelism is ServeRequest::threads, and answers are
  /// bit-identical regardless of either knob.
  int workers = 0;
  /// Engine-wide execution defaults. exec.weighted_grid_resolution is the
  /// grid resolution for weighted-diagram approximation (part of every
  /// cache key, so datasets served at different resolutions never share
  /// artifacts). exec.trace, when non-null, traces every request that does
  /// not bring its own request-level trace (movd_serve --trace). exec.audit
  /// additionally gates every mutation's patched artifacts against a
  /// from-scratch rebuild (falling back to the rebuild on mismatch). The
  /// per-request knobs (threads/cancel) are ignored here.
  ExecOptions exec;
  /// Admission control (DESIGN.md §14): total cost units allowed in the
  /// SubmitAsync queue before new requests are shed with kOverloaded.
  /// 0 disables queue-depth shedding.
  size_t admission_cost_limit = 0;
  /// Queue-delay budget in milliseconds: a request is shed with
  /// kOverloaded when its predicted (at submit, from the service-time
  /// EWMA) or actual (at dequeue) queue delay exceeds this. 0 disables
  /// delay shedding.
  double admission_delay_budget_ms = 0.0;
};

/// A resident MOLQ serving engine (DESIGN.md §8): owns registered datasets
/// as immutable versioned snapshots, a byte-accounted LRU cache of built
/// artifacts (per-layer basic MOVDs and overlay MOVDs, keyed by snapshot
/// version), a request queue batched onto util/thread_pool with admission
/// control, and serving metrics. The paper's split between the reusable VD
/// Generator stage and the per-query Optimizer stage (§5.1) is exactly the
/// cache boundary: diagrams and overlays are cached and shared across
/// requests, the Fermat–Weber optimization runs per request.
///
/// Live updates (DESIGN.md §14): Solve routes mutation requests through
/// the incremental patcher (src/core/update.h) — only the Voronoi cells a
/// mutation affects are recomputed, cached overlays are patched instead of
/// rebuilt, and the result is published as a new immutable snapshot.
/// Cache keys carry the snapshot version, so artifacts of superseded
/// versions go cold and age out through the LRU byte accounting while
/// in-flight queries pinned to them keep answering bit-identically.
///
/// The typed front door is Engine::Handle/HandleAsync (serve/engine_api.h);
/// Solve/SubmitAsync on the flat execution form stay public for the
/// engine's own tests and the sharded router (serve/shard.h), which
/// pre-flattens requests to set internal routing fields.
///
/// Thread-safety: RegisterDataset must finish before serving starts;
/// Solve/SubmitAsync (queries and mutations alike) are then safe from any
/// number of threads. Mutations serialize per dataset.
class QueryEngine : public Engine {
 public:
  /// Compat alias: the struct moved to serve/engine_api.h so ShardedEngine
  /// can speak it through the Engine interface.
  using WarmLoadResult = ::movd::WarmLoadResult;

  explicit QueryEngine(const QueryEngineOptions& options = {});
  ~QueryEngine() override;

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers (or replaces) a dataset: the object sets, their weight
  /// functions, and the search space queries run over. A replacement
  /// publishes a fresh snapshot whose version is newer than any prior one
  /// (never reusing a version, so stale cached artifacts cannot collide).
  void RegisterDataset(const std::string& name, MolqQuery query,
                       const Rect& world) override MOVD_EXCLUDES(datasets_mu_);

  /// The dataset's current snapshot; null when unknown. The pointer stays
  /// valid (and immutable) for as long as the caller holds it, however
  /// many mutations publish newer versions meanwhile.
  std::shared_ptr<const DatasetSnapshot> dataset_snapshot(
      const std::string& name) const override;

  /// Serves one typed request synchronously: flatten through the single
  /// choke point, then Solve.
  EngineResponse Handle(const EngineRequest& request) override;

  /// Enqueues one typed request (FlattenRequest + SubmitAsync).
  std::future<EngineResponse> HandleAsync(EngineRequest request) override;

  /// Solves one flat request synchronously on the calling thread (mutation
  /// requests apply + publish instead). The deadline clock starts now.
  ServeResponse Solve(const ServeRequest& request);

  /// Enqueues one flat request onto the engine's worker pool; the returned
  /// future resolves when a worker has solved it. The deadline clock
  /// starts when a worker dequeues the request, so queueing delay does not
  /// eat the solve budget (the line protocol reports total time anyway).
  /// Admission control applies here: a request may resolve immediately to
  /// kOverloaded when the queue's cost depth or predicted delay exceeds
  /// the configured budgets, and again at dequeue when its actual queue
  /// delay blew the budget.
  std::future<ServeResponse> SubmitAsync(ServeRequest request);

  const ServeMetrics& metrics() const { return metrics_; }
  ArtifactCache::Stats cache_stats() const { return cache_.stats(); }
  std::string MetricsJson() const override {
    return metrics_.Json(cache_.stats());
  }
  void DumpMetrics(std::FILE* out) const override {
    metrics_.DumpTable(out, cache_.stats());
  }

  /// Warm start: persists every resident artifact to `dir` (created if
  /// missing) as MOVD files plus a manifest mapping keys to files.
  /// kIoError (with the failing path in the message) on I/O failure.
  Status SaveCache(const std::string& dir) const override;

  /// Loads a SaveCache snapshot back into the cache. Corrupt or truncated
  /// artifact files are skipped and counted in `failed` — a damaged
  /// snapshot degrades to a colder cache, never a crash or a bad artifact
  /// (every file is validated by the movd_file header/record checks).
  /// Keys carry dataset versions, so a snapshot saved after mutations only
  /// warms a server whose datasets reach the same versions again.
  WarmLoadResult LoadCache(const std::string& dir) override;

 private:
  struct Dataset {
    /// Guards the published snapshot pointer (readers copy it out).
    mutable Mutex mu;
    std::shared_ptr<const DatasetSnapshot> snap MOVD_GUARDED_BY(mu);
    /// Serializes mutations on this dataset and guards the incremental
    /// per-layer mirrors. Lock order: mutate_mu before mu.
    Mutex mutate_mu;
    std::map<int32_t, std::unique_ptr<OrdinaryLayerState>> layer_state
        MOVD_GUARDED_BY(mutate_mu);
  };

  Dataset* FindDataset(const std::string& name) const
      MOVD_EXCLUDES(datasets_mu_);
  ServeResponse SolveInternal(const ServeRequest& request,
                              const CancelToken& token);
  /// Applies one mutation: validates it against the current snapshot,
  /// patches the triangulation/cells incrementally (full rebuild when the
  /// layer is weighted or the incremental deletion stalls), patches or
  /// re-keys every cached artifact of the dataset, and publishes the new
  /// snapshot. Serialized per dataset by Dataset::mutate_mu.
  ServeResponse MutateInternal(const ServeRequest& request);
  /// The artifact-maintenance half of a mutation: produce the mutated
  /// layer's new basic (incrementally when possible), then walk the cache
  /// and patch/re-key/drop every entry of `ds_name` at `old_snap`'s
  /// version. `state_slot` is the dataset's mirror slot for the mutated
  /// layer (owned by the caller under mutate_mu).
  void PatchArtifacts(const std::string& ds_name,
                      const DatasetSnapshot& old_snap,
                      const DatasetSnapshot& next_snap,
                      const SiteMutation& mut, int32_t deleted_object,
                      std::unique_ptr<OrdinaryLayerState>* state_slot,
                      MutationStats* stats);
  /// The overlay artifact for (dataset snapshot, layers, mode): cache
  /// lookup, else built from per-layer basic artifacts (themselves
  /// cached). Null when the token fired first.
  std::shared_ptr<const Movd> GetOverlay(const DatasetSnapshot& ds,
                                         const std::string& ds_name,
                                         const std::vector<int32_t>& layers,
                                         BoundaryMode mode,
                                         const ServeRequest& request,
                                         const CancelToken& token,
                                         bool* overlay_hit);
  /// The RRB overlay clipped to the request's feasible set, cached under a
  /// constraint-hashed key ("cns/...") so repeats of the same constraint
  /// reuse the clip. The unclipped overlay is fetched through GetOverlay
  /// (hence itself cached); `overlay_hit` reports the clipped-artifact
  /// lookup. Null when the deadline fired.
  std::shared_ptr<const Movd> GetClippedOverlay(
      const DatasetSnapshot& ds, const std::string& ds_name,
      const std::vector<int32_t>& layers, const ServeRequest& request,
      const CancelToken& token, bool* overlay_hit);

  QueryEngineOptions options_;
  mutable Mutex datasets_mu_;
  /// Registration inserts under the lock; Dataset entries are never erased
  /// (re-registration publishes a fresh snapshot into the existing entry),
  /// so pointers handed out by FindDataset stay valid after the lock
  /// drops (see the class comment's contract).
  std::map<std::string, std::unique_ptr<Dataset>> datasets_
      MOVD_GUARDED_BY(datasets_mu_);
  ArtifactCache cache_;
  ServeMetrics metrics_;
  ThreadPool pool_;
  /// Admission-control state: cost units currently queued (submitted, not
  /// yet dequeued) and a relaxed EWMA of per-cost-unit service time in
  /// nanoseconds. Both are heuristic inputs to shedding — racy reads are
  /// fine, monotonic correctness is not required.
  std::atomic<int64_t> queued_cost_{0};
  std::atomic<uint64_t> ewma_unit_ns_{0};
};

}  // namespace movd

#endif  // MOVD_SERVE_QUERY_ENGINE_H_
