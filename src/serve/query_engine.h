#ifndef MOVD_SERVE_QUERY_ENGINE_H_
#define MOVD_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/molq.h"
#include "core/topk.h"
#include "model/query_model.h"
#include "serve/artifact_cache.h"
#include "serve/metrics.h"
#include "util/exec_options.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace movd {

/// Which query shape a request evaluates (DESIGN.md §13). All shapes run
/// against the same cached MOVD artifacts; only the per-request evaluation
/// differs. SSC is a plain-MOLQ-only baseline, so every shape other than
/// kMolq rejects algo=ssc, and kConstrained additionally rejects mbrb (the
/// constraint clipper needs real regions).
enum class ServeQueryKind {
  kMolq,         ///< SOLVE: top-k optimal locations
  kSkyline,      ///< SKYLINE: Pareto-optimal candidate sites
  kDiverse,      ///< DIVERSE: top-k with a minimum pairwise distance
  kConstrained,  ///< CONSTRAIN: optimum inside a polygon, minus exclusions
  kWhatIf,       ///< WHATIF: batched rankings under scaled type weights
};

/// One MOLQ/top-k serving request. `layers` selects a subset of the
/// dataset's object sets (empty = all); overlapping requests that share
/// layers share cached artifacts.
struct ServeRequest {
  std::string id = "-";        ///< client-chosen id, echoed in the response
  std::string dataset;         ///< registered dataset name
  std::vector<int32_t> layers; ///< dataset layer indices; empty = all
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;
  double epsilon = 1e-3;
  size_t topk = 1;
  /// Per-request execution knobs (the same ExecOptions the core pipeline
  /// takes). exec.threads is per-request pipeline parallelism — the answer
  /// is bit-identical for every value. exec.trace (when non-null) traces
  /// this request. exec.cancel and exec.weighted_grid_resolution are
  /// overwritten by the engine (deadline token / engine-wide resolution).
  ExecOptions exec;
  /// Deadline budget in milliseconds, measured from the moment the engine
  /// picks the request up (Solve entry / queue dequeue). <= 0 means none.
  /// A fired deadline yields kDeadlineExceeded with no answer — never a
  /// partial one.
  double deadline_ms = 0.0;
  /// When false the request bypasses the artifact cache entirely (cold
  /// rebuild; used by the load generator to measure the cold path through
  /// the same engine).
  bool use_cache = true;
  /// Query shape; the fields below it apply only to the shapes noted.
  ServeQueryKind kind = ServeQueryKind::kMolq;
  /// kDiverse: minimum pairwise distance between selected sites (>= 0).
  double min_distance = 0.0;
  /// kConstrained: the feasible-set polygons (ValidateConstraint'd before
  /// evaluation; an invalid constraint is an error response, not a crash).
  QueryConstraint constraint;
  /// kWhatIf: one scale vector per sweep entry, each with exactly one
  /// entry per SELECTED layer (in ascending layer order). The engine pads
  /// them to full-dataset vectors with the identity adjustment.
  std::vector<std::vector<double>> sweep;
};

/// One ranked answer: the location, its cost, and the winning object
/// combination (PoiRef::set is the DATASET layer index).
struct ServeAnswer {
  Point location;
  double cost = 0.0;
  std::vector<PoiRef> group;
  /// Per-member criteria vector (skyline/diverse/constrained/what-if
  /// answers); empty for plain MOLQ, and omitted from the JSON then, so
  /// MOLQ response bytes are unchanged by the query-algebra shapes.
  std::vector<double> criteria;
};

/// The engine's reply to one request.
struct ServeResponse {
  ServeStatus status = ServeStatus::kOk;
  std::string id = "-";
  std::string error;                 ///< human-readable detail on non-kOk
  std::vector<ServeAnswer> answers;  ///< ascending by cost; empty on error
  /// kWhatIf only: one ranking per sweep vector, in request order
  /// (`answers` stays empty — a sweep has no single answer list).
  std::vector<std::vector<ServeAnswer>> sweep_answers;
  bool cache_hit = false;  ///< overlay artifact came straight from cache
  double seconds = 0.0;    ///< service time (solve, excluding queue wait)
};

struct QueryEngineOptions {
  /// Artifact-cache budget in bytes (ArtifactBytes accounting). 0 disables
  /// caching — every request rebuilds from scratch.
  size_t cache_bytes = 256ull << 20;
  /// Worker threads draining the request queue (SubmitAsync). 0 = one per
  /// hardware thread. Workers only control cross-request concurrency;
  /// per-request parallelism is ServeRequest::threads, and answers are
  /// bit-identical regardless of either knob.
  int workers = 0;
  /// Engine-wide execution defaults. exec.weighted_grid_resolution is the
  /// grid resolution for weighted-diagram approximation (part of every
  /// cache key, so datasets served at different resolutions never share
  /// artifacts). exec.trace, when non-null, traces every request that does
  /// not bring its own request-level trace (movd_serve --trace). The
  /// per-request knobs (threads/cancel) are ignored here.
  ExecOptions exec;
};

/// A resident MOLQ serving engine (DESIGN.md §8): owns registered datasets,
/// a byte-accounted LRU cache of built artifacts (per-layer basic MOVDs
/// and overlay MOVDs), a request queue batched onto util/thread_pool, and
/// serving metrics. The paper's split between the reusable VD Generator
/// stage and the per-query Optimizer stage (§5.1) is exactly the cache
/// boundary: diagrams and overlays are cached and shared across requests,
/// the Fermat–Weber optimization runs per request.
///
/// Thread-safety: RegisterDataset must finish before serving starts;
/// Solve/SubmitAsync are then safe from any number of threads.
class QueryEngine {
 public:
  explicit QueryEngine(const QueryEngineOptions& options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Registers (or replaces) a dataset: the object sets, their weight
  /// functions, and the search space queries run over.
  void RegisterDataset(const std::string& name, MolqQuery query,
                       const Rect& world) MOVD_EXCLUDES(datasets_mu_);

  /// Dataset lookup for response formatting; null when unknown.
  const MolqQuery* dataset_query(const std::string& name) const;

  /// Solves one request synchronously on the calling thread. The deadline
  /// clock starts now.
  ServeResponse Solve(const ServeRequest& request);

  /// Enqueues one request onto the engine's worker pool; the returned
  /// future resolves when a worker has solved it. The deadline clock
  /// starts when a worker dequeues the request, so queueing delay does not
  /// eat the solve budget (the line protocol reports total time anyway).
  std::future<ServeResponse> SubmitAsync(ServeRequest request);

  const ServeMetrics& metrics() const { return metrics_; }
  ArtifactCache::Stats cache_stats() const { return cache_.stats(); }
  std::string MetricsJson() const { return metrics_.Json(cache_.stats()); }
  void DumpMetrics(std::FILE* out) const {
    metrics_.DumpTable(out, cache_.stats());
  }

  /// Warm start: persists every resident artifact to `dir` (created if
  /// missing) as MOVD files plus a manifest mapping keys to files.
  /// kIoError (with the failing path in the message) on I/O failure.
  Status SaveCache(const std::string& dir) const;

  /// Outcome of a warm-start load.
  struct WarmLoadResult {
    size_t loaded = 0;  ///< artifacts inserted into the cache
    size_t failed = 0;  ///< artifacts skipped (corrupt/truncated/missing)
    Status status;      ///< non-OK when the manifest itself was bad
  };

  /// Loads a SaveCache snapshot back into the cache. Corrupt or truncated
  /// artifact files are skipped and counted in `failed` — a damaged
  /// snapshot degrades to a colder cache, never a crash or a bad artifact
  /// (every file is validated by the movd_file header/record checks).
  WarmLoadResult LoadCache(const std::string& dir);

 private:
  struct Dataset {
    MolqQuery query;
    Rect world;
    std::string weight_tag;  ///< weight-mode component of cache keys
  };

  const Dataset* FindDataset(const std::string& name) const
      MOVD_EXCLUDES(datasets_mu_);
  ServeResponse SolveInternal(const ServeRequest& request,
                              const CancelToken& token);
  /// The overlay artifact for (dataset, layers, mode): cache lookup, else
  /// built from per-layer basic artifacts (themselves cached). Null when
  /// the token fired first.
  std::shared_ptr<const Movd> GetOverlay(const Dataset& ds,
                                         const std::string& ds_name,
                                         const std::vector<int32_t>& layers,
                                         BoundaryMode mode,
                                         const ServeRequest& request,
                                         const CancelToken& token,
                                         bool* overlay_hit);
  /// The RRB overlay clipped to the request's feasible set, cached under a
  /// constraint-hashed key ("cns/...") so repeats of the same constraint
  /// reuse the clip. The unclipped overlay is fetched through GetOverlay
  /// (hence itself cached); `overlay_hit` reports the clipped-artifact
  /// lookup. Null when the deadline fired.
  std::shared_ptr<const Movd> GetClippedOverlay(
      const Dataset& ds, const std::string& ds_name,
      const std::vector<int32_t>& layers, const ServeRequest& request,
      const CancelToken& token, bool* overlay_hit);

  QueryEngineOptions options_;
  mutable Mutex datasets_mu_;
  /// Registration inserts under the lock; Dataset values are never erased
  /// or mutated after registration, so pointers handed out by FindDataset
  /// stay valid after the lock drops (see the class comment's contract).
  std::map<std::string, Dataset> datasets_ MOVD_GUARDED_BY(datasets_mu_);
  ArtifactCache cache_;
  ServeMetrics metrics_;
  ThreadPool pool_;
};

}  // namespace movd

#endif  // MOVD_SERVE_QUERY_ENGINE_H_
