#include "serve/artifact_cache.h"

#include "storage/movd_file.h"
#include "util/check.h"

namespace movd {

size_t ArtifactBytes(const Movd& movd) {
  size_t bytes = 16;  // file header: magic + version + count
  for (const Ovr& ovr : movd.ovrs) bytes += SerializedOvrSize(ovr);
  return bytes;
}

ArtifactCache::ArtifactCache(size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::shared_ptr<const Movd> ArtifactCache::GetOrBuild(
    const std::string& key, const Builder& builder, bool* was_hit,
    CancelToken::Clock::time_point wait_deadline) {
  if (was_hit != nullptr) *was_hit = false;
  // Manual Lock/Unlock (not MutexLock): the single-flight protocol drops
  // the lock around the builder call. Clang's thread-safety analysis
  // checks that every return path below releases mu_ exactly once.
  mu_.Lock();
  for (;;) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++hits_;
      if (was_hit != nullptr) *was_hit = true;
      std::shared_ptr<const Movd> artifact = it->second->artifact;
      mu_.Unlock();
      return artifact;
    }
    const auto fl = inflight_.find(key);
    if (fl == inflight_.end()) break;  // this caller becomes the builder
    // Join the in-flight build. When it completes the loop re-runs: either
    // the artifact is cached now, or the build was abandoned and this
    // caller takes over as the next builder.
    const std::shared_ptr<InFlight> flight = fl->second;
    if (wait_deadline == CancelToken::Clock::time_point::max()) {
      while (!flight->done) flight->cv.Wait(mu_);
    } else {
      while (!flight->done) {
        if (!flight->cv.WaitUntil(mu_, wait_deadline) && !flight->done) {
          ++wait_timeouts_;
          mu_.Unlock();
          return nullptr;
        }
      }
    }
  }
  ++misses_;
  const auto flight = std::make_shared<InFlight>();
  inflight_.emplace(key, flight);
  mu_.Unlock();

  std::shared_ptr<const Movd> artifact = builder();  // outside the lock

  mu_.Lock();
  inflight_.erase(key);
  flight->done = true;
  flight->cv.NotifyAll();
  if (artifact != nullptr) InsertLocked(key, artifact);
  mu_.Unlock();
  return artifact;
}

std::shared_ptr<const Movd> ArtifactCache::Lookup(const std::string& key) {
  MutexLock lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->artifact;
}

void ArtifactCache::Insert(const std::string& key,
                           std::shared_ptr<const Movd> artifact) {
  MOVD_CHECK_MSG(artifact != nullptr,
                 "the artifact cache stores built diagrams, never null");
  MutexLock lock(mu_);
  InsertLocked(key, std::move(artifact));
}

void ArtifactCache::InsertLocked(const std::string& key,
                                 std::shared_ptr<const Movd> artifact) {
  const size_t bytes = ArtifactBytes(*artifact);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (warm-start load over a live entry, or a re-build
    // racing an insert): swap the value and the accounting.
    bytes_ -= it->second->bytes;
    it->second->artifact = std::move(artifact);
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    if (bytes > capacity_) {
      ++oversize_;  // bigger than the whole budget: serve it uncached
      return;
    }
    lru_.push_front(Entry{key, std::move(artifact), bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    ++inserts_;
  }
  // Evict from the cold end until the budget holds. The just-inserted
  // entry sits at the front and is never evicted here (it fits on its
  // own, per the oversize check above).
  while (bytes_ > capacity_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.inserts = inserts_;
  s.oversize = oversize_;
  s.wait_timeouts = wait_timeouts_;
  s.bytes = bytes_;
  s.capacity = capacity_;
  s.entries = lru_.size();
  return s;
}

std::vector<std::pair<std::string, std::shared_ptr<const Movd>>>
ArtifactCache::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const Movd>>> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.emplace_back(e.key, e.artifact);
  return out;
}

}  // namespace movd
