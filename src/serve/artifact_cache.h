#ifndef MOVD_SERVE_ARTIFACT_CACHE_H_
#define MOVD_SERVE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/movd_model.h"
#include "util/cancel.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace movd {

/// Serialized-format byte count of one MOVD artifact (the sum of its OVR
/// record sizes plus the file header) — the unit the cache's byte budget is
/// accounted in. Deterministic and boundary-mode independent, unlike
/// Movd::MemoryBytes, so a cache budget means the same thing for basic
/// diagrams, RRB overlays and MBRB overlays, and matches the bytes a
/// warm-start snapshot occupies on disk.
size_t ArtifactBytes(const Movd& movd);

/// A byte-accounted, single-flight LRU cache of built MOVD artifacts
/// (basic per-layer diagrams and overlay results), keyed by opaque strings
/// (see QueryEngine for the key schema: dataset id + layer set + weight
/// mode + algorithm + grid resolution).
///
/// Concurrency contract:
///  - Lookups, inserts and evictions are serialized by one mutex; the
///    artifacts themselves are immutable and handed out as
///    shared_ptr<const Movd>, so an eviction never invalidates a value a
///    request is still using.
///  - GetOrBuild is single-flight: when several requests miss on the same
///    key concurrently, exactly one runs the builder (outside the lock)
///    while the rest wait on it — a thundering herd of identical queries
///    builds the artifact once. Waiters honour their own deadline; a
///    waiter that times out returns null without disturbing the build.
///  - A builder that returns null (its request's deadline fired mid-build)
///    caches nothing; one of the surviving waiters takes over the build.
class ArtifactCache {
 public:
  /// Monotonic counters + current occupancy, for ServeMetrics dumps.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;        ///< lookups that ran (or joined) a build
    uint64_t evictions = 0;     ///< entries evicted to fit the budget
    uint64_t inserts = 0;       ///< successful inserts
    uint64_t oversize = 0;      ///< artifacts too big to cache at all
    uint64_t wait_timeouts = 0; ///< waiters whose deadline fired first
    size_t bytes = 0;           ///< resident artifact bytes
    size_t capacity = 0;        ///< configured budget
    size_t entries = 0;         ///< resident artifact count

    /// Field-wise sum (capacity included: shard budgets partition the
    /// server budget, so the merged view reports the whole budget).
    /// Commutative/associative — per-shard stats merge into one fleet
    /// view in any grouping.
    void MergeFrom(const Stats& other) {
      hits += other.hits;
      misses += other.misses;
      evictions += other.evictions;
      inserts += other.inserts;
      oversize += other.oversize;
      wait_timeouts += other.wait_timeouts;
      bytes += other.bytes;
      capacity += other.capacity;
      entries += other.entries;
    }
  };

  /// Builds an artifact on a miss. Returns null when the build was
  /// abandoned (deadline fired); nothing is cached then.
  using Builder = std::function<std::shared_ptr<const Movd>()>;

  /// A cache with a `capacity_bytes` budget (accounted via ArtifactBytes).
  /// Capacity 0 disables caching entirely: every artifact is oversize, so
  /// every request takes the cold build path (used to benchmark the cold
  /// pipeline through the same engine).
  explicit ArtifactCache(size_t capacity_bytes);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Returns the cached artifact for `key`, building it via `builder` on a
  /// miss (single-flight across concurrent callers). `was_hit` (optional)
  /// reports whether the artifact came out of the cache without running or
  /// waiting on a build. `wait_deadline` bounds how long this caller may
  /// block on another caller's in-flight build; pass
  /// CancelToken::Clock::time_point::max() for "wait as long as it takes".
  /// Returns null only when the build was abandoned or the wait timed out.
  std::shared_ptr<const Movd> GetOrBuild(
      const std::string& key, const Builder& builder,
      bool* was_hit = nullptr,
      CancelToken::Clock::time_point wait_deadline =
          CancelToken::Clock::time_point::max()) MOVD_EXCLUDES(mu_);

  /// Pure lookup: the artifact, or null on a miss. Does not count a miss
  /// toward stats (used by tests and warm-start bookkeeping).
  std::shared_ptr<const Movd> Lookup(const std::string& key)
      MOVD_EXCLUDES(mu_);

  /// Inserts (or refreshes) an artifact, evicting LRU entries to fit. An
  /// artifact bigger than the whole budget is not cached (counted as
  /// oversize). Used by GetOrBuild and by warm-start loading.
  void Insert(const std::string& key, std::shared_ptr<const Movd> artifact)
      MOVD_EXCLUDES(mu_);

  /// Current counters/occupancy snapshot.
  Stats stats() const MOVD_EXCLUDES(mu_);

  /// All resident artifacts, most- to least-recently used. The snapshot
  /// is what warm-start persistence serializes.
  std::vector<std::pair<std::string, std::shared_ptr<const Movd>>> Snapshot()
      const MOVD_EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Movd> artifact;
    size_t bytes = 0;
  };
  /// One in-flight build; waiters block on `cv` until `done`. `done` is
  /// guarded by the owning cache's mu_ (unannotated: the capability lives
  /// in the outer class, out of this struct's scope).
  struct InFlight {
    CondVar cv;
    bool done = false;
  };

  void InsertLocked(const std::string& key,
                    std::shared_ptr<const Movd> artifact) MOVD_REQUIRES(mu_);

  mutable Mutex mu_;
  /// LRU list, front = most recently used. Iteration for snapshots walks
  /// this list (deterministic recency order), never the unordered index.
  std::list<Entry> lru_ MOVD_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      MOVD_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_
      MOVD_GUARDED_BY(mu_);
  size_t capacity_ = 0;  ///< immutable after construction
  size_t bytes_ MOVD_GUARDED_BY(mu_) = 0;
  uint64_t hits_ MOVD_GUARDED_BY(mu_) = 0;
  uint64_t misses_ MOVD_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ MOVD_GUARDED_BY(mu_) = 0;
  uint64_t inserts_ MOVD_GUARDED_BY(mu_) = 0;
  uint64_t oversize_ MOVD_GUARDED_BY(mu_) = 0;
  uint64_t wait_timeouts_ MOVD_GUARDED_BY(mu_) = 0;
};

}  // namespace movd

#endif  // MOVD_SERVE_ARTIFACT_CACHE_H_
