#include "serve/query_engine.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>

#include "audit/audit_query.h"
#include "query/constrained.h"
#include "query/diversify.h"
#include "query/skyline.h"
#include "query/whatif.h"
#include "storage/movd_file.h"
#include "trace/trace.h"
#include "util/stopwatch.h"

namespace movd {
namespace {

/// Weight-mode cache-key component: one char per weight function
/// ('m'ultiplicative / 'a'dditive), type function first.
std::string WeightTag(const MolqQuery& query) {
  const auto tag = [](WeightFunctionKind k) {
    return k == WeightFunctionKind::kMultiplicative ? 'm' : 'a';
  };
  std::string out(1, tag(query.type_function));
  for (size_t i = 0; i < query.sets.size(); ++i) {
    out += tag(query.ObjectFunction(i));
  }
  return out;
}

std::string LayersTag(const std::vector<int32_t>& layers) {
  std::string out;
  for (size_t i = 0; i < layers.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(layers[i]);
  }
  return out;
}

ServeResponse Invalid(const std::string& id, std::string why) {
  ServeResponse resp;
  resp.status = ServeStatus::kInvalidRequest;
  resp.id = id;
  resp.error = std::move(why);
  return resp;
}

/// Cache-key component every artifact key shares: grid resolution, weighted
/// method, and the dataset's weight-function tag (see GetOverlay's comment
/// on why the method is part of the key).
std::string ArtifactKeySuffix(int resolution, WeightedMethod method,
                              const std::string& weight_tag) {
  return "/r" + std::to_string(resolution) +
         (method == WeightedMethod::kDenseGrid ? "/mdense" : "/madapt") +
         "/w" + weight_tag;
}

/// FNV-1a over the constraint's vertex coordinates (double bit patterns,
/// with ring separators), hex-encoded: two requests share a clipped-overlay
/// artifact iff their constraint geometry is bit-identical.
std::string ConstraintHash(const QueryConstraint& constraint) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_ring = [&](const Polygon& poly) {
    mix(poly.vertices().size());
    for (const Point& p : poly.vertices()) {
      uint64_t bits = 0;
      std::memcpy(&bits, &p.x, sizeof(bits));
      mix(bits);
      std::memcpy(&bits, &p.y, sizeof(bits));
      mix(bits);
    }
  };
  mix_ring(constraint.boundary);
  for (const Polygon& exclusion : constraint.exclusions) mix_ring(exclusion);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

ServeAnswer AnswerFromCandidate(const SiteCandidate& c) {
  ServeAnswer answer;
  answer.location = c.location;
  answer.cost = c.cost;
  answer.group = c.group;
  answer.criteria = c.criteria;
  return answer;
}

ServeResponse AuditFailure(const std::string& id, const char* shape,
                           const AuditReport& report) {
  ServeResponse resp;
  resp.status = ServeStatus::kInternalError;
  resp.id = id;
  resp.error =
      std::string(shape) + " audit failed: " + report.Summary();
  return resp;
}

}  // namespace

QueryEngine::QueryEngine(const QueryEngineOptions& options)
    : options_(options),
      cache_(options.cache_bytes),
      pool_(ResolveThreads(options.workers)) {}

QueryEngine::~QueryEngine() { pool_.Wait(); }

void QueryEngine::RegisterDataset(const std::string& name, MolqQuery query,
                                  const Rect& world) {
  Dataset ds;
  ds.weight_tag = WeightTag(query);
  ds.query = std::move(query);
  ds.world = world;
  MutexLock lock(datasets_mu_);
  datasets_[name] = std::move(ds);
}

const MolqQuery* QueryEngine::dataset_query(const std::string& name) const {
  const Dataset* ds = FindDataset(name);
  return ds == nullptr ? nullptr : &ds->query;
}

const QueryEngine::Dataset* QueryEngine::FindDataset(
    const std::string& name) const {
  MutexLock lock(datasets_mu_);
  const auto it = datasets_.find(name);
  // Datasets are registered before serving starts and never erased, so the
  // pointer stays valid after the lock drops.
  return it == datasets_.end() ? nullptr : &it->second;
}

ServeResponse QueryEngine::Solve(const ServeRequest& request) {
  Stopwatch watch;
  // The deadline budget starts now — on the thread actually serving the
  // request (SubmitAsync workers call Solve on dequeue).
  const CancelToken token =
      request.deadline_ms > 0.0
          ? CancelToken::After(std::chrono::duration_cast<
                               std::chrono::nanoseconds>(
                std::chrono::duration<double, std::milli>(
                    request.deadline_ms)))
          : CancelToken();
  ServeResponse resp = SolveInternal(request, token);
  // Belt and braces for the "never a partial answer" contract: a non-OK
  // response carries no answers, whatever path produced it.
  if (resp.status != ServeStatus::kOk) {
    resp.answers.clear();
    resp.sweep_answers.clear();
  }
  resp.seconds = watch.ElapsedSeconds();
  metrics_.RecordRequest(resp.status, resp.seconds, resp.cache_hit);
  return resp;
}

std::future<ServeResponse> QueryEngine::SubmitAsync(ServeRequest request) {
  auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
      [this, request = std::move(request)] { return Solve(request); });
  std::future<ServeResponse> future = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return future;
}

ServeResponse QueryEngine::SolveInternal(const ServeRequest& request,
                                         const CancelToken& token) {
  const Dataset* ds = FindDataset(request.dataset);
  if (ds == nullptr) {
    return Invalid(request.id, "unknown dataset '" + request.dataset + "'");
  }
  if (request.topk == 0) return Invalid(request.id, "k must be >= 1");
  if (!(request.epsilon > 0.0)) {
    return Invalid(request.id, "epsilon must be > 0");
  }
  const auto n = static_cast<int32_t>(ds->query.sets.size());
  // Normalize the layer selection: sorted, deduplicated, in range. Requests
  // naming the same layers in any order share one cache key.
  std::set<int32_t> layer_set;
  for (const int32_t layer : request.layers) {
    if (layer < 0 || layer >= n) {
      return Invalid(request.id, "layer " + std::to_string(layer) +
                                     " out of range [0, " +
                                     std::to_string(n) + ")");
    }
    layer_set.insert(layer);
  }
  if (request.layers.empty()) {
    for (int32_t layer = 0; layer < n; ++layer) layer_set.insert(layer);
  }
  if (layer_set.empty()) return Invalid(request.id, "no layers selected");
  const std::vector<int32_t> layers(layer_set.begin(), layer_set.end());

  ServeResponse resp;
  resp.id = request.id;

  MolqOptions molq;
  molq.algorithm = request.algorithm;
  molq.epsilon = request.epsilon;
  molq.exec = request.exec;
  // The engine owns resolution (cache-key component) and cancellation
  // (deadline token); a request cannot override either.
  molq.exec.weighted_grid_resolution = options_.exec.weighted_grid_resolution;
  molq.exec.cancel = &token;
  // Request-level trace wins; otherwise the engine-wide sink (if any).
  if (molq.exec.trace == nullptr) molq.exec.trace = options_.exec.trace;
  // Either side may opt into the re-check validators.
  molq.exec.audit = molq.exec.audit || options_.exec.audit;
  TraceContextScope trace_scope(molq.exec.trace);
  TRACE_SPAN("serve_request");

  // Engine-level shape restrictions (the protocol parser enforces the same
  // rules, but the engine is also called directly by molq_cli and tests).
  if (request.kind != ServeQueryKind::kMolq &&
      request.algorithm == MolqAlgorithm::kSsc) {
    return Invalid(request.id,
                   "query-algebra shapes need a MOVD artifact (rrb|mbrb), "
                   "not ssc");
  }
  if (request.kind == ServeQueryKind::kConstrained &&
      request.algorithm == MolqAlgorithm::kMbrb) {
    return Invalid(request.id,
                   "CONSTRAIN is RRB-only (the clipper needs real regions)");
  }

  if (request.algorithm == MolqAlgorithm::kSsc) {
    if (request.topk != 1) {
      return Invalid(request.id, "SSC serves k=1 only; use rrb/mbrb");
    }
    // SSC enumerates raw combinations — no diagram artifacts to cache, so
    // it always runs cold over a sub-query of the selected layers.
    MolqQuery sub;
    sub.type_function = ds->query.type_function;
    for (const int32_t layer : layers) {
      sub.sets.push_back(ds->query.sets[layer]);
      sub.object_functions.push_back(
          ds->query.ObjectFunction(static_cast<size_t>(layer)));
    }
    const MolqResult r = SolveMolq(sub, ds->world, molq);
    if (r.status == MolqStatus::kCancelled) {
      resp.status = ServeStatus::kDeadlineExceeded;
      resp.error = "deadline exceeded during SSC scan";
      return resp;
    }
    ServeAnswer answer;
    answer.location = r.location;
    answer.cost = r.cost;
    answer.group = r.group;
    // Map sub-query set indices back to dataset layer indices.
    for (PoiRef& poi : answer.group) {
      poi.set = layers[static_cast<size_t>(poi.set)];
    }
    resp.answers.push_back(std::move(answer));
    return resp;
  }

  // Shape-specific request validation, before any artifact work.
  if (request.kind == ServeQueryKind::kConstrained) {
    const Status valid = ValidateConstraint(request.constraint);
    if (!valid.ok()) return Invalid(request.id, valid.message());
  }
  std::vector<WhatIfVector> vectors;
  if (request.kind == ServeQueryKind::kWhatIf) {
    if (request.sweep.empty()) {
      return Invalid(request.id, "what-if needs at least one sweep vector");
    }
    // Pad each per-layer sweep vector to a full-dataset WhatIfVector with
    // the identity adjustment on unselected sets, so evaluation runs on
    // the full query (where PoiRef::set is the dataset layer index).
    const double identity =
        ds->query.type_function == WeightFunctionKind::kMultiplicative ? 1.0
                                                                       : 0.0;
    vectors.reserve(request.sweep.size());
    for (const std::vector<double>& scales : request.sweep) {
      if (scales.size() != layers.size()) {
        return Invalid(request.id,
                       "sweep vector has " + std::to_string(scales.size()) +
                           " entries for " + std::to_string(layers.size()) +
                           " selected layers");
      }
      WhatIfVector v;
      v.scale.assign(ds->query.sets.size(), identity);
      for (size_t j = 0; j < layers.size(); ++j) {
        v.scale[static_cast<size_t>(layers[j])] = scales[j];
      }
      const Status valid = ValidateWhatIfVector(ds->query, v);
      if (!valid.ok()) return Invalid(request.id, valid.message());
      vectors.push_back(std::move(v));
    }
  }

  const BoundaryMode mode = request.algorithm == MolqAlgorithm::kMbrb
                                ? BoundaryMode::kMbr
                                : BoundaryMode::kRealRegion;
  bool overlay_hit = false;
  Stopwatch phase_watch;
  std::shared_ptr<const Movd> overlay;
  {
    TRACE_SPAN("serve_overlay");
    overlay = request.kind == ServeQueryKind::kConstrained
                  ? GetClippedOverlay(*ds, request.dataset, layers, request,
                                      token, &overlay_hit)
                  : GetOverlay(*ds, request.dataset, layers, mode, request,
                               token, &overlay_hit);
  }
  const double overlay_seconds = phase_watch.ElapsedSeconds();
  resp.cache_hit = overlay_hit;
  if (overlay == nullptr) {
    resp.status = ServeStatus::kDeadlineExceeded;
    resp.error = "deadline exceeded building the MOVD overlay";
    return resp;
  }
  // A clipped overlay may legitimately be empty — the constraint excluded
  // every candidate region — and answers as "infeasible" below. Every
  // other shape requires a non-empty artifact.
  if (overlay->ovrs.empty() &&
      request.kind != ServeQueryKind::kConstrained) {
    resp.status = ServeStatus::kInternalError;
    resp.error = "overlay produced an empty MOVD";
    return resp;
  }

  CandidateOptions candidate_options;
  candidate_options.epsilon = request.epsilon;
  candidate_options.exec = molq.exec;

  phase_watch = Stopwatch();
  {
    TRACE_SPAN("serve_optimize");
    switch (request.kind) {
      case ServeQueryKind::kMolq: {
        const MolqResult top =
            TopKFromMovd(ds->query, *overlay, request.topk, molq);
        if (top.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during optimization";
          return resp;
        }
        resp.answers.reserve(top.ranked.size());
        for (const RankedLocation& r : top.ranked) {
          ServeAnswer answer;
          answer.location = r.location;
          answer.cost = r.cost;
          answer.group = r.group;
          resp.answers.push_back(std::move(answer));
        }
        break;
      }
      case ServeQueryKind::kSkyline: {
        const SkylineResult r =
            SkylineFromMovd(ds->query, *overlay, candidate_options);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during skyline evaluation";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report = AuditSkyline(ds->query, r);
          if (!report.ok()) return AuditFailure(request.id, "skyline", report);
        }
        resp.answers.reserve(r.skyline.size());
        for (const SiteCandidate& c : r.skyline) {
          resp.answers.push_back(AnswerFromCandidate(c));
        }
        break;
      }
      case ServeQueryKind::kDiverse: {
        const DiverseTopKResult r =
            DiverseTopKFromMovd(ds->query, *overlay, request.topk,
                                request.min_distance, candidate_options);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during diversified top-k";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report = AuditDiverseTopK(
              ds->query, request.topk, request.min_distance, r);
          if (!report.ok()) {
            return AuditFailure(request.id, "diversified top-k", report);
          }
        }
        resp.answers.reserve(r.selected.size());
        for (const SiteCandidate& c : r.selected) {
          resp.answers.push_back(AnswerFromCandidate(c));
        }
        break;
      }
      case ServeQueryKind::kConstrained: {
        const ConstrainedMolqResult r =
            ConstrainedFromClippedMovd(ds->query, *overlay,
                                       candidate_options);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during constrained optimization";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report = AuditConstrainedMolq(
              ds->query, request.constraint, ds->world, r);
          if (!report.ok()) {
            return AuditFailure(request.id, "constrained MOLQ", report);
          }
        }
        // Infeasible constraints answer OK with zero answers: the request
        // was well-formed; the feasible set just contains no candidate.
        if (r.feasible) resp.answers.push_back(AnswerFromCandidate(r.best));
        break;
      }
      case ServeQueryKind::kWhatIf: {
        WhatIfOptions what_if;
        what_if.epsilon = request.epsilon;
        what_if.topk = request.topk;
        what_if.exec = molq.exec;
        const WhatIfSweepResult r =
            WhatIfSweepFromMovd(ds->query, *overlay, vectors, what_if);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during what-if sweep";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report =
              AuditWhatIfSweep(ds->query, vectors, request.topk, r);
          if (!report.ok()) {
            return AuditFailure(request.id, "what-if sweep", report);
          }
        }
        resp.sweep_answers.reserve(r.per_vector.size());
        for (const std::vector<SiteCandidate>& ranking : r.per_vector) {
          std::vector<ServeAnswer> answers;
          answers.reserve(ranking.size());
          for (const SiteCandidate& c : ranking) {
            answers.push_back(AnswerFromCandidate(c));
          }
          resp.sweep_answers.push_back(std::move(answers));
        }
        break;
      }
    }
  }
  const double optimize_seconds = phase_watch.ElapsedSeconds();
  metrics_.RecordPhases(overlay_seconds, optimize_seconds);
  return resp;
}

std::shared_ptr<const Movd> QueryEngine::GetOverlay(
    const Dataset& ds, const std::string& ds_name,
    const std::vector<int32_t>& layers, BoundaryMode mode,
    const ServeRequest& request, const CancelToken& token,
    bool* overlay_hit) {
  *overlay_hit = false;
  // The weighted method changes the cover geometry (adaptive and dense
  // covers differ while answering identically), so cached diagrams built
  // under one method must never serve a configuration using the other.
  const std::string suffix =
      ArtifactKeySuffix(options_.exec.weighted_grid_resolution,
                        options_.exec.weighted_method, ds.weight_tag);

  // One basic (single-layer) diagram; cached under a mode-independent key,
  // since basics carry both real regions and MBRs. The basic is built from
  // the FULL dataset query, so its PoiRef::set is the dataset layer index
  // and every layer-subset overlay can share it.
  const auto get_basic =
      [&](int32_t layer) -> std::shared_ptr<const Movd> {
    const auto build = [&] {
      return std::make_shared<const Movd>(BuildBasicMovd(
          ds.query, layer, ds.world, options_.exec.weighted_grid_resolution,
          request.exec.threads, /*audit=*/nullptr,
          options_.exec.weighted_method));
    };
    if (!request.use_cache) return build();
    const std::string key =
        "basic/" + ds_name + "/L" + std::to_string(layer) + suffix;
    return cache_.GetOrBuild(key, build, nullptr, token.deadline());
  };

  // The overlay fold mirrors SolveMolq's OverlapAll exactly (identity start,
  // left-to-right), so a served answer is bit-identical to a cold
  // SolveMolq over the same layer sub-query.
  const auto build_overlay = [&]() -> std::shared_ptr<const Movd> {
    Movd acc = IdentityMovd(ds.world);
    for (const int32_t layer : layers) {
      if (token.Expired()) return nullptr;
      const std::shared_ptr<const Movd> basic = get_basic(layer);
      if (basic == nullptr) return nullptr;  // wait on a peer build timed out
      Movd next = Overlap(acc, *basic, mode, nullptr, &token);
      // A fired token means `next` may be truncated — discard it.
      if (token.Expired()) return nullptr;
      acc = std::move(next);
    }
    return std::make_shared<const Movd>(std::move(acc));
  };

  if (!request.use_cache) return build_overlay();
  const std::string key =
      "ovl/" + ds_name + "/L" + LayersTag(layers) +
      (mode == BoundaryMode::kMbr ? "/mbrb" : "/rrb") + suffix;
  return cache_.GetOrBuild(key, build_overlay, overlay_hit, token.deadline());
}

std::shared_ptr<const Movd> QueryEngine::GetClippedOverlay(
    const Dataset& ds, const std::string& ds_name,
    const std::vector<int32_t>& layers, const ServeRequest& request,
    const CancelToken& token, bool* overlay_hit) {
  *overlay_hit = false;
  const auto build = [&]() -> std::shared_ptr<const Movd> {
    // The unclipped RRB overlay goes through the ordinary artifact path,
    // so constrained requests warm the same cache entries plain MOLQ uses
    // (and vice versa) — only the clip is constraint-specific.
    bool base_hit = false;
    const std::shared_ptr<const Movd> overlay =
        GetOverlay(ds, ds_name, layers, BoundaryMode::kRealRegion, request,
                   token, &base_hit);
    if (overlay == nullptr) return nullptr;
    const Region feasible = BuildFeasibleRegion(request.constraint, ds.world);
    if (token.Expired()) return nullptr;
    return std::make_shared<const Movd>(
        ClipMovdToFeasible(*overlay, feasible));
  };
  if (!request.use_cache) return build();
  const std::string key =
      "cns/" + ds_name + "/L" + LayersTag(layers) + "/rrb" +
      ArtifactKeySuffix(options_.exec.weighted_grid_resolution,
                        options_.exec.weighted_method, ds.weight_tag) +
      "/c" + ConstraintHash(request.constraint);
  return cache_.GetOrBuild(key, build, overlay_hit, token.deadline());
}

Status QueryEngine::SaveCache(const std::string& dir) const {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
  }
  const auto snapshot = cache_.Snapshot();
  // Manifest lines are written least- to most-recently used, so replaying
  // them in order through Insert() reconstructs the recency order too.
  std::ofstream manifest(dir + "/manifest.txt", std::ios::trunc);
  if (!manifest) {
    return Status::IoError("cannot write " + dir + "/manifest.txt");
  }
  for (size_t i = snapshot.size(); i-- > 0;) {
    const std::string file = "art_" + std::to_string(i) + ".movd";
    const Status saved = SaveMovd(dir + "/" + file, *snapshot[i].second);
    if (!saved.ok()) return saved;
    manifest << file << '\t' << snapshot[i].first << '\n';
  }
  manifest.flush();
  if (!manifest) {
    return Status::IoError("cannot write " + dir + "/manifest.txt");
  }
  return Status::Ok();
}

QueryEngine::WarmLoadResult QueryEngine::LoadCache(const std::string& dir) {
  WarmLoadResult result;
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest) {
    result.status = Status::IoError("cannot read " + dir + "/manifest.txt");
    return result;
  }
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      result.status = Status::DataLoss("malformed manifest line: " + line);
      return result;
    }
    const std::string file = line.substr(0, tab);
    const std::string key = line.substr(tab + 1);
    // LoadMovd validates the header and every record; a truncated or
    // corrupted artifact is skipped (colder cache), never inserted.
    StatusOr<Movd> movd = LoadMovd(dir + "/" + file);
    if (!movd.has_value()) {
      ++result.failed;
      continue;
    }
    cache_.Insert(key, std::make_shared<const Movd>(std::move(*movd)));
    ++result.loaded;
  }
  return result;
}

}  // namespace movd
