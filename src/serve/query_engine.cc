#include "serve/query_engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <utility>

#include "audit/audit_query.h"
#include "audit/audit_update.h"
#include "core/overlap.h"
#include "query/constrained.h"
#include "query/diversify.h"
#include "query/skyline.h"
#include "query/whatif.h"
#include "storage/movd_file.h"
#include "trace/trace.h"
#include "util/stopwatch.h"

namespace movd {
namespace {

/// Weight-mode cache-key component: one char per weight function
/// ('m'ultiplicative / 'a'dditive), type function first.
std::string WeightTag(const MolqQuery& query) {
  const auto tag = [](WeightFunctionKind k) {
    return k == WeightFunctionKind::kMultiplicative ? 'm' : 'a';
  };
  std::string out(1, tag(query.type_function));
  for (size_t i = 0; i < query.sets.size(); ++i) {
    out += tag(query.ObjectFunction(i));
  }
  return out;
}

std::string LayersTag(const std::vector<int32_t>& layers) {
  std::string out;
  for (size_t i = 0; i < layers.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(layers[i]);
  }
  return out;
}

ServeResponse Invalid(const std::string& id, std::string why) {
  ServeResponse resp;
  resp.status = ServeStatus::kInvalidRequest;
  resp.id = id;
  resp.error = std::move(why);
  return resp;
}

ServeResponse NotFound(const std::string& id, std::string why) {
  ServeResponse resp;
  resp.status = ServeStatus::kNotFound;
  resp.id = id;
  resp.error = std::move(why);
  return resp;
}

/// Exact byte equality of two points (the DELETE-target match): the
/// protocol round-trips coordinates through decimal strings, so "the
/// object at x,y" means the object whose stored doubles are bit-identical
/// to the parsed ones — not merely numerically equal.
bool PointSameBits(const Point& a, const Point& b) {
  uint64_t ax = 0;
  uint64_t ay = 0;
  uint64_t bx = 0;
  uint64_t by = 0;
  std::memcpy(&ax, &a.x, sizeof(ax));
  std::memcpy(&ay, &a.y, sizeof(ay));
  std::memcpy(&bx, &b.x, sizeof(bx));
  std::memcpy(&by, &b.y, sizeof(by));
  return ax == bx && ay == by;
}

/// Cache-key component every artifact key shares: grid resolution, weighted
/// method, and the dataset's weight-function tag (see GetOverlay's comment
/// on why the method is part of the key).
std::string ArtifactKeySuffix(int resolution, WeightedMethod method,
                              const std::string& weight_tag) {
  return "/r" + std::to_string(resolution) +
         (method == WeightedMethod::kDenseGrid ? "/mdense" : "/madapt") +
         "/w" + weight_tag;
}

/// Parses the "<i>,<j>,..." layer segment of an artifact key starting at
/// `pos` and ending at the next '/' (whose position lands in `rest_pos`).
bool ParseKeyLayers(const std::string& key, size_t pos,
                    std::vector<int32_t>* layers, size_t* rest_pos) {
  layers->clear();
  const size_t end = key.find('/', pos);
  if (end == std::string::npos || end == pos) return false;
  int32_t cur = 0;
  bool any = false;
  for (size_t i = pos; i < end; ++i) {
    const char c = key[i];
    if (c == ',') {
      if (!any) return false;
      layers->push_back(cur);
      cur = 0;
      any = false;
    } else if (c >= '0' && c <= '9') {
      cur = cur * 10 + (c - '0');
      any = true;
    } else {
      return false;
    }
  }
  if (!any) return false;
  layers->push_back(cur);
  *rest_pos = end;
  return true;
}

/// FNV-1a over the constraint's vertex coordinates (double bit patterns,
/// with ring separators), hex-encoded: two requests share a clipped-overlay
/// artifact iff their constraint geometry is bit-identical.
std::string ConstraintHash(const QueryConstraint& constraint) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  const auto mix_ring = [&](const Polygon& poly) {
    mix(poly.vertices().size());
    for (const Point& p : poly.vertices()) {
      uint64_t bits = 0;
      std::memcpy(&bits, &p.x, sizeof(bits));
      mix(bits);
      std::memcpy(&bits, &p.y, sizeof(bits));
      mix(bits);
    }
  };
  mix_ring(constraint.boundary);
  for (const Polygon& exclusion : constraint.exclusions) mix_ring(exclusion);
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

ServeAnswer AnswerFromCandidate(const SiteCandidate& c) {
  ServeAnswer answer;
  answer.location = c.location;
  answer.cost = c.cost;
  answer.group = c.group;
  answer.criteria = c.criteria;
  return answer;
}

ServeResponse AuditFailure(const std::string& id, const char* shape,
                           const AuditReport& report) {
  ServeResponse resp;
  resp.status = ServeStatus::kInternalError;
  resp.id = id;
  resp.error =
      std::string(shape) + " audit failed: " + report.Summary();
  return resp;
}

}  // namespace

QueryEngine::QueryEngine(const QueryEngineOptions& options)
    : options_(options),
      cache_(options.cache_bytes),
      pool_(ResolveThreads(options.workers)) {}

QueryEngine::~QueryEngine() { pool_.Wait(); }

void QueryEngine::RegisterDataset(const std::string& name, MolqQuery query,
                                  const Rect& world) {
  auto snap = std::make_shared<DatasetSnapshot>();
  snap->weight_tag = WeightTag(query);
  snap->query = std::move(query);
  snap->world = world;
  Dataset* ds = nullptr;
  {
    MutexLock lock(datasets_mu_);
    std::unique_ptr<Dataset>& slot = datasets_[name];
    if (slot == nullptr) slot = std::make_unique<Dataset>();
    ds = slot.get();
  }
  // A replacement is a mutation of sorts: take the locks in the mutation
  // order (mutate_mu before mu) and discard the incremental mirrors.
  MutexLock mutate_lock(ds->mutate_mu);
  ds->layer_state.clear();
  MutexLock lock(ds->mu);
  // Versions stay monotonic across re-registration so cached artifacts of
  // the replaced dataset can never collide with the fresh one's keys.
  snap->version = ds->snap == nullptr ? 1 : ds->snap->version + 1;
  ds->snap = std::move(snap);
}

std::shared_ptr<const DatasetSnapshot> QueryEngine::dataset_snapshot(
    const std::string& name) const {
  Dataset* ds = FindDataset(name);
  if (ds == nullptr) return nullptr;
  MutexLock lock(ds->mu);
  return ds->snap;
}

QueryEngine::Dataset* QueryEngine::FindDataset(const std::string& name) const {
  MutexLock lock(datasets_mu_);
  const auto it = datasets_.find(name);
  // Dataset nodes are never erased (re-registration reuses them), so the
  // pointer stays valid after the lock drops.
  return it == datasets_.end() ? nullptr : it->second.get();
}

EngineResponse QueryEngine::Handle(const EngineRequest& request) {
  return Solve(FlattenRequest(request));
}

std::future<EngineResponse> QueryEngine::HandleAsync(EngineRequest request) {
  return SubmitAsync(FlattenRequest(request));
}

ServeResponse QueryEngine::Solve(const ServeRequest& request) {
  Stopwatch watch;
  ServeResponse resp;
  if (request.mutate) {
    resp = MutateInternal(request);
  } else {
    // The deadline budget starts now — on the thread actually serving the
    // request (SubmitAsync workers call Solve on dequeue).
    const CancelToken token =
        request.deadline_ms > 0.0
            ? CancelToken::After(std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(
                  std::chrono::duration<double, std::milli>(
                      request.deadline_ms)))
            : CancelToken();
    resp = SolveInternal(request, token);
    // Belt and braces for the "never a partial answer" contract: a non-OK
    // response carries no answers, whatever path produced it.
    if (resp.status != ServeStatus::kOk) {
      resp.answers.clear();
      resp.sweep_answers.clear();
    }
  }
  resp.seconds = watch.ElapsedSeconds();
  metrics_.RecordRequest(resp.status, resp.seconds, resp.cache_hit);
  if (resp.status == ServeStatus::kOk && resp.is_mutation) {
    metrics_.RecordMutation();
  }
  return resp;
}

std::future<ServeResponse> QueryEngine::SubmitAsync(ServeRequest request) {
  const int64_t cost = request.cost_units < 1 ? 1 : request.cost_units;
  // Early shedding, on the submitting thread: reject before the request
  // ever occupies queue space when the queue is already past its cost
  // budget or the service-time EWMA predicts a hopeless wait.
  const int64_t queued = queued_cost_.load(std::memory_order_relaxed);
  std::string shed_why;
  if (options_.admission_cost_limit > 0 &&
      queued + cost > static_cast<int64_t>(options_.admission_cost_limit)) {
    shed_why = "admission queue full (" + std::to_string(queued) +
               " cost units queued, limit " +
               std::to_string(options_.admission_cost_limit) + ")";
  } else if (options_.admission_delay_budget_ms > 0.0) {
    const double unit_ms =
        static_cast<double>(ewma_unit_ns_.load(std::memory_order_relaxed)) *
        1e-6;
    const double predicted_ms = static_cast<double>(queued) * unit_ms;
    if (predicted_ms > options_.admission_delay_budget_ms) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "predicted queue delay %.1fms exceeds budget %.1fms",
                    predicted_ms, options_.admission_delay_budget_ms);
      shed_why = buf;
    }
  }
  if (!shed_why.empty()) {
    ServeResponse resp;
    resp.status = ServeStatus::kOverloaded;
    resp.id = request.id;
    resp.error = std::move(shed_why);
    metrics_.RecordRequest(resp.status, 0.0, false);
    std::promise<ServeResponse> done;
    done.set_value(std::move(resp));
    return done.get_future();
  }
  queued_cost_.fetch_add(cost, std::memory_order_relaxed);
  auto task = std::make_shared<std::packaged_task<ServeResponse()>>(
      [this, request = std::move(request), cost, queue_watch = Stopwatch()] {
        queued_cost_.fetch_sub(cost, std::memory_order_relaxed);
        const double waited_ms = queue_watch.ElapsedMillis();
        // Late shedding, at dequeue: the prediction above is heuristic, so
        // a request whose ACTUAL wait blew the budget is still rejected —
        // serving an answer the client stopped waiting for helps nobody.
        if (options_.admission_delay_budget_ms > 0.0 &&
            waited_ms > options_.admission_delay_budget_ms) {
          ServeResponse resp;
          resp.status = ServeStatus::kOverloaded;
          resp.id = request.id;
          char buf[96];
          std::snprintf(buf, sizeof(buf),
                        "queue delay %.1fms exceeded budget %.1fms",
                        waited_ms, options_.admission_delay_budget_ms);
          resp.error = buf;
          metrics_.RecordRequest(resp.status, waited_ms * 1e-3, false);
          return resp;
        }
        ServeResponse resp = Solve(request);
        // Fold this request's per-cost-unit service time into the EWMA the
        // early-shed predictor reads (relaxed: a heuristic, not a ledger).
        const auto cur = static_cast<uint64_t>(resp.seconds * 1e9 /
                                               static_cast<double>(cost));
        const uint64_t old = ewma_unit_ns_.load(std::memory_order_relaxed);
        ewma_unit_ns_.store(old == 0 ? cur : (7 * old + cur) / 8,
                            std::memory_order_relaxed);
        return resp;
      });
  std::future<ServeResponse> future = task->get_future();
  pool_.Submit([task] { (*task)(); });
  return future;
}

ServeResponse QueryEngine::MutateInternal(const ServeRequest& request) {
  Dataset* node = FindDataset(request.dataset);
  if (node == nullptr) {
    return NotFound(request.id, "unknown dataset '" + request.dataset + "'");
  }
  const SiteMutation& mut = request.mutation;
  if (!std::isfinite(mut.location.x) || !std::isfinite(mut.location.y)) {
    return Invalid(request.id, "mutation location must be finite");
  }
  // Serialize mutations on this dataset; queries keep reading the published
  // snapshot meanwhile. Lock order: mutate_mu before mu.
  MutexLock mutate_lock(node->mutate_mu);
  std::shared_ptr<const DatasetSnapshot> old_snap;
  {
    MutexLock lock(node->mu);
    old_snap = node->snap;
  }
  const auto n = static_cast<int32_t>(old_snap->query.sets.size());
  if (mut.layer < 0 || mut.layer >= n) {
    return Invalid(request.id, "layer " + std::to_string(mut.layer) +
                                   " out of range [0, " + std::to_string(n) +
                                   ")");
  }
  if (mut.kind == MutationKind::kInsert &&
      !old_snap->world.Contains(mut.location)) {
    return Invalid(request.id, "insert location outside the search space");
  }

  auto next = std::make_shared<DatasetSnapshot>(*old_snap);
  next->version = old_snap->version + 1;
  ObjectSet& set = next->query.sets[static_cast<size_t>(mut.layer)];
  int32_t deleted_object = -1;
  if (mut.kind == MutationKind::kInsert) {
    SpatialObject obj;
    obj.location = mut.location;
    set.objects.push_back(obj);
  } else {
    for (size_t i = 0; i < set.objects.size(); ++i) {
      if (PointSameBits(set.objects[i].location, mut.location)) {
        deleted_object = static_cast<int32_t>(i);
        break;
      }
    }
    if (deleted_object < 0) {
      return NotFound(request.id, "no object at the given location in layer " +
                                      std::to_string(mut.layer));
    }
    if (set.objects.size() == 1) {
      return Invalid(request.id, "cannot delete the last object of layer " +
                                     std::to_string(mut.layer));
    }
    set.objects.erase(set.objects.begin() + deleted_object);
  }

  ServeResponse resp;
  resp.id = request.id;
  resp.is_mutation = true;
  PatchArtifacts(request.dataset, *old_snap, *next, mut, deleted_object,
                 &node->layer_state[mut.layer], &resp.mutation);
  {
    MutexLock lock(node->mu);
    node->snap = next;
  }
  resp.snapshot = next;
  resp.version = next->version;
  return resp;
}

void QueryEngine::PatchArtifacts(
    const std::string& ds_name, const DatasetSnapshot& old_snap,
    const DatasetSnapshot& next_snap, const SiteMutation& mut,
    int32_t deleted_object, std::unique_ptr<OrdinaryLayerState>* state_slot,
    MutationStats* stats) {
  const int32_t layer = mut.layer;
  const int resolution = options_.exec.weighted_grid_resolution;
  const WeightedMethod method = options_.exec.weighted_method;
  const std::string suffix =
      ArtifactKeySuffix(resolution, method, old_snap.weight_tag);

  // Step 1: the mutated layer's new basic. Ordinary layers patch through
  // the incremental mirror; weighted layers (and an ordinary-ness flip in
  // either direction) take the full treatment — drop everything the layer
  // touches and let the next query rebuild.
  std::shared_ptr<const Movd> old_basic;
  std::shared_ptr<const Movd> new_basic;
  const bool ordinary = OrdinaryDiagramSuffices(old_snap.query, layer) &&
                        OrdinaryDiagramSuffices(next_snap.query, layer);
  if (ordinary) {
    if (*state_slot == nullptr) {
      *state_slot = std::make_unique<OrdinaryLayerState>(old_snap.query,
                                                         layer,
                                                         old_snap.world);
    }
    // Materialize the pre-mutation basic BEFORE applying: the overlay
    // patcher diffs old vs new cells, and the cache may not hold the old
    // basic (it could have been evicted).
    old_basic = std::make_shared<const Movd>((*state_slot)->Materialize());
    LayerPatchStats layer_stats;
    if ((*state_slot)->Apply(mut, &layer_stats)) {
      stats->recomputed_cells = layer_stats.recomputed_cells;
    } else {
      // The incremental deletion stalled (a cavity the ear-clipper could
      // not re-triangulate): restart the mirror from the mutated query.
      *state_slot = std::make_unique<OrdinaryLayerState>(next_snap.query,
                                                         layer,
                                                         next_snap.world);
      stats->full_rebuild = true;
    }
    new_basic = std::make_shared<const Movd>((*state_slot)->Materialize());
    if (stats->full_rebuild) {
      stats->recomputed_cells = new_basic->ovrs.size();
    }
    if (options_.exec.audit) {
      // Audit gate: certify the patched basic against a from-scratch
      // rebuild; on mismatch serve the rebuild and restart the mirror.
      Movd rebuilt =
          BuildBasicMovd(next_snap.query, layer, next_snap.world, resolution,
                         /*threads=*/1, /*audit=*/nullptr, method);
      if (!AuditPatchedMovd(*new_basic, rebuilt).ok()) {
        new_basic = std::make_shared<const Movd>(std::move(rebuilt));
        *state_slot = std::make_unique<OrdinaryLayerState>(next_snap.query,
                                                           layer,
                                                           next_snap.world);
        stats->full_rebuild = true;
      }
    }
  } else {
    state_slot->reset();
    stats->full_rebuild = true;
  }

  // Step 2: re-key pass over the cache. Every artifact of this dataset at
  // the old version is carried to the new version — aliased when the
  // mutation cannot have changed it, patched when the mutated layer is
  // involved — or counted dropped (it stays under its old key and ages out
  // through the LRU). The snapshot is ordered MRU -> LRU; inserting in
  // reverse (LRU first) preserves the recency order.
  const std::string old_tag = "/v" + std::to_string(old_snap.version);
  const std::string new_tag = "/v" + std::to_string(next_snap.version);
  const std::string basic_stem = "basic/" + ds_name + old_tag + "/L";
  const std::string ovl_stem = "ovl/" + ds_name + old_tag + "/L";
  const std::string cns_stem = "cns/" + ds_name + old_tag + "/L";
  const std::string mutated_basic_key =
      basic_stem + std::to_string(layer) + suffix;
  const auto renamed = [&](const std::string& key, size_t kind_len) {
    const size_t tag_pos = kind_len + ds_name.size();
    return key.substr(0, tag_pos) + new_tag +
           key.substr(tag_pos + old_tag.size());
  };

  // Old-version basics of the OTHER layers (identical across the two
  // versions), resolved lazily from the cache for the overlay patcher.
  std::map<int32_t, std::shared_ptr<const Movd>> others;
  const std::function<const Movd*(int32_t)> basic_of =
      [&](int32_t l) -> const Movd* {
    auto it = others.find(l);
    if (it == others.end()) {
      it = others
               .emplace(l, cache_.Lookup(basic_stem + std::to_string(l) +
                                         suffix))
               .first;
    }
    return it->second.get();
  };

  const auto snapshot = cache_.Snapshot();
  std::vector<int32_t> key_layers;
  for (size_t i = snapshot.size(); i-- > 0;) {
    const std::string& key = snapshot[i].first;
    const std::shared_ptr<const Movd>& artifact = snapshot[i].second;
    if (key.compare(0, basic_stem.size(), basic_stem) == 0) {
      size_t rest_pos = 0;
      if (!ParseKeyLayers(key, basic_stem.size(), &key_layers, &rest_pos) ||
          key_layers.size() != 1 || key.substr(rest_pos) != suffix) {
        continue;  // a different engine configuration's key; leave it be
      }
      if (key == mutated_basic_key) {
        if (new_basic != nullptr) {
          cache_.Insert(renamed(key, 6), new_basic);
          ++stats->patched_artifacts;
        } else {
          ++stats->dropped_artifacts;
        }
      } else {
        // Another layer's basic is untouched by this mutation: alias it
        // under the new version's key.
        cache_.Insert(renamed(key, 6), artifact);
        ++stats->patched_artifacts;
      }
      continue;
    }
    if (key.compare(0, ovl_stem.size(), ovl_stem) == 0) {
      size_t rest_pos = 0;
      if (!ParseKeyLayers(key, ovl_stem.size(), &key_layers, &rest_pos)) {
        continue;
      }
      const std::string rest = key.substr(rest_pos);
      BoundaryMode mode;
      if (rest == "/rrb" + suffix) {
        mode = BoundaryMode::kRealRegion;
      } else if (rest == "/mbrb" + suffix) {
        mode = BoundaryMode::kMbr;
      } else {
        continue;
      }
      const bool touched =
          std::find(key_layers.begin(), key_layers.end(), layer) !=
          key_layers.end();
      if (!touched) {
        cache_.Insert(renamed(key, 4), artifact);
        ++stats->patched_artifacts;
        continue;
      }
      if (old_basic == nullptr || new_basic == nullptr) {
        ++stats->dropped_artifacts;
        continue;
      }
      Movd patched;
      OverlayPatchStats overlay_stats;
      if (!PatchOverlay(*artifact, key_layers, layer, *old_basic, *new_basic,
                        basic_of, mode, next_snap.world, deleted_object,
                        &patched, &overlay_stats)) {
        ++stats->dropped_artifacts;
        continue;
      }
      auto result = std::make_shared<const Movd>(std::move(patched));
      if (options_.exec.audit) {
        // Audit gate: re-fold this overlay from the new basics and certify
        // the patch against it; on mismatch cache the rebuild instead.
        Movd acc = IdentityMovd(next_snap.world);
        bool have_all = true;
        for (const int32_t l : key_layers) {
          const Movd* basic = l == layer ? new_basic.get() : basic_of(l);
          if (basic == nullptr) {
            have_all = false;
            break;
          }
          acc = Overlap(acc, *basic, mode);
        }
        if (have_all) {
          CanonicalizeOvrOrder(&acc);
          if (!AuditPatchedMovd(*result, acc).ok()) {
            result = std::make_shared<const Movd>(std::move(acc));
          }
        }
      }
      cache_.Insert(renamed(key, 4), result);
      ++stats->patched_artifacts;
      continue;
    }
    if (key.compare(0, cns_stem.size(), cns_stem) == 0) {
      size_t rest_pos = 0;
      const std::string cns_rest = "/rrb" + suffix + "/c";
      if (!ParseKeyLayers(key, cns_stem.size(), &key_layers, &rest_pos) ||
          key.compare(rest_pos, cns_rest.size(), cns_rest) != 0) {
        continue;
      }
      if (std::find(key_layers.begin(), key_layers.end(), layer) !=
          key_layers.end()) {
        // The clip of a changed overlay: constraint clips are cheap to
        // re-derive relative to their hit rate, so drop rather than patch.
        ++stats->dropped_artifacts;
      } else {
        cache_.Insert(renamed(key, 4), artifact);
        ++stats->patched_artifacts;
      }
      continue;
    }
  }
}

ServeResponse QueryEngine::SolveInternal(const ServeRequest& request,
                                         const CancelToken& token) {
  Dataset* node = FindDataset(request.dataset);
  if (node == nullptr) {
    return Invalid(request.id, "unknown dataset '" + request.dataset + "'");
  }
  // Pin this request's snapshot: one immutable version for the whole
  // evaluation, so the answer is bit-identical under concurrent mutation.
  std::shared_ptr<const DatasetSnapshot> snap;
  {
    MutexLock lock(node->mu);
    snap = node->snap;
  }
  const DatasetSnapshot& ds = *snap;
  if (request.topk == 0) return Invalid(request.id, "k must be >= 1");
  if (!(request.epsilon > 0.0)) {
    return Invalid(request.id, "epsilon must be > 0");
  }
  const auto n = static_cast<int32_t>(ds.query.sets.size());
  // Normalize the layer selection: sorted, deduplicated, in range. Requests
  // naming the same layers in any order share one cache key.
  std::set<int32_t> layer_set;
  for (const int32_t layer : request.layers) {
    if (layer < 0 || layer >= n) {
      return Invalid(request.id, "layer " + std::to_string(layer) +
                                     " out of range [0, " +
                                     std::to_string(n) + ")");
    }
    layer_set.insert(layer);
  }
  if (request.layers.empty()) {
    for (int32_t layer = 0; layer < n; ++layer) layer_set.insert(layer);
  }
  if (layer_set.empty()) return Invalid(request.id, "no layers selected");
  const std::vector<int32_t> layers(layer_set.begin(), layer_set.end());

  ServeResponse resp;
  resp.id = request.id;
  resp.snapshot = snap;
  resp.version = ds.version;

  MolqOptions molq;
  molq.algorithm = request.algorithm;
  molq.epsilon = request.epsilon;
  molq.exec = request.exec;
  // The engine owns resolution (cache-key component) and cancellation
  // (deadline token); a request cannot override either.
  molq.exec.weighted_grid_resolution = options_.exec.weighted_grid_resolution;
  molq.exec.cancel = &token;
  // Request-level trace wins; otherwise the engine-wide sink (if any).
  if (molq.exec.trace == nullptr) molq.exec.trace = options_.exec.trace;
  // Either side may opt into the re-check validators.
  molq.exec.audit = molq.exec.audit || options_.exec.audit;
  TraceContextScope trace_scope(molq.exec.trace);
  TRACE_SPAN("serve_request");

  // Engine-level shape restrictions (the protocol parser enforces the same
  // rules, but the engine is also called directly by molq_cli and tests).
  if (request.kind != ServeQueryKind::kMolq &&
      request.algorithm == MolqAlgorithm::kSsc) {
    return Invalid(request.id,
                   "query-algebra shapes need a MOVD artifact (rrb|mbrb), "
                   "not ssc");
  }
  if (request.kind == ServeQueryKind::kConstrained &&
      request.algorithm == MolqAlgorithm::kMbrb) {
    return Invalid(request.id,
                   "CONSTRAIN is RRB-only (the clipper needs real regions)");
  }

  if (request.algorithm == MolqAlgorithm::kSsc) {
    if (request.topk != 1) {
      return Invalid(request.id, "SSC serves k=1 only; use rrb/mbrb");
    }
    // SSC enumerates raw combinations — no diagram artifacts to cache, so
    // it always runs cold over a sub-query of the selected layers.
    MolqQuery sub;
    sub.type_function = ds.query.type_function;
    for (const int32_t layer : layers) {
      sub.sets.push_back(ds.query.sets[layer]);
      sub.object_functions.push_back(
          ds.query.ObjectFunction(static_cast<size_t>(layer)));
    }
    const MolqResult r = SolveMolq(sub, ds.world, molq);
    if (r.status == MolqStatus::kCancelled) {
      resp.status = ServeStatus::kDeadlineExceeded;
      resp.error = "deadline exceeded during SSC scan";
      return resp;
    }
    ServeAnswer answer;
    answer.location = r.location;
    answer.cost = r.cost;
    answer.group = r.group;
    // Map sub-query set indices back to dataset layer indices.
    for (PoiRef& poi : answer.group) {
      poi.set = layers[static_cast<size_t>(poi.set)];
    }
    resp.answers.push_back(std::move(answer));
    return resp;
  }

  // Shape-specific request validation, before any artifact work.
  if (request.kind == ServeQueryKind::kConstrained) {
    const Status valid = ValidateConstraint(request.constraint);
    if (!valid.ok()) return Invalid(request.id, valid.message());
  }
  std::vector<WhatIfVector> vectors;
  if (request.kind == ServeQueryKind::kWhatIf) {
    if (request.sweep.empty()) {
      return Invalid(request.id, "what-if needs at least one sweep vector");
    }
    // Pad each per-layer sweep vector to a full-dataset WhatIfVector with
    // the identity adjustment on unselected sets, so evaluation runs on
    // the full query (where PoiRef::set is the dataset layer index).
    const double identity =
        ds.query.type_function == WeightFunctionKind::kMultiplicative ? 1.0
                                                                      : 0.0;
    vectors.reserve(request.sweep.size());
    for (const std::vector<double>& scales : request.sweep) {
      if (scales.size() != layers.size()) {
        return Invalid(request.id,
                       "sweep vector has " + std::to_string(scales.size()) +
                           " entries for " + std::to_string(layers.size()) +
                           " selected layers");
      }
      WhatIfVector v;
      v.scale.assign(ds.query.sets.size(), identity);
      for (size_t j = 0; j < layers.size(); ++j) {
        v.scale[static_cast<size_t>(layers[j])] = scales[j];
      }
      const Status valid = ValidateWhatIfVector(ds.query, v);
      if (!valid.ok()) return Invalid(request.id, valid.message());
      vectors.push_back(std::move(v));
    }
  }

  const BoundaryMode mode = request.algorithm == MolqAlgorithm::kMbrb
                                ? BoundaryMode::kMbr
                                : BoundaryMode::kRealRegion;
  bool overlay_hit = false;
  Stopwatch phase_watch;
  std::shared_ptr<const Movd> overlay;
  {
    TRACE_SPAN("serve_overlay");
    overlay = request.kind == ServeQueryKind::kConstrained
                  ? GetClippedOverlay(ds, request.dataset, layers, request,
                                      token, &overlay_hit)
                  : GetOverlay(ds, request.dataset, layers, mode, request,
                               token, &overlay_hit);
  }
  const double overlay_seconds = phase_watch.ElapsedSeconds();
  resp.cache_hit = overlay_hit;
  if (overlay == nullptr) {
    resp.status = ServeStatus::kDeadlineExceeded;
    resp.error = "deadline exceeded building the MOVD overlay";
    return resp;
  }
  // A clipped overlay may legitimately be empty — the constraint excluded
  // every candidate region — and answers as "infeasible" below. Every
  // other shape requires a non-empty artifact.
  if (overlay->ovrs.empty() &&
      request.kind != ServeQueryKind::kConstrained) {
    resp.status = ServeStatus::kInternalError;
    resp.error = "overlay produced an empty MOVD";
    return resp;
  }

  CandidateOptions candidate_options;
  candidate_options.epsilon = request.epsilon;
  candidate_options.exec = molq.exec;
  // The sharded router's skyline scatter restricts each shard to the
  // combinations it owns; unset (the normal case) solves them all.
  candidate_options.anchor_filter = request.candidate_filter;

  phase_watch = Stopwatch();
  {
    TRACE_SPAN("serve_optimize");
    switch (request.kind) {
      case ServeQueryKind::kMolq: {
        const MolqResult top =
            TopKFromMovd(ds.query, *overlay, request.topk, molq);
        if (top.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during optimization";
          return resp;
        }
        resp.answers.reserve(top.ranked.size());
        for (const RankedLocation& r : top.ranked) {
          ServeAnswer answer;
          answer.location = r.location;
          answer.cost = r.cost;
          answer.group = r.group;
          resp.answers.push_back(std::move(answer));
        }
        break;
      }
      case ServeQueryKind::kSkyline: {
        const SkylineResult r =
            SkylineFromMovd(ds.query, *overlay, candidate_options);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during skyline evaluation";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report = AuditSkyline(ds.query, r);
          if (!report.ok()) return AuditFailure(request.id, "skyline", report);
        }
        resp.answers.reserve(r.skyline.size());
        for (const SiteCandidate& c : r.skyline) {
          resp.answers.push_back(AnswerFromCandidate(c));
        }
        break;
      }
      case ServeQueryKind::kDiverse: {
        const DiverseTopKResult r =
            DiverseTopKFromMovd(ds.query, *overlay, request.topk,
                                request.min_distance, candidate_options);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during diversified top-k";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report = AuditDiverseTopK(
              ds.query, request.topk, request.min_distance, r);
          if (!report.ok()) {
            return AuditFailure(request.id, "diversified top-k", report);
          }
        }
        resp.answers.reserve(r.selected.size());
        for (const SiteCandidate& c : r.selected) {
          resp.answers.push_back(AnswerFromCandidate(c));
        }
        break;
      }
      case ServeQueryKind::kConstrained: {
        const ConstrainedMolqResult r =
            ConstrainedFromClippedMovd(ds.query, *overlay,
                                       candidate_options);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during constrained optimization";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report = AuditConstrainedMolq(
              ds.query, request.constraint, ds.world, r);
          if (!report.ok()) {
            return AuditFailure(request.id, "constrained MOLQ", report);
          }
        }
        // Infeasible constraints answer OK with zero answers: the request
        // was well-formed; the feasible set just contains no candidate.
        if (r.feasible) resp.answers.push_back(AnswerFromCandidate(r.best));
        break;
      }
      case ServeQueryKind::kWhatIf: {
        WhatIfOptions what_if;
        what_if.epsilon = request.epsilon;
        what_if.topk = request.topk;
        what_if.exec = molq.exec;
        const WhatIfSweepResult r =
            WhatIfSweepFromMovd(ds.query, *overlay, vectors, what_if);
        if (r.status == StatusCode::kCancelled) {
          resp.status = ServeStatus::kDeadlineExceeded;
          resp.error = "deadline exceeded during what-if sweep";
          return resp;
        }
        if (molq.exec.audit) {
          const AuditReport report =
              AuditWhatIfSweep(ds.query, vectors, request.topk, r);
          if (!report.ok()) {
            return AuditFailure(request.id, "what-if sweep", report);
          }
        }
        resp.sweep_answers.reserve(r.per_vector.size());
        for (const std::vector<SiteCandidate>& ranking : r.per_vector) {
          std::vector<ServeAnswer> answers;
          answers.reserve(ranking.size());
          for (const SiteCandidate& c : ranking) {
            answers.push_back(AnswerFromCandidate(c));
          }
          resp.sweep_answers.push_back(std::move(answers));
        }
        break;
      }
    }
  }
  const double optimize_seconds = phase_watch.ElapsedSeconds();
  metrics_.RecordPhases(overlay_seconds, optimize_seconds);
  return resp;
}

std::shared_ptr<const Movd> QueryEngine::GetOverlay(
    const DatasetSnapshot& ds, const std::string& ds_name,
    const std::vector<int32_t>& layers, BoundaryMode mode,
    const ServeRequest& request, const CancelToken& token,
    bool* overlay_hit) {
  *overlay_hit = false;
  // The weighted method changes the cover geometry (adaptive and dense
  // covers differ while answering identically), so cached diagrams built
  // under one method must never serve a configuration using the other.
  const std::string suffix =
      ArtifactKeySuffix(options_.exec.weighted_grid_resolution,
                        options_.exec.weighted_method, ds.weight_tag);
  // The snapshot version is part of every key: a mutation publishes a new
  // version, whose artifacts are patched in under new keys while queries
  // pinned to the old version keep hitting the old ones until they age out.
  const std::string version_tag = "/v" + std::to_string(ds.version);

  // One basic (single-layer) diagram; cached under a mode-independent key,
  // since basics carry both real regions and MBRs. The basic is built from
  // the FULL dataset query, so its PoiRef::set is the dataset layer index
  // and every layer-subset overlay can share it.
  const auto get_basic =
      [&](int32_t layer) -> std::shared_ptr<const Movd> {
    const auto build = [&] {
      return std::make_shared<const Movd>(BuildBasicMovd(
          ds.query, layer, ds.world, options_.exec.weighted_grid_resolution,
          request.exec.threads, /*audit=*/nullptr,
          options_.exec.weighted_method));
    };
    if (!request.use_cache) return build();
    const std::string key = "basic/" + ds_name + version_tag + "/L" +
                            std::to_string(layer) + suffix;
    return cache_.GetOrBuild(key, build, nullptr, token.deadline());
  };

  // The overlay fold mirrors SolveMolq's OverlapAll exactly (identity start,
  // left-to-right), then canonicalises the OVR order (model/update_model.h)
  // so a patched overlay and a rebuilt one are byte-comparable. Downstream
  // optimizers are order-independent, so a served answer stays bit-identical
  // to a cold SolveMolq over the same layer sub-query.
  const auto build_overlay = [&]() -> std::shared_ptr<const Movd> {
    Movd acc = IdentityMovd(ds.world);
    for (const int32_t layer : layers) {
      if (token.Expired()) return nullptr;
      const std::shared_ptr<const Movd> basic = get_basic(layer);
      if (basic == nullptr) return nullptr;  // wait on a peer build timed out
      Movd next = Overlap(acc, *basic, mode, nullptr, &token);
      // A fired token means `next` may be truncated — discard it.
      if (token.Expired()) return nullptr;
      acc = std::move(next);
    }
    CanonicalizeOvrOrder(&acc);
    return std::make_shared<const Movd>(std::move(acc));
  };

  if (!request.use_cache) return build_overlay();
  const std::string key =
      "ovl/" + ds_name + version_tag + "/L" + LayersTag(layers) +
      (mode == BoundaryMode::kMbr ? "/mbrb" : "/rrb") + suffix;
  return cache_.GetOrBuild(key, build_overlay, overlay_hit, token.deadline());
}

std::shared_ptr<const Movd> QueryEngine::GetClippedOverlay(
    const DatasetSnapshot& ds, const std::string& ds_name,
    const std::vector<int32_t>& layers, const ServeRequest& request,
    const CancelToken& token, bool* overlay_hit) {
  *overlay_hit = false;
  const auto build = [&]() -> std::shared_ptr<const Movd> {
    // The unclipped RRB overlay goes through the ordinary artifact path,
    // so constrained requests warm the same cache entries plain MOLQ uses
    // (and vice versa) — only the clip is constraint-specific.
    bool base_hit = false;
    const std::shared_ptr<const Movd> overlay =
        GetOverlay(ds, ds_name, layers, BoundaryMode::kRealRegion, request,
                   token, &base_hit);
    if (overlay == nullptr) return nullptr;
    const Region feasible = BuildFeasibleRegion(request.constraint, ds.world);
    if (token.Expired()) return nullptr;
    return std::make_shared<const Movd>(
        ClipMovdToFeasible(*overlay, feasible));
  };
  if (!request.use_cache) return build();
  const std::string key =
      "cns/" + ds_name + "/v" + std::to_string(ds.version) + "/L" +
      LayersTag(layers) + "/rrb" +
      ArtifactKeySuffix(options_.exec.weighted_grid_resolution,
                        options_.exec.weighted_method, ds.weight_tag) +
      "/c" + ConstraintHash(request.constraint);
  return cache_.GetOrBuild(key, build, overlay_hit, token.deadline());
}

Status QueryEngine::SaveCache(const std::string& dir) const {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
  }
  const auto snapshot = cache_.Snapshot();
  // Manifest lines are written least- to most-recently used, so replaying
  // them in order through Insert() reconstructs the recency order too.
  std::ofstream manifest(dir + "/manifest.txt", std::ios::trunc);
  if (!manifest) {
    return Status::IoError("cannot write " + dir + "/manifest.txt");
  }
  for (size_t i = snapshot.size(); i-- > 0;) {
    const std::string file = "art_" + std::to_string(i) + ".movd";
    const Status saved = SaveMovd(dir + "/" + file, *snapshot[i].second);
    if (!saved.ok()) return saved;
    manifest << file << '\t' << snapshot[i].first << '\n';
  }
  manifest.flush();
  if (!manifest) {
    return Status::IoError("cannot write " + dir + "/manifest.txt");
  }
  return Status::Ok();
}

QueryEngine::WarmLoadResult QueryEngine::LoadCache(const std::string& dir) {
  WarmLoadResult result;
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest) {
    result.status = Status::IoError("cannot read " + dir + "/manifest.txt");
    return result;
  }
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      result.status = Status::DataLoss("malformed manifest line: " + line);
      return result;
    }
    const std::string file = line.substr(0, tab);
    const std::string key = line.substr(tab + 1);
    // LoadMovd validates the header and every record; a truncated or
    // corrupted artifact is skipped (colder cache), never inserted.
    StatusOr<Movd> movd = LoadMovd(dir + "/" + file);
    if (!movd.has_value()) {
      ++result.failed;
      continue;
    }
    cache_.Insert(key, std::make_shared<const Movd>(std::move(*movd)));
    ++result.loaded;
  }
  return result;
}

}  // namespace movd
