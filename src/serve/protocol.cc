#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <type_traits>
#include <variant>
#include <vector>

#include "util/check.h"

namespace movd {
namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(
                                    line[pos])) != 0) {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() && std::isspace(static_cast<unsigned char>(
                                    line[end])) == 0) {
      ++end;
    }
    if (end > pos) words.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return words;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Wire spelling and HELP usage hint of one argument key. The registry's
/// arg masks index into this table; the parser, the per-verb "X requires
/// ..." errors, and the HELP output all read it.
struct ArgSpec {
  uint32_t bit;
  const char* key;
  const char* hint;
};

constexpr ArgSpec kArgSpecs[] = {
    {kArgId, "id", "id=<tok>"},
    {kArgDataset, "dataset", "dataset=<name>"},
    {kArgLayers, "layers", "layers=<i,j,...>"},
    {kArgAlgo, "algo", "algo=ssc|rrb|mbrb"},
    {kArgK, "k", "k=<n>"},
    {kArgEpsilon, "epsilon", "epsilon=<e>"},
    {kArgDeadlineMs, "deadline_ms", "deadline_ms=<ms>"},
    {kArgThreads, "threads", "threads=<n>"},
    {kArgCache, "cache", "cache=0|1"},
    {kArgMinDist, "min_dist", "min_dist=<d>"},
    {kArgBoundary, "boundary", "boundary=<poly>"},
    {kArgExclude, "exclude", "exclude=<poly>"},
    {kArgSweep, "sweep", "sweep=<v>|<v>|..."},
    {kArgLayer, "layer", "layer=<i>"},
    {kArgX, "x", "x=<f>"},
    {kArgY, "y", "y=<f>"},
    {kArgRect, "rect", "rect=x0,y0;x1,y1"},
};

const ArgSpec* FindArg(const std::string& key) {
  for (const ArgSpec& spec : kArgSpecs) {
    if (key == spec.key) return &spec;
  }
  return nullptr;
}

/// "SOLVE, DIVERSE, WHATIF" — the non-control verbs whose allowed_args
/// contain `bit`, for "X applies to ... only" errors. Derived from the
/// registry so the message stays correct when a verb row changes.
std::string VerbsAllowing(uint32_t bit) {
  std::string out;
  for (const VerbDescriptor& d : VerbRegistry()) {
    if ((d.caps & kCapControl) != 0 || (d.allowed_args & bit) == 0) continue;
    if (!out.empty()) out += ", ";
    out += d.name;
  }
  return out;
}

/// Joins the usage hints of the args in `mask` with `sep`.
std::string JoinHints(uint32_t mask, const char* sep) {
  std::string out;
  for (const ArgSpec& spec : kArgSpecs) {
    if ((mask & spec.bit) == 0) continue;
    if (!out.empty()) out += sep;
    out += spec.hint;
  }
  return out;
}

/// Parses one key=value pair for the verb `d` into the flat accumulator
/// `request` (the routing rect parses separately into the envelope). The
/// registry's allowed_args mask has already admitted the key; this is the
/// per-key typed parse and value validation.
Status ParseVerbArg(const VerbDescriptor& d, const ArgSpec& arg,
                    const std::string& value, ServeRequest* request) {
  int64_t i = 0;
  double f = 0.0;
  switch (arg.bit) {
    case kArgId:
      request->id = value;
      return Status::Ok();
    case kArgDataset:
      request->dataset = value;
      return Status::Ok();
    case kArgLayers: {
      request->layers.clear();
      size_t pos = 0;
      while (pos < value.size()) {
        size_t comma = value.find(',', pos);
        if (comma == std::string::npos) comma = value.size();
        if (!ParseI64(value.substr(pos, comma - pos), &i)) {
          return Status::InvalidArgument("bad layers list '" + value + "'");
        }
        request->layers.push_back(static_cast<int32_t>(i));
        pos = comma + 1;
      }
      return Status::Ok();
    }
    case kArgAlgo:
      if (value == "ssc") {
        if ((d.caps & kCapRequiresOverlay) != 0) {
          return Status::InvalidArgument(
              std::string("algo=ssc serves plain SOLVE only; ") + d.name +
              " needs a MOVD artifact (rrb|mbrb)");
        }
        request->algorithm = MolqAlgorithm::kSsc;
      } else if (value == "rrb") {
        request->algorithm = MolqAlgorithm::kRrb;
      } else if (value == "mbrb") {
        request->algorithm = MolqAlgorithm::kMbrb;
      } else {
        return Status::InvalidArgument("unknown algo '" + value +
                                       "' (want ssc|rrb|mbrb)");
      }
      return Status::Ok();
    case kArgK:
      if (!ParseI64(value, &i) || i < 1) {
        return Status::InvalidArgument("bad k '" + value + "'");
      }
      request->topk = static_cast<size_t>(i);
      return Status::Ok();
    case kArgEpsilon:
      if (!ParseF64(value, &f) || !(f > 0.0)) {
        return Status::InvalidArgument("bad epsilon '" + value + "'");
      }
      request->epsilon = f;
      return Status::Ok();
    case kArgDeadlineMs:
      if (!ParseF64(value, &f) || f < 0.0) {
        return Status::InvalidArgument("bad deadline_ms '" + value + "'");
      }
      request->deadline_ms = f;
      return Status::Ok();
    case kArgThreads:
      if (!ParseI64(value, &i) || i < 0) {
        return Status::InvalidArgument("bad threads '" + value + "'");
      }
      request->exec.threads = static_cast<int>(i);
      return Status::Ok();
    case kArgCache:
      if (value == "0") {
        request->use_cache = false;
      } else if (value == "1") {
        request->use_cache = true;
      } else {
        return Status::InvalidArgument("bad cache '" + value +
                                       "' (want 0|1)");
      }
      return Status::Ok();
    case kArgMinDist:
      if (!ParseF64(value, &f) || f < 0.0) {
        return Status::InvalidArgument("bad min_dist '" + value + "'");
      }
      request->min_distance = f;
      return Status::Ok();
    case kArgBoundary: {
      Polygon poly;
      const Status parsed = ParsePolygonSpec(value, &poly);
      if (!parsed.ok()) return parsed;
      if (!request->constraint.boundary.Empty()) {
        return Status::InvalidArgument("boundary given twice");
      }
      request->constraint.boundary = std::move(poly);
      return Status::Ok();
    }
    case kArgExclude: {
      Polygon poly;
      const Status parsed = ParsePolygonSpec(value, &poly);
      if (!parsed.ok()) return parsed;
      request->constraint.exclusions.push_back(std::move(poly));
      return Status::Ok();
    }
    case kArgSweep:
      return ParseSweepSpec(value, &request->sweep);
    case kArgLayer:
      if (!ParseI64(value, &i) || i < 0) {
        return Status::InvalidArgument("bad layer '" + value + "'");
      }
      request->mutation.layer = static_cast<int32_t>(i);
      return Status::Ok();
    case kArgX:
    case kArgY:
      if (!ParseF64(value, &f) || !std::isfinite(f)) {
        return Status::InvalidArgument(std::string("bad ") + arg.key + " '" +
                                       value + "'");
      }
      if (arg.bit == kArgX) {
        request->mutation.location.x = f;
      } else {
        request->mutation.location.y = f;
      }
      return Status::Ok();
  }
  return Status::Internal("unhandled argument '" + std::string(arg.key) +
                          "'");
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// dataset/set names that come from user-controlled paths.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

const std::vector<VerbDescriptor>& VerbRegistry() {
  // The common keys every query shape shares; per-shape rows add algo/k/
  // shape-specific keys on top.
  constexpr uint32_t kCommonQuery = kArgId | kArgDataset | kArgLayers |
                                    kArgEpsilon | kArgDeadlineMs |
                                    kArgThreads | kArgCache;
  constexpr uint32_t kMutation = kArgId | kArgDataset | kArgLayer | kArgX |
                                 kArgY;
  static const std::vector<VerbDescriptor>* const kRegistry =
      new std::vector<VerbDescriptor>{
          {"SOLVE", 1, ServeVerb::kSolve, ServeQueryKind::kMolq,
           MutationKind::kInsert, 0,
           kCommonQuery | kArgAlgo | kArgK | kArgRect, kArgDataset, 0, 1,
           "top-k optimal locations"},
          {"SKYLINE", 1, ServeVerb::kSolve, ServeQueryKind::kSkyline,
           MutationKind::kInsert, kCapRequiresOverlay,
           kCommonQuery | kArgAlgo, kArgDataset, 0, 1,
           "Pareto-optimal candidate sites"},
          {"DIVERSE", 1, ServeVerb::kSolve, ServeQueryKind::kDiverse,
           MutationKind::kInsert, kCapRequiresOverlay,
           kCommonQuery | kArgAlgo | kArgK | kArgMinDist | kArgRect,
           kArgDataset | kArgK | kArgMinDist, 0, 1,
           "top-k with a minimum pairwise distance"},
          {"CONSTRAIN", 1, ServeVerb::kSolve, ServeQueryKind::kConstrained,
           MutationKind::kInsert, kCapRequiresOverlay,
           kCommonQuery | kArgBoundary | kArgExclude | kArgRect, kArgDataset,
           kArgBoundary | kArgExclude, 1,
           "optimum inside a polygon, minus exclusions (RRB only)"},
          {"WHATIF", 1, ServeVerb::kSolve, ServeQueryKind::kWhatIf,
           MutationKind::kInsert, kCapRequiresOverlay,
           kCommonQuery | kArgAlgo | kArgK | kArgSweep,
           kArgDataset | kArgSweep, 0, 1,
           "batched rankings under scaled type weights"},
          {"INSERT", 2, ServeVerb::kSolve, ServeQueryKind::kMolq,
           MutationKind::kInsert, kCapMutation, kMutation,
           kArgDataset | kArgLayer | kArgX | kArgY, 0, 4,
           "add a site to a layer; publishes a new snapshot version"},
          {"DELETE", 2, ServeVerb::kSolve, ServeQueryKind::kMolq,
           MutationKind::kDelete, kCapMutation, kMutation,
           kArgDataset | kArgLayer | kArgX | kArgY, 0, 4,
           "remove the site at (x, y) from a layer; publishes a new "
           "snapshot version"},
          {"STATS", 1, ServeVerb::kStats, ServeQueryKind::kMolq,
           MutationKind::kInsert, kCapControl, 0, 0, 0, 0,
           "serving metrics as JSON"},
          {"HELP", 2, ServeVerb::kHelp, ServeQueryKind::kMolq,
           MutationKind::kInsert, kCapControl, 0, 0, 0, 0,
           "this verb registry as JSON"},
          {"PING", 1, ServeVerb::kPing, ServeQueryKind::kMolq,
           MutationKind::kInsert, kCapControl, 0, 0, 0, 0, "liveness probe"},
          {"QUIT", 1, ServeVerb::kQuit, ServeQueryKind::kMolq,
           MutationKind::kInsert, kCapControl, 0, 0, 0, 0,
           "close this connection"},
          {"SHUTDOWN", 1, ServeVerb::kShutdown, ServeQueryKind::kMolq,
           MutationKind::kInsert, kCapControl, 0, 0, 0, 0,
           "stop the whole server"},
      };
  return *kRegistry;
}

const VerbDescriptor* FindVerb(const std::string& upper_name) {
  for (const VerbDescriptor& d : VerbRegistry()) {
    if (upper_name == d.name) return &d;
  }
  return nullptr;
}

std::string HelpJson() {
  std::string out = "{\"protocol_version\": " +
                    std::to_string(kServeProtocolVersion) + ", \"verbs\": [";
  bool first = true;
  for (const VerbDescriptor& d : VerbRegistry()) {
    if (!first) out += ", ";
    first = false;
    out += "{\"verb\": \"";
    out += d.name;
    out += "\", \"since\": ";
    out += std::to_string(d.since_version);
    out += ", \"cost\": ";
    out += std::to_string(d.cost_units);
    out += ", \"mutation\": ";
    out += (d.caps & kCapMutation) != 0 ? "true" : "false";
    out += ", \"args\": [";
    bool first_arg = true;
    for (const ArgSpec& spec : kArgSpecs) {
      if ((d.allowed_args & spec.bit) == 0) continue;
      if (!first_arg) out += ", ";
      first_arg = false;
      out += "\"";
      out += spec.hint;
      out += "\"";
    }
    out += "], \"required\": [";
    first_arg = true;
    for (const ArgSpec& spec : kArgSpecs) {
      if ((d.required_args & spec.bit) == 0) continue;
      if (!first_arg) out += ", ";
      first_arg = false;
      out += "\"";
      out += spec.key;
      out += "\"";
    }
    out += "], \"summary\": \"" + JsonEscape(d.summary) + "\"}";
  }
  out += "]}";
  return out;
}

namespace {

/// Builds the typed per-verb payload from the registry row and the flat
/// parse accumulator — the inverse of FlattenRequest, used only here so
/// wire verbs and EngineOp alternatives stay paired in one place.
EngineOp BuildOp(const VerbDescriptor& d, const ServeRequest& flat) {
  if ((d.caps & kCapMutation) != 0) {
    return flat.mutation;
  }
  switch (d.kind) {
    case ServeQueryKind::kMolq:
      return SolveSpec{flat.algorithm, flat.topk};
    case ServeQueryKind::kSkyline:
      return SkylineSpec{flat.algorithm};
    case ServeQueryKind::kDiverse:
      return DiverseSpec{flat.algorithm, flat.topk, flat.min_distance};
    case ServeQueryKind::kConstrained:
      return ConstrainSpec{flat.constraint};
    case ServeQueryKind::kWhatIf:
      return WhatIfSpec{flat.algorithm, flat.topk, flat.sweep};
  }
  MOVD_CHECK_MSG(false, "verb registry row with an unknown query kind");
  return SolveSpec{};
}

}  // namespace

Status ParseRequest(const std::string& line, ServeVerb* verb,
                    EngineRequest* request) {
  const std::vector<std::string> words = SplitWords(line);
  if (words.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  const std::string name = Upper(words[0]);
  const VerbDescriptor* d = FindVerb(name);
  if (d == nullptr) {
    return Status::UnsupportedVerb(
        "unknown verb '" + words[0] + "' (protocol v" +
        std::to_string(kServeProtocolVersion) + "; try HELP)");
  }
  if ((d->caps & kCapControl) != 0) {
    if (words.size() != 1) {
      return Status::InvalidArgument(name + " takes no arguments");
    }
    *verb = d->verb;
    return Status::Ok();
  }
  *verb = d->verb;
  // Per-key parsing accumulates into the flat form (whose fields the
  // ArgSpec table addresses); the typed request is assembled below once
  // the row's requirements have all been checked.
  ServeRequest flat;
  flat.kind = d->kind;
  if ((d->caps & kCapMutation) != 0) {
    flat.mutate = true;
    flat.mutation.kind = d->mutation;
  }
  Rect routing_rect;
  uint32_t seen = 0;
  for (size_t i = 1; i < words.size(); ++i) {
    const size_t eq = words[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got '" + words[i] +
                                     "'");
    }
    const std::string key = words[i].substr(0, eq);
    const std::string value = words[i].substr(eq + 1);
    const ArgSpec* arg = FindArg(key);
    if (arg == nullptr) {
      return Status::InvalidArgument("unknown " + name + " argument '" +
                                     key + "'");
    }
    if ((d->allowed_args & arg->bit) == 0) {
      return Status::InvalidArgument(key + " applies to " +
                                     VerbsAllowing(arg->bit) + " only");
    }
    const Status status =
        arg->bit == kArgRect ? ParseRectSpec(value, &routing_rect)
                             : ParseVerbArg(*d, *arg, value, &flat);
    if (!status.ok()) return status;
    seen |= arg->bit;
  }
  const uint32_t missing = d->required_args & ~seen;
  if (missing != 0) {
    return Status::InvalidArgument(name + " requires " +
                                   JoinHints(missing, " and "));
  }
  if (d->required_any != 0 && (seen & d->required_any) == 0) {
    return Status::InvalidArgument(name + " requires " +
                                   JoinHints(d->required_any, " and/or "));
  }
  *request = EngineRequest();
  request->id = flat.id;
  request->dataset = flat.dataset;
  request->layers = flat.layers;
  request->epsilon = flat.epsilon;
  request->exec = flat.exec;
  request->deadline_ms = flat.deadline_ms;
  request->use_cache = flat.use_cache;
  request->cost_units = d->cost_units;
  request->routing_rect = routing_rect;
  request->op = BuildOp(*d, flat);
  return Status::Ok();
}

Status ParseRequestLine(const std::string& line, ServeVerb* verb,
                        ServeRequest* request) {
  EngineRequest typed;
  const Status status = ParseRequest(line, verb, &typed);
  if (!status.ok()) return status;
  if (*verb == ServeVerb::kSolve) *request = FlattenRequest(typed);
  return Status::Ok();
}

Status ParseRectSpec(const std::string& spec, Rect* out) {
  const size_t semi = spec.find(';');
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;
  if (semi == std::string::npos || spec.find(';', semi + 1) != std::string::npos) {
    return Status::InvalidArgument("bad rect '" + spec +
                                   "' (want x0,y0;x1,y1)");
  }
  const std::string lo = spec.substr(0, semi);
  const std::string hi = spec.substr(semi + 1);
  const size_t lc = lo.find(',');
  const size_t hc = hi.find(',');
  if (lc == std::string::npos || hc == std::string::npos ||
      !ParseF64(lo.substr(0, lc), &x0) || !ParseF64(lo.substr(lc + 1), &y0) ||
      !ParseF64(hi.substr(0, hc), &x1) || !ParseF64(hi.substr(hc + 1), &y1) ||
      !std::isfinite(x0) || !std::isfinite(y0) || !std::isfinite(x1) ||
      !std::isfinite(y1)) {
    return Status::InvalidArgument("bad rect '" + spec +
                                   "' (want x0,y0;x1,y1)");
  }
  if (x0 > x1 || y0 > y1) {
    return Status::InvalidArgument("bad rect '" + spec +
                                   "' (min corner exceeds max corner)");
  }
  *out = Rect(x0, y0, x1, y1);
  return Status::Ok();
}

namespace {

/// %.17g — enough digits that strtod reads back the exact double, so a
/// formatted request parses to bit-identical coordinates.
std::string F64Spec(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string PolygonSpecString(const Polygon& poly) {
  std::string out;
  for (const Point& p : poly.vertices()) {
    if (!out.empty()) out += ";";
    out += F64Spec(p.x) + "," + F64Spec(p.y);
  }
  return out;
}

const char* AlgoSpecName(MolqAlgorithm algorithm) {
  switch (algorithm) {
    case MolqAlgorithm::kSsc:
      return "ssc";
    case MolqAlgorithm::kRrb:
      return "rrb";
    case MolqAlgorithm::kMbrb:
      return "mbrb";
  }
  return "rrb";
}

}  // namespace

std::string FormatRequestLine(const EngineRequest& request) {
  const char* name = std::visit(
      [](const auto& op) -> const char* {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, SolveSpec>) return "SOLVE";
        if constexpr (std::is_same_v<T, SkylineSpec>) return "SKYLINE";
        if constexpr (std::is_same_v<T, DiverseSpec>) return "DIVERSE";
        if constexpr (std::is_same_v<T, ConstrainSpec>) return "CONSTRAIN";
        if constexpr (std::is_same_v<T, WhatIfSpec>) return "WHATIF";
        if constexpr (std::is_same_v<T, SiteMutation>) {
          return op.kind == MutationKind::kDelete ? "DELETE" : "INSERT";
        }
      },
      request.op);
  const VerbDescriptor* d = FindVerb(name);
  MOVD_CHECK_MSG(d != nullptr, "every EngineOp alternative has a verb row");
  // The flat form gives uniform access to the per-verb payload fields;
  // emission below is gated by the registry row, so a field the verb does
  // not take is never emitted even though the flat form carries it.
  const ServeRequest flat = FlattenRequest(request);
  std::string line = d->name;
  line += " id=" + flat.id + " dataset=" + flat.dataset;
  if ((d->allowed_args & kArgLayers) != 0 && !flat.layers.empty()) {
    std::string list;
    for (const int32_t layer : flat.layers) {
      if (!list.empty()) list += ",";
      list += std::to_string(layer);
    }
    line += " layers=" + list;
  }
  if ((d->allowed_args & kArgAlgo) != 0) {
    line += std::string(" algo=") + AlgoSpecName(flat.algorithm);
  }
  if ((d->allowed_args & kArgK) != 0) {
    line += " k=" + std::to_string(flat.topk);
  }
  if ((d->allowed_args & kArgMinDist) != 0) {
    line += " min_dist=" + F64Spec(flat.min_distance);
  }
  if ((d->allowed_args & kArgBoundary) != 0 &&
      !flat.constraint.boundary.Empty()) {
    line += " boundary=" + PolygonSpecString(flat.constraint.boundary);
  }
  if ((d->allowed_args & kArgExclude) != 0) {
    for (const Polygon& poly : flat.constraint.exclusions) {
      line += " exclude=" + PolygonSpecString(poly);
    }
  }
  if ((d->allowed_args & kArgSweep) != 0) {
    std::string spec;
    for (const std::vector<double>& vec : flat.sweep) {
      if (!spec.empty()) spec += "|";
      std::string v;
      for (const double s : vec) {
        if (!v.empty()) v += ",";
        v += F64Spec(s);
      }
      spec += v;
    }
    line += " sweep=" + spec;
  }
  if ((d->allowed_args & kArgLayer) != 0) {
    line += " layer=" + std::to_string(flat.mutation.layer);
    line += " x=" + F64Spec(flat.mutation.location.x);
    line += " y=" + F64Spec(flat.mutation.location.y);
  }
  if ((d->allowed_args & kArgEpsilon) != 0) {
    line += " epsilon=" + F64Spec(flat.epsilon);
  }
  if ((d->allowed_args & kArgThreads) != 0) {
    line += " threads=" + std::to_string(flat.exec.threads);
  }
  if ((d->allowed_args & kArgCache) != 0) {
    line += std::string(" cache=") + (flat.use_cache ? "1" : "0");
  }
  if ((d->allowed_args & kArgDeadlineMs) != 0 && flat.deadline_ms > 0.0) {
    line += " deadline_ms=" + F64Spec(flat.deadline_ms);
  }
  if ((d->allowed_args & kArgRect) != 0 && !request.routing_rect.Empty()) {
    const Rect& r = request.routing_rect;
    line += " rect=" + F64Spec(r.min_x) + "," + F64Spec(r.min_y) + ";" +
            F64Spec(r.max_x) + "," + F64Spec(r.max_y);
  }
  return line;
}

Status ParsePolygonSpec(const std::string& spec, Polygon* out) {
  std::vector<Point> ring;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string pair = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (pair.empty()) continue;
    const size_t comma = pair.find(',');
    double x = 0.0;
    double y = 0.0;
    if (comma == std::string::npos ||
        !ParseF64(pair.substr(0, comma), &x) ||
        !ParseF64(pair.substr(comma + 1), &y)) {
      return Status::InvalidArgument("bad polygon vertex '" + pair +
                                     "' (want x,y)");
    }
    ring.push_back(Point{x, y});
  }
  if (ring.size() < 3) {
    return Status::InvalidArgument(
        "polygon needs >= 3 vertices ('x,y;x,y;x,y...')");
  }
  *out = Polygon(std::move(ring));
  return Status::Ok();
}

Status ParseSweepSpec(const std::string& spec,
                      std::vector<std::vector<double>>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t bar = spec.find('|', pos);
    if (bar == std::string::npos) bar = spec.size();
    const std::string vec = spec.substr(pos, bar - pos);
    pos = bar + 1;
    std::vector<double> scales;
    size_t vpos = 0;
    while (vpos <= vec.size()) {
      size_t comma = vec.find(',', vpos);
      if (comma == std::string::npos) comma = vec.size();
      const std::string tok = vec.substr(vpos, comma - vpos);
      vpos = comma + 1;
      if (tok.empty()) continue;
      double d = 0.0;
      if (!ParseF64(tok, &d)) {
        return Status::InvalidArgument("bad sweep scale '" + tok + "'");
      }
      scales.push_back(d);
    }
    if (scales.empty()) {
      return Status::InvalidArgument(
          "empty sweep vector (want s,s,...|s,s,...)");
    }
    out->push_back(std::move(scales));
  }
  return Status::Ok();
}

std::string AnswerJson(const MolqQuery& query, const ServeAnswer& answer) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"location\": [%.6f, %.6f], \"cost\": %.6f, \"group\": [",
                answer.location.x, answer.location.y, answer.cost);
  std::string out = buf;
  for (size_t i = 0; i < answer.group.size(); ++i) {
    const PoiRef& ref = answer.group[i];
    MOVD_CHECK_MSG(ref.set >= 0 &&
                       static_cast<size_t>(ref.set) < query.sets.size(),
                   "answer group references a set outside its query");
    const ObjectSet& set = query.sets[static_cast<size_t>(ref.set)];
    const SpatialObject& obj = set.objects[static_cast<size_t>(ref.object)];
    if (i > 0) out += ", ";
    out += "{\"set\": \"" + JsonEscape(set.name) + "\", ";
    std::snprintf(buf, sizeof(buf), "\"index\": %d, \"at\": [%.6f, %.6f]}",
                  ref.object, obj.location.x, obj.location.y);
    out += buf;
  }
  out += "]";
  // Present only for query-algebra answers, so plain-MOLQ responses keep
  // their exact historical bytes.
  if (!answer.criteria.empty()) {
    out += ", \"criteria\": [";
    for (size_t i = 0; i < answer.criteria.size(); ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%.6f", answer.criteria[i]);
      out += buf;
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string ResponseJson(const MolqQuery& query, const ServeResponse& resp,
                         bool include_timing) {
  std::string out;
  if (!resp.sweep_answers.empty()) {
    // A what-if sweep: one ranking array per weight vector.
    out = "{\"sweeps\": [";
    for (size_t v = 0; v < resp.sweep_answers.size(); ++v) {
      if (v > 0) out += ", ";
      out += "[";
      for (size_t i = 0; i < resp.sweep_answers[v].size(); ++i) {
        if (i > 0) out += ", ";
        out += AnswerJson(query, resp.sweep_answers[v][i]);
      }
      out += "]";
    }
  } else {
    out = "{\"answers\": [";
    for (size_t i = 0; i < resp.answers.size(); ++i) {
      if (i > 0) out += ", ";
      out += AnswerJson(query, resp.answers[i]);
    }
  }
  if (!include_timing) {
    out += "]}";
    return out;
  }
  // The snapshot version rides in the timing section (between cache_hit
  // and seconds) so the deterministic answer slice — everything before
  // ", \"cache_hit\"" — is unchanged and molq_cli --json (no timing)
  // keeps its exact historical bytes.
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "], \"cache_hit\": %s, \"version\": %llu, \"seconds\": %.6f}",
                resp.cache_hit ? "true" : "false",
                static_cast<unsigned long long>(resp.version), resp.seconds);
  out += buf;
  return out;
}

std::string FormatResponseLine(const MolqQuery* query,
                               const ServeResponse& resp) {
  if (resp.status == ServeStatus::kOk) {
    if (resp.is_mutation) {
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "{\"version\": %llu, \"recomputed_cells\": %zu, "
                    "\"patched_artifacts\": %zu, \"dropped_artifacts\": %zu, "
                    "\"seconds\": %.6f}",
                    static_cast<unsigned long long>(resp.version),
                    resp.mutation.recomputed_cells,
                    resp.mutation.patched_artifacts,
                    resp.mutation.dropped_artifacts, resp.seconds);
      return "OK " + resp.id + " " + buf;
    }
    MOVD_CHECK_MSG(query != nullptr,
                   "an OK response needs its query to resolve group refs");
    return "OK " + resp.id + " " + ResponseJson(*query, resp);
  }
  std::string out =
      "ERR " + resp.id + " " + ServeStatusName(resp.status);
  if (!resp.error.empty()) out += " " + resp.error;
  return out;
}

}  // namespace movd
