#include "serve/protocol.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/check.h"

namespace movd {
namespace {

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(
                                    line[pos])) != 0) {
      ++pos;
    }
    size_t end = pos;
    while (end < line.size() && std::isspace(static_cast<unsigned char>(
                                    line[end])) == 0) {
      ++end;
    }
    if (end > pos) words.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return words;
}

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// The verb keyword a request kind parses under, for error messages.
const char* KindVerbName(ServeQueryKind kind) {
  switch (kind) {
    case ServeQueryKind::kMolq: return "SOLVE";
    case ServeQueryKind::kSkyline: return "SKYLINE";
    case ServeQueryKind::kDiverse: return "DIVERSE";
    case ServeQueryKind::kConstrained: return "CONSTRAIN";
    case ServeQueryKind::kWhatIf: return "WHATIF";
  }
  return "?";
}

Status ParseSolveArg(const std::string& key, const std::string& value,
                     ServeRequest* request) {
  const ServeQueryKind kind = request->kind;
  int64_t i = 0;
  double d = 0.0;
  if (key == "id") {
    request->id = value;
    return Status::Ok();
  }
  if (key == "dataset") {
    request->dataset = value;
    return Status::Ok();
  }
  if (key == "min_dist") {
    if (kind != ServeQueryKind::kDiverse) {
      return Status::InvalidArgument("min_dist applies to DIVERSE only");
    }
    if (!ParseF64(value, &d) || d < 0.0) {
      return Status::InvalidArgument("bad min_dist '" + value + "'");
    }
    request->min_distance = d;
    return Status::Ok();
  }
  if (key == "boundary" || key == "exclude") {
    if (kind != ServeQueryKind::kConstrained) {
      return Status::InvalidArgument(key + " applies to CONSTRAIN only");
    }
    Polygon poly;
    const Status parsed = ParsePolygonSpec(value, &poly);
    if (!parsed.ok()) return parsed;
    if (key == "boundary") {
      if (!request->constraint.boundary.Empty()) {
        return Status::InvalidArgument("boundary given twice");
      }
      request->constraint.boundary = std::move(poly);
    } else {
      request->constraint.exclusions.push_back(std::move(poly));
    }
    return Status::Ok();
  }
  if (key == "sweep") {
    if (kind != ServeQueryKind::kWhatIf) {
      return Status::InvalidArgument("sweep applies to WHATIF only");
    }
    return ParseSweepSpec(value, &request->sweep);
  }
  if (key == "layers") {
    request->layers.clear();
    size_t pos = 0;
    while (pos < value.size()) {
      size_t comma = value.find(',', pos);
      if (comma == std::string::npos) comma = value.size();
      if (!ParseI64(value.substr(pos, comma - pos), &i)) {
        return Status::InvalidArgument("bad layers list '" + value + "'");
      }
      request->layers.push_back(static_cast<int32_t>(i));
      pos = comma + 1;
    }
    return Status::Ok();
  }
  if (key == "algo") {
    if (kind == ServeQueryKind::kConstrained) {
      return Status::InvalidArgument(
          "CONSTRAIN is RRB-only (the clipper needs real regions); "
          "algo cannot be set");
    }
    if (value == "ssc") {
      if (kind != ServeQueryKind::kMolq) {
        return Status::InvalidArgument(
            std::string("algo=ssc serves plain SOLVE only; ") +
            KindVerbName(kind) + " needs a MOVD artifact (rrb|mbrb)");
      }
      request->algorithm = MolqAlgorithm::kSsc;
    } else if (value == "rrb") {
      request->algorithm = MolqAlgorithm::kRrb;
    } else if (value == "mbrb") {
      request->algorithm = MolqAlgorithm::kMbrb;
    } else {
      return Status::InvalidArgument("unknown algo '" + value +
                                     "' (want ssc|rrb|mbrb)");
    }
    return Status::Ok();
  }
  if (key == "k") {
    if (kind == ServeQueryKind::kSkyline ||
        kind == ServeQueryKind::kConstrained) {
      return Status::InvalidArgument(
          std::string(KindVerbName(kind)) +
          " has no k (the skyline/constrained answer set is not a "
          "ranking depth)");
    }
    if (!ParseI64(value, &i) || i < 1) {
      return Status::InvalidArgument("bad k '" + value + "'");
    }
    request->topk = static_cast<size_t>(i);
    return Status::Ok();
  }
  if (key == "epsilon") {
    if (!ParseF64(value, &d) || !(d > 0.0)) {
      return Status::InvalidArgument("bad epsilon '" + value + "'");
    }
    request->epsilon = d;
    return Status::Ok();
  }
  if (key == "deadline_ms") {
    if (!ParseF64(value, &d) || d < 0.0) {
      return Status::InvalidArgument("bad deadline_ms '" + value + "'");
    }
    request->deadline_ms = d;
    return Status::Ok();
  }
  if (key == "threads") {
    if (!ParseI64(value, &i) || i < 0) {
      return Status::InvalidArgument("bad threads '" + value + "'");
    }
    request->exec.threads = static_cast<int>(i);
    return Status::Ok();
  }
  if (key == "cache") {
    if (value == "0") {
      request->use_cache = false;
    } else if (value == "1") {
      request->use_cache = true;
    } else {
      return Status::InvalidArgument("bad cache '" + value + "' (want 0|1)");
    }
    return Status::Ok();
  }
  return Status::InvalidArgument(std::string("unknown ") +
                                 KindVerbName(kind) + " argument '" + key +
                                 "'");
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// dataset/set names that come from user-controlled paths.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Status ParseRequestLine(const std::string& line, ServeVerb* verb,
                        ServeRequest* request) {
  const std::vector<std::string> words = SplitWords(line);
  if (words.empty()) {
    return Status::InvalidArgument("empty request line");
  }
  const std::string name = Upper(words[0]);
  if (name == "STATS" || name == "PING" || name == "QUIT" ||
      name == "SHUTDOWN") {
    if (words.size() != 1) {
      return Status::InvalidArgument(name + " takes no arguments");
    }
    *verb = name == "STATS"  ? ServeVerb::kStats
            : name == "PING" ? ServeVerb::kPing
            : name == "QUIT" ? ServeVerb::kQuit
                             : ServeVerb::kShutdown;
    return Status::Ok();
  }
  ServeQueryKind kind;
  if (name == "SOLVE") {
    kind = ServeQueryKind::kMolq;
  } else if (name == "SKYLINE") {
    kind = ServeQueryKind::kSkyline;
  } else if (name == "DIVERSE") {
    kind = ServeQueryKind::kDiverse;
  } else if (name == "CONSTRAIN") {
    kind = ServeQueryKind::kConstrained;
  } else if (name == "WHATIF") {
    kind = ServeQueryKind::kWhatIf;
  } else {
    return Status::InvalidArgument("unknown verb '" + words[0] + "'");
  }
  *verb = ServeVerb::kSolve;
  *request = ServeRequest();
  request->kind = kind;
  bool have_dataset = false;
  bool have_min_dist = false;
  bool have_k = false;
  for (size_t i = 1; i < words.size(); ++i) {
    const size_t eq = words[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("expected key=value, got '" + words[i] +
                                     "'");
    }
    const std::string key = words[i].substr(0, eq);
    const std::string value = words[i].substr(eq + 1);
    Status status = ParseSolveArg(key, value, request);
    if (!status.ok()) return status;
    if (key == "dataset") have_dataset = true;
    if (key == "min_dist") have_min_dist = true;
    if (key == "k") have_k = true;
  }
  if (!have_dataset) {
    return Status::InvalidArgument(name + " requires dataset=<name>");
  }
  if (kind == ServeQueryKind::kDiverse && (!have_min_dist || !have_k)) {
    return Status::InvalidArgument(
        "DIVERSE requires k=<n> and min_dist=<d>");
  }
  if (kind == ServeQueryKind::kConstrained &&
      request->constraint.Unconstrained()) {
    return Status::InvalidArgument(
        "CONSTRAIN requires boundary=<poly> and/or exclude=<poly>");
  }
  if (kind == ServeQueryKind::kWhatIf && request->sweep.empty()) {
    return Status::InvalidArgument("WHATIF requires sweep=<v>|<v>|...");
  }
  return Status::Ok();
}

Status ParsePolygonSpec(const std::string& spec, Polygon* out) {
  std::vector<Point> ring;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string pair = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (pair.empty()) continue;
    const size_t comma = pair.find(',');
    double x = 0.0;
    double y = 0.0;
    if (comma == std::string::npos ||
        !ParseF64(pair.substr(0, comma), &x) ||
        !ParseF64(pair.substr(comma + 1), &y)) {
      return Status::InvalidArgument("bad polygon vertex '" + pair +
                                     "' (want x,y)");
    }
    ring.push_back(Point{x, y});
  }
  if (ring.size() < 3) {
    return Status::InvalidArgument(
        "polygon needs >= 3 vertices ('x,y;x,y;x,y...')");
  }
  *out = Polygon(std::move(ring));
  return Status::Ok();
}

Status ParseSweepSpec(const std::string& spec,
                      std::vector<std::vector<double>>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t bar = spec.find('|', pos);
    if (bar == std::string::npos) bar = spec.size();
    const std::string vec = spec.substr(pos, bar - pos);
    pos = bar + 1;
    std::vector<double> scales;
    size_t vpos = 0;
    while (vpos <= vec.size()) {
      size_t comma = vec.find(',', vpos);
      if (comma == std::string::npos) comma = vec.size();
      const std::string tok = vec.substr(vpos, comma - vpos);
      vpos = comma + 1;
      if (tok.empty()) continue;
      double d = 0.0;
      if (!ParseF64(tok, &d)) {
        return Status::InvalidArgument("bad sweep scale '" + tok + "'");
      }
      scales.push_back(d);
    }
    if (scales.empty()) {
      return Status::InvalidArgument(
          "empty sweep vector (want s,s,...|s,s,...)");
    }
    out->push_back(std::move(scales));
  }
  return Status::Ok();
}

std::string AnswerJson(const MolqQuery& query, const ServeAnswer& answer) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"location\": [%.6f, %.6f], \"cost\": %.6f, \"group\": [",
                answer.location.x, answer.location.y, answer.cost);
  std::string out = buf;
  for (size_t i = 0; i < answer.group.size(); ++i) {
    const PoiRef& ref = answer.group[i];
    MOVD_CHECK_MSG(ref.set >= 0 &&
                       static_cast<size_t>(ref.set) < query.sets.size(),
                   "answer group references a set outside its query");
    const ObjectSet& set = query.sets[static_cast<size_t>(ref.set)];
    const SpatialObject& obj = set.objects[static_cast<size_t>(ref.object)];
    if (i > 0) out += ", ";
    out += "{\"set\": \"" + JsonEscape(set.name) + "\", ";
    std::snprintf(buf, sizeof(buf), "\"index\": %d, \"at\": [%.6f, %.6f]}",
                  ref.object, obj.location.x, obj.location.y);
    out += buf;
  }
  out += "]";
  // Present only for query-algebra answers, so plain-MOLQ responses keep
  // their exact historical bytes.
  if (!answer.criteria.empty()) {
    out += ", \"criteria\": [";
    for (size_t i = 0; i < answer.criteria.size(); ++i) {
      if (i > 0) out += ", ";
      std::snprintf(buf, sizeof(buf), "%.6f", answer.criteria[i]);
      out += buf;
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string ResponseJson(const MolqQuery& query, const ServeResponse& resp,
                         bool include_timing) {
  std::string out;
  if (!resp.sweep_answers.empty()) {
    // A what-if sweep: one ranking array per weight vector.
    out = "{\"sweeps\": [";
    for (size_t v = 0; v < resp.sweep_answers.size(); ++v) {
      if (v > 0) out += ", ";
      out += "[";
      for (size_t i = 0; i < resp.sweep_answers[v].size(); ++i) {
        if (i > 0) out += ", ";
        out += AnswerJson(query, resp.sweep_answers[v][i]);
      }
      out += "]";
    }
  } else {
    out = "{\"answers\": [";
    for (size_t i = 0; i < resp.answers.size(); ++i) {
      if (i > 0) out += ", ";
      out += AnswerJson(query, resp.answers[i]);
    }
  }
  if (!include_timing) {
    out += "]}";
    return out;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "], \"cache_hit\": %s, \"seconds\": %.6f}",
                resp.cache_hit ? "true" : "false", resp.seconds);
  out += buf;
  return out;
}

std::string FormatResponseLine(const MolqQuery* query,
                               const ServeResponse& resp) {
  if (resp.status == ServeStatus::kOk) {
    MOVD_CHECK_MSG(query != nullptr,
                   "an OK response needs its query to resolve group refs");
    return "OK " + resp.id + " " + ResponseJson(*query, resp);
  }
  std::string out =
      "ERR " + resp.id + " " + ServeStatusName(resp.status);
  if (!resp.error.empty()) out += " " + resp.error;
  return out;
}

}  // namespace movd
