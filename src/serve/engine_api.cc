#include "serve/engine_api.h"

namespace movd {

ServeQueryKind EngineRequestKind(const EngineRequest& request) {
  struct Visitor {
    ServeQueryKind operator()(const SolveSpec&) const {
      return ServeQueryKind::kMolq;
    }
    ServeQueryKind operator()(const SkylineSpec&) const {
      return ServeQueryKind::kSkyline;
    }
    ServeQueryKind operator()(const DiverseSpec&) const {
      return ServeQueryKind::kDiverse;
    }
    ServeQueryKind operator()(const ConstrainSpec&) const {
      return ServeQueryKind::kConstrained;
    }
    ServeQueryKind operator()(const WhatIfSpec&) const {
      return ServeQueryKind::kWhatIf;
    }
    ServeQueryKind operator()(const SiteMutation&) const {
      return ServeQueryKind::kMolq;
    }
  };
  return std::visit(Visitor{}, request.op);
}

bool IsMutation(const EngineRequest& request) {
  return std::holds_alternative<SiteMutation>(request.op);
}

ServeRequest FlattenRequest(const EngineRequest& request) {
  ServeRequest flat;
  flat.id = request.id;
  flat.dataset = request.dataset;
  flat.layers = request.layers;
  flat.epsilon = request.epsilon;
  flat.exec = request.exec;
  flat.deadline_ms = request.deadline_ms;
  flat.use_cache = request.use_cache;
  flat.cost_units = request.cost_units;
  struct Visitor {
    ServeRequest* flat;
    void operator()(const SolveSpec& op) const {
      flat->kind = ServeQueryKind::kMolq;
      flat->algorithm = op.algorithm;
      flat->topk = op.topk;
    }
    void operator()(const SkylineSpec& op) const {
      flat->kind = ServeQueryKind::kSkyline;
      flat->algorithm = op.algorithm;
    }
    void operator()(const DiverseSpec& op) const {
      flat->kind = ServeQueryKind::kDiverse;
      flat->algorithm = op.algorithm;
      flat->topk = op.topk;
      flat->min_distance = op.min_distance;
    }
    void operator()(const ConstrainSpec& op) const {
      flat->kind = ServeQueryKind::kConstrained;
      flat->algorithm = MolqAlgorithm::kRrb;  // CONSTRAIN is RRB-only
      flat->constraint = op.constraint;
    }
    void operator()(const WhatIfSpec& op) const {
      flat->kind = ServeQueryKind::kWhatIf;
      flat->algorithm = op.algorithm;
      flat->topk = op.topk;
      flat->sweep = op.sweep;
    }
    void operator()(const SiteMutation& op) const {
      flat->mutate = true;
      flat->mutation = op;
    }
  };
  std::visit(Visitor{&flat}, request.op);
  return flat;
}

}  // namespace movd
