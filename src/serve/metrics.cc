#include "serve/metrics.h"

#include "util/check.h"
#include "util/table.h"

namespace movd {
namespace {

// Microsecond upper bound of bucket i: 2^i (bucket 0 catches sub-1us).
uint64_t BucketBoundUs(int i) { return 1ull << i; }

}  // namespace

void LatencyHistogram::Record(double seconds) {
  const double us = seconds * 1e6;
  int bucket = 0;
  while (bucket < kBuckets - 1 &&
         us >= static_cast<double>(BucketBoundUs(bucket))) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

uint64_t LatencyHistogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::PercentileSeconds(double p) const {
  MOVD_CHECK_MSG(p > 0.0 && p <= 100.0,
                 "percentile must be in (0, 100]");
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  // Rank of the percentile observation, 1-based, rounded up.
  const uint64_t rank =
      static_cast<uint64_t>((p / 100.0) * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      return static_cast<double>(BucketBoundUs(i)) * 1e-6;
    }
  }
  return static_cast<double>(BucketBoundUs(kBuckets - 1)) * 1e-6;
}

std::string LatencyHistogram::Json() const {
  std::string out = "[";
  for (int i = 0; i < kBuckets; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(buckets_[i].load(std::memory_order_relaxed));
  }
  out += "]";
  return out;
}

void ServeMetrics::RecordRequest(ServeStatus status, double seconds,
                                 bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (status) {
    case StatusCode::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      // The serving path cancels work *because* the deadline fired, so a
      // surfaced kCancelled is the same client-visible outcome.
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
      invalid_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:  // kDataLoss, kIoError, kInternal: the server's fault
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (cache_hit) overlay_hits_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(seconds);
}

void ServeMetrics::RecordPhases(double overlay_seconds,
                                double optimize_seconds) {
  overlay_latency_.Record(overlay_seconds);
  optimize_latency_.Record(optimize_seconds);
}

std::string ServeMetrics::Json(const ArtifactCache::Stats& cache) const {
  char buf[256];
  std::string out = "{";
  const auto field = [&out](const char* name, uint64_t v, bool first = false) {
    if (!first) out += ",";
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  field("requests", requests(), /*first=*/true);
  field("ok", ok());
  field("deadline_exceeded", deadline_exceeded());
  field("invalid", invalid());
  field("internal_errors", internal_errors());
  field("overlay_cache_hits", overlay_hits());
  field("cache_hits", cache.hits);
  field("cache_misses", cache.misses);
  field("cache_evictions", cache.evictions);
  field("cache_inserts", cache.inserts);
  field("cache_oversize", cache.oversize);
  field("cache_wait_timeouts", cache.wait_timeouts);
  field("cache_bytes", cache.bytes);
  field("cache_capacity", cache.capacity);
  field("cache_entries", cache.entries);
  std::snprintf(buf, sizeof(buf), ",\"p50_ms\":%.3f,\"p99_ms\":%.3f",
                latency_.PercentileSeconds(50) * 1e3,
                latency_.PercentileSeconds(99) * 1e3);
  out += buf;
  // Per-phase split (overlay-artifact phase vs Optimizer phase) of OK
  // pipeline requests — the tracing subsystem's aggregate view, exported
  // through STATS so dashboards see where serve time goes.
  std::snprintf(buf, sizeof(buf),
                ",\"overlay_p50_ms\":%.3f,\"overlay_p99_ms\":%.3f"
                ",\"optimize_p50_ms\":%.3f,\"optimize_p99_ms\":%.3f",
                overlay_latency_.PercentileSeconds(50) * 1e3,
                overlay_latency_.PercentileSeconds(99) * 1e3,
                optimize_latency_.PercentileSeconds(50) * 1e3,
                optimize_latency_.PercentileSeconds(99) * 1e3);
  out += buf;
  out += ",\"latency_buckets\":" + latency_.Json();
  out += "}";
  return out;
}

void ServeMetrics::DumpTable(std::FILE* out,
                             const ArtifactCache::Stats& cache) const {
  Table table({"metric", "value"});
  const auto row = [&table](const std::string& name, uint64_t v) {
    table.AddRow({name, std::to_string(v)});
  };
  row("requests", requests());
  row("ok", ok());
  row("deadline_exceeded", deadline_exceeded());
  row("invalid", invalid());
  row("internal_errors", internal_errors());
  row("overlay_cache_hits", overlay_hits());
  table.AddRow({"p50", Table::Fmt(latency_.PercentileSeconds(50) * 1e3, 3) +
                           "ms"});
  table.AddRow({"p99", Table::Fmt(latency_.PercentileSeconds(99) * 1e3, 3) +
                           "ms"});
  table.AddRow(
      {"overlay p50",
       Table::Fmt(overlay_latency_.PercentileSeconds(50) * 1e3, 3) + "ms"});
  table.AddRow(
      {"optimize p50",
       Table::Fmt(optimize_latency_.PercentileSeconds(50) * 1e3, 3) + "ms"});
  row("cache hits", cache.hits);
  row("cache misses", cache.misses);
  row("cache evictions", cache.evictions);
  row("cache resident bytes", cache.bytes);
  row("cache resident entries", cache.entries);
  table.Print(out);
}

}  // namespace movd
