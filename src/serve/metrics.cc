#include "serve/metrics.h"

#include "util/table.h"

namespace movd {

void ServeMetrics::RecordRequest(ServeStatus status, double seconds,
                                 bool cache_hit) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (status) {
    case StatusCode::kOk:
      ok_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
      // The serving path cancels work *because* the deadline fired, so a
      // surfaced kCancelled is the same client-visible outcome.
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kUnsupportedVerb:
      invalid_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:  // kDataLoss, kIoError, kInternal: the server's fault
      internal_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (cache_hit) overlay_hits_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(seconds);
}

void ServeMetrics::RecordMutation() {
  mutations_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::MergeFrom(const ServeMetrics& other) {
  const auto add = [](std::atomic<uint64_t>& into,
                      const std::atomic<uint64_t>& from) {
    into.fetch_add(from.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  };
  add(requests_, other.requests_);
  add(ok_, other.ok_);
  add(deadline_exceeded_, other.deadline_exceeded_);
  add(invalid_, other.invalid_);
  add(internal_errors_, other.internal_errors_);
  add(shed_, other.shed_);
  add(mutations_, other.mutations_);
  add(overlay_hits_, other.overlay_hits_);
  latency_.MergeFrom(other.latency_);
  overlay_latency_.MergeFrom(other.overlay_latency_);
  optimize_latency_.MergeFrom(other.optimize_latency_);
}

void ServeMetrics::RecordPhases(double overlay_seconds,
                                double optimize_seconds) {
  overlay_latency_.Record(overlay_seconds);
  optimize_latency_.Record(optimize_seconds);
}

std::string ServeMetrics::Json(const ArtifactCache::Stats& cache) const {
  char buf[256];
  std::string out = "{";
  const auto field = [&out](const char* name, uint64_t v, bool first = false) {
    if (!first) out += ",";
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  field("requests", requests(), /*first=*/true);
  field("ok", ok());
  field("deadline_exceeded", deadline_exceeded());
  field("invalid", invalid());
  field("internal_errors", internal_errors());
  field("shed", shed());
  field("mutations", mutations());
  field("overlay_cache_hits", overlay_hits());
  field("cache_hits", cache.hits);
  field("cache_misses", cache.misses);
  field("cache_evictions", cache.evictions);
  field("cache_inserts", cache.inserts);
  field("cache_oversize", cache.oversize);
  field("cache_wait_timeouts", cache.wait_timeouts);
  field("cache_bytes", cache.bytes);
  field("cache_capacity", cache.capacity);
  field("cache_entries", cache.entries);
  std::snprintf(buf, sizeof(buf), ",\"p50_ms\":%.3f,\"p99_ms\":%.3f",
                latency_.PercentileSeconds(50) * 1e3,
                latency_.PercentileSeconds(99) * 1e3);
  out += buf;
  // Per-phase split (overlay-artifact phase vs Optimizer phase) of OK
  // pipeline requests — the tracing subsystem's aggregate view, exported
  // through STATS so dashboards see where serve time goes.
  std::snprintf(buf, sizeof(buf),
                ",\"overlay_p50_ms\":%.3f,\"overlay_p99_ms\":%.3f"
                ",\"optimize_p50_ms\":%.3f,\"optimize_p99_ms\":%.3f",
                overlay_latency_.PercentileSeconds(50) * 1e3,
                overlay_latency_.PercentileSeconds(99) * 1e3,
                optimize_latency_.PercentileSeconds(50) * 1e3,
                optimize_latency_.PercentileSeconds(99) * 1e3);
  out += buf;
  out += ",\"latency_buckets\":" + latency_.Json();
  out += "}";
  return out;
}

void ServeMetrics::DumpTable(std::FILE* out,
                             const ArtifactCache::Stats& cache) const {
  Table table({"metric", "value"});
  const auto row = [&table](const std::string& name, uint64_t v) {
    table.AddRow({name, std::to_string(v)});
  };
  row("requests", requests());
  row("ok", ok());
  row("deadline_exceeded", deadline_exceeded());
  row("invalid", invalid());
  row("internal_errors", internal_errors());
  row("shed", shed());
  row("mutations", mutations());
  row("overlay_cache_hits", overlay_hits());
  table.AddRow({"p50", Table::Fmt(latency_.PercentileSeconds(50) * 1e3, 3) +
                           "ms"});
  table.AddRow({"p99", Table::Fmt(latency_.PercentileSeconds(99) * 1e3, 3) +
                           "ms"});
  table.AddRow(
      {"overlay p50",
       Table::Fmt(overlay_latency_.PercentileSeconds(50) * 1e3, 3) + "ms"});
  table.AddRow(
      {"optimize p50",
       Table::Fmt(optimize_latency_.PercentileSeconds(50) * 1e3, 3) + "ms"});
  row("cache hits", cache.hits);
  row("cache misses", cache.misses);
  row("cache evictions", cache.evictions);
  row("cache resident bytes", cache.bytes);
  row("cache resident entries", cache.entries);
  table.Print(out);
}

}  // namespace movd
