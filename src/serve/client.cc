#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace movd {
namespace {

/// Wire name -> code, the inverse of StatusCodeName. The two INVALID /
/// INTERNAL spellings are value aliases in the enum, so the canonical
/// serve spellings cover every code the server can emit.
bool StatusCodeFromName(const std::string& name, StatusCode* out) {
  static const struct {
    const char* name;
    StatusCode code;
  } kCodes[] = {
      {"OK", StatusCode::kOk},
      {"CANCELLED", StatusCode::kCancelled},
      {"INVALID_REQUEST", StatusCode::kInvalidArgument},
      {"DEADLINE_EXCEEDED", StatusCode::kDeadlineExceeded},
      {"NOT_FOUND", StatusCode::kNotFound},
      {"DATA_LOSS", StatusCode::kDataLoss},
      {"IO_ERROR", StatusCode::kIoError},
      {"INTERNAL_ERROR", StatusCode::kInternal},
      {"OVERLOADED", StatusCode::kOverloaded},
      {"UNSUPPORTED_VERB", StatusCode::kUnsupportedVerb},
  };
  for (const auto& entry : kCodes) {
    if (name == entry.name) {
      *out = entry.code;
      return true;
    }
  }
  return false;
}

/// The deterministic answers/sweeps slice of an OK body (see
/// ClientResponse::answers).
std::string AnswersSlice(const std::string& body) {
  size_t begin = body.find("\"answers\": ");
  if (begin == std::string::npos) begin = body.find("\"sweeps\": ");
  const size_t end = body.rfind(", \"cache_hit\"");
  if (begin == std::string::npos || end == std::string::npos ||
      end <= begin) {
    return body;  // control/mutation body: compare it whole
  }
  return body.substr(begin, end - begin);
}

/// The "version" field of an OK body, or 0 when absent.
uint64_t BodyVersion(const std::string& body) {
  static const char kNeedle[] = "\"version\": ";
  const size_t pos = body.find(kNeedle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(body.c_str() + pos + sizeof(kNeedle) - 1, nullptr,
                       10);
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status ParseResponseLine(const std::string& line, ClientResponse* out) {
  *out = ClientResponse();
  const bool is_ok = line.rfind("OK ", 0) == 0;
  const bool is_err = line.rfind("ERR ", 0) == 0;
  if (!is_ok && !is_err) {
    return Status::Internal("garbled response line '" + line + "'");
  }
  const size_t id_begin = is_ok ? 3 : 4;
  const size_t id_end = line.find(' ', id_begin);
  if (id_end == std::string::npos) {
    return Status::Internal("response line without a body: '" + line + "'");
  }
  out->id = line.substr(id_begin, id_end - id_begin);
  if (is_ok) {
    out->body = line.substr(id_end + 1);
    out->answers = AnswersSlice(out->body);
    out->version = BodyVersion(out->body);
    return Status::Ok();
  }
  const size_t code_end = line.find(' ', id_end + 1);
  const std::string code_name =
      line.substr(id_end + 1, code_end == std::string::npos
                                  ? std::string::npos
                                  : code_end - id_end - 1);
  StatusCode code = StatusCode::kInternal;
  if (!StatusCodeFromName(code_name, &code)) {
    return Status::Internal("unknown status code in '" + line + "'");
  }
  out->status = Status(
      code, code_end == std::string::npos ? "" : line.substr(code_end + 1));
  return Status::Ok();
}

ServeClient::~ServeClient() { Close(); }

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status ServeClient::Connect(const std::string& socket_path) {
  Close();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = Status::IoError("connect " + socket_path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  fd_ = fd;
  return Status::Ok();
}

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status ServeClient::CallLine(const std::string& request_line,
                             std::string* response_line) {
  if (fd_ < 0) return Status::IoError("not connected");
  std::string wire = request_line;
  if (wire.empty() || wire.back() != '\n') wire += '\n';
  if (!SendAll(fd_, wire)) {
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *response_line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return Status::Ok();
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IoError(n == 0 ? "connection closed mid-response"
                                    : std::string("recv: ") +
                                          std::strerror(errno));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status ServeClient::Call(const EngineRequest& request, ClientResponse* out) {
  std::string line;
  const Status called = CallLine(FormatRequestLine(request), &line);
  if (!called.ok()) return called;
  return ParseResponseLine(line, out);
}

Status ServeClient::Ping() {
  std::string line;
  const Status called = CallLine("PING", &line);
  if (!called.ok()) return called;
  ClientResponse resp;
  const Status parsed = ParseResponseLine(line, &resp);
  if (!parsed.ok()) return parsed;
  return resp.status;
}

Status ServeClient::Stats(std::string* body) {
  std::string line;
  const Status called = CallLine("STATS", &line);
  if (!called.ok()) return called;
  ClientResponse resp;
  const Status parsed = ParseResponseLine(line, &resp);
  if (!parsed.ok()) return parsed;
  if (resp.status.ok()) *body = resp.body;
  return resp.status;
}

Status ServeClient::Help(std::string* body) {
  std::string line;
  const Status called = CallLine("HELP", &line);
  if (!called.ok()) return called;
  ClientResponse resp;
  const Status parsed = ParseResponseLine(line, &resp);
  if (!parsed.ok()) return parsed;
  if (resp.status.ok()) *body = resp.body;
  return resp.status;
}

Status ServeClient::Shutdown() {
  std::string line;
  // The farewell line is drained so the server finishes its write
  // cleanly; its content does not matter.
  return CallLine("SHUTDOWN", &line);
}

}  // namespace movd
