#ifndef MOVD_SERVE_CLIENT_H_
#define MOVD_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/engine_api.h"
#include "serve/protocol.h"
#include "util/status.h"

namespace movd {

/// Typed client for the movd_serve line protocol: the request side of the
/// typed engine API (serve/engine_api.h) over a Unix-domain socket. A
/// caller builds an EngineRequest exactly as an in-process Engine caller
/// would, Call() puts it on the wire (FormatRequestLine) and parses the
/// response line back into a structured ClientResponse, so tools like
/// movd_loadgen and the CI serve-smoke driver never hand-roll protocol
/// strings. One ServeClient is one connection; it is not thread-safe (the
/// protocol is strictly one response per request per connection) — use one
/// client per thread.

/// One parsed response line. `status` is the SERVER's verdict: kOk for an
/// "OK <id> <body>" line, or the wire code + detail of an "ERR <id> <CODE>
/// <detail>" line (e.g. kDeadlineExceeded, kOverloaded). Transport and
/// parse failures are reported by the Call/ParseResponseLine return value
/// instead, so the two failure planes cannot be confused.
struct ClientResponse {
  Status status;
  std::string id;    ///< the echoed request id ("-" for control verbs)
  std::string body;  ///< raw body of an OK line (JSON, or "pong")
  /// The deterministic answer slice of `body` — the "answers"/"sweeps"
  /// array without the cache_hit/version/seconds tail (which legitimately
  /// varies per request). Two OK responses for the same request shape and
  /// the same `version` must have identical slices; that is the serving
  /// determinism contract movd_loadgen --check enforces. Falls back to the
  /// whole body when the markers are absent (control and mutation bodies).
  std::string answers;
  uint64_t version = 0;  ///< the body's "version" field; 0 when absent
};

/// Parses one response line ("OK ..."/"ERR ...") into `out`. Returns
/// non-OK only when the line fits neither form — a malformed CODE in an
/// ERR line maps to kInternal (the server never emits one).
Status ParseResponseLine(const std::string& line, ClientResponse* out);

/// One connection to a movd_serve Unix-domain socket.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  Status Connect(const std::string& socket_path);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one typed request and parses the reply. The return value is
  /// the transport/parse status; the server's verdict (including ERR
  /// responses, which are a normal part of the protocol) is
  /// out->status.
  Status Call(const EngineRequest& request, ClientResponse* out);

  /// Sends one raw protocol line (newline appended if missing) and reads
  /// one response line (without its newline). The escape hatch for
  /// malformed-input tests; typed callers use Call().
  Status CallLine(const std::string& request_line,
                  std::string* response_line);

  /// Control verbs. Stats/Help fill `body` with the JSON body.
  Status Ping();
  Status Stats(std::string* body);
  Status Help(std::string* body);
  /// Asks the server to stop, draining its farewell line.
  Status Shutdown();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last parsed line
};

}  // namespace movd

#endif  // MOVD_SERVE_CLIENT_H_
