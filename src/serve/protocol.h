#ifndef MOVD_SERVE_PROTOCOL_H_
#define MOVD_SERVE_PROTOCOL_H_

#include <string>

#include "serve/query_engine.h"
#include "util/status.h"

namespace movd {

/// The movd_serve line protocol (one request per line, one response line
/// per request; UTF-8, '\n'-terminated, no binary framing):
///
///   SOLVE id=<tok> dataset=<name> [layers=0,2] [algo=ssc|rrb|mbrb]
///         [k=1] [epsilon=1e-3] [deadline_ms=0] [threads=1] [cache=0|1]
///   STATS            -> OK - <metrics json>
///   PING             -> OK - pong
///   QUIT             -> closes this connection
///   SHUTDOWN         -> stops the whole server
///
/// SOLVE responses:
///   OK <id> {"answers":[...],"cache_hit":...,"seconds":...}
///   ERR <id> <STATUS> <detail...>        (status per ServeStatusName)
enum class ServeVerb {
  kSolve,
  kStats,
  kPing,
  kQuit,
  kShutdown,
};

/// Parses one request line. On success fills `verb` (and, for SOLVE,
/// `request`) and returns OK; on failure returns kInvalidRequest with the
/// problem in the status message. Verbs are case-insensitive; SOLVE
/// arguments are space-separated key=value pairs and unknown keys are
/// rejected (a misspelled option must not silently fall back to a
/// default).
Status ParseRequestLine(const std::string& line, ServeVerb* verb,
                        ServeRequest* request);

/// One answer as a JSON object — the serializer shared by the server's
/// SOLVE responses and molq_cli --json, so both fronts emit byte-identical
/// records: {"location": [x, y], "cost": c, "group": [{"set": <name>,
/// "index": i, "at": [x, y]}, ...]}. `query` resolves group refs to set
/// names and object locations; it must be the query the answer was
/// computed against.
std::string AnswerJson(const MolqQuery& query, const ServeAnswer& answer);

/// The body of an OK SOLVE response: {"answers": [...], "cache_hit": ...,
/// "seconds": ...}. With include_timing=false the cache_hit/seconds pair
/// is omitted, leaving only deterministic answer bytes — molq_cli --json
/// uses this so its stdout is byte-identical run to run (and with or
/// without --trace), which scripted diffs rely on.
std::string ResponseJson(const MolqQuery& query, const ServeResponse& resp,
                         bool include_timing = true);

/// Formats one full response line (without the trailing newline):
/// "OK <id> <json>" on success, "ERR <id> <STATUS> <detail>" otherwise.
/// `query` may be null only for non-kOk responses (no answers to resolve).
std::string FormatResponseLine(const MolqQuery* query,
                               const ServeResponse& resp);

}  // namespace movd

#endif  // MOVD_SERVE_PROTOCOL_H_
