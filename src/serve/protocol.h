#ifndef MOVD_SERVE_PROTOCOL_H_
#define MOVD_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/query_engine.h"
#include "util/status.h"

namespace movd {

/// The movd_serve line protocol (one request per line, one response line
/// per request; UTF-8, '\n'-terminated, no binary framing):
///
///   SOLVE id=<tok> dataset=<name> [layers=0,2] [algo=ssc|rrb|mbrb]
///         [k=1] [epsilon=1e-3] [deadline_ms=0] [threads=1] [cache=0|1]
///         [rect=x0,y0;x1,y1]                              (protocol v3)
///   SKYLINE   id= dataset= [layers=] [algo=rrb|mbrb] [epsilon=] ...
///   DIVERSE   id= dataset= k=<n> min_dist=<d> [layers=] [algo=rrb|mbrb]
///             [rect=] ...
///   CONSTRAIN id= dataset= [boundary=<poly>] [exclude=<poly>]...
///             [layers=] [epsilon=] [rect=] ...    (RRB only; at least one
///             of boundary=/exclude= required; exclude= may repeat)
///   WHATIF    id= dataset= sweep=<v>|<v>|... [k=1] [layers=] ...
///   INSERT    id= dataset= layer=<i> x=<f> y=<f>        (protocol v2)
///   DELETE    id= dataset= layer=<i> x=<f> y=<f>        (protocol v2)
///   STATS            -> OK - <metrics json>
///   HELP             -> OK - <verb registry json>        (protocol v2)
///   PING             -> OK - pong
///   QUIT             -> closes this connection
///   SHUTDOWN         -> stops the whole server
///
/// <poly> is "x,y;x,y;x,y..." (>= 3 CCW vertices); <v> is one
/// comma-separated scale factor per selected layer. rect= is an optional
/// locality hint on the shard-routable verbs (SOLVE/DIVERSE/CONSTRAIN): a
/// sharded server routes the request to the shard region owning the
/// rect's center (DESIGN.md §15). It never changes the answer — answers
/// are bit-identical for any shard count — only which shard's cache and
/// worker pool serve it. The query-shape verbs
/// share SOLVE's common keys (minus algo restrictions above and k, which
/// SKYLINE/CONSTRAIN reject) and all parse to ServeVerb::kSolve with
/// ServeRequest::kind set — the serving loop treats every shape alike.
/// INSERT/DELETE also parse to ServeVerb::kSolve with
/// ServeRequest::mutate set: a mutation rides the same dispatch (and the
/// same admission control) as a query, it just takes the engine's
/// mutation path instead of the solver.
///
/// Every verb is one row of VerbRegistry() below; parsing, argument
/// validation, error messages, HELP output, and movd_loadgen's --mix
/// vocabulary all derive from that table, so adding a verb is a one-row
/// change.
///
/// SOLVE/SKYLINE/DIVERSE/CONSTRAIN responses:
///   OK <id> {"answers":[...],"cache_hit":...,"version":...,"seconds":...}
/// WHATIF responses:
///   OK <id> {"sweeps":[[...],...],"cache_hit":...,"version":...,
///            "seconds":...}
/// INSERT/DELETE responses:
///   OK <id> {"version":...,"recomputed_cells":...,
///            "patched_artifacts":...,"dropped_artifacts":...,
///            "seconds":...}
/// errors:
///   ERR <id> <STATUS> <detail...>        (status per ServeStatusName;
///   unknown verbs answer UNSUPPORTED_VERB, shed requests OVERLOADED)
///
/// "version" is the dataset snapshot version the response was computed
/// against: queries pin one immutable snapshot for their whole solve, so
/// answers are bit-identical under concurrent mutation, and a mutation
/// response names the snapshot it published.
enum class ServeVerb {
  kSolve,
  kStats,
  kHelp,
  kPing,
  kQuit,
  kShutdown,
};

/// Version of the line protocol this build speaks. v1: the query verbs.
/// v2: INSERT/DELETE mutations, HELP, the "version" response field, and
/// UNSUPPORTED_VERB for unknown verbs. v3: the rect= routing hint on
/// SOLVE/DIVERSE/CONSTRAIN.
inline constexpr int kServeProtocolVersion = 3;

/// Argument keys a verb may take, as bits (VerbDescriptor::allowed_args /
/// required_args / required_any are masks of these).
enum ServeArg : uint32_t {
  kArgId = 1u << 0,
  kArgDataset = 1u << 1,
  kArgLayers = 1u << 2,
  kArgAlgo = 1u << 3,
  kArgK = 1u << 4,
  kArgEpsilon = 1u << 5,
  kArgDeadlineMs = 1u << 6,
  kArgThreads = 1u << 7,
  kArgCache = 1u << 8,
  kArgMinDist = 1u << 9,
  kArgBoundary = 1u << 10,
  kArgExclude = 1u << 11,
  kArgSweep = 1u << 12,
  kArgLayer = 1u << 13,
  kArgX = 1u << 14,
  kArgY = 1u << 15,
  kArgRect = 1u << 16,
};

/// Capability flags of a verb.
enum ServeVerbCaps : uint32_t {
  /// Mutates a dataset and publishes a new snapshot version (INSERT,
  /// DELETE). Parsed into ServeRequest::mutate/mutation.
  kCapMutation = 1u << 0,
  /// Needs a MOVD overlay artifact, so algo=ssc is rejected (every
  /// query-algebra shape; plain SOLVE can fall back to the SSC scan).
  kCapRequiresOverlay = 1u << 1,
  /// Zero-argument control verb handled by the serving loop itself
  /// (STATS, HELP, PING, QUIT, SHUTDOWN); never reaches the engine.
  kCapControl = 1u << 2,
};

/// One row of the verb registry: everything the protocol knows about a
/// verb. Parsing, per-verb argument validation, structured error
/// messages, HELP output, and the load generator's --mix vocabulary all
/// derive from these rows.
struct VerbDescriptor {
  const char* name;        ///< wire keyword, upper-case ("SOLVE")
  int since_version;       ///< protocol version that introduced the verb
  ServeVerb verb;          ///< dispatch class for the serving loop
  ServeQueryKind kind;     ///< query shape (non-control, non-mutation)
  MutationKind mutation;   ///< mutation kind (kCapMutation verbs)
  uint32_t caps;           ///< ServeVerbCaps bits
  uint32_t allowed_args;   ///< ServeArg bits the verb accepts
  uint32_t required_args;  ///< ServeArg bits that must all be present
  uint32_t required_any;   ///< at least one of these bits must be present
  int cost_units;          ///< admission-control cost class
  const char* summary;     ///< one-line description for HELP
};

/// The verb table, in HELP display order. One row per verb; append a row
/// to add a verb.
const std::vector<VerbDescriptor>& VerbRegistry();

/// Registry lookup by upper-cased wire keyword; null when unknown.
const VerbDescriptor* FindVerb(const std::string& upper_name);

/// The HELP response body: {"protocol_version": ..., "verbs": [...]}
/// derived entirely from VerbRegistry().
std::string HelpJson();

/// Parses one request line into the typed API form. On success fills
/// `verb` (and, for solve-class verbs including mutations, `request` —
/// envelope plus the per-verb EngineOp variant built from the registry
/// row) and returns OK; on failure returns kInvalidRequest (malformed
/// arguments) or kUnsupportedVerb (a verb not in the registry) with the
/// problem in the status message. Verbs are case-insensitive; arguments
/// are space-separated key=value pairs and unknown keys are rejected (a
/// misspelled option must not silently fall back to a default).
Status ParseRequest(const std::string& line, ServeVerb* verb,
                    EngineRequest* request);

/// Compat shim over ParseRequest for callers that want the flat execution
/// form directly: identical parse, then FlattenRequest. The routing hint
/// (rect=) is accepted and dropped — it only exists in the typed form.
Status ParseRequestLine(const std::string& line, ServeVerb* verb,
                        ServeRequest* request);

/// Parses a "x0,y0;x1,y1" rect spec (two finite corners, min <= max per
/// axis) into `out` — the wire form of EngineRequest::routing_rect.
Status ParseRectSpec(const std::string& spec, Rect* out);

/// Formats a typed request as one wire line (no trailing newline) — the
/// inverse of ParseRequest, and what the typed client library
/// (serve/client.h) sends. Argument emission is gated by the verb's
/// registry row (a key the registry does not allow is never emitted) and
/// doubles print with %.17g, so ParseRequest(FormatRequestLine(r))
/// rebuilds `r` exactly for any request that satisfies its verb's
/// requirements (e.g. a CONSTRAIN with a boundary or an exclusion).
std::string FormatRequestLine(const EngineRequest& request);

/// Parses a "x,y;x,y;x,y..." polygon spec (>= 3 vertices, finite doubles)
/// into a CCW Polygon. Orientation/area checks are NOT applied here — the
/// engine runs ValidateConstraint so protocol parsing and constraint
/// semantics stay separable. Shared with molq_cli --allow/--exclude.
Status ParsePolygonSpec(const std::string& spec, Polygon* out);

/// Parses a "s,s,...|s,s,...|..." sweep spec: '|' separates vectors, ','
/// separates per-layer scale factors. Finiteness/positivity are checked by
/// the engine against the dataset's weight functions. Shared with
/// molq_cli whatif.
Status ParseSweepSpec(const std::string& spec,
                      std::vector<std::vector<double>>* out);

/// One answer as a JSON object — the serializer shared by the server's
/// SOLVE responses and molq_cli --json, so both fronts emit byte-identical
/// records: {"location": [x, y], "cost": c, "group": [{"set": <name>,
/// "index": i, "at": [x, y]}, ...]}. `query` resolves group refs to set
/// names and object locations; it must be the query the answer was
/// computed against.
std::string AnswerJson(const MolqQuery& query, const ServeAnswer& answer);

/// The body of an OK SOLVE response: {"answers": [...], "cache_hit": ...,
/// "version": ..., "seconds": ...}. With include_timing=false the
/// cache_hit/version/seconds tail is omitted, leaving only deterministic
/// answer bytes — molq_cli --json uses this so its stdout is
/// byte-identical run to run (and with or without --trace), which
/// scripted diffs rely on.
std::string ResponseJson(const MolqQuery& query, const ServeResponse& resp,
                         bool include_timing = true);

/// Formats one full response line (without the trailing newline):
/// "OK <id> <json>" on success, "ERR <id> <STATUS> <detail>" otherwise.
/// `query` may be null for non-kOk responses and for mutation responses
/// (neither has answers to resolve); use the response's pinned snapshot
/// query otherwise.
std::string FormatResponseLine(const MolqQuery* query,
                               const ServeResponse& resp);

}  // namespace movd

#endif  // MOVD_SERVE_PROTOCOL_H_
