#ifndef MOVD_SERVE_PROTOCOL_H_
#define MOVD_SERVE_PROTOCOL_H_

#include <string>

#include "serve/query_engine.h"
#include "util/status.h"

namespace movd {

/// The movd_serve line protocol (one request per line, one response line
/// per request; UTF-8, '\n'-terminated, no binary framing):
///
///   SOLVE id=<tok> dataset=<name> [layers=0,2] [algo=ssc|rrb|mbrb]
///         [k=1] [epsilon=1e-3] [deadline_ms=0] [threads=1] [cache=0|1]
///   SKYLINE   id= dataset= [layers=] [algo=rrb|mbrb] [epsilon=] ...
///   DIVERSE   id= dataset= k=<n> min_dist=<d> [layers=] [algo=rrb|mbrb] ...
///   CONSTRAIN id= dataset= [boundary=<poly>] [exclude=<poly>]...
///             [layers=] [epsilon=] ...            (RRB only; at least one
///             of boundary=/exclude= required; exclude= may repeat)
///   WHATIF    id= dataset= sweep=<v>|<v>|... [k=1] [layers=] ...
///   STATS            -> OK - <metrics json>
///   PING             -> OK - pong
///   QUIT             -> closes this connection
///   SHUTDOWN         -> stops the whole server
///
/// <poly> is "x,y;x,y;x,y..." (>= 3 CCW vertices); <v> is one
/// comma-separated scale factor per selected layer. The query-shape verbs
/// share SOLVE's common keys (minus algo restrictions above and k, which
/// SKYLINE/CONSTRAIN reject) and all parse to ServeVerb::kSolve with
/// ServeRequest::kind set — the serving loop treats every shape alike.
///
/// SOLVE/SKYLINE/DIVERSE/CONSTRAIN responses:
///   OK <id> {"answers":[...],"cache_hit":...,"seconds":...}
/// WHATIF responses:
///   OK <id> {"sweeps":[[...],...],"cache_hit":...,"seconds":...}
/// errors:
///   ERR <id> <STATUS> <detail...>        (status per ServeStatusName)
enum class ServeVerb {
  kSolve,
  kStats,
  kPing,
  kQuit,
  kShutdown,
};

/// Parses one request line. On success fills `verb` (and, for SOLVE,
/// `request`) and returns OK; on failure returns kInvalidRequest with the
/// problem in the status message. Verbs are case-insensitive; SOLVE
/// arguments are space-separated key=value pairs and unknown keys are
/// rejected (a misspelled option must not silently fall back to a
/// default).
Status ParseRequestLine(const std::string& line, ServeVerb* verb,
                        ServeRequest* request);

/// Parses a "x,y;x,y;x,y..." polygon spec (>= 3 vertices, finite doubles)
/// into a CCW Polygon. Orientation/area checks are NOT applied here — the
/// engine runs ValidateConstraint so protocol parsing and constraint
/// semantics stay separable. Shared with molq_cli --allow/--exclude.
Status ParsePolygonSpec(const std::string& spec, Polygon* out);

/// Parses a "s,s,...|s,s,...|..." sweep spec: '|' separates vectors, ','
/// separates per-layer scale factors. Finiteness/positivity are checked by
/// the engine against the dataset's weight functions. Shared with
/// molq_cli whatif.
Status ParseSweepSpec(const std::string& spec,
                      std::vector<std::vector<double>>* out);

/// One answer as a JSON object — the serializer shared by the server's
/// SOLVE responses and molq_cli --json, so both fronts emit byte-identical
/// records: {"location": [x, y], "cost": c, "group": [{"set": <name>,
/// "index": i, "at": [x, y]}, ...]}. `query` resolves group refs to set
/// names and object locations; it must be the query the answer was
/// computed against.
std::string AnswerJson(const MolqQuery& query, const ServeAnswer& answer);

/// The body of an OK SOLVE response: {"answers": [...], "cache_hit": ...,
/// "seconds": ...}. With include_timing=false the cache_hit/seconds pair
/// is omitted, leaving only deterministic answer bytes — molq_cli --json
/// uses this so its stdout is byte-identical run to run (and with or
/// without --trace), which scripted diffs rely on.
std::string ResponseJson(const MolqQuery& query, const ServeResponse& resp,
                         bool include_timing = true);

/// Formats one full response line (without the trailing newline):
/// "OK <id> <json>" on success, "ERR <id> <STATUS> <detail>" otherwise.
/// `query` may be null only for non-kOk responses (no answers to resolve).
std::string FormatResponseLine(const MolqQuery* query,
                               const ServeResponse& resp);

}  // namespace movd

#endif  // MOVD_SERVE_PROTOCOL_H_
