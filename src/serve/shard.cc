#include "serve/shard.h"

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "serve/protocol.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace movd {
namespace {

/// Grid cell along one axis: floor((v - lo) / span * n), clamped into
/// [0, n) so the map is total (points outside the world, NaN, or a
/// degenerate axis all land in a well-defined cell).
int AxisCell(double v, double lo, double hi, int n) {
  if (n <= 1 || !(hi > lo)) return 0;
  const double f = std::floor((v - lo) / (hi - lo) * static_cast<double>(n));
  if (!(f > 0.0)) return 0;  // negatives and NaN
  if (f >= static_cast<double>(n)) return n - 1;
  return static_cast<int>(f);
}

void FnvMix(uint64_t* h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= 1099511628211ull;
  }
}

void FnvMixU64(uint64_t* h, uint64_t v) { FnvMix(h, &v, sizeof(v)); }

void FnvMixF64(uint64_t* h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  FnvMixU64(h, bits);
}

/// The MBR center of a CONSTRAIN request's rings — the natural routing
/// point of a spatially constrained query when no rect= hint was given.
/// Empty when the request carries no ring vertices.
Rect ConstraintMbr(const QueryConstraint& constraint) {
  Rect mbr;
  for (const Point& v : constraint.boundary.vertices()) mbr.Expand(v);
  for (const Polygon& excl : constraint.exclusions) {
    for (const Point& v : excl.vertices()) mbr.Expand(v);
  }
  return mbr;
}

}  // namespace

ShardGrid MakeShardGrid(int shards) {
  MOVD_CHECK_MSG(shards >= 1, "a shard grid needs at least one shard");
  ShardGrid grid;
  // Largest divisor <= sqrt(shards) becomes the row count, so the grid is
  // as square as the factorisation allows (4 -> 2x2, 6 -> 3x2, 7 -> 7x1).
  for (int d = 1; d * d <= shards; ++d) {
    if (shards % d == 0) grid.ny = d;
  }
  grid.nx = shards / grid.ny;
  return grid;
}

Rect ShardRegionRect(const Rect& world, const ShardGrid& grid, int index) {
  MOVD_CHECK_MSG(index >= 0 && index < grid.nx * grid.ny,
                 "shard index outside its grid");
  const int col = index % grid.nx;
  const int row = index / grid.nx;
  const double sx = (world.max_x - world.min_x) / grid.nx;
  const double sy = (world.max_y - world.min_y) / grid.ny;
  // Outer edges reuse the world bounds exactly, so the cells tile the
  // world with no floating-point sliver at the far corner.
  return Rect(col == 0 ? world.min_x : world.min_x + col * sx,
              row == 0 ? world.min_y : world.min_y + row * sy,
              col == grid.nx - 1 ? world.max_x : world.min_x + (col + 1) * sx,
              row == grid.ny - 1 ? world.max_y : world.min_y + (row + 1) * sy);
}

int OwningShard(const Rect& world, const ShardGrid& grid, const Point& p) {
  const int col = AxisCell(p.x, world.min_x, world.max_x, grid.nx);
  const int row = AxisCell(p.y, world.min_y, world.max_y, grid.ny);
  return row * grid.nx + col;
}

Rect MutationInfluenceRect(const SiteMutation& mutation, const Rect& world) {
  // Full-replica topology: every shard answers global queries from its
  // own copy, so every mutation influences every region. A partitioned-
  // artifact topology would narrow this to the mutated cell's
  // neighbourhood; the router already intersects against it.
  (void)mutation;
  return world;
}

int AffinityShard(const ServeRequest& request, int shards) {
  MOVD_CHECK_MSG(shards >= 1, "affinity routing needs at least one shard");
  uint64_t h = 14695981039346656037ull;
  FnvMix(&h, request.dataset.data(), request.dataset.size());
  FnvMixU64(&h, static_cast<uint64_t>(request.kind));
  for (const int32_t layer : request.layers) {
    FnvMixU64(&h, static_cast<uint64_t>(layer));
  }
  FnvMixU64(&h, static_cast<uint64_t>(request.algorithm));
  FnvMixU64(&h, static_cast<uint64_t>(request.topk));
  FnvMixF64(&h, request.min_distance);
  FnvMixF64(&h, request.epsilon);
  return static_cast<int>(h % static_cast<uint64_t>(shards));
}

ShardedEngine::ShardedEngine(const ShardedEngineOptions& options) {
  const int shards = options.shards < 1 ? 1 : options.shards;
  grid_ = MakeShardGrid(shards);
  QueryEngineOptions per_shard = options.engine;
  per_shard.cache_bytes =
      options.engine.cache_bytes / static_cast<size_t>(shards);
  const int total_workers = ResolveThreads(options.engine.workers);
  per_shard.workers = total_workers / shards < 1 ? 1 : total_workers / shards;
  if (options.engine.admission_cost_limit > 0) {
    const size_t slice =
        options.engine.admission_cost_limit / static_cast<size_t>(shards);
    per_shard.admission_cost_limit = slice < 1 ? 1 : slice;
  }
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<QueryEngine>(per_shard));
  }
}

void ShardedEngine::RegisterDataset(const std::string& name, MolqQuery query,
                                    const Rect& world) {
  for (const std::unique_ptr<QueryEngine>& shard : shards_) {
    shard->RegisterDataset(name, query, world);
  }
  MutexLock lock(worlds_mu_);
  worlds_[name] = world;
}

std::shared_ptr<const DatasetSnapshot> ShardedEngine::dataset_snapshot(
    const std::string& name) const {
  return shards_[0]->dataset_snapshot(name);
}

bool ShardedEngine::WorldOf(const std::string& dataset, Rect* world) const {
  MutexLock lock(worlds_mu_);
  const auto it = worlds_.find(dataset);
  if (it == worlds_.end()) return false;
  *world = it->second;
  return true;
}

int ShardedEngine::RouteShard(const ServeRequest& request) const {
  const int shards = shard_count();
  Rect world;
  if (!WorldOf(request.dataset, &world)) return 0;
  if (request.kind == ServeQueryKind::kConstrained) {
    const Rect mbr = ConstraintMbr(request.constraint);
    if (!mbr.Empty()) return OwningShard(world, grid_, mbr.Center());
  }
  return AffinityShard(request, shards);
}

EngineResponse ShardedEngine::Handle(const EngineRequest& request) {
  return HandleAsync(request).get();
}

std::future<EngineResponse> ShardedEngine::HandleAsync(EngineRequest request) {
  // One replica: forward everything verbatim — this is the byte-for-byte
  // compatibility mode the determinism sweep anchors on.
  if (shards_.size() == 1) return shards_[0]->HandleAsync(std::move(request));

  ServeRequest flat = FlattenRequest(request);
  if (flat.mutate) {
    return std::async(std::launch::deferred,
                      [this, flat = std::move(flat)]() -> EngineResponse {
                        return HandleMutation(flat);
                      });
  }
  Rect world;
  if (!WorldOf(flat.dataset, &world)) {
    // Unknown dataset: any shard reports kNotFound identically.
    return shards_[0]->SubmitAsync(std::move(flat));
  }

  if (flat.kind == ServeQueryKind::kSkyline) {
    // Scatter: each shard solves only the candidate combinations whose
    // anchor its region owns. Sub-requests start on the shard pools NOW;
    // the deferred gather runs when the caller collects the future.
    const Stopwatch watch;
    auto subs = std::make_shared<std::vector<std::future<ServeResponse>>>();
    subs->reserve(shards_.size());
    for (int s = 0; s < shard_count(); ++s) {
      ServeRequest sub = flat;
      sub.candidate_filter = [world, grid = grid_, s](const Point& anchor) {
        return OwningShard(world, grid, anchor) == s;
      };
      subs->push_back(shards_[static_cast<size_t>(s)]->SubmitAsync(
          std::move(sub)));
    }
    return std::async(std::launch::deferred,
                      [this, flat = std::move(flat), subs,
                       watch]() -> EngineResponse {
                        return GatherSkyline(flat, *subs, watch);
                      });
  }

  if (flat.kind == ServeQueryKind::kWhatIf) {
    // Scatter: contiguous sweep-vector slices, one per shard (vectors are
    // evaluated independently, so concatenation is exact).
    const Stopwatch watch;
    const size_t vectors = flat.sweep.size();
    const size_t shard_n = shards_.size();
    auto subs = std::make_shared<std::vector<std::future<ServeResponse>>>();
    subs->reserve(shard_n);
    for (size_t s = 0; s < shard_n; ++s) {
      const size_t begin = s * vectors / shard_n;
      const size_t end = (s + 1) * vectors / shard_n;
      if (begin == end) continue;
      ServeRequest sub = flat;
      sub.sweep.assign(flat.sweep.begin() + static_cast<ptrdiff_t>(begin),
                       flat.sweep.begin() + static_cast<ptrdiff_t>(end));
      subs->push_back(shards_[s]->SubmitAsync(std::move(sub)));
    }
    return std::async(std::launch::deferred,
                      [this, flat = std::move(flat), subs,
                       watch]() -> EngineResponse {
                        return GatherWhatIf(flat, *subs, watch);
                      });
  }

  // Point/rect-local verbs run whole on one shard: the rect hint's owner,
  // else RouteShard's constraint-center / affinity choice.
  const int target =
      !request.routing_rect.Empty()
          ? OwningShard(world, grid_, request.routing_rect.Center())
          : RouteShard(flat);
  return shards_[static_cast<size_t>(target)]->SubmitAsync(std::move(flat));
}

ServeResponse ShardedEngine::HandleMutation(const ServeRequest& flat) {
  MutexLock lock(mutate_mu_);
  Rect world;
  if (!WorldOf(flat.dataset, &world)) return shards_[0]->Solve(flat);
  const Rect influence = MutationInfluenceRect(flat.mutation, world);
  const int owner = OwningShard(world, grid_, flat.mutation.location);
  ServeResponse out;
  bool have_any = false;
  for (int i = 0; i < shard_count(); ++i) {
    if (!ShardRegionRect(world, grid_, i).Intersects(influence)) continue;
    ServeResponse resp = shards_[static_cast<size_t>(i)]->Solve(flat);
    // Replicas are identical and validation is deterministic, so every
    // intersecting shard returns the same outcome; report the owner's.
    if (i == owner || !have_any) {
      out = std::move(resp);
      have_any = true;
    }
  }
  MOVD_CHECK_MSG(have_any,
                 "a mutation's influence rect intersected no shard region");
  return out;
}

ServeResponse ShardedEngine::GatherSkyline(
    const ServeRequest& flat, std::vector<std::future<ServeResponse>>& subs,
    const Stopwatch& watch) {
  std::vector<ServeResponse> parts;
  parts.reserve(subs.size());
  for (std::future<ServeResponse>& f : subs) parts.push_back(f.get());
  for (const ServeResponse& part : parts) {
    if (part.status != ServeStatus::kOk) return part;
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].version != parts[0].version) {
      // A mutation landed between the sub-requests' snapshot pins. Any
      // one replica's answer for one version is the global answer, so
      // re-run the un-split request on the affinity shard — bounded and
      // deterministic.
      return shards_[static_cast<size_t>(AffinityShard(
                         flat, shard_count()))]
          ->Solve(flat);
    }
  }
  ServeResponse out;
  out.status = ServeStatus::kOk;
  out.id = flat.id;
  out.snapshot = parts[0].snapshot;
  out.version = parts[0].version;
  out.cache_hit = true;
  std::vector<SiteCandidate> candidates;
  for (ServeResponse& part : parts) {
    out.cache_hit = out.cache_hit && part.cache_hit;
    for (ServeAnswer& answer : part.answers) {
      SiteCandidate c;
      c.location = answer.location;
      c.cost = answer.cost;
      c.criteria = std::move(answer.criteria);
      c.group = std::move(answer.group);
      candidates.push_back(std::move(c));
    }
  }
  // Dominance is transitive, so filtering the union of per-shard skylines
  // yields exactly the skyline of all candidates, in the same canonical
  // order as the unsharded evaluator (both run SkylineFilterInPlace).
  SkylineFilterInPlace(&candidates, nullptr);
  out.answers.reserve(candidates.size());
  for (SiteCandidate& c : candidates) {
    ServeAnswer answer;
    answer.location = c.location;
    answer.cost = c.cost;
    answer.criteria = std::move(c.criteria);
    answer.group = std::move(c.group);
    out.answers.push_back(std::move(answer));
  }
  out.seconds = watch.ElapsedSeconds();
  return out;
}

ServeResponse ShardedEngine::GatherWhatIf(
    const ServeRequest& flat, std::vector<std::future<ServeResponse>>& subs,
    const Stopwatch& watch) {
  std::vector<ServeResponse> parts;
  parts.reserve(subs.size());
  for (std::future<ServeResponse>& f : subs) parts.push_back(f.get());
  for (const ServeResponse& part : parts) {
    if (part.status != ServeStatus::kOk) return part;
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].version != parts[0].version) {
      return shards_[static_cast<size_t>(AffinityShard(
                         flat, shard_count()))]
          ->Solve(flat);
    }
  }
  ServeResponse out;
  out.status = ServeStatus::kOk;
  out.id = flat.id;
  if (!parts.empty()) {
    out.snapshot = parts[0].snapshot;
    out.version = parts[0].version;
  }
  out.cache_hit = true;
  out.sweep_answers.reserve(flat.sweep.size());
  // Slices were dispatched in shard (= sweep) order, so concatenating the
  // per-vector rankings restores the request's vector order exactly.
  for (ServeResponse& part : parts) {
    out.cache_hit = out.cache_hit && part.cache_hit;
    for (std::vector<ServeAnswer>& ranking : part.sweep_answers) {
      out.sweep_answers.push_back(std::move(ranking));
    }
  }
  MOVD_CHECK_MSG(out.sweep_answers.size() == flat.sweep.size(),
                 "scattered what-if slices did not cover the sweep");
  out.seconds = watch.ElapsedSeconds();
  return out;
}

std::string ShardedEngine::MetricsJson() const {
  if (shards_.size() == 1) return shards_[0]->MetricsJson();
  ServeMetrics merged;
  ArtifactCache::Stats cache;
  for (const std::unique_ptr<QueryEngine>& shard : shards_) {
    merged.MergeFrom(shard->metrics());
    cache.MergeFrom(shard->cache_stats());
  }
  std::string out = merged.Json(cache);
  MOVD_CHECK_MSG(!out.empty() && out.back() == '}',
                 "ServeMetrics::Json must emit one JSON object");
  out.pop_back();
  out += ",\"shards\":" + std::to_string(shard_count()) + ",\"per_shard\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out += ",";
    out += shards_[i]->MetricsJson();
  }
  out += "]}";
  return out;
}

void ShardedEngine::DumpMetrics(std::FILE* out) const {
  if (shards_.size() == 1) {
    shards_[0]->DumpMetrics(out);
    return;
  }
  ServeMetrics merged;
  ArtifactCache::Stats cache;
  for (const std::unique_ptr<QueryEngine>& shard : shards_) {
    merged.MergeFrom(shard->metrics());
    cache.MergeFrom(shard->cache_stats());
  }
  merged.DumpTable(out, cache);
}

Status ShardedEngine::SaveCache(const std::string& dir) const {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Status saved =
        shards_[i]->SaveCache(dir + "/shard" + std::to_string(i));
    if (!saved.ok()) return saved;
  }
  return Status::Ok();
}

WarmLoadResult ShardedEngine::LoadCache(const std::string& dir) {
  WarmLoadResult total;
  for (size_t i = 0; i < shards_.size(); ++i) {
    WarmLoadResult one =
        shards_[i]->LoadCache(dir + "/shard" + std::to_string(i));
    total.loaded += one.loaded;
    total.failed += one.failed;
    if (total.status.ok() && !one.status.ok()) {
      total.status = std::move(one.status);
    }
  }
  return total;
}

}  // namespace movd
