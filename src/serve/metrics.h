#ifndef MOVD_SERVE_METRICS_H_
#define MOVD_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "serve/artifact_cache.h"
#include "util/status.h"

namespace movd {

/// Terminal state of one serve request. An alias of the repo-wide status
/// vocabulary (util/status.h), so serve, core, and storage speak one
/// enum; the historical enumerator spellings (kInvalidRequest,
/// kInternalError) are value aliases of StatusCode and keep compiling.
using ServeStatus = StatusCode;

/// Wire name of a status ("OK", "DEADLINE_EXCEEDED", ...). The line
/// protocol emits these; they are the canonical StatusCode names.
inline const char* ServeStatusName(ServeStatus status) {
  return StatusCodeName(status);
}

/// Fixed-bucket latency histogram: bucket i counts requests with latency
/// in [2^(i-1), 2^i) microseconds (bucket 0: < 1us; the last bucket is an
/// overflow catch-all of ~67s and up). Fixed buckets keep Record() a
/// single atomic increment — no allocation, no lock — which is what a
/// per-request hot path wants; the price is that percentiles are resolved
/// to bucket upper bounds (~2x resolution), plenty for p50/p99 dashboards.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 28;

  /// Records one observation. Thread-safe (relaxed atomic increment).
  void Record(double seconds);

  /// Total observations recorded.
  uint64_t Count() const;

  /// Upper bound (in seconds) of the bucket containing the p-th percentile
  /// observation, p in (0, 100]. Returns 0 when empty.
  double PercentileSeconds(double p) const;

  /// Bucket counts as a JSON array ("[0,3,17,...]").
  std::string Json() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Serving counters for one QueryEngine: request outcomes, overlay-cache
/// effectiveness as seen per-request, and end-to-end service latency. All
/// counters are monotonic atomics — reading them never blocks the serving
/// path. Cache occupancy/eviction stats live in ArtifactCache::Stats and
/// are passed in at dump time so one report covers both.
class ServeMetrics {
 public:
  /// Records one finished request: terminal status, end-to-end seconds
  /// (queue wait + solve), and whether the overlay artifact was served
  /// from cache.
  void RecordRequest(ServeStatus status, double seconds, bool cache_hit);

  /// Records the per-phase split of one solved pipeline request: seconds
  /// spent obtaining the overlay artifact (VD generation + overlap, or a
  /// cache hit) and seconds in the Optimizer. Only OK pipeline requests
  /// report phases (SSC and failed requests have no phase split), so the
  /// phase counts can be below requests().
  void RecordPhases(double overlay_seconds, double optimize_seconds);

  uint64_t requests() const { return requests_.load(); }
  uint64_t ok() const { return ok_.load(); }
  uint64_t deadline_exceeded() const { return deadline_exceeded_.load(); }
  uint64_t invalid() const { return invalid_.load(); }
  uint64_t internal_errors() const { return internal_errors_.load(); }
  uint64_t overlay_hits() const { return overlay_hits_.load(); }
  const LatencyHistogram& latency() const { return latency_; }
  const LatencyHistogram& overlay_latency() const { return overlay_latency_; }
  const LatencyHistogram& optimize_latency() const {
    return optimize_latency_;
  }

  /// One-object JSON dump of every counter plus the cache stats (the
  /// STATS response body of the line protocol).
  std::string Json(const ArtifactCache::Stats& cache) const;

  /// Human-readable dump (util/table) for shutdown reports.
  void DumpTable(std::FILE* out, const ArtifactCache::Stats& cache) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<uint64_t> overlay_hits_{0};
  LatencyHistogram latency_;
  LatencyHistogram overlay_latency_;   ///< artifact phase (VD + overlap)
  LatencyHistogram optimize_latency_;  ///< Optimizer phase (Fermat–Weber)
};

}  // namespace movd

#endif  // MOVD_SERVE_METRICS_H_
