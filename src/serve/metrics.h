#ifndef MOVD_SERVE_METRICS_H_
#define MOVD_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "serve/artifact_cache.h"
#include "util/status.h"
#include "util/summary.h"

namespace movd {

/// Terminal state of one serve request. An alias of the repo-wide status
/// vocabulary (util/status.h), so serve, core, and storage speak one
/// enum; the historical enumerator spellings (kInvalidRequest,
/// kInternalError) are value aliases of StatusCode and keep compiling.
using ServeStatus = StatusCode;

/// Wire name of a status ("OK", "DEADLINE_EXCEEDED", ...). The line
/// protocol emits these; they are the canonical StatusCode names.
inline const char* ServeStatusName(ServeStatus status) {
  return StatusCodeName(status);
}

/// The latency histogram lives in util/summary.h (DESIGN.md §10) so the
/// serving layer and the benchmark harness share one stats implementation
/// and one JSON serialisation. This alias preserves the historical serve
/// spelling; ServeMetrics' public accessors are unchanged.
using LatencyHistogram = ::movd::LatencyHistogram;

/// Serving counters for one QueryEngine: request outcomes, overlay-cache
/// effectiveness as seen per-request, and end-to-end service latency. All
/// counters are monotonic atomics — reading them never blocks the serving
/// path. Cache occupancy/eviction stats live in ArtifactCache::Stats and
/// are passed in at dump time so one report covers both.
///
/// Thread-safety (DESIGN.md §12): lock-free by design, so no
/// MOVD_GUARDED_BY capabilities here. Every counter is a monotonic
/// relaxed atomic increment (LatencyHistogram buckets included); dumps
/// read each counter independently, so a report is per-counter exact but
/// not a cross-counter snapshot — fine for dashboards, and the price of
/// never blocking RecordRequest.
class ServeMetrics {
 public:
  /// Records one finished request: terminal status, end-to-end seconds
  /// (queue wait + solve), and whether the overlay artifact was served
  /// from cache.
  void RecordRequest(ServeStatus status, double seconds, bool cache_hit);

  /// Records the per-phase split of one solved pipeline request: seconds
  /// spent obtaining the overlay artifact (VD generation + overlap, or a
  /// cache hit) and seconds in the Optimizer. Only OK pipeline requests
  /// report phases (SSC and failed requests have no phase split), so the
  /// phase counts can be below requests().
  void RecordPhases(double overlay_seconds, double optimize_seconds);

  /// Records one successfully applied dataset mutation (the request itself
  /// is also counted through RecordRequest, like any other request).
  void RecordMutation();

  /// Folds another instance's counters and histograms into this one
  /// (counters sum, histogram buckets add). Commutative and associative,
  /// so per-shard metrics merge into one dataset-level STATS view in any
  /// grouping (DESIGN.md §15). Safe against concurrent recording on
  /// either side; like every dump here, the merged view is per-counter
  /// exact, not a cross-counter snapshot.
  void MergeFrom(const ServeMetrics& other);

  uint64_t requests() const { return requests_.load(); }
  uint64_t ok() const { return ok_.load(); }
  uint64_t deadline_exceeded() const { return deadline_exceeded_.load(); }
  uint64_t invalid() const { return invalid_.load(); }
  uint64_t internal_errors() const { return internal_errors_.load(); }
  uint64_t shed() const { return shed_.load(); }
  uint64_t mutations() const { return mutations_.load(); }
  uint64_t overlay_hits() const { return overlay_hits_.load(); }
  const LatencyHistogram& latency() const { return latency_; }
  const LatencyHistogram& overlay_latency() const { return overlay_latency_; }
  const LatencyHistogram& optimize_latency() const {
    return optimize_latency_;
  }

  /// One-object JSON dump of every counter plus the cache stats (the
  /// STATS response body of the line protocol).
  std::string Json(const ArtifactCache::Stats& cache) const;

  /// Human-readable dump (util/table) for shutdown reports.
  void DumpTable(std::FILE* out, const ArtifactCache::Stats& cache) const;

 private:
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<uint64_t> shed_{0};       ///< rejected by admission control
  std::atomic<uint64_t> mutations_{0};  ///< applied dataset mutations
  std::atomic<uint64_t> overlay_hits_{0};
  LatencyHistogram latency_;
  LatencyHistogram overlay_latency_;   ///< artifact phase (VD + overlap)
  LatencyHistogram optimize_latency_;  ///< Optimizer phase (Fermat–Weber)
};

}  // namespace movd

#endif  // MOVD_SERVE_METRICS_H_
