#ifndef MOVD_SERVE_SHARD_H_
#define MOVD_SERVE_SHARD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine_api.h"
#include "serve/query_engine.h"
#include "util/mutex.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace movd {

/// Spatially sharded serving (DESIGN.md §15).
///
/// A ShardedEngine partitions each dataset's world rect into a near-square
/// grid of shard REGIONS and gives each shard a full QueryEngine replica —
/// its own artifact cache and worker-pool slice. MOLQ answers are global
/// optima (any site anywhere can win), so the DATA is never partitioned:
/// every shard holds every dataset and can answer any request, and the
/// regions partition only routing, load, and cache warmth. That is what
/// makes the headline contract cheap to state and test: answers are
/// bit-identical for ANY shard count, and --shards 1 forwards every call
/// straight to its single replica, byte for byte the unsharded engine.
///
/// Routing:
///   - SOLVE/DIVERSE/CONSTRAIN run whole on one shard: the one whose
///     region owns the request's routing rect center (rect= wire arg),
///     else the constraint rings' MBR center (CONSTRAIN), else a
///     deterministic affinity hash of the request shape — so repeats of
///     the same logical query keep hitting the same warm cache.
///   - SKYLINE scatters: each shard solves only the candidate
///     combinations whose anchor (first-seen OVR MBR center) its region
///     owns, and the gather re-runs the canonical SkylineFilterInPlace
///     over the concatenated local skylines. Dominance is transitive, so
///     the merge equals the unsharded skyline exactly.
///   - WHATIF scatters: the sweep vectors split into contiguous
///     per-shard slices (vectors are evaluated independently), and the
///     gather concatenates the per-vector rankings back in order.
///   - INSERT/DELETE replicate to every shard whose region intersects
///     the mutation's influence rect — the whole world under the
///     full-replica topology — serialized engine-wide so every replica
///     applies every mutation in the same order and snapshot versions
///     stay in lockstep across shards and shard counts.
struct ShardedEngineOptions {
  /// Number of shards (>= 1). 1 means a single pass-through replica.
  int shards = 1;
  /// Server-total resources, divided evenly across shards: each shard's
  /// cache budget is cache_bytes / shards and its worker count is
  /// ResolveThreads(workers) / shards (at least 1). The admission cost
  /// limit divides likewise; the delay budget is a time bound and applies
  /// per shard as-is.
  QueryEngineOptions engine;
};

/// The shard grid: `shards` regions arranged row-major as nx columns by
/// ny rows. MakeShardGrid picks ny as the largest divisor of `shards`
/// with ny <= nx, so 4 shards give 2x2, 6 give 3x2, and a prime count
/// degenerates to one row of vertical strips (7 -> 7x1).
struct ShardGrid {
  int nx = 1;
  int ny = 1;
};

ShardGrid MakeShardGrid(int shards);

/// The world-rect cell of shard `index` (row-major: index = row * nx +
/// col). Cells tile the world exactly: edges shared between cells belong
/// to the higher-index neighbour through OwningShard's flooring.
Rect ShardRegionRect(const Rect& world, const ShardGrid& grid, int index);

/// The shard whose region owns `p`: floor((p - min) / cell) per axis,
/// clamped into the grid, so the map is total — points outside the world
/// rect (or on a degenerate world) still route deterministically.
int OwningShard(const Rect& world, const ShardGrid& grid, const Point& p);

/// The region a mutation can influence. Under the full-replica topology
/// every shard answers global queries from its own copy, so a mutation's
/// influence spans the whole world and this returns `world` — replication
/// reaches every shard, which is what keeps replica contents and snapshot
/// versions identical. The hook exists (and the router intersects against
/// it) so a future partitioned-artifact topology can narrow it to the
/// mutated site's neighbourhood without touching the router.
Rect MutationInfluenceRect(const SiteMutation& mutation, const Rect& world);

/// Deterministic affinity shard for requests with no spatial hint: an
/// FNV-1a hash over the request's shape (dataset, kind, layers,
/// algorithm, k, min_dist, epsilon) mod `shards`. Purely a cache-warmth
/// heuristic — any shard would answer identically.
int AffinityShard(const ServeRequest& request, int shards);

/// The sharded Engine implementation. Thread-safety matches QueryEngine:
/// RegisterDataset before serving starts, then Handle/HandleAsync from
/// any number of threads; mutations additionally serialize engine-wide.
class ShardedEngine : public Engine {
 public:
  explicit ShardedEngine(const ShardedEngineOptions& options);
  ~ShardedEngine() override = default;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  const ShardGrid& grid() const { return grid_; }

  /// Registers the dataset on every shard (same snapshot content, same
  /// version counter start) and records its world rect for routing.
  void RegisterDataset(const std::string& name, MolqQuery query,
                       const Rect& world) override;

  /// The dataset's current snapshot, read from shard 0 (all replicas are
  /// in lockstep; see the mutation rules above).
  std::shared_ptr<const DatasetSnapshot> dataset_snapshot(
      const std::string& name) const override;

  EngineResponse Handle(const EngineRequest& request) override;

  /// Routes or scatters the request. Single-shard verbs forward to the
  /// owning shard's queue directly; scatter verbs enqueue their
  /// sub-requests on every shard eagerly and return a deferred gather, so
  /// the shards work in parallel while the caller holds the future.
  std::future<EngineResponse> HandleAsync(EngineRequest request) override;

  /// shards == 1: the single replica's STATS body, byte for byte.
  /// Otherwise the merged dataset-level view (counters summed, histograms
  /// merged, cache budgets totalled — ServeMetrics::MergeFrom) with
  /// "shards" and a "per_shard" array of the per-replica bodies appended.
  /// Merged counters count per-shard work units: one scattered SKYLINE
  /// contributes one request per participating shard.
  std::string MetricsJson() const override;
  void DumpMetrics(std::FILE* out) const override;

  /// Saves/loads each shard's artifact cache under "<dir>/shard<i>".
  Status SaveCache(const std::string& dir) const override;
  WarmLoadResult LoadCache(const std::string& dir) override;

  /// The shard a single-shard request routes to (exposed for tests and
  /// for the loadgen's routing display): routing rect center if given,
  /// else the CONSTRAIN rings' MBR center, else AffinityShard.
  int RouteShard(const ServeRequest& request) const;

 private:
  /// The world rect of a registered dataset; false when unknown (the
  /// request is then forwarded to shard 0, which reports kNotFound
  /// exactly like the unsharded engine).
  bool WorldOf(const std::string& dataset, Rect* world) const
      MOVD_EXCLUDES(worlds_mu_);

  /// Replicates one mutation to every shard intersecting its influence
  /// rect, under mutate_mu_ so replicas apply mutations in one global
  /// order. Mutation validation is a deterministic function of the
  /// (identical) replica snapshots, so every shard accepts or rejects
  /// identically; the returned response is the one from the shard owning
  /// the mutated site's location. Replication deliberately bypasses
  /// per-shard admission shedding: an answer of "some replicas applied
  /// it, some shed it" must never exist.
  ServeResponse HandleMutation(const ServeRequest& flat)
      MOVD_EXCLUDES(mutate_mu_);

  /// Gather halves of the SKYLINE/WHATIF scatters (sub-requests were
  /// enqueued by HandleAsync; `watch` started when they were). If the OK
  /// sub-responses disagree on the snapshot version (a mutation landed
  /// mid-scatter), the merge is abandoned and the whole un-split request
  /// re-runs on its affinity shard — bounded, deterministic, and correct
  /// because any single replica's answer for a version is the global
  /// answer.
  ServeResponse GatherSkyline(const ServeRequest& flat,
                              std::vector<std::future<ServeResponse>>& subs,
                              const Stopwatch& watch);
  ServeResponse GatherWhatIf(const ServeRequest& flat,
                             std::vector<std::future<ServeResponse>>& subs,
                             const Stopwatch& watch);

  ShardGrid grid_;
  std::vector<std::unique_ptr<QueryEngine>> shards_;
  mutable Mutex worlds_mu_;
  std::map<std::string, Rect> worlds_ MOVD_GUARDED_BY(worlds_mu_);
  /// Serializes mutations across shards (see HandleMutation).
  Mutex mutate_mu_;
};

}  // namespace movd

#endif  // MOVD_SERVE_SHARD_H_
