#include "core/overlap.h"

#include <algorithm>
#include <map>

#include "trace/trace.h"
#include "util/check.h"

namespace movd {
namespace {

// Merges two sorted poi lists (duplicates collapsed). In the MOVD algebra
// the poi set of an overlap is the union of the operands' poi sets
// (Algorithm 3 line 7 / Algorithm 4 line 6).
std::vector<PoiRef> MergePois(const std::vector<PoiRef>& a,
                              const std::vector<PoiRef>& b) {
  std::vector<PoiRef> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// Intersects one candidate pair under the selected boundary handler and
// appends the result when non-empty. Returns true when something was
// appended.
bool HandlePair(const Ovr& x, const Ovr& y, BoundaryMode mode,
                OverlapStats* stats, std::vector<Ovr>* result) {
  if (stats != nullptr && mode == BoundaryMode::kRealRegion) {
    ++stats->region_intersections;
  }
  Ovr out;
  if (!IntersectOvrPair(x, y, mode, &out)) return false;
  result->push_back(std::move(out));
  return true;
}

struct Event {
  double y;
  bool is_start;
  bool from_a;
  uint32_t index;  // OVR index within its MOVD
};

}  // namespace

Movd Overlap(const Movd& a, const Movd& b, BoundaryMode mode,
             OverlapStats* stats, const CancelToken* cancel) {
  TraceSpan span("overlap_step");
  span.Counter("input_ovrs",
               static_cast<int64_t>(a.ovrs.size() + b.ovrs.size()));
  // Event queue: start/end events of every OVR, sorted by descending y;
  // at equal y, start events run first so regions touching only along a
  // horizontal line still pair up (closed-boundary semantics).
  std::vector<Event> events;
  events.reserve(2 * (a.ovrs.size() + b.ovrs.size()));
  for (uint32_t i = 0; i < a.ovrs.size(); ++i) {
    events.push_back({a.ovrs[i].mbr.max_y, true, true, i});
    events.push_back({a.ovrs[i].mbr.min_y, false, true, i});
  }
  for (uint32_t i = 0; i < b.ovrs.size(); ++i) {
    events.push_back({b.ovrs[i].mbr.max_y, true, false, i});
    events.push_back({b.ovrs[i].mbr.min_y, false, false, i});
  }
  // stable_sort: events are generated in (input, OVR index) order, so
  // events tying on (y, is_start) keep that order under every sort
  // implementation and the output OVR order is reproducible.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& x, const Event& y) {
                     if (x.y != y.y) return x.y > y.y;
                     return x.is_start && !y.is_start;
                   });

  // Status structures: active OVRs per input, keyed by their min x (the
  // paper's "balanced search tree sorted by start x-coordinates").
  using Status = std::multimap<double, uint32_t>;
  Status status_a, status_b;
  Movd result;

  const auto handle = [&](const Event& e, const Movd& self,
                          const Movd& other, Status* current, Status* others) {
    const Ovr& ovr = self.ovrs[e.index];
    if (!e.is_start) {
      // Remove from the current status.
      auto [lo, hi] = current->equal_range(ovr.mbr.min_x);
      for (auto it = lo; it != hi; ++it) {
        if (it->second == e.index) {
          current->erase(it);
          break;
        }
      }
      return;
    }
    current->emplace(ovr.mbr.min_x, e.index);
    // Candidates: active OVRs of the other MOVD whose x-range overlaps.
    const auto end = others->upper_bound(ovr.mbr.max_x);
    for (auto it = others->begin(); it != end; ++it) {
      const Ovr& cand = other.ovrs[it->second];
      if (cand.mbr.max_x < ovr.mbr.min_x) continue;
      if (stats != nullptr) ++stats->candidate_pairs;
      if (HandlePair(ovr, cand, mode, stats, &result.ovrs) &&
          stats != nullptr) {
        ++stats->output_ovrs;
      }
    }
  };

  for (size_t i = 0; i < events.size(); ++i) {
    // Cancellation checkpoint (serving deadlines): every 1024 events, so
    // the clock poll is amortized over a block of sweep work. The caller
    // discards the truncated result when the token fired.
    if (cancel != nullptr && (i & 1023u) == 0 && cancel->Expired()) {
      return result;
    }
    const Event& e = events[i];
    if (stats != nullptr) ++stats->events;
    if (e.from_a) {
      handle(e, a, b, &status_a, &status_b);
    } else {
      handle(e, b, a, &status_b, &status_a);
    }
  }
  return result;
}

Movd OverlapAll(const std::vector<Movd>& inputs, BoundaryMode mode,
                OverlapStats* stats, const CancelToken* cancel) {
  MOVD_CHECK_MSG(!inputs.empty(),
                 "sequential overlap needs at least one input MOVD");
  Movd acc = inputs.front();
  for (size_t i = 1; i < inputs.size(); ++i) {
    if (TokenExpired(cancel)) return acc;
    acc = Overlap(acc, inputs[i], mode, stats, cancel);
  }
  return acc;
}

bool IntersectOvrPair(const Ovr& x, const Ovr& y, BoundaryMode mode,
                      Ovr* out) {
  if (mode == BoundaryMode::kMbr) {
    // Algorithm 4: MBR intersection only. Callers guarantee x/y range
    // overlap, so the rectangle intersection is non-empty.
    out->mbr = x.mbr.Intersect(y.mbr);
    out->region = Region();
    out->pois = MergePois(x.pois, y.pois);
    return true;
  }
  // Algorithm 3: real region intersection.
  Region region = Region::Intersect(x.region, y.region);
  if (region.Empty()) return false;
  out->mbr = region.Bbox();
  out->region = std::move(region);
  out->pois = MergePois(x.pois, y.pois);
  return true;
}

Movd OverlapBruteForce(const Movd& a, const Movd& b, BoundaryMode mode) {
  Movd result;
  for (const Ovr& x : a.ovrs) {
    for (const Ovr& y : b.ovrs) {
      if (!x.mbr.Intersects(y.mbr)) continue;
      HandlePair(x, y, mode, nullptr, &result.ovrs);
    }
  }
  return result;
}

}  // namespace movd
