#include "core/pruned_overlap.h"

#include <algorithm>

#include "core/weighted_distance.h"
#include "trace/trace.h"
#include "util/check.h"

namespace movd {

double SeedUpperBound(const MolqQuery& query, const Rect& search_space,
                      int resolution) {
  MOVD_CHECK(resolution > 1);
  double best = std::numeric_limits<double>::infinity();
  const double sx = search_space.Width() / (resolution - 1);
  const double sy = search_space.Height() / (resolution - 1);
  for (int gy = 0; gy < resolution; ++gy) {
    for (int gx = 0; gx < resolution; ++gx) {
      const Point q{search_space.min_x + gx * sx,
                    search_space.min_y + gy * sy};
      best = std::min(best, MinWeightedGroupDistance(query, q));
    }
  }
  return best;
}

double CombinationLowerBound(const MolqQuery& query,
                             const std::vector<PoiRef>& pois) {
  // Decompose each member as WD_i(l) = a_i * d(l, p_i) + b_i.
  struct Term {
    Point location;
    double a;
  };
  std::vector<Term> terms;
  terms.reserve(pois.size());
  double offset = 0.0;
  for (const PoiRef& ref : pois) {
    const SpatialObject& obj = query.sets.at(ref.set).objects.at(ref.object);
    const FermatWeberTerm t = DecomposeWeightedDistance(
        obj, query.type_function, query.ObjectFunction(ref.set));
    terms.push_back({obj.location, t.fw_weight});
    offset += t.offset;
  }
  // For any l: a_i d(l,p_i) + a_j d(l,p_j) >= min(a_i,a_j) * d(p_i,p_j).
  double pair_bound = 0.0;
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      pair_bound = std::max(pair_bound,
                            std::min(terms[i].a, terms[j].a) *
                                Distance(terms[i].location,
                                         terms[j].location));
    }
  }
  return offset + pair_bound;
}

Movd OverlapAllPruned(const MolqQuery& query, const std::vector<Movd>& inputs,
                      BoundaryMode mode, const Rect& search_space,
                      PrunedOverlapStats* stats) {
  MOVD_CHECK(!inputs.empty());
  TraceSpan span("pruned_overlap");
  const double upper_bound = SeedUpperBound(query, search_space);
  if (stats != nullptr) stats->upper_bound = upper_bound;

  Movd acc = inputs.front();
  for (size_t i = 1; i < inputs.size(); ++i) {
    acc = Overlap(acc, inputs[i], mode,
                  stats != nullptr ? &stats->overlap : nullptr);
    // Filter combinations whose lower bound already exceeds the seed: no
    // location, and no extension by further types, can make them optimal.
    std::vector<Ovr> kept;
    kept.reserve(acc.ovrs.size());
    for (Ovr& ovr : acc.ovrs) {
      if (CombinationLowerBound(query, ovr.pois) > upper_bound) {
        if (stats != nullptr) ++stats->pruned_ovrs;
        span.Counter("pruned_ovrs", 1);
        continue;
      }
      kept.push_back(std::move(ovr));
    }
    acc.ovrs = std::move(kept);
    MOVD_CHECK(!acc.ovrs.empty());  // the seed location's OVR survives
  }
  return acc;
}

}  // namespace movd
