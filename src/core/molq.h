#ifndef MOVD_CORE_MOLQ_H_
#define MOVD_CORE_MOLQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "model/movd_model.h"
#include "model/object.h"
#include "core/optimizer.h"
#include "core/overlap.h"
#include "core/ssc.h"
#include "geom/rect.h"
#include "util/exec_options.h"
#include "util/status.h"

namespace movd {

/// The three MOLQ evaluation strategies the paper compares (Figs. 8-9).
enum class MolqAlgorithm {
  kSsc,   ///< Sequential Scan Combinations baseline (§3)
  kRrb,   ///< MOVD pipeline, Real Region as Boundary (§5.2)
  kMbrb,  ///< MOVD pipeline, MBR as Boundary (§5.3)
};

/// End-to-end options for SolveMolq.
struct MolqOptions {
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;

  /// Fermat–Weber stopping-rule error bound.
  double epsilon = 1e-3;

  /// Cost-bound pruning (§5.4) across local optimizations.
  bool use_cost_bound = true;

  /// Two-point-prefix filters (Algorithm 1 lines 4-5, Algorithm 5 8-12).
  bool use_two_point_prefilter = true;

  /// Optimizer extension: collapse duplicate object combinations.
  bool dedup_combinations = false;

  /// Overlap extension (the paper's §8 future work): drop OVRs whose
  /// object combination provably cannot contain the optimum during each
  /// overlap step (see pruned_overlap.h). Off by default to match the
  /// paper's base algorithms.
  bool use_overlap_pruning = false;

  /// Execution knobs shared with every other pipeline entry point:
  /// threads, audit, trace sink, cancel token, weighted-grid resolution
  /// (see util/exec_options.h). None of them changes the answer.
  ExecOptions exec;
};

/// Terminal state of one MOLQ evaluation: StatusCode::kOk when the run
/// completed and the answer fields are valid, StatusCode::kCancelled when
/// options.exec.cancel fired (no answer fields are valid then). An alias
/// of the repo-wide status vocabulary so core and serve speak one enum.
using MolqStatus = StatusCode;

/// Per-stage instrumentation of one query evaluation.
struct MolqStats {
  int threads = 1;                ///< effective thread count of the run
  double vd_seconds = 0.0;        ///< VD Generator stage
  double overlap_seconds = 0.0;   ///< MOVD Overlapper stage
  double optimize_seconds = 0.0;  ///< Optimizer stage (or all of SSC)
  size_t final_ovrs = 0;          ///< |MOVD(Ē)| fed into the Optimizer
  size_t memory_bytes = 0;        ///< Movd::MemoryBytes of the final MOVD
  uint64_t pruned_ovrs = 0;       ///< OVRs cut by overlap pruning (if on)
  OverlapStats overlap;
  OptimizerStats optimizer;
  SscStats ssc;  ///< populated only for MolqAlgorithm::kSsc
};

/// One ranked answer of a top-k MOLQ.
struct RankedLocation {
  Point location;
  double cost = 0.0;
  std::vector<PoiRef> group;  ///< the object combination it serves
};

/// Result of one MOLQ evaluation. Every entry point — SolveMolq,
/// SolveMolqTopK, TopKFromMovd — returns this one shape, so stats, the
/// audit report, and the trace handle always travel together instead of
/// by per-entry-point side channels.
struct MolqResult {
  /// kOk unless options.exec.cancel fired mid-run; the answer fields are
  /// only meaningful when kOk.
  MolqStatus status = StatusCode::kOk;
  Point location;
  double cost = 0.0;
  /// The winning object combination (one PoiRef per set, sorted by set).
  std::vector<PoiRef> group;
  /// Top-k entry points: the k best answers ascending by cost (ranked[0]
  /// mirrors location/cost/group). SolveMolq leaves it with the single
  /// best answer, so `ranked` is always the full answer list.
  std::vector<RankedLocation> ranked;
  MolqStats stats;
  /// Findings of the invariant auditors, seam-labelled ("set 0 cells:
  /// ..."). Empty (0 checks) when options.exec.audit was off.
  AuditReport audit;
  /// The trace this run recorded into (== options.exec.trace; null when
  /// tracing was off). The caller owns it — this is a handle, not a copy.
  Trace* trace = nullptr;
};

/// Builds the basic MOVD of one object set (the framework's VD Generator,
/// Fig. 3): an exact ordinary Voronoi diagram when all object weights in
/// the set are equal (ς^o is then rank-preserving in the distance), or an
/// approximated weighted diagram otherwise. `weighted_method` picks the
/// weighted construction (adaptive quadtree by default, dense grid as the
/// reference fallback — see DESIGN.md §11); both share the same owner tie
/// rule, so the method changes cover tightness and build time, never which
/// generator dominates a point.
/// `threads` parallelises the weighted construction when the set routes to
/// the approximated diagram (no effect on the exact ordinary path).
/// When `audit` is non-null, the structural auditors run on the built
/// diagram (post-Delaunay and post-cell-extraction seams, with the
/// weighted auditor matching the method) and merge their findings into it.
Movd BuildBasicMovd(const MolqQuery& query, int32_t set,
                    const Rect& search_space, int weighted_grid_resolution,
                    int threads = 1, AuditReport* audit = nullptr,
                    WeightedMethod weighted_method = WeightedMethod::kAdaptive);

/// True when BuildBasicMovd would take the exact ordinary-Voronoi route
/// for `set`: every object decomposes to the same affine weighted-distance
/// coefficients (a, b), so WD ranks objects exactly like plain distance.
/// The live-update path (src/core/update) uses this to decide whether a
/// layer can be patched incrementally or needs a full weighted rebuild.
bool OrdinaryDiagramSuffices(const MolqQuery& query, int32_t set);

/// Evaluates MOLQ(Ē, ς^t, σ) over `search_space` (paper Eq. 4): the
/// location minimising MWGD. Dispatches to SSC or to the MOVD pipeline
/// (VD Generator -> MOVD Overlapper -> Optimizer).
MolqResult SolveMolq(const MolqQuery& query, const Rect& search_space,
                     const MolqOptions& options = {});

}  // namespace movd

#endif  // MOVD_CORE_MOLQ_H_
