#ifndef MOVD_CORE_MOLQ_H_
#define MOVD_CORE_MOLQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/movd_model.h"
#include "core/object.h"
#include "core/optimizer.h"
#include "core/overlap.h"
#include "core/ssc.h"
#include "geom/rect.h"
#include "util/cancel.h"

namespace movd {

class AuditReport;

/// The three MOLQ evaluation strategies the paper compares (Figs. 8-9).
enum class MolqAlgorithm {
  kSsc,   ///< Sequential Scan Combinations baseline (§3)
  kRrb,   ///< MOVD pipeline, Real Region as Boundary (§5.2)
  kMbrb,  ///< MOVD pipeline, MBR as Boundary (§5.3)
};

/// End-to-end options for SolveMolq.
struct MolqOptions {
  MolqAlgorithm algorithm = MolqAlgorithm::kRrb;

  /// Fermat–Weber stopping-rule error bound.
  double epsilon = 1e-3;

  /// Cost-bound pruning (§5.4) across local optimizations.
  bool use_cost_bound = true;

  /// Two-point-prefix filters (Algorithm 1 lines 4-5, Algorithm 5 8-12).
  bool use_two_point_prefilter = true;

  /// Optimizer extension: collapse duplicate object combinations.
  bool dedup_combinations = false;

  /// Overlap extension (the paper's §8 future work): drop OVRs whose
  /// object combination provably cannot contain the optimum during each
  /// overlap step (see pruned_overlap.h). Off by default to match the
  /// paper's base algorithms.
  bool use_overlap_pruning = false;

  /// Grid resolution used to approximate weighted Voronoi diagrams when a
  /// set has non-uniform object weights (§5.3).
  int weighted_grid_resolution = 128;

  /// Degree of parallelism for the pipeline: per-set basic-MOVD builds,
  /// weighted-grid dominance sampling, and the Optimizer's Fermat–Weber
  /// fan-out (which shares the §5.4 cost bound via an atomic CAS-min).
  /// 1 (default) keeps every stage serial, so paper-reproduction numbers
  /// are unchanged unless opted in; 0 means one thread per hardware
  /// thread. The answer (location, cost, group) is identical for every
  /// thread count.
  int threads = 1;

  /// Runs the structural invariant auditors (src/audit, DESIGN.md §7) as
  /// post-conditions at the three pipeline seams — post-Delaunay,
  /// post-cell-extraction, post-overlay — and collects violations into
  /// MolqStats::audit_violations instead of aborting. Defaults to off
  /// (audits cost extra passes over the built structures); building with
  /// -DMOVD_AUDIT=ON flips the default to on for the whole build.
#ifdef MOVD_AUDIT_DEFAULT_ON
  bool audit = true;
#else
  bool audit = false;
#endif

  /// Cooperative cancellation (serving deadlines, DESIGN.md §8). When the
  /// token fires, the pipeline unwinds at its next checkpoint — between
  /// stages, per SSC combination, per overlap event block, per Optimizer
  /// OVR — and SolveMolq returns MolqStatus::kCancelled with no answer
  /// fields populated (never a partial answer). Null means run to
  /// completion.
  const CancelToken* cancel = nullptr;
};

/// Terminal state of one MOLQ evaluation.
enum class MolqStatus {
  kOk,         ///< ran to completion; the answer fields are valid
  kCancelled,  ///< options.cancel fired; no answer fields are valid
};

/// Per-stage instrumentation of one query evaluation.
struct MolqStats {
  int threads = 1;                ///< effective thread count of the run
  double vd_seconds = 0.0;        ///< VD Generator stage
  double overlap_seconds = 0.0;   ///< MOVD Overlapper stage
  double optimize_seconds = 0.0;  ///< Optimizer stage (or all of SSC)
  size_t final_ovrs = 0;          ///< |MOVD(Ē)| fed into the Optimizer
  size_t memory_bytes = 0;        ///< Movd::MemoryBytes of the final MOVD
  uint64_t pruned_ovrs = 0;       ///< OVRs cut by overlap pruning (if on)
  uint64_t audit_checks = 0;      ///< invariant checks run by audit hooks
  /// Formatted invariant violations from the audit hooks, prefixed with
  /// the pipeline seam that caught them ("set 0 cells: ..."). Empty when
  /// MolqOptions::audit is off or every invariant held.
  std::vector<std::string> audit_violations;
  OverlapStats overlap;
  OptimizerStats optimizer;
  SscStats ssc;  ///< populated only for MolqAlgorithm::kSsc
};

/// Result of one MOLQ evaluation.
struct MolqResult {
  /// kOk unless options.cancel fired mid-run; location/cost/group are only
  /// meaningful when kOk.
  MolqStatus status = MolqStatus::kOk;
  Point location;
  double cost = 0.0;
  /// The winning object combination (one PoiRef per set, sorted by set).
  std::vector<PoiRef> group;
  MolqStats stats;
};

/// Builds the basic MOVD of one object set (the framework's VD Generator,
/// Fig. 3): an exact ordinary Voronoi diagram when all object weights in
/// the set are equal (ς^o is then rank-preserving in the distance), or a
/// grid-approximated weighted diagram otherwise.
/// `threads` parallelises the weighted-grid sampling when the set routes
/// to the approximated diagram (no effect on the exact ordinary path).
/// When `audit` is non-null, the structural auditors run on the built
/// diagram (post-Delaunay and post-cell-extraction seams) and merge their
/// findings into it.
Movd BuildBasicMovd(const MolqQuery& query, int32_t set,
                    const Rect& search_space, int weighted_grid_resolution,
                    int threads = 1, AuditReport* audit = nullptr);

/// Evaluates MOLQ(Ē, ς^t, σ) over `search_space` (paper Eq. 4): the
/// location minimising MWGD. Dispatches to SSC or to the MOVD pipeline
/// (VD Generator -> MOVD Overlapper -> Optimizer).
MolqResult SolveMolq(const MolqQuery& query, const Rect& search_space,
                     const MolqOptions& options = {});

}  // namespace movd

#endif  // MOVD_CORE_MOLQ_H_
