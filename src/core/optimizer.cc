#include "core/optimizer.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <unordered_set>

#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {
namespace {

struct PoiListHash {
  size_t operator()(const std::vector<PoiRef>& pois) const {
    size_t h = 1469598103934665603ULL;
    for (const PoiRef& p : pois) {
      h ^= (static_cast<size_t>(p.set) << 32) ^
           static_cast<size_t>(static_cast<uint32_t>(p.object));
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// Builds the Fermat–Weber problem of one OVR: demand points with the
// type/object weights folded into Fermat–Weber form, plus the constant
// offset of the decomposition (zero for all-multiplicative queries).
void BuildProblem(const MolqQuery& query, const std::vector<PoiRef>& pois,
                  std::vector<WeightedPoint>* points, double* offset) {
  points->clear();
  *offset = 0.0;
  for (const PoiRef& ref : pois) {
    const SpatialObject& obj = query.sets.at(ref.set).objects.at(ref.object);
    const FermatWeberTerm term = DecomposeWeightedDistance(
        obj, query.type_function, query.ObjectFunction(ref.set));
    points->push_back({obj.location, term.fw_weight});
    *offset += term.offset;
  }
}

// Exact optimal cost of the first two demand points (see batch.cc); adding
// the full problem's constant offset keeps it a valid lower bound of the
// full problem's optimal total cost.
double TwoPointPrefixCost(const std::vector<WeightedPoint>& points,
                          double offset) {
  if (points.size() < 2) return offset;
  return offset + std::min(points[0].weight, points[1].weight) *
                      Distance(points[0].location, points[1].location);
}

struct OvrOutcome {
  Point location;
  double cost = 0.0;  // total cost (Fermat–Weber cost + constant offset)
  bool solved = false;
};

}  // namespace

OptimizerResult OptimizeMovd(const MolqQuery& query, const Movd& movd,
                             const OptimizerOptions& options) {
  MOVD_CHECK_MSG(!movd.ovrs.empty(),
                 "the Optimizer needs a non-empty MOVD to scan");
  OptimizerResult result;
  const size_t n = movd.ovrs.size();

  // Deduplication is a serial prefix pass so "first occurrence wins" stays
  // well-defined regardless of scheduling.
  std::vector<uint8_t> duplicate(n, 0);
  if (options.dedup_combinations) {
    std::unordered_set<std::vector<PoiRef>, PoiListHash> seen;
    for (size_t i = 0; i < n; ++i) {
      MOVD_CHECK(!movd.ovrs[i].pois.empty());
      if (!seen.insert(movd.ovrs[i].pois).second) {
        duplicate[i] = 1;
        ++result.stats.deduped;
      }
    }
  }

  // The §5.4 global cost bound (total-cost space), shared by all workers
  // through CAS-min. Both the prefilter and the in-iteration prune compare
  // strictly, so an OVR whose optimum ties the bound always completes: the
  // winner is then a pure (cost, index) decision, bit-identical for every
  // thread count.
  std::atomic<double> bound{std::numeric_limits<double>::infinity()};
  std::vector<OvrOutcome> outcomes(n);
  std::atomic<uint64_t> problems{0};
  std::atomic<uint64_t> skipped_prefilter{0};
  std::atomic<uint64_t> pruned_by_bound{0};
  std::atomic<uint64_t> total_iterations{0};

  const Trace::Context trace_ctx = Trace::CaptureContext();
  ParallelFor(options.exec.threads, n, [&](size_t i) {
    // Cancellation checkpoint (serving deadlines): once per claimed OVR.
    // The token latches, so after it fires every worker drains its
    // remaining iterations without doing work.
    if (TokenExpired(options.exec.cancel)) return;
    const Ovr& ovr = movd.ovrs[i];
    MOVD_CHECK(!ovr.pois.empty());
    if (duplicate[i]) return;
    // Pool threads have no ambient trace; re-install the caller's so the
    // per-OVR spans parent under the Optimizer stage span.
    TraceContextScope trace_scope(trace_ctx);
    TraceSpan span("optimize_ovr");
    problems.fetch_add(1, std::memory_order_relaxed);

    std::vector<WeightedPoint> points;
    double offset = 0.0;
    BuildProblem(query, ovr.pois, &points, &offset);

    if (options.use_two_point_prefilter && points.size() > 3 &&
        TwoPointPrefixCost(points, offset) >
            bound.load(std::memory_order_relaxed)) {
      skipped_prefilter.fetch_add(1, std::memory_order_relaxed);
      span.Counter("skipped_prefilter", 1);
      return;
    }

    FermatWeberOptions fw;
    fw.epsilon = options.epsilon;
    if (options.use_cost_bound) {
      // The solver sees pure Fermat–Weber costs; it shifts its lower bound
      // by this problem's constant offset before comparing.
      fw.shared_cost_bound = &bound;
      fw.shared_bound_offset = offset;
    }
    const FermatWeberResult r = SolveFermatWeber(points, fw);
    total_iterations.fetch_add(static_cast<uint64_t>(r.iterations),
                               std::memory_order_relaxed);
    span.Counter("weiszfeld_iters", r.iterations);
    if (r.pruned) {
      pruned_by_bound.fetch_add(1, std::memory_order_relaxed);
      span.Counter("pruned_by_bound", 1);
      return;
    }
    const double total = r.cost + offset;
    outcomes[i] = {r.location, total, true};
    AtomicMinDouble(&bound, total);
  });

  result.stats.problems = problems.load();
  result.stats.skipped_prefilter = skipped_prefilter.load();
  result.stats.pruned_by_bound = pruned_by_bound.load();
  result.stats.total_iterations = total_iterations.load();

  // A fired token means an unknown subset of OVRs was skipped: the partial
  // best could be wrong, so no answer is reduced at all.
  if (TokenExpired(options.exec.cancel)) {
    result.cancelled = true;
    return result;
  }

  // Deterministic reduction: minimum total cost, lowest OVR index on ties.
  bool have_answer = false;
  for (size_t i = 0; i < n; ++i) {
    const OvrOutcome& o = outcomes[i];
    if (!o.solved) continue;
    if (!have_answer || o.cost < result.cost) {
      have_answer = true;
      result.cost = o.cost;
      result.location = o.location;
      result.group = movd.ovrs[i].pois;
    }
  }
  MOVD_CHECK(have_answer);
  return result;
}

}  // namespace movd
