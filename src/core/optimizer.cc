#include "core/optimizer.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "util/check.h"

namespace movd {
namespace {

struct PoiListHash {
  size_t operator()(const std::vector<PoiRef>& pois) const {
    size_t h = 1469598103934665603ULL;
    for (const PoiRef& p : pois) {
      h ^= (static_cast<size_t>(p.set) << 32) ^
           static_cast<size_t>(static_cast<uint32_t>(p.object));
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// Builds the Fermat–Weber problem of one OVR: demand points with the
// type/object weights folded into Fermat–Weber form, plus the constant
// offset of the decomposition (zero for all-multiplicative queries).
void BuildProblem(const MolqQuery& query, const std::vector<PoiRef>& pois,
                  std::vector<WeightedPoint>* points, double* offset) {
  points->clear();
  *offset = 0.0;
  for (const PoiRef& ref : pois) {
    const SpatialObject& obj = query.sets.at(ref.set).objects.at(ref.object);
    const FermatWeberTerm term = DecomposeWeightedDistance(
        obj, query.type_function, query.ObjectFunction(ref.set));
    points->push_back({obj.location, term.fw_weight});
    *offset += term.offset;
  }
}

// Exact optimal cost of the first two demand points (see batch.cc); adding
// the full problem's constant offset keeps it a valid lower bound of the
// full problem's optimal total cost.
double TwoPointPrefixCost(const std::vector<WeightedPoint>& points,
                          double offset) {
  if (points.size() < 2) return offset;
  return offset + std::min(points[0].weight, points[1].weight) *
                      Distance(points[0].location, points[1].location);
}

}  // namespace

OptimizerResult OptimizeMovd(const MolqQuery& query, const Movd& movd,
                             const OptimizerOptions& options) {
  MOVD_CHECK(!movd.ovrs.empty());
  OptimizerResult result;
  double bound = std::numeric_limits<double>::infinity();
  bool have_answer = false;

  std::unordered_set<std::vector<PoiRef>, PoiListHash> seen;
  std::vector<WeightedPoint> points;

  for (const Ovr& ovr : movd.ovrs) {
    MOVD_CHECK(!ovr.pois.empty());
    if (options.dedup_combinations && !seen.insert(ovr.pois).second) {
      ++result.stats.deduped;
      continue;
    }
    ++result.stats.problems;

    double offset = 0.0;
    BuildProblem(query, ovr.pois, &points, &offset);

    if (options.use_two_point_prefilter && points.size() > 3 &&
        TwoPointPrefixCost(points, offset) > bound) {
      ++result.stats.skipped_prefilter;
      continue;
    }

    FermatWeberOptions fw;
    fw.epsilon = options.epsilon;
    if (options.use_cost_bound) {
      // The solver sees pure Fermat–Weber costs; shift the global bound by
      // this problem's constant offset.
      fw.cost_bound = bound - offset;
    }
    const FermatWeberResult r = SolveFermatWeber(points, fw);
    result.stats.total_iterations += static_cast<uint64_t>(r.iterations);
    if (r.pruned) {
      ++result.stats.pruned_by_bound;
      continue;
    }
    const double total = r.cost + offset;
    if (!have_answer || total < result.cost) {
      have_answer = true;
      result.cost = total;
      result.location = r.location;
      result.group = ovr.pois;
      bound = total;
    }
  }
  MOVD_CHECK(have_answer);
  return result;
}

}  // namespace movd
