#ifndef MOVD_CORE_PRUNED_OVERLAP_H_
#define MOVD_CORE_PRUNED_OVERLAP_H_

#include "model/movd_model.h"
#include "model/object.h"
#include "core/overlap.h"

namespace movd {

/// Statistics from the pruning overlap.
struct PrunedOverlapStats {
  OverlapStats overlap;       ///< the underlying sweep's counters
  uint64_t pruned_ovrs = 0;   ///< OVRs discarded by the cost bound
  double upper_bound = 0.0;   ///< the seed upper bound used
};

/// The paper's second future-work direction (§8): "pruning the search
/// space by filtering out the impossible POI combinations during the MOVD
/// overlapping."
///
/// A cheap global upper bound U on the query's optimal cost is seeded by
/// probing MWGD on a coarse grid. During every overlap step, each produced
/// OVR's object combination G is given a lower bound
///
///   lb(G) = sum_i offset_i + max_{i<j} min(a_i, a_j) * d(p_i, p_j)
///
/// (valid for any location by the triangle inequality on the decomposed
/// weighted distances WD = a*d + b). OVRs with lb(G) > U are dropped
/// immediately: every extension of G by further types only adds
/// non-negative terms, so no descendant combination can beat U either.
/// The surviving MOVD yields exactly the same optimum as the unpruned one.
Movd OverlapAllPruned(const MolqQuery& query, const std::vector<Movd>& inputs,
                      BoundaryMode mode, const Rect& search_space,
                      PrunedOverlapStats* stats = nullptr);

/// The seed upper bound used by OverlapAllPruned: the minimum MWGD over a
/// `resolution` x `resolution` probe grid (always >= the true optimum).
double SeedUpperBound(const MolqQuery& query, const Rect& search_space,
                      int resolution = 8);

/// The pairwise lower bound lb(G) described above, for an OVR's poi list.
double CombinationLowerBound(const MolqQuery& query,
                             const std::vector<PoiRef>& pois);

}  // namespace movd

#endif  // MOVD_CORE_PRUNED_OVERLAP_H_
