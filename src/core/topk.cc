#include "core/topk.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <queue>
#include <set>

#include "core/pruned_overlap.h"
#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {

MolqResult TopKFromMovd(const MolqQuery& query, const Movd& movd, size_t k,
                        const MolqOptions& options) {
  MOVD_CHECK_MSG(k > 0, "top-k needs k >= 1");
  MOVD_CHECK_MSG(!movd.ovrs.empty(),
                 "the top-k Optimizer needs a non-empty MOVD to scan");
  MolqResult result;
  result.trace = options.exec.trace;
  result.stats.threads = ResolveThreads(options.exec.threads);
  TraceContextScope trace_scope(options.exec.trace);
  TraceSpan span("topk_optimize");

  // Best cost per distinct combination; duplicates (MBRB false positives)
  // collapse naturally. Groups the bound already pruned are remembered too:
  // the bound only ever decreases, so a pruned group stays pruned, and a
  // duplicate OVR must not re-run its Weiszfeld iteration.
  std::map<std::vector<PoiRef>, RankedLocation> best_by_group;
  std::set<std::vector<PoiRef>> pruned_groups;

  // The k smallest costs seen so far, as a bounded max-heap: the root is
  // the running k-th best, which is the prune bound. O(log k) per
  // insertion instead of an O(n) selection over every group so far.
  std::priority_queue<double> best_k;
  // Atomic so the solver's live shared-bound prune can read it; the loop
  // itself is serial. The prune is strict (lb > bound), so a candidate
  // whose optimum exactly ties the current k-th cost is still solved and
  // retained — dropping it would under-fill the result when fewer than k
  // other combinations exist.
  std::atomic<double> kth_bound{std::numeric_limits<double>::infinity()};

  for (const Ovr& ovr : movd.ovrs) {
    // Cancellation checkpoint (serving deadlines): once per OVR. A fired
    // token discards the partial ranking — a truncated scan could rank
    // wrong answers into the top k.
    if (TokenExpired(options.exec.cancel)) {
      result.status = StatusCode::kCancelled;
      return result;
    }
    MOVD_CHECK(!ovr.pois.empty());
    if (best_by_group.count(ovr.pois) || pruned_groups.count(ovr.pois)) {
      continue;  // combination already solved (or already proven worse)
    }
    std::vector<WeightedPoint> points;
    double offset = 0.0;
    for (const PoiRef& ref : ovr.pois) {
      const SpatialObject& obj = query.sets.at(ref.set).objects.at(ref.object);
      const FermatWeberTerm term = DecomposeWeightedDistance(
          obj, query.type_function, query.ObjectFunction(ref.set));
      points.push_back({obj.location, term.fw_weight});
      offset += term.offset;
    }
    FermatWeberOptions fw;
    fw.epsilon = options.epsilon;
    if (options.use_cost_bound) {
      fw.shared_cost_bound = &kth_bound;
      fw.shared_bound_offset = offset;
    }
    const FermatWeberResult r = SolveFermatWeber(points, fw);
    span.Counter("weiszfeld_iters", r.iterations);
    if (r.pruned) {  // provably worse than the current k-th best
      pruned_groups.insert(ovr.pois);
      continue;
    }
    RankedLocation ranked;
    ranked.location = r.location;
    ranked.cost = r.cost + offset;
    ranked.group = ovr.pois;
    const double cost = ranked.cost;
    best_by_group.emplace(ovr.pois, std::move(ranked));
    if (best_k.size() < k) {
      best_k.push(cost);
    } else if (cost < best_k.top()) {
      best_k.pop();
      best_k.push(cost);
    }
    if (best_k.size() == k) {
      kth_bound.store(best_k.top(), std::memory_order_relaxed);
    }
  }

  result.ranked.reserve(best_by_group.size());
  for (auto& [group, r] : best_by_group) result.ranked.push_back(std::move(r));
  // stable_sort keeps the map's (set, object) group order among equal
  // costs, so tied tails are deterministic: when every candidate ties, the
  // ranking is exactly the lexicographic group order.
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [](const RankedLocation& a, const RankedLocation& b) {
                     return a.cost < b.cost;
                   });
  if (result.ranked.size() > k) result.ranked.resize(k);
  span.Counter("ranked", static_cast<int64_t>(result.ranked.size()));
  if (!result.ranked.empty()) {
    result.location = result.ranked.front().location;
    result.cost = result.ranked.front().cost;
    result.group = result.ranked.front().group;
  }
  return result;
}

MolqResult SolveMolqTopK(const MolqQuery& query, const Rect& search_space,
                         size_t k, const MolqOptions& options) {
  MOVD_CHECK(k > 0);
  MOVD_CHECK(options.algorithm != MolqAlgorithm::kSsc);
  MolqResult result;
  result.trace = options.exec.trace;
  TraceContextScope trace_scope(options.exec.trace);
  TRACE_SPAN("solve_molq_topk");
  const BoundaryMode mode = options.algorithm == MolqAlgorithm::kRrb
                                ? BoundaryMode::kRealRegion
                                : BoundaryMode::kMbr;

  const int threads = ResolveThreads(options.exec.threads);
  result.stats.threads = threads;
  const size_t num_sets = query.sets.size();
  const int inner_threads =
      std::max(1, threads / static_cast<int>(num_sets));
  std::vector<Movd> basic(num_sets);
  std::vector<AuditReport> set_audits(options.exec.audit ? num_sets : 0);
  {
    TraceSpan vd_span("vd_generator");
    const Trace::Context ctx = Trace::CaptureContext();
    ParallelFor(threads, num_sets, [&](size_t i) {
      TraceContextScope scope(ctx);
      TRACE_SPAN("build_basic_movd");
      basic[i] = BuildBasicMovd(
          query, static_cast<int32_t>(i), search_space,
          options.exec.weighted_grid_resolution, inner_threads,
          options.exec.audit ? &set_audits[i] : nullptr);
    });
  }
  for (AuditReport& sub : set_audits) result.audit.Merge(std::move(sub));
  Movd movd;
  {
    TRACE_SPAN("movd_overlap");
    movd = OverlapAll(basic, mode, &result.stats.overlap,
                      options.exec.cancel);
  }
  if (TokenExpired(options.exec.cancel)) {
    result.status = StatusCode::kCancelled;
    return result;
  }
  result.stats.final_ovrs = movd.ovrs.size();
  result.stats.memory_bytes = movd.MemoryBytes(mode);

  MolqResult top = TopKFromMovd(query, movd, k, options);
  top.stats.vd_seconds = result.stats.vd_seconds;
  top.stats.overlap = result.stats.overlap;
  top.stats.final_ovrs = result.stats.final_ovrs;
  top.stats.memory_bytes = result.stats.memory_bytes;
  top.audit = std::move(result.audit);
  return top;
}

}  // namespace movd
