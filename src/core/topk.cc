#include "core/topk.h"

#include <algorithm>
#include <limits>
#include <map>

#include "core/pruned_overlap.h"
#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "util/check.h"

namespace movd {

std::vector<RankedLocation> SolveMolqTopK(const MolqQuery& query,
                                          const Rect& search_space, size_t k,
                                          const MolqOptions& options) {
  MOVD_CHECK(k > 0);
  MOVD_CHECK(options.algorithm != MolqAlgorithm::kSsc);
  const BoundaryMode mode = options.algorithm == MolqAlgorithm::kRrb
                                ? BoundaryMode::kRealRegion
                                : BoundaryMode::kMbr;

  std::vector<Movd> basic;
  basic.reserve(query.sets.size());
  for (size_t i = 0; i < query.sets.size(); ++i) {
    basic.push_back(BuildBasicMovd(query, static_cast<int32_t>(i),
                                   search_space,
                                   options.weighted_grid_resolution));
  }
  const Movd movd = OverlapAll(basic, mode);

  // Best cost per distinct combination; duplicates (MBRB false positives)
  // collapse naturally.
  std::map<std::vector<PoiRef>, RankedLocation> best_by_group;
  double kth_bound = std::numeric_limits<double>::infinity();

  const auto current_kth = [&]() {
    if (best_by_group.size() < k) {
      return std::numeric_limits<double>::infinity();
    }
    std::vector<double> costs;
    costs.reserve(best_by_group.size());
    for (const auto& [group, r] : best_by_group) costs.push_back(r.cost);
    std::nth_element(costs.begin(), costs.begin() + (k - 1), costs.end());
    return costs[k - 1];
  };

  for (const Ovr& ovr : movd.ovrs) {
    MOVD_CHECK(!ovr.pois.empty());
    if (best_by_group.count(ovr.pois)) continue;  // combination already done
    std::vector<WeightedPoint> points;
    double offset = 0.0;
    for (const PoiRef& ref : ovr.pois) {
      const SpatialObject& obj = query.sets.at(ref.set).objects.at(ref.object);
      const FermatWeberTerm term = DecomposeWeightedDistance(
          obj, query.type_function, query.ObjectFunction(ref.set));
      points.push_back({obj.location, term.fw_weight});
      offset += term.offset;
    }
    FermatWeberOptions fw;
    fw.epsilon = options.epsilon;
    if (options.use_cost_bound) fw.cost_bound = kth_bound - offset;
    const FermatWeberResult r = SolveFermatWeber(points, fw);
    if (r.pruned) continue;  // cannot enter the current top k
    RankedLocation ranked;
    ranked.location = r.location;
    ranked.cost = r.cost + offset;
    ranked.group = ovr.pois;
    best_by_group.emplace(ovr.pois, std::move(ranked));
    kth_bound = current_kth();
  }

  std::vector<RankedLocation> results;
  results.reserve(best_by_group.size());
  for (auto& [group, r] : best_by_group) results.push_back(std::move(r));
  std::sort(results.begin(), results.end(),
            [](const RankedLocation& a, const RankedLocation& b) {
              return a.cost < b.cost;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace movd
