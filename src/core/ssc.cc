#include "core/ssc.h"

#include <atomic>
#include <limits>

#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "trace/trace.h"
#include "util/check.h"

namespace movd {

SscResult SolveSsc(const MolqQuery& query, const SscOptions& options) {
  const size_t n = query.sets.size();
  MOVD_CHECK_MSG(n > 0, "a MOLQ needs at least one object set");
  for (const ObjectSet& set : query.sets) {
    MOVD_CHECK_MSG(!set.objects.empty(),
                   "every query set needs at least one object");
  }

  SscResult result;
  TraceSpan span("ssc_scan");
  // Atomic so the solver's strict shared-bound prune (the same tie-keeping
  // semantics the RRB/MBRB Optimizer uses) can read it; SSC itself is
  // serial, so plain loads/stores below never race.
  std::atomic<double> bound{std::numeric_limits<double>::infinity()};
  bool have_answer = false;

  std::vector<int32_t> combo(n, 0);
  std::vector<WeightedPoint> points(n);

  // Odometer enumeration of P_1 x ... x P_n.
  bool done = false;
  while (!done) {
    // Cancellation checkpoint (serving deadlines): one poll per
    // combination, i.e. per Fermat–Weber problem — coarse enough that the
    // clock read never dominates, fine enough that a fired deadline stops
    // the scan within one solve.
    if (TokenExpired(options.exec.cancel)) {
      result.cancelled = true;
      return result;
    }
    ++result.stats.combinations;
    double offset = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const SpatialObject& obj = query.sets[i].objects[combo[i]];
      const FermatWeberTerm term = DecomposeWeightedDistance(
          obj, query.type_function, query.ObjectFunction(i));
      points[i] = {obj.location, term.fw_weight};
      offset += term.offset;
    }

    bool skip = false;
    if (options.use_upper_bound_prune && n > 2) {
      // Exact two-point optimum of <p_1^u, p_2^s> (Algorithm 1 line 4) plus
      // the combination's constant offsets: a lower bound on the full
      // combination's optimal cost.
      const double prefix =
          offset + std::min(points[0].weight, points[1].weight) *
                       Distance(points[0].location, points[1].location);
      // Strictly greater, matching the Optimizer's prefilter: a prefix that
      // exactly ties the bound cannot improve on it, but skipping on ties
      // would make SSC and RRB/MBRB disagree about tie-cost optima.
      if (prefix > bound.load(std::memory_order_relaxed)) {
        ++result.stats.skipped_prefilter;
        skip = true;
      }
    }

    if (!skip) {
      FermatWeberOptions fw;
      fw.epsilon = options.epsilon;
      if (options.use_cost_bound) {
        fw.shared_cost_bound = &bound;
        fw.shared_bound_offset = offset;
      }
      const FermatWeberResult r = SolveFermatWeber(points, fw);
      result.stats.total_iterations += static_cast<uint64_t>(r.iterations);
      if (r.pruned) {
        ++result.stats.pruned_by_bound;
      } else {
        const double total = r.cost + offset;
        if (!have_answer || total < bound.load(std::memory_order_relaxed)) {
          have_answer = true;
          bound.store(total, std::memory_order_relaxed);
          result.cost = total;
          result.location = r.location;
          result.group = combo;
        }
      }
    }

    // Advance the odometer.
    size_t i = 0;
    while (i < n) {
      if (++combo[i] < static_cast<int32_t>(query.sets[i].objects.size())) {
        break;
      }
      combo[i] = 0;
      ++i;
    }
    done = i == n;
  }
  MOVD_CHECK(have_answer);
  span.Counter("combinations",
               static_cast<int64_t>(result.stats.combinations));
  span.Counter("weiszfeld_iters",
               static_cast<int64_t>(result.stats.total_iterations));
  return result;
}

}  // namespace movd
