#ifndef MOVD_CORE_TOPK_H_
#define MOVD_CORE_TOPK_H_

#include <vector>

#include "core/molq.h"

namespace movd {

/// One ranked answer of a top-k MOLQ.
struct RankedLocation {
  Point location;
  double cost = 0.0;
  std::vector<PoiRef> group;  ///< the object combination it serves
};

/// Top-k extension of MOLQ (beyond the paper): the k best locally-optimal
/// locations over *distinct* object combinations, ascending by cost. A
/// planner rarely wants a single point; the runners-up are the natural
/// alternatives.
///
/// Runs the MOVD pipeline (RRB or MBRB per `options.algorithm`; kSsc is
/// rejected) and keeps the k best Fermat–Weber optima. The cost bound used
/// for pruning is the k-th best cost so far, so correctness of all k
/// results is preserved.
///
/// `status` (optional): receives kCancelled when options.cancel fired
/// mid-run, in which case the returned vector is empty (never a partial
/// ranking); kOk otherwise.
std::vector<RankedLocation> SolveMolqTopK(const MolqQuery& query,
                                          const Rect& search_space, size_t k,
                                          const MolqOptions& options = {},
                                          MolqStatus* status = nullptr);

/// The Optimizer half of SolveMolqTopK, over an already-built MOVD: the k
/// best locally-optimal locations over distinct object combinations. This
/// is the entry point the serving engine (src/serve) uses to rank answers
/// from a cached overlay artifact without rebuilding the pipeline; OVR poi
/// refs must index into `query`. Cancellation semantics as above.
std::vector<RankedLocation> TopKFromMovd(const MolqQuery& query,
                                         const Movd& movd, size_t k,
                                         const MolqOptions& options = {},
                                         MolqStatus* status = nullptr);

}  // namespace movd

#endif  // MOVD_CORE_TOPK_H_
