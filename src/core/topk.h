#ifndef MOVD_CORE_TOPK_H_
#define MOVD_CORE_TOPK_H_

#include "core/molq.h"

namespace movd {

/// Top-k extension of MOLQ (beyond the paper): the k best locally-optimal
/// locations over *distinct* object combinations, ascending by cost. A
/// planner rarely wants a single point; the runners-up are the natural
/// alternatives.
///
/// Runs the MOVD pipeline (RRB or MBRB per `options.algorithm`; kSsc is
/// rejected) and keeps the k best Fermat–Weber optima in
/// MolqResult::ranked (location/cost/group mirror ranked[0]). The cost
/// bound used for pruning is the k-th best cost so far, so correctness of
/// all k results is preserved.
///
/// Edge cases (deterministic by contract):
///  - k exceeding the number of distinct object combinations returns every
///    combination, ascending by cost — ranked.size() < k, never an error.
///  - Cost ties (including all candidates tied) rank in lexicographic
///    group order, the repo-wide (set, object) tie rule; the result is
///    identical for every thread count and pruning setting.
///
/// MolqResult::status is kCancelled when options.exec.cancel fired
/// mid-run, in which case `ranked` is empty (never a partial ranking).
MolqResult SolveMolqTopK(const MolqQuery& query, const Rect& search_space,
                         size_t k, const MolqOptions& options = {});

/// The Optimizer half of SolveMolqTopK, over an already-built MOVD: the k
/// best locally-optimal locations over distinct object combinations. This
/// is the entry point the serving engine (src/serve) uses to rank answers
/// from a cached overlay artifact without rebuilding the pipeline; OVR poi
/// refs must index into `query`. Cancellation semantics as above.
MolqResult TopKFromMovd(const MolqQuery& query, const Movd& movd, size_t k,
                        const MolqOptions& options = {});

}  // namespace movd

#endif  // MOVD_CORE_TOPK_H_
