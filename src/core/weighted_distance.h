#ifndef MOVD_CORE_WEIGHTED_DISTANCE_H_
#define MOVD_CORE_WEIGHTED_DISTANCE_H_

#include <vector>

#include "model/object.h"
#include "geom/point.h"

namespace movd {

/// WD(q, p, ς^t, ς^o) = ς^t(ς^o(d(q, p.l), p.w^o), p.w^t)   (paper Eq. 1).
double WeightedDistance(const Point& q, const SpatialObject& p,
                        WeightFunctionKind type_fn,
                        WeightFunctionKind object_fn);

/// WGD(q, G, ς^t, σ): sum of WD over an object group, one object per set
/// (paper Eq. 2). `group[i]` indexes into `query.sets[i].objects`.
double WeightedGroupDistance(const MolqQuery& query, const Point& q,
                             const std::vector<int32_t>& group);

/// WGD over an explicit list of object references (used on OVR poi lists).
double WeightedGroupDistance(const MolqQuery& query, const Point& q,
                             const std::vector<PoiRef>& group);

/// MWGD(q, Ē, ς^t, σ) (paper Eq. 3). Because the group sum decomposes per
/// type, the minimum over the cartesian product equals the sum of per-set
/// minima; this evaluates in O(sum |P_i|) rather than O(prod |P_i|).
double MinWeightedGroupDistance(const MolqQuery& query, const Point& q);

/// The group realising MinWeightedGroupDistance: per set, the object with
/// the smallest WD (ties to the lowest index).
std::vector<int32_t> ArgMinGroup(const MolqQuery& query, const Point& q);

/// The decomposition of one object's WD into Fermat–Weber form:
/// WD(q, p) = fw_weight * d(q, p.l) + offset. Exact for every combination
/// of multiplicative/additive ς^t and ς^o (see DESIGN.md §4); this is how
/// the Optimizer turns an OVR into a weighted Fermat–Weber problem plus a
/// constant.
struct FermatWeberTerm {
  double fw_weight = 1.0;
  double offset = 0.0;
};
FermatWeberTerm DecomposeWeightedDistance(const SpatialObject& p,
                                          WeightFunctionKind type_fn,
                                          WeightFunctionKind object_fn);

}  // namespace movd

#endif  // MOVD_CORE_WEIGHTED_DISTANCE_H_
