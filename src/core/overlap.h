#ifndef MOVD_CORE_OVERLAP_H_
#define MOVD_CORE_OVERLAP_H_

#include <cstdint>

#include "model/movd_model.h"
#include "util/cancel.h"

namespace movd {

/// Counters exposed by the overlap operation, matching the quantities the
/// paper's Figs. 11-14 report.
struct OverlapStats {
  uint64_t events = 0;               ///< start/end events processed
  uint64_t candidate_pairs = 0;      ///< x-range hits tested (Alg. 3 line 4)
  uint64_t region_intersections = 0; ///< real region ∩ computed (RRB only)
  uint64_t output_ovrs = 0;          ///< OVRs appended to the result
};

/// The overlap operation ⊕ (paper Eq. 22, Algorithms 2-4): plane-sweeps the
/// two MOVDs top-to-bottom, pairing OVRs whose y-spans are simultaneously
/// active and whose x-ranges overlap, then intersecting each pair with the
/// selected boundary handler:
///  - BoundaryMode::kRealRegion (RRB, Algorithm 3): real region
///    intersection; empty intersections are discarded.
///  - BoundaryMode::kMbr (MBRB, Algorithm 4): MBR intersection only; every
///    x/y-range hit is emitted (false positives possible).
/// Both operands must themselves carry the fields the mode needs.
///
/// `cancel` (serving deadlines): polled once per sweep-event block. A fired
/// token aborts the sweep and returns a truncated MOVD — callers that pass
/// a token MUST re-check it afterwards and discard the result when it
/// fired, as SolveMolq does.
Movd Overlap(const Movd& a, const Movd& b, BoundaryMode mode,
             OverlapStats* stats = nullptr,
             const CancelToken* cancel = nullptr);

/// Sequential overlap Σ⊕ (paper Eq. 27): folds `inputs` left-to-right,
/// starting from MOVD(∅). Stats accumulate across all steps. `cancel` as in
/// Overlap: a fired token yields a truncated result the caller must
/// discard.
Movd OverlapAll(const std::vector<Movd>& inputs, BoundaryMode mode,
                OverlapStats* stats = nullptr,
                const CancelToken* cancel = nullptr);

/// Reference implementation: the nested-loop O(n*m) overlap with the same
/// semantics. Used by tests to validate the sweep.
Movd OverlapBruteForce(const Movd& a, const Movd& b, BoundaryMode mode);

/// The per-pair boundary handler shared by the in-memory sweep, the brute
/// force, and the disk-based streaming overlap: intersects one candidate
/// pair under `mode` (Algorithm 3 line 5 vs Algorithm 4 line 5) and merges
/// the poi lists. Returns false when the RRB intersection is empty.
bool IntersectOvrPair(const Ovr& x, const Ovr& y, BoundaryMode mode,
                      Ovr* out);

}  // namespace movd

#endif  // MOVD_CORE_OVERLAP_H_
