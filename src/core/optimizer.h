#ifndef MOVD_CORE_OPTIMIZER_H_
#define MOVD_CORE_OPTIMIZER_H_

#include <cstdint>

#include "model/movd_model.h"
#include "model/object.h"
#include "util/exec_options.h"

namespace movd {

/// Options for the MOVD Optimizer stage (paper §5.4, Algorithm 5).
struct OptimizerOptions {
  /// Stopping-rule error bound for each Fermat–Weber problem.
  double epsilon = 1e-3;

  /// Algorithm 5's global cost bound with per-iteration lower-bound cuts.
  bool use_cost_bound = true;

  /// Algorithm 5 lines 8-12: exact two-point-prefix filter.
  bool use_two_point_prefilter = true;

  /// Collapse OVRs with identical poi combinations before optimizing
  /// (an extension beyond the paper: MBRB false positives frequently
  /// duplicate combinations). Off by default to match the paper.
  bool dedup_combinations = false;

  /// Shared execution knobs (util/exec_options.h). `exec.threads` fans the
  /// per-OVR Fermat–Weber solves out over workers sharing the §5.4 cost
  /// bound through an atomic CAS-min; the returned (location, cost, group)
  /// is identical for every thread count — the winning OVR is resolved by
  /// a (cost, index) reduction, never by arrival order — though
  /// iteration/prune counters may vary with timing. `exec.cancel` is
  /// polled once per OVR (on the claiming worker): when it fires,
  /// remaining OVRs are skipped and OptimizerResult::cancelled is set —
  /// the partial best is NOT returned. `exec.trace` spans each OVR solve.
  ExecOptions exec;
};

/// Counters for the Optimizer stage.
struct OptimizerStats {
  uint64_t problems = 0;            ///< OVRs examined
  uint64_t deduped = 0;             ///< OVRs skipped as duplicates
  uint64_t skipped_prefilter = 0;   ///< skipped by the two-point filter
  uint64_t pruned_by_bound = 0;     ///< iterations cut by the cost bound
  uint64_t total_iterations = 0;    ///< Weiszfeld iterations in total
};

/// Result of optimizing one MOVD.
struct OptimizerResult {
  /// True when options.cancel fired before every OVR was examined; the
  /// answer fields are then unset.
  bool cancelled = false;
  Point location;           ///< the best locally-optimal location
  double cost = 0.0;        ///< its WGD against its OVR's object group
  std::vector<PoiRef> group;  ///< the winning object combination
  OptimizerStats stats;
};

/// Scans the OVRs of `movd`, solves the Fermat–Weber problem induced by
/// each OVR's object group (object weights folded into the distance, type
/// weights into the point weights — see DecomposeWeightedDistance), and
/// returns the best local optimum (the framework's Optimizer stage,
/// Fig. 3). Requires a non-empty MOVD whose OVRs have non-empty poi lists.
OptimizerResult OptimizeMovd(const MolqQuery& query, const Movd& movd,
                             const OptimizerOptions& options = {});

}  // namespace movd

#endif  // MOVD_CORE_OPTIMIZER_H_
