#include "core/weighted_distance.h"

#include <limits>

#include "util/check.h"

namespace movd {

double WeightedDistance(const Point& q, const SpatialObject& p,
                        WeightFunctionKind type_fn,
                        WeightFunctionKind object_fn) {
  const double d = Distance(q, p.location);
  return ApplyWeight(type_fn, ApplyWeight(object_fn, d, p.object_weight),
                     p.type_weight);
}

double WeightedGroupDistance(const MolqQuery& query, const Point& q,
                             const std::vector<int32_t>& group) {
  MOVD_CHECK(group.size() == query.sets.size());
  double sum = 0.0;
  for (size_t i = 0; i < group.size(); ++i) {
    const SpatialObject& p = query.sets[i].objects.at(group[i]);
    sum += WeightedDistance(q, p, query.type_function,
                            query.ObjectFunction(i));
  }
  return sum;
}

double WeightedGroupDistance(const MolqQuery& query, const Point& q,
                             const std::vector<PoiRef>& group) {
  double sum = 0.0;
  for (const PoiRef& ref : group) {
    const SpatialObject& p = query.sets.at(ref.set).objects.at(ref.object);
    sum += WeightedDistance(q, p, query.type_function,
                            query.ObjectFunction(ref.set));
  }
  return sum;
}

double MinWeightedGroupDistance(const MolqQuery& query, const Point& q) {
  double sum = 0.0;
  for (size_t i = 0; i < query.sets.size(); ++i) {
    const ObjectSet& set = query.sets[i];
    MOVD_CHECK(!set.objects.empty());
    double best = std::numeric_limits<double>::infinity();
    for (const SpatialObject& p : set.objects) {
      best = std::min(best, WeightedDistance(q, p, query.type_function,
                                             query.ObjectFunction(i)));
    }
    sum += best;
  }
  return sum;
}

std::vector<int32_t> ArgMinGroup(const MolqQuery& query, const Point& q) {
  std::vector<int32_t> group;
  group.reserve(query.sets.size());
  for (size_t i = 0; i < query.sets.size(); ++i) {
    const ObjectSet& set = query.sets[i];
    MOVD_CHECK(!set.objects.empty());
    int32_t best = 0;
    double best_wd = std::numeric_limits<double>::infinity();
    for (size_t j = 0; j < set.objects.size(); ++j) {
      const double wd = WeightedDistance(q, set.objects[j],
                                         query.type_function,
                                         query.ObjectFunction(i));
      if (wd < best_wd) {
        best_wd = wd;
        best = static_cast<int32_t>(j);
      }
    }
    group.push_back(best);
  }
  return group;
}

FermatWeberTerm DecomposeWeightedDistance(const SpatialObject& p,
                                          WeightFunctionKind type_fn,
                                          WeightFunctionKind object_fn) {
  // Inner function: ς^o(d, w^o) = a*d + b.
  double a, b;
  if (object_fn == WeightFunctionKind::kMultiplicative) {
    a = p.object_weight;
    b = 0.0;
  } else {
    a = 1.0;
    b = p.object_weight;
  }
  // Outer function: ς^t(x, w^t).
  FermatWeberTerm term;
  if (type_fn == WeightFunctionKind::kMultiplicative) {
    term.fw_weight = a * p.type_weight;
    term.offset = b * p.type_weight;
  } else {
    term.fw_weight = a;
    term.offset = b + p.type_weight;
  }
  return term;
}

}  // namespace movd
