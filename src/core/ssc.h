#ifndef MOVD_CORE_SSC_H_
#define MOVD_CORE_SSC_H_

#include <cstdint>
#include <vector>

#include "model/object.h"
#include "geom/point.h"
#include "util/exec_options.h"

namespace movd {

/// Options for the Sequential Scan Combinations baseline (paper §3).
struct SscOptions {
  /// Stopping-rule error bound for each Fermat–Weber problem.
  double epsilon = 1e-3;

  /// Algorithm 1 lines 4-5: the exact two-point-prefix upper-bound filter.
  bool use_upper_bound_prune = true;

  /// Apply the cost-bound iteration cut of §5.4 inside each Fermat–Weber
  /// solve ("The Cost-bound approach can be used in the SSC solution as
  /// well"); the paper's Figs. 8-9 run SSC with it enabled.
  bool use_cost_bound = true;

  /// Shared execution knobs (util/exec_options.h). Only `exec.cancel` and
  /// `exec.trace` apply — the scan itself is serial (`exec.threads` is
  /// ignored; the per-problem solver is the unit of work). The cancel
  /// token is polled once per combination: when it fires the scan stops
  /// and SscResult::cancelled is set — the partially-scanned best answer
  /// is NOT returned.
  ExecOptions exec;
};

/// Counters for SSC.
struct SscStats {
  uint64_t combinations = 0;       ///< cartesian-product size visited
  uint64_t skipped_prefilter = 0;  ///< filtered by the two-point bound
  uint64_t pruned_by_bound = 0;    ///< iteration-pruned problems
  uint64_t total_iterations = 0;   ///< Weiszfeld iterations in total
};

/// Result of an SSC run.
struct SscResult {
  /// True when options.cancel fired before the scan finished; the answer
  /// fields are then unset.
  bool cancelled = false;
  Point location;
  double cost = 0.0;
  /// Winning object combination: group[i] indexes query.sets[i].objects.
  std::vector<int32_t> group;
  SscStats stats;
};

/// Solves MOLQ by scanning all object combinations P_1 x ... x P_n
/// (Algorithm 1). Exact up to the Fermat–Weber stopping rule; exponential
/// in the number of sets. Every set must be non-empty.
SscResult SolveSsc(const MolqQuery& query, const SscOptions& options = {});

}  // namespace movd

#endif  // MOVD_CORE_SSC_H_
