#ifndef MOVD_CORE_GRID_SCAN_H_
#define MOVD_CORE_GRID_SCAN_H_

#include "model/object.h"
#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// Result of a brute-force grid scan of the search space.
struct GridScanResult {
  Point location;     ///< best grid point
  double cost = 0.0;  ///< MWGD at that point
};

/// Ground-truth reference evaluator: evaluates MWGD(q, Ē, ς^t, σ) on a
/// `resolution` x `resolution` grid of `search_space` and returns the best
/// grid point. The true optimum's cost is within O(grid pitch x total
/// weight) of the returned cost; tests use this to validate the solvers.
/// O(resolution^2 * sum |P_i|).
GridScanResult GridScanMolq(const MolqQuery& query, const Rect& search_space,
                            int resolution);

}  // namespace movd

#endif  // MOVD_CORE_GRID_SCAN_H_
