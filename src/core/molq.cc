#include "core/molq.h"

#include <algorithm>
#include <unordered_map>

#include "audit/audit.h"
#include "audit/audit_delaunay.h"
#include "audit/audit_overlay.h"
#include "audit/audit_voronoi.h"
#include "audit/audit_weighted.h"
#include "core/pruned_overlap.h"
#include "core/weighted_distance.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"
#include "voronoi/delaunay.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace movd {

// True when the set's full weighted distance WD(q, p) = a*d(q, p) + b has
// identical coefficients (a, b) for every object, so WD ranks objects
// exactly like plain distance and the ordinary Voronoi diagram is exact.
// This covers the paper's default (all weights 1) and any per-type
// constant weights; per-object weights route to the weighted diagram.
bool OrdinaryDiagramSuffices(const MolqQuery& query, int32_t set) {
  const ObjectSet& objects = query.sets.at(set);
  const FermatWeberTerm first = DecomposeWeightedDistance(
      objects.objects.front(), query.type_function,
      query.ObjectFunction(set));
  for (const SpatialObject& obj : objects.objects) {
    const FermatWeberTerm term = DecomposeWeightedDistance(
        obj, query.type_function, query.ObjectFunction(set));
    if (term.fw_weight != first.fw_weight || term.offset != first.offset) {
      return false;
    }
  }
  return true;
}

namespace {

// Re-labels every violation of `sub` with the pipeline seam that caught it
// and folds it into `total`.
void MergeStageAudit(AuditReport sub, const std::string& stage,
                     AuditReport* total) {
  AuditReport labelled;
  labelled.NoteChecks(sub.checks());
  for (const AuditViolation& v : sub.violations()) {
    labelled.Add(v.kind, stage + ": " + v.message, v.indices, v.witness);
  }
  total->Merge(std::move(labelled));
}

}  // namespace

Movd BuildBasicMovd(const MolqQuery& query, int32_t set,
                    const Rect& search_space, int weighted_grid_resolution,
                    int threads, AuditReport* audit,
                    WeightedMethod weighted_method) {
  const ObjectSet& objects = query.sets.at(set);
  MOVD_CHECK_MSG(!objects.objects.empty(),
                 "every query set needs at least one object");

  if (OrdinaryDiagramSuffices(query, set)) {
    TRACE_SPAN("ordinary_voronoi");
    std::vector<Point> sites;
    sites.reserve(objects.objects.size());
    for (const SpatialObject& obj : objects.objects) {
      sites.push_back(obj.location);
    }
    // Cells come from the Delaunay-neighbour builder: a cell is then a
    // pure function of (site, LessXY-sorted neighbour set, bounds), which
    // is what lets the live-update path (src/core/update) recompute only
    // the cells whose neighbour sets a mutation touched and still produce
    // bytes identical to this full build.
    const VoronoiDiagram vd = VoronoiDiagram::Build(
        sites, search_space, VoronoiDiagram::Strategy::kDelaunay);
    if (audit != nullptr) {
      // Post-Delaunay seam: the triangulation substrate the Voronoi cells
      // are cross-validated against (built here on demand — the default
      // kNN cell builder does not keep one).
      const std::string tag = "set " + std::to_string(set);
      MergeStageAudit(AuditDelaunay(Delaunay(vd.sites())),
                      tag + " delaunay", audit);
      // Post-cell-extraction seam: the diagram the MOVD is built from.
      MergeStageAudit(AuditVoronoi(vd), tag + " cells", audit);
    }
    // The diagram deduplicates site locations; map each surviving site back
    // to the first object at that location.
    std::unordered_map<Point, int32_t, PointHash> first_at;
    for (size_t i = 0; i < objects.objects.size(); ++i) {
      first_at.emplace(objects.objects[i].location, static_cast<int32_t>(i));
    }
    std::vector<int32_t> object_of_site;
    object_of_site.reserve(vd.sites().size());
    for (const Point& site : vd.sites()) {
      const auto it = first_at.find(site);
      MOVD_CHECK(it != first_at.end());
      object_of_site.push_back(it->second);
    }
    return MovdFromVoronoi(vd, set, object_of_site);
  }

  // Weighted diagram: conservative approximation (paper §5.3; see
  // DESIGN.md §11). The dominance metric is the set's full affine weighted
  // distance WD(q, p) = a*d + b with (a, b) from the ς^t/ς^o
  // decomposition, so the diagram is exact in intent for every supported
  // weight-function combo.
  TRACE_SPAN("weighted_grid");
  std::vector<WeightedSite> sites;
  sites.reserve(objects.objects.size());
  for (const SpatialObject& obj : objects.objects) {
    const FermatWeberTerm term = DecomposeWeightedDistance(
        obj, query.type_function, query.ObjectFunction(set));
    sites.push_back({obj.location, term.fw_weight, term.offset});
  }
  WeightedOptions wopts;
  wopts.method = weighted_method;
  wopts.resolution = weighted_grid_resolution;
  wopts.threads = threads;
  const auto cells = BuildWeightedCells(sites, search_space, wopts);
  if (audit != nullptr) {
    // Post-cell-extraction seam, weighted route. The dense auditor's
    // sample-sum and hull-vertex invariants only hold for the dense
    // sampler, so the adaptive route gets its own auditor (which also
    // replays the cross-method dominance-containment guarantee).
    const AuditReport sub =
        weighted_method == WeightedMethod::kDenseGrid
            ? AuditWeightedCells(sites, cells, search_space,
                                 weighted_grid_resolution)
            : AuditAdaptiveWeightedCells(sites, cells, search_space,
                                         weighted_grid_resolution);
    MergeStageAudit(sub, "set " + std::to_string(set) + " weighted cells",
                    audit);
  }
  std::vector<int32_t> object_of_site(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    object_of_site[i] = static_cast<int32_t>(i);
  }
  return MovdFromWeightedApprox(cells, set, object_of_site);
}

MolqResult SolveMolq(const MolqQuery& query, const Rect& search_space,
                     const MolqOptions& options) {
  MOVD_CHECK_MSG(!query.sets.empty(),
                 "a MOLQ needs at least one object set");
  MOVD_CHECK_MSG(!search_space.Empty(),
                 "the search space must be a non-empty rectangle");
  MolqResult result;
  result.trace = options.exec.trace;
  // Install the run's trace as this thread's ambient trace: every span
  // below (and in the builders/optimizer we call) attaches to it without
  // threading a pointer through each signature.
  TraceContextScope trace_scope(options.exec.trace);
  TRACE_SPAN("solve_molq");
  const int threads = ResolveThreads(options.exec.threads);
  result.stats.threads = threads;

  if (options.algorithm == MolqAlgorithm::kSsc) {
    Stopwatch sw;
    SscOptions ssc;
    ssc.epsilon = options.epsilon;
    ssc.use_upper_bound_prune = options.use_two_point_prefilter;
    ssc.use_cost_bound = options.use_cost_bound;
    ssc.exec = options.exec;
    const SscResult r = SolveSsc(query, ssc);
    if (r.cancelled) {
      result.status = StatusCode::kCancelled;
      result.stats.ssc = r.stats;
      result.stats.optimize_seconds = sw.ElapsedSeconds();
      return result;
    }
    result.location = r.location;
    result.cost = r.cost;
    result.group.reserve(r.group.size());
    for (size_t s = 0; s < r.group.size(); ++s) {
      result.group.push_back({static_cast<int32_t>(s), r.group[s]});
    }
    result.stats.ssc = r.stats;
    result.stats.optimize_seconds = sw.ElapsedSeconds();
    result.ranked.push_back({result.location, result.cost, result.group});
    return result;
  }

  const BoundaryMode mode = options.algorithm == MolqAlgorithm::kRrb
                                ? BoundaryMode::kRealRegion
                                : BoundaryMode::kMbr;

  // Stage 1: VD Generator — one basic MOVD per object set (Property 7).
  // Each set's diagram builds independently; the grid sampler of weighted
  // sets gets the threads the set-level fan-out leaves unused.
  Stopwatch sw;
  const size_t num_sets = query.sets.size();
  const int inner_threads =
      std::max(1, threads / static_cast<int>(num_sets));
  std::vector<Movd> basic(num_sets);
  // One pre-sized report slot per set: hook writes stay thread-private
  // under the ParallelFor and are folded serially below.
  std::vector<AuditReport> set_audits(options.exec.audit ? num_sets : 0);
  {
    TraceSpan vd_span("vd_generator");
    const Trace::Context ctx = Trace::CaptureContext();
    ParallelFor(threads, num_sets, [&](size_t i) {
      // Pool threads have no ambient trace; re-install the caller's so
      // the per-set builder spans parent under "vd_generator".
      TraceContextScope scope(ctx);
      TRACE_SPAN("build_basic_movd");
      basic[i] = BuildBasicMovd(
          query, static_cast<int32_t>(i), search_space,
          options.exec.weighted_grid_resolution, inner_threads,
          options.exec.audit ? &set_audits[i] : nullptr,
          options.exec.weighted_method);
    });
  }
  result.stats.vd_seconds = sw.ElapsedSeconds();

  // Stage-boundary cancellation checkpoint: the per-set diagram builds are
  // bounded and not individually interruptible, so the deadline is
  // enforced here before the (typically dominant) overlap stage starts.
  if (TokenExpired(options.exec.cancel)) {
    result.status = StatusCode::kCancelled;
    return result;
  }

  // Stage 2: MOVD Overlapper — sequential ⊕ over the basic MOVDs (Eq. 27),
  // optionally with combination pruning (§8 future work).
  sw.Reset();
  Movd movd;
  {
    TRACE_SPAN("movd_overlap");
    if (options.use_overlap_pruning) {
      PrunedOverlapStats pruned;
      movd = OverlapAllPruned(query, basic, mode, search_space, &pruned);
      result.stats.overlap = pruned.overlap;
      result.stats.pruned_ovrs = pruned.pruned_ovrs;
    } else {
      movd = OverlapAll(basic, mode, &result.stats.overlap,
                        options.exec.cancel);
    }
  }
  // A token that fired during the sweep leaves `movd` truncated — discard
  // it and report cancellation instead of optimizing a partial overlay.
  if (TokenExpired(options.exec.cancel)) {
    result.status = StatusCode::kCancelled;
    return result;
  }
  result.stats.overlap_seconds = sw.ElapsedSeconds();
  result.stats.final_ovrs = movd.ovrs.size();
  result.stats.memory_bytes = movd.MemoryBytes(mode);

  if (options.exec.audit) {
    // Post-overlay seam, plus the per-set reports gathered in stage 1.
    TRACE_SPAN("audit_overlay");
    for (AuditReport& sub : set_audits) result.audit.Merge(std::move(sub));
    MergeStageAudit(AuditMovdOverlay(movd, basic, mode, search_space),
                    "overlay", &result.audit);
  }

  // Stage 3: Optimizer — best local optimum across OVRs (§5.4).
  sw.Reset();
  OptimizerOptions opt;
  opt.epsilon = options.epsilon;
  opt.use_cost_bound = options.use_cost_bound;
  opt.use_two_point_prefilter = options.use_two_point_prefilter;
  opt.dedup_combinations = options.dedup_combinations;
  opt.exec = options.exec;
  const OptimizerResult r = OptimizeMovd(query, movd, opt);
  result.stats.optimize_seconds = sw.ElapsedSeconds();
  result.stats.optimizer = r.stats;
  if (r.cancelled) {
    result.status = StatusCode::kCancelled;
    return result;
  }
  result.location = r.location;
  result.cost = r.cost;
  result.group = r.group;
  result.ranked.push_back({r.location, r.cost, r.group});
  return result;
}

}  // namespace movd
