#include "core/grid_scan.h"

#include <limits>

#include "core/weighted_distance.h"
#include "util/check.h"

namespace movd {

GridScanResult GridScanMolq(const MolqQuery& query, const Rect& search_space,
                            int resolution) {
  MOVD_CHECK(resolution > 1);
  GridScanResult best;
  best.cost = std::numeric_limits<double>::infinity();
  const double sx = search_space.Width() / (resolution - 1);
  const double sy = search_space.Height() / (resolution - 1);
  for (int gy = 0; gy < resolution; ++gy) {
    for (int gx = 0; gx < resolution; ++gx) {
      const Point q{search_space.min_x + gx * sx,
                    search_space.min_y + gy * sy};
      const double cost = MinWeightedGroupDistance(query, q);
      if (cost < best.cost) {
        best.cost = cost;
        best.location = q;
      }
    }
  }
  return best;
}

}  // namespace movd
