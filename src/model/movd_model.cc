#include "model/movd_model.h"

#include "util/check.h"

namespace movd {

size_t Movd::MemoryBytes(BoundaryMode mode) const {
  size_t bytes = 0;
  for (const Ovr& ovr : ovrs) {
    if (mode == BoundaryMode::kRealRegion) {
      bytes += ovr.region.VertexCount() * sizeof(Point);
    } else {
      bytes += 2 * sizeof(Point);  // an MBR is two corner points
    }
    bytes += ovr.pois.size() * sizeof(PoiRef);
  }
  return bytes;
}

size_t Movd::VertexCount() const {
  size_t n = 0;
  for (const Ovr& ovr : ovrs) n += ovr.region.VertexCount();
  return n;
}

Movd IdentityMovd(const Rect& search_space) {
  Movd movd;
  Ovr ovr;
  ovr.region = Region::FromRect(search_space);
  ovr.mbr = search_space;
  movd.ovrs.push_back(std::move(ovr));
  return movd;
}

Movd MovdFromVoronoi(const VoronoiDiagram& diagram, int32_t set,
                     const std::vector<int32_t>& object_of_site) {
  MOVD_CHECK(object_of_site.size() == diagram.sites().size());
  Movd movd;
  movd.ovrs.reserve(diagram.cells().size());
  for (const VoronoiCell& cell : diagram.cells()) {
    if (cell.region.Empty()) continue;  // MOVDs hold no empty regions
    Ovr ovr;
    ovr.mbr = cell.region.Bbox();
    ovr.region = Region::FromConvex(cell.region);
    ovr.pois = {{set, object_of_site[cell.site]}};
    movd.ovrs.push_back(std::move(ovr));
  }
  return movd;
}

Movd MovdFromWeightedApprox(const std::vector<WeightedCellApprox>& cells,
                            int32_t set,
                            const std::vector<int32_t>& object_of_site) {
  MOVD_CHECK(object_of_site.size() == cells.size());
  Movd movd;
  for (const WeightedCellApprox& cell : cells) {
    // Empty generators carry the sentinel invalid Rect() as their MBR; a
    // default-constructed Rect fed into MBRB prefiltering would silently
    // drop every intersection test, so skip them (and any cell whose MBR
    // is degenerate) before they can become OVRs.
    if (cell.empty || cell.mbr.Empty()) continue;
    Ovr ovr;
    ovr.mbr = cell.mbr;
    // Weighted cells may be concave or disconnected. RRB uses the tight
    // dilated grid-contour cover when available; conservative covers keep
    // correctness (any truly co-occurring combination still pairs up, and
    // scanning extra combinations cannot change the global optimum). The
    // triangulation of a cover ring can come up short on degenerate
    // (self-touching) rings; detect that by area and fall back to the MBR.
    if (!cell.cover.empty()) {
      std::vector<ConvexPolygon> pieces;
      double ring_area = 0.0;
      for (const Polygon& ring : cell.cover) {
        ring_area += ring.SignedArea();
        auto tris = ring.Triangulate();
        for (ConvexPolygon& t : tris) pieces.push_back(std::move(t));
      }
      Region region = Region::FromPieces(std::move(pieces));
      if (region.Area() >= 0.999 * ring_area) {
        ovr.region = std::move(region);
      } else {
        ovr.region = Region::FromRect(cell.mbr);
      }
    } else {
      ovr.region = Region::FromRect(cell.mbr);
    }
    ovr.pois = {{set, object_of_site[cell.site]}};
    movd.ovrs.push_back(std::move(ovr));
  }
  return movd;
}

}  // namespace movd
