#include "model/update_model.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace movd {
namespace {

// Raw bit pattern of a double; equality over these is exact byte
// equality, which is the contract here (a tolerance would make "patched
// == rebuilt" unfalsifiable).
uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

bool PointBitIdentical(const Point& a, const Point& b) {
  return DoubleBits(a.x) == DoubleBits(b.x) &&
         DoubleBits(a.y) == DoubleBits(b.y);
}

bool RectBitIdentical(const Rect& a, const Rect& b) {
  return DoubleBits(a.min_x) == DoubleBits(b.min_x) &&
         DoubleBits(a.min_y) == DoubleBits(b.min_y) &&
         DoubleBits(a.max_x) == DoubleBits(b.max_x) &&
         DoubleBits(a.max_y) == DoubleBits(b.max_y);
}

}  // namespace

void CanonicalizeOvrOrder(Movd* movd) {
  std::sort(movd->ovrs.begin(), movd->ovrs.end(),
            [](const Ovr& a, const Ovr& b) {
              return std::lexicographical_compare(
                  a.pois.begin(), a.pois.end(), b.pois.begin(), b.pois.end());
            });
}

bool OvrBitIdentical(const Ovr& a, const Ovr& b) {
  return a.pois == b.pois && OvrGeometryBitIdentical(a, b);
}

bool OvrGeometryBitIdentical(const Ovr& a, const Ovr& b) {
  if (!RectBitIdentical(a.mbr, b.mbr)) return false;
  const auto& pa = a.region.pieces();
  const auto& pb = b.region.pieces();
  if (pa.size() != pb.size()) return false;
  for (size_t i = 0; i < pa.size(); ++i) {
    const auto& va = pa[i].vertices();
    const auto& vb = pb[i].vertices();
    if (va.size() != vb.size()) return false;
    for (size_t j = 0; j < va.size(); ++j) {
      if (!PointBitIdentical(va[j], vb[j])) return false;
    }
  }
  return true;
}

bool MovdBitIdentical(const Movd& a, const Movd& b) {
  if (a.ovrs.size() != b.ovrs.size()) return false;
  for (size_t i = 0; i < a.ovrs.size(); ++i) {
    if (!OvrBitIdentical(a.ovrs[i], b.ovrs[i])) return false;
  }
  return true;
}

}  // namespace movd
