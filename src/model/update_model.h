#ifndef MOVD_MODEL_UPDATE_MODEL_H_
#define MOVD_MODEL_UPDATE_MODEL_H_

#include <cstdint>

#include "geom/point.h"
#include "model/movd_model.h"

namespace movd {

/// The two live dataset mutations the serve stack supports (DESIGN.md
/// §14): add a facility to one layer, or remove one. Both publish a new
/// immutable dataset snapshot version.
enum class MutationKind : uint8_t {
  kInsert,  ///< append an object (default weights) to the layer
  kDelete,  ///< remove the first object at exactly `location`
};

/// One requested site mutation, as parsed from the serve protocol.
struct SiteMutation {
  MutationKind kind = MutationKind::kInsert;
  int32_t layer = -1;  ///< index into MolqQuery::sets
  Point location;
};

/// Sorts `movd->ovrs` into the canonical order: lexicographically by the
/// poi vector (which is unique per OVR — an object combination appears at
/// most once in an overlay, and a basic MOVD has one OVR per site).
///
/// The sweep-based overlap emits OVRs in an order that depends on its
/// event history, which an incremental patch cannot (and should not)
/// reproduce. The serve stack therefore canonicalises every overlay it
/// caches — full builds and patches alike — so "patched" and "rebuilt
/// from scratch" artifacts are comparable byte for byte. Downstream
/// consumers are order-independent: every optimizer/query-shape tie rule
/// is a strict total order over (value, poi group), never input position.
void CanonicalizeOvrOrder(Movd* movd);

/// Exact byte equality of two OVRs: identical poi lists, MBRs, and region
/// piece/vertex structure, with coordinates compared as raw double bits
/// (so -0.0 != +0.0 and NaNs compare by payload — "same bytes", not
/// "same value"). This is the equality the patched-vs-rebuilt audit
/// validator (src/audit/audit_update.h) certifies.
bool OvrBitIdentical(const Ovr& a, const Ovr& b);

/// OvrBitIdentical minus the poi comparison: identical MBR and region
/// bytes only. The overlay patcher uses this to match a layer's cells
/// across a deletion, where the surviving cells keep their geometry but
/// their object indices shift down by one.
bool OvrGeometryBitIdentical(const Ovr& a, const Ovr& b);

/// Exact byte equality of two MOVDs: same OVR count and OvrBitIdentical
/// pairwise in order. Compare canonicalised artifacts (or two basic MOVDs,
/// whose site order is already canonical).
bool MovdBitIdentical(const Movd& a, const Movd& b);

}  // namespace movd

#endif  // MOVD_MODEL_UPDATE_MODEL_H_
