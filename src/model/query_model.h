#ifndef MOVD_MODEL_QUERY_MODEL_H_
#define MOVD_MODEL_QUERY_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "model/object.h"
#include "util/status.h"

namespace movd {

/// Typed requests/results of the query algebra (src/query; DESIGN.md §13).
///
/// Like the Movd structs, these are pure data: the evaluators live in
/// src/query and the re-check validators in src/audit, and neither may see
/// the other's headers — so the shared vocabulary (candidates, constraint
/// geometry, tie-rule comparators) lives here, below both.

/// A locally-optimal candidate site: the optimal location for one distinct
/// object combination (an OVR poi list), the aggregate cost WGD there, and
/// the per-member criteria vector. `criteria[i]` is WD(location, group[i]);
/// since a group holds exactly one object per selected set in ascending set
/// order, entry i is the i-th selected set's criterion.
struct SiteCandidate {
  Point location;
  double cost = 0.0;             ///< WGD at `location` (= sum of criteria)
  std::vector<double> criteria;  ///< per-member WD, in group order
  std::vector<PoiRef> group;     ///< sorted by (set, object)
};

/// Pareto dominance on criteria vectors: a dominates b when a_i <= b_i on
/// every criterion and a_i < b_i on at least one. Vectors of different
/// lengths (different layer selections) are incomparable.
bool Dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Lexicographic order on object groups (PoiRef's (set, object) order).
/// The deterministic tie-breaker of every query-shape ranking: two
/// distinct candidates always have distinct groups, so any order ending in
/// GroupBefore is total.
bool GroupBefore(const std::vector<PoiRef>& a, const std::vector<PoiRef>& b);

/// The ranking order of cost-ranked results (diversified top-k, what-if
/// rankings): ascending cost, ties by GroupBefore. Matches TopKFromMovd's
/// stable map-order tie rule, so k best under this order == top-k.
bool CandidateOrderBefore(const SiteCandidate& a, const SiteCandidate& b);

/// The skyline scan/output order: ascending left-to-right criteria sum,
/// then lexicographic criteria, then GroupBefore. Monotone with respect to
/// dominance even in floating point (rounded summation is monotone per
/// argument, and when sums tie a dominator's first differing criterion is
/// strictly smaller), so a dominator always precedes what it dominates —
/// the property the sort-filter skyline pass relies on.
bool SkylineOrderBefore(const SiteCandidate& a, const SiteCandidate& b);

/// Sorts `*candidates` by SkylineOrderBefore and removes every dominated
/// candidate in place — the canonical sort-filter skyline pass, shared by
/// the skyline evaluator (src/query/skyline.cc) and the sharded serving
/// merge (src/serve/shard.cc). Because dominance is transitive, filtering
/// a union of per-shard skylines yields exactly the skyline of the union
/// of their inputs, and this one implementation fixes the scan order and
/// tie handling, so sharded answers are bit-identical to unsharded ones.
/// `dominance_tests` (optional) accumulates the pairwise Dominates()
/// evaluations performed.
void SkylineFilterInPlace(std::vector<SiteCandidate>* candidates,
                          uint64_t* dominance_tests);

/// The multi-criteria skyline of candidate sites: every candidate not
/// dominated on its criteria vector, in SkylineOrderBefore order.
/// Candidates with bitwise-equal criteria are mutually non-dominated and
/// all retained.
struct SkylineResult {
  StatusCode status = StatusCode::kOk;
  std::vector<SiteCandidate> skyline;
  size_t candidates = 0;         ///< distinct combinations examined
  uint64_t dominance_tests = 0;  ///< pairwise Dominates() evaluations
};

/// Diversified top-k: the k best candidates under CandidateOrderBefore
/// whose pairwise distance is >= the request's min_distance, chosen
/// greedily in ranking order (so `selected` is ascending by that order).
struct DiverseTopKResult {
  StatusCode status = StatusCode::kOk;
  std::vector<SiteCandidate> selected;
  size_t candidates = 0;  ///< distinct combinations examined
  size_t skipped = 0;     ///< candidates rejected by the distance test
};

/// Spatial constraint of a constrained MOLQ: the answer must lie inside
/// `boundary` (when non-empty; otherwise anywhere in the search space) and
/// must not lie strictly inside any exclusion ring. Rings are simple CCW
/// polygons; exclusion boundaries stay feasible (closed-set semantics), and
/// zero-area (collinear) exclusions have no interior, hence are no-ops.
struct QueryConstraint {
  Polygon boundary;
  std::vector<Polygon> exclusions;

  bool Unconstrained() const {
    return boundary.Empty() && exclusions.empty();
  }
};

/// Well-formedness of a constraint: finite coordinates, >= 3 vertices per
/// present ring, CCW orientation, positive boundary area. Zero-area
/// exclusions pass (documented no-ops). Evaluators MOVD_CHECK this; the
/// serving layer calls it first so a bad request is an error response, not
/// a crashed server.
Status ValidateConstraint(const QueryConstraint& constraint);

/// The constrained-MOLQ answer. `feasible` is false when no overlap region
/// intersects the feasible set (the constraint excludes every candidate
/// region), in which case `best` is empty.
struct ConstrainedMolqResult {
  StatusCode status = StatusCode::kOk;
  bool feasible = false;
  SiteCandidate best;
  size_t clipped_ovrs = 0;     ///< OVRs with feasible area after clipping
  size_t boundary_solves = 0;  ///< OVRs whose optimum moved to a clip edge
};

/// One what-if weight vector: a per-set adjustment applied to every type
/// weight of the corresponding set through the query's ς^t composition
/// (multiplied under a multiplicative type function, added under an
/// additive one). Both compositions preserve each set's internal distance
/// ranking, so one MOVD artifact answers the whole sweep.
struct WhatIfVector {
  std::vector<double> scale;  ///< one entry per query set, set order
};

/// Well-formedness of one sweep vector against its base query: exactly one
/// finite entry per set, and strictly positive entries under a
/// multiplicative type function (a non-positive factor would invert or
/// collapse the set's ranking, invalidating the shared artifact).
Status ValidateWhatIfVector(const MolqQuery& base, const WhatIfVector& v);

/// `base` with one what-if vector applied (see WhatIfVector).
MolqQuery ApplyWhatIfVector(const MolqQuery& base, const WhatIfVector& v);

/// Batched what-if sweep: `per_vector[i]` is the top-k ranking (ascending
/// CandidateOrderBefore) under the i-th weight vector.
struct WhatIfSweepResult {
  StatusCode status = StatusCode::kOk;
  std::vector<std::vector<SiteCandidate>> per_vector;
};

}  // namespace movd

#endif  // MOVD_MODEL_QUERY_MODEL_H_
