#ifndef MOVD_MODEL_MOVD_MODEL_H_
#define MOVD_MODEL_MOVD_MODEL_H_

#include <cstdint>
#include <vector>

#include "model/object.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "voronoi/voronoi.h"
#include "voronoi/weighted.h"

namespace movd {

/// Which boundary representation the MOVD pipeline maintains (paper §5.2
/// vs §5.3): real regions (RRB) or minimum bounding rectangles (MBRB).
enum class BoundaryMode {
  kRealRegion,  ///< RRB: exact piecewise-convex overlap regions
  kMbr,         ///< MBRB: MBRs only; false positives possible
};

/// An Overlapped Voronoi Region (paper Eq. 12): the intersection of one
/// dominance region per overlapped diagram, with the generating objects.
struct Ovr {
  /// Real region (maintained in RRB mode; empty in MBRB mode).
  Region region;
  /// The region's MBR (RRB) or the intersection of input MBRs (MBRB).
  Rect mbr;
  /// One generating object per object type, sorted by (set, object).
  std::vector<PoiRef> pois;
};

/// A Minimum Overlapped Voronoi Diagram: an OVD with empty OVRs removed
/// (paper Eq. 13). The identity element MOVD(∅) = {R} is represented by a
/// single OVR covering the search space with no pois (Eq. 14).
struct Movd {
  std::vector<Ovr> ovrs;

  /// Bytes of region/MBR + poi storage, the paper's memory-consumption
  /// metric (Figs. 13, 14d): RRB pays sizeof(Point) per stored vertex,
  /// MBRB pays exactly two points per OVR.
  size_t MemoryBytes(BoundaryMode mode) const;

  /// Total vertices stored across OVR regions (RRB) — Fig. 13's point count.
  size_t VertexCount() const;
};

/// MOVD(∅) = {R}: the overlap identity (paper Property 12).
Movd IdentityMovd(const Rect& search_space);

/// A basic MOVD from an ordinary Voronoi diagram (paper Property 7:
/// single-set MOVDs are Voronoi diagrams). `set` tags the generated pois;
/// `object_of_site[i]` maps diagram site i back to the object index in the
/// query's set (the diagram deduplicates site locations).
Movd MovdFromVoronoi(const VoronoiDiagram& diagram, int32_t set,
                     const std::vector<int32_t>& object_of_site);

/// A basic MOVD from a grid-approximated weighted Voronoi diagram (§5.3).
/// Cells carry a conservative MBR and (for RRB rendering/approximation)
/// the hull polygon; empty cells are dropped, per the MOVD definition.
Movd MovdFromWeightedApprox(const std::vector<WeightedCellApprox>& cells,
                            int32_t set,
                            const std::vector<int32_t>& object_of_site);

}  // namespace movd

#endif  // MOVD_MODEL_MOVD_MODEL_H_
