#ifndef MOVD_MODEL_OBJECT_H_
#define MOVD_MODEL_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace movd {

/// A spatial object <l, w^t, w^o> (paper §2.1): a location, a type weight
/// and an object weight. Smaller weights mean more important/preferred.
struct SpatialObject {
  Point location;
  double type_weight = 1.0;
  double object_weight = 1.0;
};

/// A set P_i of objects of one type (schools, bus stops, ...).
struct ObjectSet {
  std::string name;
  std::vector<SpatialObject> objects;
};

/// The monotonic weight functions the engine supports for ς^t and ς^o.
/// Multiplicative (value * weight) is the paper's evaluated default;
/// additive (value + weight) is the other classic choice (§5.3, Fig. 5).
enum class WeightFunctionKind {
  kMultiplicative,
  kAdditive,
};

/// Applies a weight function to a value.
inline double ApplyWeight(WeightFunctionKind kind, double value,
                          double weight) {
  return kind == WeightFunctionKind::kMultiplicative ? value * weight
                                                     : value + weight;
}

/// Reference to one object within a query's object sets: Ē[set].objects[obj].
struct PoiRef {
  int32_t set = -1;
  int32_t object = -1;

  friend bool operator==(const PoiRef& a, const PoiRef& b) {
    return a.set == b.set && a.object == b.object;
  }
  friend bool operator<(const PoiRef& a, const PoiRef& b) {
    return a.set != b.set ? a.set < b.set : a.object < b.object;
  }
};

/// A Multi-criteria Optimal Location Query (paper §2.1.4): the object sets
/// Ē = {P_1..P_n}, the type weight function ς^t and the per-set object
/// weight functions σ = {ς^o_1..ς^o_n}.
struct MolqQuery {
  std::vector<ObjectSet> sets;
  WeightFunctionKind type_function = WeightFunctionKind::kMultiplicative;
  /// One entry per set; when empty, every set uses multiplicative.
  std::vector<WeightFunctionKind> object_functions;

  /// ς^o for set `i`, honouring the all-multiplicative default.
  WeightFunctionKind ObjectFunction(size_t i) const {
    return object_functions.empty() ? WeightFunctionKind::kMultiplicative
                                    : object_functions.at(i);
  }
};

}  // namespace movd

#endif  // MOVD_MODEL_OBJECT_H_
