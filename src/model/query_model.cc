#include "model/query_model.h"

#include <algorithm>
#include <cmath>

namespace movd {

bool Dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return false;
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool GroupBefore(const std::vector<PoiRef>& a, const std::vector<PoiRef>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool CandidateOrderBefore(const SiteCandidate& a, const SiteCandidate& b) {
  if (a.cost < b.cost) return true;
  if (b.cost < a.cost) return false;
  return GroupBefore(a.group, b.group);
}

namespace {

/// Left-to-right criteria sum. The fixed association order makes the sum a
/// deterministic function of the vector, and rounded addition is monotone
/// in each term — the property SkylineOrderBefore's doc comment leans on.
double CriteriaSum(const std::vector<double>& criteria) {
  double sum = 0.0;
  for (const double c : criteria) sum += c;
  return sum;
}

}  // namespace

bool SkylineOrderBefore(const SiteCandidate& a, const SiteCandidate& b) {
  const double sa = CriteriaSum(a.criteria);
  const double sb = CriteriaSum(b.criteria);
  if (sa < sb) return true;
  if (sb < sa) return false;
  const size_t n = std::min(a.criteria.size(), b.criteria.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.criteria[i] < b.criteria[i]) return true;
    if (b.criteria[i] < a.criteria[i]) return false;
  }
  if (a.criteria.size() != b.criteria.size()) {
    return a.criteria.size() < b.criteria.size();
  }
  return GroupBefore(a.group, b.group);
}

void SkylineFilterInPlace(std::vector<SiteCandidate>* candidates,
                          uint64_t* dominance_tests) {
  // SkylineOrderBefore places every dominator before what it dominates, so
  // one forward scan comparing only against retained members is complete.
  std::sort(candidates->begin(), candidates->end(), SkylineOrderBefore);
  std::vector<SiteCandidate> kept;
  kept.reserve(candidates->size());
  for (SiteCandidate& c : *candidates) {
    bool dominated = false;
    for (const SiteCandidate& s : kept) {
      if (dominance_tests != nullptr) ++*dominance_tests;
      if (Dominates(s.criteria, c.criteria)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(std::move(c));
  }
  *candidates = std::move(kept);
}

namespace {

Status CheckRing(const Polygon& ring, const char* what,
                 bool require_positive_area) {
  if (ring.vertices().size() < 3) {
    return Status::InvalidArgument(std::string(what) +
                                   " ring needs at least 3 vertices");
  }
  for (const Point& v : ring.vertices()) {
    if (!std::isfinite(v.x) || !std::isfinite(v.y)) {
      return Status::InvalidArgument(std::string(what) +
                                     " ring has a non-finite coordinate");
    }
  }
  const double area = ring.SignedArea();
  if (area < 0.0) {
    return Status::InvalidArgument(std::string(what) +
                                   " ring is clockwise; rings must be CCW");
  }
  if (require_positive_area && !(area > 0.0)) {
    return Status::InvalidArgument(std::string(what) +
                                   " ring has zero area");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateConstraint(const QueryConstraint& constraint) {
  if (!constraint.boundary.vertices().empty()) {
    const Status s = CheckRing(constraint.boundary, "boundary",
                               /*require_positive_area=*/true);
    if (!s.ok()) return s;
  }
  for (const Polygon& excl : constraint.exclusions) {
    // Zero-area exclusions are legal no-ops (no interior to exclude).
    const Status s = CheckRing(excl, "exclusion",
                               /*require_positive_area=*/false);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status ValidateWhatIfVector(const MolqQuery& base, const WhatIfVector& v) {
  if (v.scale.size() != base.sets.size()) {
    return Status::InvalidArgument(
        "what-if vector has " + std::to_string(v.scale.size()) +
        " entries; the query has " + std::to_string(base.sets.size()) +
        " sets");
  }
  const bool multiplicative =
      base.type_function == WeightFunctionKind::kMultiplicative;
  for (const double s : v.scale) {
    if (!std::isfinite(s)) {
      return Status::InvalidArgument("what-if entry is not finite");
    }
    if (multiplicative && !(s > 0.0)) {
      return Status::InvalidArgument(
          "what-if entries must be > 0 under a multiplicative type "
          "function");
    }
  }
  return Status::Ok();
}

MolqQuery ApplyWhatIfVector(const MolqQuery& base, const WhatIfVector& v) {
  MolqQuery out = base;
  for (size_t i = 0; i < out.sets.size() && i < v.scale.size(); ++i) {
    for (SpatialObject& obj : out.sets[i].objects) {
      obj.type_weight =
          ApplyWeight(base.type_function, obj.type_weight, v.scale[i]);
    }
  }
  return out;
}

}  // namespace movd
