#include "trace/trace.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <unordered_map>

#include "util/check.h"
#include "util/table.h"

namespace movd {

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

/// One begin or end marker. A begin has a non-null name and carries the
/// span's global id plus the id of the span that was ambient when it
/// opened; an end has a null name and carries the counters the span
/// accumulated. Events are appended in real-time order by the owning
/// thread only, so each per-thread log is a properly nested B/E sequence
/// by construction.
struct Trace::Event {
  const char* name = nullptr;  // null => end event
  int64_t t_ns = 0;
  uint64_t id = 0;      // begin: this span's global id
  uint64_t parent = 0;  // begin: ambient span id at open (0 = none)
  std::vector<std::pair<const char*, int64_t>> counters;  // end only
};

/// A single thread's event log. Only the owning thread appends; readers
/// (Collect and friends) require quiescence, with the happens-before edge
/// supplied by the pool join / mutex that made the trace quiescent.
struct Trace::ThreadLog {
  int tid = 0;
  std::vector<Event> events;
};

namespace {

/// The calling thread's ambient trace + innermost open span.
thread_local Trace::Context g_ambient;

/// Single-entry cache for Trace::LogForThisThread, keyed on the trace's
/// globally unique generation id (not its address, which the allocator
/// may reuse for a later trace).
struct LogCache {
  uint64_t gen = 0;
  Trace::ThreadLog* log = nullptr;
};
thread_local LogCache g_log_cache;

std::atomic<uint64_t> g_next_trace_gen{1};

}  // namespace

// ---------------------------------------------------------------------------
// Trace
// ---------------------------------------------------------------------------

Trace::Trace() : gen_(g_next_trace_gen.fetch_add(1, std::memory_order_relaxed)) {}

Trace::~Trace() = default;

Trace* Trace::ThreadCurrent() { return g_ambient.trace; }

Trace::Context Trace::CaptureContext() { return g_ambient; }

Trace::ThreadLog* Trace::LogForThisThread() {
  if (g_log_cache.gen == gen_) return g_log_cache.log;
  MutexLock lock(mu_);
  logs_.push_back(std::make_unique<ThreadLog>());
  ThreadLog* log = logs_.back().get();
  log->tid = static_cast<int>(logs_.size()) - 1;
  g_log_cache = {gen_, log};
  return log;
}

std::vector<TraceSpanRecord> Trace::Collect() const {
  MutexLock lock(mu_);
  std::vector<TraceSpanRecord> records;
  std::unordered_map<uint64_t, int> by_id;     // span id -> record index
  std::vector<uint64_t> parent_of_record;      // span id of each record's parent
  for (const auto& log : logs_) {
    std::vector<int> stack;  // indices of open spans on this thread
    for (const Event& ev : log->events) {
      if (ev.name != nullptr) {
        TraceSpanRecord rec;
        rec.name = ev.name;
        rec.tid = log->tid;
        rec.start_ns = ev.t_ns;
        records.push_back(std::move(rec));
        by_id[ev.id] = static_cast<int>(records.size()) - 1;
        parent_of_record.push_back(ev.parent);
        stack.push_back(static_cast<int>(records.size()) - 1);
      } else {
        MOVD_CHECK_MSG(!stack.empty(),
                       "trace log has an end event with no open span; "
                       "Collect() requires a quiescent trace");
        TraceSpanRecord& rec = records[stack.back()];
        rec.dur_ns = ev.t_ns - rec.start_ns;
        for (const auto& [key, value] : ev.counters) {
          rec.counters.emplace_back(key, value);
        }
        stack.pop_back();
      }
    }
    MOVD_CHECK_MSG(stack.empty(),
                   "trace log has open spans; Collect() requires every "
                   "span closed and every recording thread joined");
  }
  // Parent ids resolve to indices only once every log is scanned: a span
  // opened on a pool thread may precede its parent's record when the
  // parent lives on a later-registered thread.
  for (size_t i = 0; i < records.size(); ++i) {
    auto it = by_id.find(parent_of_record[i]);
    records[i].parent = it == by_id.end() ? -1 : it->second;
  }
  // Depths: parents always have smaller start times than their children,
  // but not necessarily smaller indices, so iterate until fixed point
  // (the parent chain is acyclic and short — bounded by nesting depth).
  std::vector<int> depth(records.size(), -1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < records.size(); ++i) {
      if (depth[i] >= 0) continue;
      int p = records[i].parent;
      if (p < 0) {
        depth[i] = 0;
        changed = true;
      } else if (depth[p] >= 0) {
        depth[i] = depth[p] + 1;
        changed = true;
      }
    }
  }
  for (size_t i = 0; i < records.size(); ++i) records[i].depth = depth[i];
  return records;
}

std::vector<TracePhaseRow> Trace::AggregatePhases() const {
  std::vector<TraceSpanRecord> records = Collect();

  // Self time: a span's duration minus time spent in same-thread children
  // (concurrent children on other threads overlap rather than consume).
  std::vector<int64_t> self_ns;
  self_ns.reserve(records.size());
  for (const TraceSpanRecord& rec : records) self_ns.push_back(rec.dur_ns);
  for (size_t i = 0; i < records.size(); ++i) {
    int p = records[i].parent;
    if (p >= 0 && records[p].tid == records[i].tid) {
      self_ns[p] -= records[i].dur_ns;
    }
  }

  std::vector<TracePhaseRow> rows;
  std::unordered_map<std::string, size_t> by_name;
  for (size_t i = 0; i < records.size(); ++i) {
    const TraceSpanRecord& rec = records[i];
    auto [it, inserted] = by_name.emplace(rec.name, rows.size());
    if (inserted) {
      rows.emplace_back();
      rows.back().name = rec.name;
    }
    TracePhaseRow& row = rows[it->second];
    ++row.count;
    row.total_ns += rec.dur_ns;
    row.self_ns += self_ns[i];
    for (const auto& [key, value] : rec.counters) {
      bool found = false;
      for (auto& [rkey, rvalue] : row.counters) {
        if (rkey == key) {
          rvalue += value;
          found = true;
          break;
        }
      }
      if (!found) row.counters.emplace_back(key, value);
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TracePhaseRow& a, const TracePhaseRow& b) {
                     return a.total_ns > b.total_ns;
                   });
  return rows;
}

void Trace::PrintPhaseTable(std::FILE* out) const {
  Table tbl({"phase", "count", "total(ms)", "self(ms)", "counters"});
  for (const TracePhaseRow& row : AggregatePhases()) {
    std::string counters;
    for (const auto& [key, value] : row.counters) {
      if (!counters.empty()) counters += " ";
      counters += key;
      counters += "=";
      counters += std::to_string(value);
    }
    tbl.AddRow({row.name, std::to_string(row.count),
                Table::Fmt(static_cast<double>(row.total_ns) * 1e-6),
                Table::Fmt(static_cast<double>(row.self_ns) * 1e-6),
                counters});
  }
  tbl.Print(out);
}

namespace {

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string Trace::ChromeJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const auto& log : logs_) {
    // Each per-thread log is already a properly nested B/E stream in
    // chronological order, which is exactly what trace_event wants per
    // tid; emitting the logs back to back therefore yields matched pairs.
    std::vector<const char*> stack;  // open span names, for the E events
    for (const Event& ev : log->events) {
      if (!first) out += ",";
      first = false;
      if (ev.name != nullptr) {
        out += "{\"name\":\"";
        AppendJsonEscaped(ev.name, &out);
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"B\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}",
                      static_cast<double>(ev.t_ns) * 1e-3, log->tid);
        out += buf;
        stack.push_back(ev.name);
      } else {
        MOVD_CHECK_MSG(!stack.empty(),
                       "trace log has an end event with no open span");
        out += "{\"name\":\"";
        AppendJsonEscaped(stack.back(), &out);
        stack.pop_back();
        std::snprintf(buf, sizeof(buf),
                      "\",\"ph\":\"E\",\"ts\":%.3f,\"pid\":1,\"tid\":%d",
                      static_cast<double>(ev.t_ns) * 1e-3, log->tid);
        out += buf;
        if (!ev.counters.empty()) {
          out += ",\"args\":{";
          for (size_t i = 0; i < ev.counters.size(); ++i) {
            if (i > 0) out += ",";
            out += "\"";
            AppendJsonEscaped(ev.counters[i].first, &out);
            std::snprintf(buf, sizeof(buf), "\":%" PRId64,
                          ev.counters[i].second);
            out += buf;
          }
          out += "}";
        }
        out += "}";
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status Trace::WriteChromeJson(const std::string& path) const {
  std::string json = ChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("short write to trace output file: " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// TraceContextScope / TraceSpan
// ---------------------------------------------------------------------------

TraceContextScope::TraceContextScope(Trace* trace) : saved_(g_ambient) {
  if (g_ambient.trace != trace) g_ambient = {trace, 0};
}

TraceContextScope::TraceContextScope(const Trace::Context& ctx)
    : saved_(g_ambient) {
  g_ambient = ctx;
}

TraceContextScope::~TraceContextScope() { g_ambient = saved_; }

TraceSpan::TraceSpan(const char* name) : trace_(g_ambient.trace) {
  if (trace_ == nullptr) return;
  log_ = trace_->LogForThisThread();
  id_ = trace_->next_span_id_.fetch_add(1, std::memory_order_relaxed);
  saved_span_ = g_ambient.span;
  Trace::Event ev;
  ev.name = name;
  ev.id = id_;
  ev.parent = saved_span_;
  ev.t_ns = trace_->clock_.ElapsedNanos();  // last: excludes setup cost
  log_->events.push_back(std::move(ev));
  g_ambient.span = id_;
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  Trace::Event ev;
  ev.t_ns = trace_->clock_.ElapsedNanos();  // first: excludes teardown cost
  ev.counters = std::move(counters_);
  log_->events.push_back(std::move(ev));
  g_ambient.span = saved_span_;
}

void TraceSpan::Counter(const char* key, int64_t delta) {
  if (trace_ == nullptr) return;
  for (auto& [k, v] : counters_) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  counters_.emplace_back(key, delta);
}

}  // namespace movd
