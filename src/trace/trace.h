#ifndef MOVD_TRACE_TRACE_H_
#define MOVD_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace movd {

/// One closed span, reconstructed by Trace::Collect(). `parent` indexes
/// into the same vector (-1 for a root). A span started inside a
/// ParallelFor body parents to the span that was open at the call site
/// even though it ran on a different thread; `tid` tells the two apart.
struct TraceSpanRecord {
  std::string name;
  int tid = 0;          ///< per-trace thread index (0 = first registered)
  int64_t start_ns = 0;  ///< nanoseconds since the trace was constructed
  int64_t dur_ns = 0;
  int parent = -1;  ///< index of the enclosing span, -1 for a root
  int depth = 0;    ///< root = 0; equals parent's depth + 1
  std::vector<std::pair<std::string, int64_t>> counters;
};

/// Per-name aggregate over a collected trace (the "per-phase table").
struct TracePhaseRow {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;  ///< sum of span durations for this name
  /// `total_ns` minus time covered by same-thread child spans. Children
  /// running concurrently on other threads are NOT subtracted (their time
  /// overlaps the parent's wall time instead of consuming it).
  int64_t self_ns = 0;
  std::vector<std::pair<std::string, int64_t>> counters;  ///< summed
};

/// A hierarchical, thread-aware span collector (DESIGN.md §9).
///
/// A Trace is installed as the calling thread's *ambient* trace with
/// TraceContextScope; TRACE_SPAN / TraceSpan then record into it with no
/// argument threading. When no trace is ambient (the default), a span
/// degenerates to one thread-local read — cheap enough to leave spans
/// compiled into release builds.
///
/// Each recording thread appends begin/end events to its own log; the
/// only cross-thread synchronisation on the hot path is the first span a
/// thread records into a given trace (a registration mutex, amortised
/// away by a thread-local cache). Tracing therefore composes with
/// util/thread_pool and never perturbs answers: spans observe the
/// pipeline, they do not order it.
///
/// ParallelFor bodies run on pool threads that have no ambient trace of
/// their own. Capture the caller's context once before the loop and
/// install it per iteration:
///
///   Trace::Context ctx = Trace::CaptureContext();
///   ParallelFor(n, threads, [&](size_t i) {
///     TraceContextScope scope(ctx);
///     TRACE_SPAN("weighted_grid_row");
///     ...
///   });
///
/// Collect()/exporters require quiescence: every span closed and every
/// recording thread joined (a ParallelFor return satisfies both).
class Trace {
 public:
  Trace();
  ~Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The calling thread's ambient trace (null if none installed).
  static Trace* ThreadCurrent();

  /// Ambient trace + currently open span, as an opaque value that can be
  /// handed to another thread and re-installed with TraceContextScope.
  struct Context {
    Trace* trace = nullptr;
    uint64_t span = 0;  ///< global id of the open span, 0 if none
  };
  static Context CaptureContext();

  struct ThreadLog;  ///< opaque per-thread event log (defined in trace.cc)

  /// Reconstructs all closed spans. Requires quiescence (see above).
  /// Records are grouped by thread and chronological within a thread.
  std::vector<TraceSpanRecord> Collect() const MOVD_EXCLUDES(mu_);

  /// Aggregates Collect() by span name, ordered by descending total time.
  std::vector<TracePhaseRow> AggregatePhases() const;

  /// Renders AggregatePhases() as a fixed-width table.
  void PrintPhaseTable(std::FILE* out) const;

  /// Chrome trace_event JSON (load in chrome://tracing or Perfetto).
  /// Every span is a matched "ph":"B"/"ph":"E" pair on its thread;
  /// counters ride in the E event's "args".
  std::string ChromeJson() const MOVD_EXCLUDES(mu_);

  /// Writes ChromeJson() to `path`.
  Status WriteChromeJson(const std::string& path) const;

 private:
  friend class TraceSpan;
  friend class TraceContextScope;

  struct Event;

  /// The calling thread's log, registering it on first use. Hot path is
  /// a thread-local cache hit keyed on `gen_` (globally unique per Trace,
  /// so a recycled Trace address can never alias a stale cache entry).
  ThreadLog* LogForThisThread() MOVD_EXCLUDES(mu_);

  const uint64_t gen_;  ///< globally unique trace id, never reused
  Stopwatch clock_;     ///< time base; read-only after construction
  std::atomic<uint64_t> next_span_id_{1};

  /// Guards the `logs_` vector itself (registration + collection). A
  /// ThreadLog's *contents* are owner-thread-only on the hot path and are
  /// read by collectors only at quiescence, so they are deliberately not
  /// pt_guarded_by: the happens-before edge is the pool join, not mu_.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_ MOVD_GUARDED_BY(mu_);
};

/// RAII install/restore of the calling thread's ambient trace context.
class TraceContextScope {
 public:
  /// Installs `trace` (may be null = tracing off). If `trace` is already
  /// ambient the open-span chain is preserved, so nested pipeline entry
  /// points keep parenting instead of starting a fresh root.
  explicit TraceContextScope(Trace* trace);

  /// Re-installs a captured context on this thread (ParallelFor handoff).
  explicit TraceContextScope(const Trace::Context& ctx);

  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  Trace::Context saved_;
};

/// A scoped span recording into the ambient trace. `name` must have
/// static storage duration (string literals only — the trace keeps the
/// pointer). With no ambient trace every member function is a no-op.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Accumulates a typed counter on this span (e.g. cells clipped,
  /// Weiszfeld iterations, cache hits). `key` must be a string literal.
  void Counter(const char* key, int64_t delta);

 private:
  Trace* trace_;                     // null => disabled span, all no-ops
  Trace::ThreadLog* log_ = nullptr;  // this thread's log in trace_
  uint64_t id_ = 0;        // global span id (begin event carries it)
  uint64_t saved_span_ = 0;  // ambient open span to restore at end
  std::vector<std::pair<const char*, int64_t>> counters_;
};

#define MOVD_TRACE_CONCAT_INNER_(a, b) a##b
#define MOVD_TRACE_CONCAT_(a, b) MOVD_TRACE_CONCAT_INNER_(a, b)

/// Scoped span covering the rest of the enclosing block. Use a named
/// `TraceSpan` instead when you need to attach counters.
#define TRACE_SPAN(name) \
  ::movd::TraceSpan MOVD_TRACE_CONCAT_(movd_trace_span_, __COUNTER__)(name)

}  // namespace movd

#endif  // MOVD_TRACE_TRACE_H_
