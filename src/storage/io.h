#ifndef MOVD_STORAGE_IO_H_
#define MOVD_STORAGE_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace movd {

/// Buffered binary file writer. Encodes little-endian fixed-width values
/// and LEB128 varints; the MOVD file format (movd_file.h) is built on it.
class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  bool ok() const { return file_ != nullptr && !failed_; }

  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteVarint(uint64_t v);
  void WriteDouble(double v);
  void WriteBytes(const void* data, size_t size);

  /// Bytes written so far (current file offset).
  uint64_t offset() const { return offset_; }

  /// Flushes and closes; returns false if any write failed.
  bool Close();

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  uint64_t offset_ = 0;
};

/// Buffered binary file reader matching BinaryWriter's encoding.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();
  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  bool ok() const { return file_ != nullptr && !failed_; }
  bool AtEof();

  uint32_t ReadU32();
  uint64_t ReadU64();
  uint64_t ReadVarint();
  double ReadDouble();
  void ReadBytes(void* data, size_t size);

  /// Repositions the read cursor.
  void Seek(uint64_t offset);

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
};

}  // namespace movd

#endif  // MOVD_STORAGE_IO_H_
