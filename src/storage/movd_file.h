#ifndef MOVD_STORAGE_MOVD_FILE_H_
#define MOVD_STORAGE_MOVD_FILE_H_

#include <optional>
#include <string>

#include "model/movd_model.h"
#include "storage/io.h"
#include "util/status.h"

namespace movd {

/// Serialized size in bytes of one OVR record (used for memory accounting
/// in the disk-based pipeline).
size_t SerializedOvrSize(const Ovr& ovr);

/// Appends one OVR record to a writer (format: mbr, pois, region pieces).
void WriteOvr(BinaryWriter* writer, const Ovr& ovr);

/// Reads one OVR record.
Ovr ReadOvr(BinaryReader* reader);

/// Sequential writer for a MOVD file:
///   header (magic, version, reserved count slot) + OVR records.
/// The record count is patched into the header on Close().
class MovdFileWriter {
 public:
  explicit MovdFileWriter(const std::string& path);

  void Append(const Ovr& ovr);
  uint64_t count() const { return count_; }

  /// Finalises the header; kIoError on I/O failure.
  Status Close();

 private:
  std::string path_;
  BinaryWriter writer_;
  uint64_t count_ = 0;
};

/// Sequential reader for a MOVD file.
class MovdFileReader {
 public:
  explicit MovdFileReader(const std::string& path);

  bool ok() const { return ok_; }
  uint64_t count() const { return count_; }

  /// Reads the next OVR; nullopt once all records were consumed.
  std::optional<Ovr> Next();

 private:
  BinaryReader reader_;
  uint64_t count_ = 0;
  uint64_t read_ = 0;
  bool ok_ = false;
};

/// Writes a whole in-memory MOVD to `path`. kIoError on failure.
Status SaveMovd(const std::string& path, const Movd& movd);

/// Loads a whole MOVD file into memory. kIoError when the file cannot be
/// opened, kDataLoss when the header or a record fails validation
/// (corrupt/truncated/version mismatch).
StatusOr<Movd> LoadMovd(const std::string& path);

}  // namespace movd

#endif  // MOVD_STORAGE_MOVD_FILE_H_
