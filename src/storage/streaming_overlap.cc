#include "storage/streaming_overlap.h"

#include <limits>
#include <list>
#include <map>
#include <queue>

#include "core/overlap.h"
#include "storage/movd_file.h"
#include "util/check.h"

namespace movd {
namespace {

// One input's set of OVRs whose y-span intersects the sweep line. Supports
// the three operations the streaming sweep needs: insert a new arrival,
// evict everything that ended above the sweep line, and enumerate
// candidates overlapping an x-range.
class ActiveSet {
 public:
  void Insert(Ovr ovr, uint64_t* bytes_delta) {
    storage_.push_front(std::move(ovr));
    const auto it = storage_.begin();
    const uint64_t size = SerializedOvrSize(*it);
    bytes_ += size;
    *bytes_delta = size;
    const auto map_it = by_min_x_.emplace(it->mbr.min_x, it);
    eviction_.push({it->mbr.min_y, map_it});
  }

  // Removes every OVR whose y-span lies strictly above `y` (min_y > y).
  void EvictAbove(double y) {
    while (!eviction_.empty() && eviction_.top().min_y > y) {
      const auto map_it = eviction_.top().map_it;
      eviction_.pop();
      bytes_ -= SerializedOvrSize(*map_it->second);
      storage_.erase(map_it->second);
      by_min_x_.erase(map_it);
    }
  }

  // Calls fn(ovr) for every active OVR whose x-range intersects
  // [min_x, max_x].
  template <typename Fn>
  void ForEachXOverlap(double min_x, double max_x, Fn fn) const {
    const auto end = by_min_x_.upper_bound(max_x);
    for (auto it = by_min_x_.begin(); it != end; ++it) {
      if (it->second->mbr.max_x >= min_x) fn(*it->second);
    }
  }

  uint64_t bytes() const { return bytes_; }
  size_t size() const { return storage_.size(); }

 private:
  struct Eviction {
    double min_y;
    std::multimap<double, std::list<Ovr>::iterator>::iterator map_it;
    bool operator<(const Eviction& o) const { return min_y < o.min_y; }
  };

  std::list<Ovr> storage_;
  std::multimap<double, std::list<Ovr>::iterator> by_min_x_;
  std::priority_queue<Eviction> eviction_;  // max-heap on min_y
  uint64_t bytes_ = 0;
};

}  // namespace

bool StreamingOverlap(const std::string& sorted_a_path,
                      const std::string& sorted_b_path, BoundaryMode mode,
                      const std::string& output_path,
                      StreamingOverlapStats* stats) {
  MovdFileReader reader_a(sorted_a_path);
  MovdFileReader reader_b(sorted_b_path);
  if (!reader_a.ok() || !reader_b.ok()) return false;
  MovdFileWriter writer(output_path);

  ActiveSet active_a, active_b;
  StreamingOverlapStats local;

  std::optional<Ovr> head_a = reader_a.Next();
  std::optional<Ovr> head_b = reader_b.Next();
  double prev_y = std::numeric_limits<double>::infinity();

  while (head_a.has_value() || head_b.has_value()) {
    // Pop the stream whose next start event is higher.
    const bool take_a =
        head_a.has_value() &&
        (!head_b.has_value() || head_a->mbr.max_y >= head_b->mbr.max_y);
    Ovr ovr = take_a ? std::move(*head_a) : std::move(*head_b);
    if (take_a) {
      head_a = reader_a.Next();
    } else {
      head_b = reader_b.Next();
    }
    const double y = ovr.mbr.max_y;
    if (y > prev_y) return false;  // input not in sweep order
    prev_y = y;

    ActiveSet& current = take_a ? active_a : active_b;
    ActiveSet& other = take_a ? active_b : active_a;
    // End events: everything that finished strictly above the sweep line.
    current.EvictAbove(y);
    other.EvictAbove(y);

    // Pair the new arrival against the other input's active OVRs.
    other.ForEachXOverlap(ovr.mbr.min_x, ovr.mbr.max_x, [&](const Ovr& cand) {
      ++local.candidate_pairs;
      Ovr out;
      if (IntersectOvrPair(ovr, cand, mode, &out)) {
        ++local.output_ovrs;
        writer.Append(out);
      }
    });

    uint64_t delta = 0;
    current.Insert(std::move(ovr), &delta);
    local.peak_active_bytes = std::max(
        local.peak_active_bytes, active_a.bytes() + active_b.bytes());
    local.peak_active_ovrs = std::max<uint64_t>(
        local.peak_active_ovrs, active_a.size() + active_b.size());
  }

  if (stats != nullptr) *stats = local;
  return writer.Close().ok();
}

}  // namespace movd
