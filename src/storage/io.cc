#include "storage/io.h"

#include <cstring>

#include "util/check.h"

namespace movd {

BinaryWriter::BinaryWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "wb")) {}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  if (file_ == nullptr || failed_) return;
  if (std::fwrite(data, 1, size, file_) != size) failed_ = true;
  offset_ += size;
}

void BinaryWriter::WriteU32(uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = (v >> (8 * i)) & 0xff;
  WriteBytes(buf, 4);
}

void BinaryWriter::WriteU64(uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = (v >> (8 * i)) & 0xff;
  WriteBytes(buf, 8);
}

void BinaryWriter::WriteVarint(uint64_t v) {
  unsigned char buf[10];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  WriteBytes(buf, n);
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

bool BinaryWriter::Close() {
  if (file_ == nullptr) return false;
  const bool ok = std::fclose(file_) == 0 && !failed_;
  file_ = nullptr;
  return ok;
}

BinaryReader::BinaryReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool BinaryReader::AtEof() {
  if (file_ == nullptr || failed_) return true;
  const int c = std::fgetc(file_);
  if (c == EOF) return true;
  std::ungetc(c, file_);
  return false;
}

void BinaryReader::ReadBytes(void* data, size_t size) {
  if (file_ == nullptr || failed_) {
    std::memset(data, 0, size);
    return;
  }
  if (std::fread(data, 1, size, file_) != size) {
    failed_ = true;
    std::memset(data, 0, size);
  }
}

uint32_t BinaryReader::ReadU32() {
  unsigned char buf[4];
  ReadBytes(buf, 4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return v;
}

uint64_t BinaryReader::ReadU64() {
  unsigned char buf[8];
  ReadBytes(buf, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return v;
}

uint64_t BinaryReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    unsigned char byte;
    ReadBytes(&byte, 1);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  failed_ = true;  // malformed varint
  return v;
}

double BinaryReader::ReadDouble() {
  const uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void BinaryReader::Seek(uint64_t offset) {
  if (file_ == nullptr) return;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    failed_ = true;
  }
}

}  // namespace movd
