#ifndef MOVD_STORAGE_EXTERNAL_SORT_H_
#define MOVD_STORAGE_EXTERNAL_SORT_H_

#include <cstdint>
#include <string>

namespace movd {

/// Statistics from one external sort.
struct ExternalSortStats {
  uint64_t records = 0;
  uint64_t runs = 0;            ///< sorted runs spilled to disk
  uint64_t peak_bytes = 0;      ///< peak in-memory record bytes
};

/// Sorts a MOVD file by descending mbr.max_y (the sweep's start-event
/// order; ties broken by descending min_y) using bounded memory: records
/// are accumulated until `memory_budget_bytes` of serialized size, sorted,
/// spilled as runs, then k-way merged into `output_path`. Temporary run
/// files are placed next to the output and removed afterwards.
/// Returns false on I/O failure.
bool ExternalSortMovdFile(const std::string& input_path,
                          const std::string& output_path,
                          size_t memory_budget_bytes,
                          ExternalSortStats* stats = nullptr);

}  // namespace movd

#endif  // MOVD_STORAGE_EXTERNAL_SORT_H_
