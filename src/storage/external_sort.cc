#include "storage/external_sort.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <vector>

#include "storage/movd_file.h"
#include "util/check.h"

namespace movd {
namespace {

// Sweep start-event order: descending max_y, ties by descending min_y.
bool SweepBefore(const Ovr& a, const Ovr& b) {
  if (a.mbr.max_y != b.mbr.max_y) return a.mbr.max_y > b.mbr.max_y;
  return a.mbr.min_y > b.mbr.min_y;
}

std::string RunPath(const std::string& output_path, uint64_t run) {
  return output_path + ".run" + std::to_string(run);
}

}  // namespace

bool ExternalSortMovdFile(const std::string& input_path,
                          const std::string& output_path,
                          size_t memory_budget_bytes,
                          ExternalSortStats* stats) {
  MovdFileReader reader(input_path);
  if (!reader.ok()) return false;

  // Phase 1: produce sorted runs under the memory budget.
  std::vector<std::string> run_paths;
  std::vector<Ovr> buffer;
  size_t buffer_bytes = 0;
  uint64_t records = 0;
  uint64_t peak_bytes = 0;

  const auto spill = [&]() -> bool {
    if (buffer.empty()) return true;
    // stable_sort: the buffer holds records in deterministic file order,
    // so OVRs tying on (max_y, min_y) keep that order regardless of the
    // sort implementation and the output is byte-stable.
    std::stable_sort(buffer.begin(), buffer.end(), SweepBefore);
    const std::string path = RunPath(output_path, run_paths.size());
    MovdFileWriter writer(path);
    for (const Ovr& ovr : buffer) writer.Append(ovr);
    if (!writer.Close()) return false;
    run_paths.push_back(path);
    buffer.clear();
    buffer_bytes = 0;
    return true;
  };

  while (auto ovr = reader.Next()) {
    buffer_bytes += SerializedOvrSize(*ovr);
    peak_bytes = std::max<uint64_t>(peak_bytes, buffer_bytes);
    buffer.push_back(std::move(*ovr));
    ++records;
    if (buffer_bytes >= memory_budget_bytes) {
      if (!spill()) return false;
    }
  }

  // Single-run fast path: write directly.
  if (run_paths.empty()) {
    std::stable_sort(buffer.begin(), buffer.end(), SweepBefore);
    MovdFileWriter writer(output_path);
    for (const Ovr& ovr : buffer) writer.Append(ovr);
    if (!writer.Close()) return false;
    if (stats != nullptr) {
      stats->records = records;
      stats->runs = 1;
      stats->peak_bytes = peak_bytes;
    }
    return true;
  }
  if (!spill()) return false;

  // Phase 2: k-way merge of the runs.
  struct Source {
    std::unique_ptr<MovdFileReader> reader;
    Ovr head;
  };
  std::vector<Source> sources;
  sources.reserve(run_paths.size());
  for (const std::string& path : run_paths) {
    Source src;
    src.reader = std::make_unique<MovdFileReader>(path);
    if (!src.reader->ok()) return false;
    if (auto head = src.reader->Next()) {
      src.head = std::move(*head);
      sources.push_back(std::move(src));
    }
  }
  const auto later = [&](size_t a, size_t b) {
    return SweepBefore(sources[b].head, sources[a].head);
  };
  std::priority_queue<size_t, std::vector<size_t>, decltype(later)> heap(
      later);
  for (size_t i = 0; i < sources.size(); ++i) heap.push(i);

  MovdFileWriter writer(output_path);
  while (!heap.empty()) {
    const size_t i = heap.top();
    heap.pop();
    writer.Append(sources[i].head);
    if (auto next = sources[i].reader->Next()) {
      sources[i].head = std::move(*next);
      heap.push(i);
    }
  }
  if (!writer.Close()) return false;
  for (const std::string& path : run_paths) std::remove(path.c_str());

  if (stats != nullptr) {
    stats->records = records;
    stats->runs = run_paths.size();
    stats->peak_bytes = peak_bytes;
  }
  return true;
}

}  // namespace movd
