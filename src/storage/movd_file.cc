#include "storage/movd_file.h"

#include <cstdio>

#include "util/check.h"

namespace movd {
namespace {

constexpr uint32_t kMagic = 0x4d4f5644;  // "MOVD"
constexpr uint32_t kVersion = 1;
constexpr uint64_t kHeaderSize = 4 + 4 + 8;  // magic + version + count

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

size_t SerializedOvrSize(const Ovr& ovr) {
  size_t bytes = 4 * 8;  // mbr
  bytes += VarintSize(ovr.pois.size());
  for (const PoiRef& p : ovr.pois) {
    bytes += VarintSize(static_cast<uint32_t>(p.set)) +
             VarintSize(static_cast<uint32_t>(p.object));
  }
  bytes += VarintSize(ovr.region.pieces().size());
  for (const ConvexPolygon& piece : ovr.region.pieces()) {
    bytes += VarintSize(piece.VertexCount()) + piece.VertexCount() * 16;
  }
  return bytes;
}

void WriteOvr(BinaryWriter* writer, const Ovr& ovr) {
  writer->WriteDouble(ovr.mbr.min_x);
  writer->WriteDouble(ovr.mbr.min_y);
  writer->WriteDouble(ovr.mbr.max_x);
  writer->WriteDouble(ovr.mbr.max_y);
  writer->WriteVarint(ovr.pois.size());
  for (const PoiRef& p : ovr.pois) {
    writer->WriteVarint(static_cast<uint32_t>(p.set));
    writer->WriteVarint(static_cast<uint32_t>(p.object));
  }
  writer->WriteVarint(ovr.region.pieces().size());
  for (const ConvexPolygon& piece : ovr.region.pieces()) {
    writer->WriteVarint(piece.VertexCount());
    for (const Point& v : piece.vertices()) {
      writer->WriteDouble(v.x);
      writer->WriteDouble(v.y);
    }
  }
}

Ovr ReadOvr(BinaryReader* reader) {
  Ovr ovr;
  ovr.mbr.min_x = reader->ReadDouble();
  ovr.mbr.min_y = reader->ReadDouble();
  ovr.mbr.max_x = reader->ReadDouble();
  ovr.mbr.max_y = reader->ReadDouble();
  const uint64_t num_pois = reader->ReadVarint();
  ovr.pois.reserve(num_pois);
  for (uint64_t i = 0; i < num_pois; ++i) {
    PoiRef ref;
    ref.set = static_cast<int32_t>(reader->ReadVarint());
    ref.object = static_cast<int32_t>(reader->ReadVarint());
    ovr.pois.push_back(ref);
  }
  const uint64_t num_pieces = reader->ReadVarint();
  std::vector<ConvexPolygon> pieces;
  pieces.reserve(num_pieces);
  for (uint64_t i = 0; i < num_pieces; ++i) {
    const uint64_t num_verts = reader->ReadVarint();
    std::vector<Point> verts;
    verts.reserve(num_verts);
    for (uint64_t v = 0; v < num_verts; ++v) {
      const double x = reader->ReadDouble();
      const double y = reader->ReadDouble();
      verts.push_back({x, y});
    }
    pieces.push_back(ConvexPolygon::FromTrustedRing(std::move(verts)));
  }
  ovr.region = Region::FromPieces(std::move(pieces));
  return ovr;
}

MovdFileWriter::MovdFileWriter(const std::string& path)
    : path_(path), writer_(path) {
  writer_.WriteU32(kMagic);
  writer_.WriteU32(kVersion);
  writer_.WriteU64(0);  // count, patched on Close
}

void MovdFileWriter::Append(const Ovr& ovr) {
  WriteOvr(&writer_, ovr);
  ++count_;
}

Status MovdFileWriter::Close() {
  if (!writer_.Close()) {
    return Status::IoError("cannot write " + path_);
  }
  // Patch the count into the header.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  if (f == nullptr) {
    return Status::IoError("cannot reopen " + path_ + " to patch header");
  }
  if (std::fseek(f, 8, SEEK_SET) != 0) {
    std::fclose(f);
    return Status::IoError("cannot seek to header of " + path_);
  }
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = (count_ >> (8 * i)) & 0xff;
  const bool ok = std::fwrite(buf, 1, 8, f) == 8;
  if (std::fclose(f) != 0 || !ok) {
    return Status::IoError("cannot patch record count into " + path_);
  }
  return Status::Ok();
}

MovdFileReader::MovdFileReader(const std::string& path) : reader_(path) {
  if (!reader_.ok()) return;
  const uint32_t magic = reader_.ReadU32();
  const uint32_t version = reader_.ReadU32();
  count_ = reader_.ReadU64();
  ok_ = reader_.ok() && magic == kMagic && version == kVersion;
}

std::optional<Ovr> MovdFileReader::Next() {
  if (!ok_ || read_ >= count_) return std::nullopt;
  ++read_;
  Ovr ovr = ReadOvr(&reader_);
  if (!reader_.ok()) {
    ok_ = false;
    return std::nullopt;
  }
  return ovr;
}

Status SaveMovd(const std::string& path, const Movd& movd) {
  MovdFileWriter writer(path);
  for (const Ovr& ovr : movd.ovrs) writer.Append(ovr);
  return writer.Close();
}

StatusOr<Movd> LoadMovd(const std::string& path) {
  // An unreadable file is an I/O problem; a readable file the reader
  // rejects is a data problem. The caller's recovery differs (report the
  // path vs. skip the artifact), so probe readability first.
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::fclose(probe);
  MovdFileReader reader(path);
  if (!reader.ok()) {
    return Status::DataLoss("bad MOVD header in " + path);
  }
  Movd movd;
  movd.ovrs.reserve(reader.count());
  while (auto ovr = reader.Next()) {
    movd.ovrs.push_back(std::move(*ovr));
  }
  if (!reader.ok() && movd.ovrs.size() != reader.count()) {
    return Status::DataLoss("truncated MOVD record in " + path);
  }
  return movd;
}

}  // namespace movd
