#ifndef MOVD_STORAGE_STREAMING_OVERLAP_H_
#define MOVD_STORAGE_STREAMING_OVERLAP_H_

#include <cstdint>
#include <string>

#include "model/movd_model.h"

namespace movd {

/// Statistics from one streaming overlap.
struct StreamingOverlapStats {
  uint64_t output_ovrs = 0;
  uint64_t candidate_pairs = 0;
  uint64_t peak_active_bytes = 0;  ///< peak serialized bytes of active OVRs
  uint64_t peak_active_ovrs = 0;
};

/// Disk-based overlap operation ⊕ — the paper's future-work direction
/// ("disk-based techniques that load a portion of data into the main
/// memory", §8).
///
/// Both inputs must be MOVD files sorted in sweep start-event order
/// (descending mbr.max_y; use ExternalSortMovdFile). The operation streams
/// the two files top-to-bottom, holding only the *active* OVRs (those whose
/// y-span intersects the sweep line) in memory, pairs new arrivals against
/// the other input's active set, applies the RRB or MBRB handler, and
/// appends results to `output_path` immediately. Memory is proportional to
/// the sweep width, not the input size.
///
/// Returns false on I/O failure or unsorted input.
bool StreamingOverlap(const std::string& sorted_a_path,
                      const std::string& sorted_b_path,
                      BoundaryMode mode, const std::string& output_path,
                      StreamingOverlapStats* stats = nullptr);

}  // namespace movd

#endif  // MOVD_STORAGE_STREAMING_OVERLAP_H_
