#include "query/whatif.h"

#include <atomic>

#include "core/topk.h"
#include "query/candidates.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {

WhatIfSweepResult WhatIfSweepFromMovd(const MolqQuery& base, const Movd& movd,
                                      const std::vector<WhatIfVector>& vectors,
                                      const WhatIfOptions& options) {
  MOVD_CHECK_MSG(!movd.ovrs.empty() && options.topk >= 1 &&
                     options.epsilon > 0.0,
                 "a what-if sweep needs a non-empty MOVD, topk >= 1 and "
                 "epsilon > 0");
  WhatIfSweepResult result;
  TraceContextScope trace_scope(options.exec.trace);
  TraceSpan span("query_whatif");
  for (const WhatIfVector& v : vectors) {
    MOVD_CHECK_MSG(ValidateWhatIfVector(base, v).ok(),
                   "every what-if vector must validate against the base "
                   "query (callers pre-check with ValidateWhatIfVector)");
  }

  std::vector<std::vector<SiteCandidate>> per_vector(vectors.size());
  std::atomic<bool> cancelled{false};
  const Trace::Context ctx = Trace::CaptureContext();
  ParallelFor(ResolveThreads(options.exec.threads), vectors.size(),
              [&](size_t i) {
                if (cancelled.load(std::memory_order_relaxed)) return;
                if (TokenExpired(options.exec.cancel)) {
                  cancelled.store(true, std::memory_order_relaxed);
                  return;
                }
                TraceContextScope scope(ctx);
                const MolqQuery scaled = ApplyWhatIfVector(base, vectors[i]);
                MolqOptions mo;
                mo.epsilon = options.epsilon;
                // The sweep vector is the parallel grain: each inner
                // ranking runs single-threaded so its answer never depends
                // on the outer thread count.
                mo.exec.threads = 1;
                mo.exec.cancel = options.exec.cancel;
                const MolqResult ranked =
                    TopKFromMovd(scaled, movd, options.topk, mo);
                if (ranked.status != StatusCode::kOk) {
                  cancelled.store(true, std::memory_order_relaxed);
                  return;
                }
                std::vector<SiteCandidate>& out = per_vector[i];
                out.reserve(ranked.ranked.size());
                for (const RankedLocation& r : ranked.ranked) {
                  SiteCandidate c;
                  c.location = r.location;
                  c.cost = r.cost;
                  c.group = r.group;
                  c.criteria =
                      CandidateCriteria(scaled, r.group, r.location);
                  out.push_back(std::move(c));
                }
              });
  if (cancelled.load(std::memory_order_relaxed)) {
    result.status = StatusCode::kCancelled;
    return result;
  }
  result.per_vector = std::move(per_vector);
  span.Counter("vectors", static_cast<int64_t>(vectors.size()));
  span.Counter("topk", static_cast<int64_t>(options.topk));
  return result;
}

}  // namespace movd
