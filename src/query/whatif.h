#ifndef MOVD_QUERY_WHATIF_H_
#define MOVD_QUERY_WHATIF_H_

#include <cstddef>
#include <vector>

#include "model/movd_model.h"
#include "model/query_model.h"
#include "util/exec_options.h"

namespace movd {

struct WhatIfOptions {
  /// Fermat–Weber stopping-rule error bound per ranking.
  double epsilon = 1e-3;

  /// Ranking depth per weight vector (>= 1).
  size_t topk = 1;

  /// Threads parallelise ACROSS sweep vectors (one vector per slot; each
  /// inner ranking runs single-threaded). Trace/cancel flow through.
  ExecOptions exec;
};

/// Batched what-if sweep (DESIGN.md §13.4): the top-k ranking of the base
/// query under each weight vector, all answered from ONE prebuilt MOVD.
///
/// Reuse is sound because a what-if vector adjusts every type weight of a
/// set by the same amount through the query's ς^t composition, which
/// preserves the set's internal distance ranking — so the per-set Voronoi
/// partitions, and hence the overlap structure, are unchanged. Only the
/// Optimizer stage reruns per vector. Every vector must satisfy
/// ValidateWhatIfVector against `base`.
///
/// per_vector[i] is the ranking under vectors[i], ascending by
/// CandidateOrderBefore — bit-identical to TopKFromMovd on the explicitly
/// scaled query, for every thread count. On cancellation the result is
/// kCancelled with per_vector empty (never a partial sweep).
WhatIfSweepResult WhatIfSweepFromMovd(const MolqQuery& base, const Movd& movd,
                                      const std::vector<WhatIfVector>& vectors,
                                      const WhatIfOptions& options = {});

}  // namespace movd

#endif  // MOVD_QUERY_WHATIF_H_
