#include "query/diversify.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/check.h"

namespace movd {

DiverseTopKResult DiverseTopKFromMovd(const MolqQuery& query,
                                      const Movd& movd, size_t k,
                                      double min_distance,
                                      const CandidateOptions& options) {
  MOVD_CHECK_MSG(k > 0 && min_distance >= 0.0 && !movd.ovrs.empty(),
                 "diversified top-k needs k >= 1, min_distance >= 0 and a "
                 "non-empty MOVD");
  DiverseTopKResult result;
  TraceContextScope trace_scope(options.exec.trace);
  TraceSpan span("query_diversify");
  std::vector<SiteCandidate> candidates;
  result.status = EnumerateCandidates(query, movd, options, &candidates);
  if (result.status != StatusCode::kOk) return result;
  result.candidates = candidates.size();

  std::sort(candidates.begin(), candidates.end(), CandidateOrderBefore);
  const double min2 = min_distance * min_distance;
  for (SiteCandidate& c : candidates) {
    if (result.selected.size() == k) break;
    bool far_enough = true;
    for (const SiteCandidate& s : result.selected) {
      if (Distance2(c.location, s.location) < min2) {
        far_enough = false;
        break;
      }
    }
    if (far_enough) {
      result.selected.push_back(std::move(c));
    } else {
      ++result.skipped;
    }
  }
  span.Counter("selected", static_cast<int64_t>(result.selected.size()));
  span.Counter("skipped", static_cast<int64_t>(result.skipped));
  return result;
}

DiverseTopKResult DiverseTopKBruteForce(const MolqQuery& query,
                                        const Movd& movd, size_t k,
                                        double min_distance,
                                        const CandidateOptions& options) {
  MOVD_CHECK_MSG(k > 0 && min_distance >= 0.0 && !movd.ovrs.empty(),
                 "the diversified top-k reference needs k >= 1, "
                 "min_distance >= 0 and a non-empty MOVD");
  DiverseTopKResult result;
  std::vector<SiteCandidate> candidates;
  result.status = EnumerateCandidates(query, movd, options, &candidates);
  if (result.status != StatusCode::kOk) return result;
  result.candidates = candidates.size();

  const double min2 = min_distance * min_distance;
  std::vector<bool> used(candidates.size(), false);
  while (result.selected.size() < k) {
    size_t best = candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (used[i]) continue;
      bool feasible = true;
      for (const SiteCandidate& s : result.selected) {
        if (Distance2(candidates[i].location, s.location) < min2) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      if (best == candidates.size() ||
          CandidateOrderBefore(candidates[i], candidates[best])) {
        best = i;
      }
    }
    if (best == candidates.size()) break;
    used[best] = true;
    result.selected.push_back(candidates[best]);
  }
  return result;
}

}  // namespace movd
