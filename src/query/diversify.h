#ifndef MOVD_QUERY_DIVERSIFY_H_
#define MOVD_QUERY_DIVERSIFY_H_

#include <cstddef>

#include "model/movd_model.h"
#include "model/query_model.h"
#include "query/candidates.h"

namespace movd {

/// Diversified top-k (DESIGN.md §13.2): the best k candidate sites whose
/// pairwise Euclidean distance is >= `min_distance` — alternatives a
/// planner can actually choose between, rather than k near-coincident
/// optima of neighbouring combinations.
///
/// Greedy in CandidateOrderBefore order (ascending cost, ties by the
/// lexicographic group order — the same tie rule as top-k): a candidate is
/// selected iff its distance to every already-selected site is
/// >= min_distance, until k are selected or candidates run out. With
/// min_distance = 0 this is exactly the top-k ranking. The comparison is
/// on squared distances (d^2 >= min_distance^2, boundary inclusive), so
/// the audit validator can replay it bit-exactly.
DiverseTopKResult DiverseTopKFromMovd(const MolqQuery& query,
                                      const Movd& movd, size_t k,
                                      double min_distance,
                                      const CandidateOptions& options = {});

/// Independent reference: repeatedly scans the full candidate set for the
/// CandidateOrderBefore-least unselected candidate that respects the
/// distance constraint. Tests assert exact agreement with the greedy
/// evaluator's `selected` sequence.
DiverseTopKResult DiverseTopKBruteForce(const MolqQuery& query,
                                        const Movd& movd, size_t k,
                                        double min_distance,
                                        const CandidateOptions& options = {});

}  // namespace movd

#endif  // MOVD_QUERY_DIVERSIFY_H_
