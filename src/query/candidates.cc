#include "query/candidates.h"

#include <atomic>
#include <set>

#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {

std::vector<double> CandidateCriteria(const MolqQuery& query,
                                      const std::vector<PoiRef>& group,
                                      const Point& location) {
  std::vector<double> criteria;
  criteria.reserve(group.size());
  for (const PoiRef& ref : group) {
    const SpatialObject& obj = query.sets.at(ref.set).objects.at(ref.object);
    const FermatWeberTerm term = DecomposeWeightedDistance(
        obj, query.type_function, query.ObjectFunction(ref.set));
    criteria.push_back(term.fw_weight * Distance(location, obj.location) +
                       term.offset);
  }
  return criteria;
}

StatusCode EnumerateCandidates(const MolqQuery& query, const Movd& movd,
                               const CandidateOptions& options,
                               std::vector<SiteCandidate>* out) {
  MOVD_CHECK_MSG(out != nullptr && options.epsilon > 0.0,
                 "candidate enumeration needs an output vector and "
                 "epsilon > 0");
  out->clear();
  TraceContextScope trace_scope(options.exec.trace);
  TraceSpan span("query_candidates");

  // Distinct combinations in first-seen OVR order; the scan order of a
  // given MOVD is deterministic, so so is the slot assignment below. The
  // anchor filter applies per distinct combination (anchored at its
  // first-seen OVR), after dedup, so a filtered enumeration solves an
  // exact subset of the unfiltered combination list.
  std::set<std::vector<PoiRef>> seen;
  std::vector<const std::vector<PoiRef>*> groups;
  for (const Ovr& ovr : movd.ovrs) {
    MOVD_CHECK(!ovr.pois.empty());
    if (!seen.insert(ovr.pois).second) continue;
    if (options.anchor_filter != nullptr &&
        !options.anchor_filter(ovr.mbr.Center())) {
      continue;
    }
    groups.push_back(&ovr.pois);
  }

  std::vector<SiteCandidate> candidates(groups.size());
  std::atomic<bool> cancelled{false};
  const Trace::Context ctx = Trace::CaptureContext();
  ParallelFor(ResolveThreads(options.exec.threads), groups.size(),
              [&](size_t i) {
                if (cancelled.load(std::memory_order_relaxed)) return;
                if (TokenExpired(options.exec.cancel)) {
                  cancelled.store(true, std::memory_order_relaxed);
                  return;
                }
                TraceContextScope scope(ctx);
                const std::vector<PoiRef>& group = *groups[i];
                std::vector<WeightedPoint> points;
                points.reserve(group.size());
                double offset = 0.0;
                for (const PoiRef& ref : group) {
                  const SpatialObject& obj =
                      query.sets.at(ref.set).objects.at(ref.object);
                  const FermatWeberTerm term = DecomposeWeightedDistance(
                      obj, query.type_function,
                      query.ObjectFunction(ref.set));
                  points.push_back({obj.location, term.fw_weight});
                  offset += term.offset;
                }
                FermatWeberOptions fw;
                fw.epsilon = options.epsilon;
                const FermatWeberResult r = SolveFermatWeber(points, fw);
                SiteCandidate& c = candidates[i];
                c.location = r.location;
                c.cost = r.cost + offset;
                c.group = group;
                c.criteria = CandidateCriteria(query, group, r.location);
              });
  if (cancelled.load(std::memory_order_relaxed)) {
    return StatusCode::kCancelled;
  }
  span.Counter("candidates", static_cast<int64_t>(candidates.size()));
  *out = std::move(candidates);
  return StatusCode::kOk;
}

}  // namespace movd
