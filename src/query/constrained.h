#ifndef MOVD_QUERY_CONSTRAINED_H_
#define MOVD_QUERY_CONSTRAINED_H_

#include "geom/polygon.h"
#include "geom/rect.h"
#include "model/movd_model.h"
#include "model/query_model.h"
#include "query/candidates.h"

namespace movd {

/// Constrained MOLQ (DESIGN.md §13.3): the optimal location restricted to a
/// feasible set — inside the constraint boundary (or the whole search space
/// when no boundary is given) and not strictly inside any exclusion ring.
/// RRB only: the optimizer clips real overlap regions, which MBRB does not
/// store.
///
/// The feasible set as interior-disjoint convex pieces:
///   (boundary triangulated, or the search-space rect) minus each exclusion
/// via half-plane peeling of exclusion triangles. Closed-set semantics:
/// exclusion boundaries remain feasible, and zero-area exclusions have no
/// interior, hence change nothing. `constraint` must satisfy
/// ValidateConstraint.
Region BuildFeasibleRegion(const QueryConstraint& constraint,
                           const Rect& search_space);

/// Every OVR's region intersected with `feasible`; OVRs whose feasible part
/// is empty (area below Region::kDefaultMinPieceArea) are dropped and MBRs
/// are recomputed from the clipped regions. Requires an RRB MOVD (every OVR
/// carries a non-empty real region).
Movd ClipMovdToFeasible(const Movd& movd, const Region& feasible);

/// The constrained optimum over a clipped MOVD. Per OVR: solve the
/// unconstrained Fermat–Weber problem; if the optimum lies in the clipped
/// region it is the OVR's answer (the cost is convex, so an interior
/// feasible optimum is globally optimal there). Otherwise the constrained
/// optimum lies on the region boundary: every edge of every convex piece is
/// minimized by a fixed-iteration golden-section search (deterministic —
/// no data-dependent stopping), with both endpoints evaluated as guards.
/// Ties between OVRs break by GroupBefore; `feasible` is false when the
/// clipped MOVD is empty.
ConstrainedMolqResult ConstrainedFromClippedMovd(
    const MolqQuery& query, const Movd& clipped,
    const CandidateOptions& options = {});

/// Convenience composition: BuildFeasibleRegion + ClipMovdToFeasible +
/// ConstrainedFromClippedMovd. MOVD_CHECKs that the constraint validates
/// and the MOVD is RRB.
ConstrainedMolqResult ConstrainedMolqFromMovd(
    const MolqQuery& query, const Movd& movd,
    const QueryConstraint& constraint, const Rect& search_space,
    const CandidateOptions& options = {});

/// Independent brute-force reference: evaluates MinWeightedGroupDistance on
/// a `resolution` x `resolution` lattice over the search space, keeping the
/// best feasible point (row-major scan order breaks ties). Feasibility is
/// tested directly on the constraint polygons, not on the clipped pieces,
/// so the reference shares no geometry code with the optimizer. Grid points
/// on an exclusion boundary are skipped (a conservative under-approximation
/// of the closed feasible set — immaterial at test tolerances, which scale
/// with the lattice spacing).
struct ConstrainedGridReferenceResult {
  bool feasible = false;
  Point location;
  double cost = 0.0;
  std::vector<PoiRef> group;
};
ConstrainedGridReferenceResult ConstrainedGridReference(
    const MolqQuery& query, const QueryConstraint& constraint,
    const Rect& search_space, int resolution);

}  // namespace movd

#endif  // MOVD_QUERY_CONSTRAINED_H_
