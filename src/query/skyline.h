#ifndef MOVD_QUERY_SKYLINE_H_
#define MOVD_QUERY_SKYLINE_H_

#include "model/movd_model.h"
#include "model/query_model.h"
#include "query/candidates.h"

namespace movd {

/// The multi-criteria skyline (DESIGN.md §13.1): every candidate site not
/// Pareto-dominated on its per-set criteria vector. No aggregate weight
/// function is applied — a site that is best for schools but mediocre
/// overall survives as long as nothing beats it on *all* criteria at once.
///
/// The pruning pass is a sort-filter skyline: candidates are sorted by
/// SkylineOrderBefore (monotone with respect to dominance, see its doc
/// comment), then each is tested only against already-retained skyline
/// members — O(n * |skyline|) dominance tests instead of the O(n^2)
/// all-pairs scan of the brute-force reference. The output is in the same
/// order, deterministic for every thread count. MBRB overlays are legal
/// inputs: their false-positive duplicate combinations collapse during
/// candidate enumeration.
SkylineResult SkylineFromMovd(const MolqQuery& query, const Movd& movd,
                              const CandidateOptions& options = {});

/// O(n^2) all-pairs reference over the same candidate enumeration: keeps a
/// candidate iff no other candidate dominates it, output sorted by
/// SkylineOrderBefore. Tests assert exact agreement with SkylineFromMovd.
SkylineResult SkylineBruteForce(const MolqQuery& query, const Movd& movd,
                                const CandidateOptions& options = {});

}  // namespace movd

#endif  // MOVD_QUERY_SKYLINE_H_
