#include "query/skyline.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/check.h"

namespace movd {

SkylineResult SkylineFromMovd(const MolqQuery& query, const Movd& movd,
                              const CandidateOptions& options) {
  MOVD_CHECK_MSG(!movd.ovrs.empty(),
                 "the skyline evaluator needs a non-empty MOVD to scan");
  SkylineResult result;
  TraceContextScope trace_scope(options.exec.trace);
  TraceSpan span("query_skyline");
  std::vector<SiteCandidate> candidates;
  result.status = EnumerateCandidates(query, movd, options, &candidates);
  if (result.status != StatusCode::kOk) return result;
  result.candidates = candidates.size();

  SkylineFilterInPlace(&candidates, &result.dominance_tests);
  result.skyline = std::move(candidates);
  span.Counter("skyline", static_cast<int64_t>(result.skyline.size()));
  span.Counter("dominance_tests",
               static_cast<int64_t>(result.dominance_tests));
  return result;
}

SkylineResult SkylineBruteForce(const MolqQuery& query, const Movd& movd,
                                const CandidateOptions& options) {
  MOVD_CHECK_MSG(!movd.ovrs.empty(),
                 "the skyline reference needs a non-empty MOVD to scan");
  SkylineResult result;
  std::vector<SiteCandidate> candidates;
  result.status = EnumerateCandidates(query, movd, options, &candidates);
  if (result.status != StatusCode::kOk) return result;
  result.candidates = candidates.size();
  for (size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < candidates.size() && !dominated; ++j) {
      if (j == i) continue;
      ++result.dominance_tests;
      dominated = Dominates(candidates[j].criteria, candidates[i].criteria);
    }
    if (!dominated) result.skyline.push_back(candidates[i]);
  }
  std::sort(result.skyline.begin(), result.skyline.end(),
            SkylineOrderBefore);
  return result;
}

}  // namespace movd
