#include "query/constrained.h"

#include <atomic>
#include <cstdint>
#include <utility>

#include "core/weighted_distance.h"
#include "fermat/fermat_weber.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {
namespace {

/// Appends p \ q to `out` as disjoint convex pieces by half-plane peeling:
/// for each CCW edge a->b of q, the part of the remainder strictly right of
/// the edge is outside q (peeled off whole), and the part to the left stays
/// for the next edge. What survives every edge is p ∩ q — the excluded
/// part, which is discarded.
void AppendConvexDifference(const ConvexPolygon& p, const ConvexPolygon& q,
                            std::vector<ConvexPolygon>* out) {
  if (q.Empty()) {
    if (!p.Empty()) out->push_back(p);
    return;
  }
  ConvexPolygon rest = p;
  const std::vector<Point>& v = q.vertices();
  for (size_t i = 0; i < v.size() && !rest.Empty(); ++i) {
    const Point& a = v[i];
    const Point& b = v[(i + 1) % v.size()];
    ConvexPolygon outside = rest;
    outside.ClipByHalfPlane(b, a);  // left of b->a == right of a->b
    outside.DropIfSliver(Region::kDefaultMinPieceArea);
    if (!outside.Empty()) out->push_back(std::move(outside));
    rest.ClipByHalfPlane(a, b);
    rest.DropIfSliver(Region::kDefaultMinPieceArea);
  }
}

/// Golden-section minimization of the (convex) Fermat–Weber cost along the
/// segment a->b. A fixed 64-iteration schedule — no data-dependent stopping
/// rule — keeps the result bit-identical across runs and thread counts;
/// 0.618^64 shrinks the bracket far below double resolution. Both endpoints
/// are evaluated as guards (the minimum of a convex function over a segment
/// can sit exactly at an endpoint the interior bracket never reaches).
Point MinimizeOnSegment(const std::vector<WeightedPoint>& points,
                        const Point& a, const Point& b, double* cost_out) {
  constexpr double kInvPhi = 0.6180339887498949;
  const auto at = [&](double t) {
    return Point{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  };
  double lo = 0.0;
  double hi = 1.0;
  double c = hi - (hi - lo) * kInvPhi;
  double d = lo + (hi - lo) * kInvPhi;
  double fc = FermatWeberCost(points, at(c));
  double fd = FermatWeberCost(points, at(d));
  for (int it = 0; it < 64; ++it) {
    if (fc < fd) {
      hi = d;
      d = c;
      fd = fc;
      c = hi - (hi - lo) * kInvPhi;
      fc = FermatWeberCost(points, at(c));
    } else {
      lo = c;
      c = d;
      fc = fd;
      d = lo + (hi - lo) * kInvPhi;
      fd = FermatWeberCost(points, at(d));
    }
  }
  Point best = at(0.5 * (lo + hi));
  double best_cost = FermatWeberCost(points, best);
  const double cost_a = FermatWeberCost(points, a);
  if (cost_a < best_cost) {
    best = a;
    best_cost = cost_a;
  }
  const double cost_b = FermatWeberCost(points, b);
  if (cost_b < best_cost) {
    best = b;
    best_cost = cost_b;
  }
  *cost_out = best_cost;
  return best;
}

}  // namespace

Region BuildFeasibleRegion(const QueryConstraint& constraint,
                           const Rect& search_space) {
  MOVD_CHECK_MSG(ValidateConstraint(constraint).ok() && !search_space.Empty(),
                 "the feasible region needs a valid constraint and a "
                 "non-empty search space");
  std::vector<ConvexPolygon> pieces;
  const ConvexPolygon space = ConvexPolygon::FromRect(search_space);
  if (constraint.boundary.Empty()) {
    pieces.push_back(space);
  } else {
    for (const ConvexPolygon& tri : constraint.boundary.Triangulate()) {
      ConvexPolygon piece = ConvexPolygon::Intersect(tri, space);
      piece.DropIfSliver(Region::kDefaultMinPieceArea);
      if (!piece.Empty()) pieces.push_back(std::move(piece));
    }
  }
  for (const Polygon& exclusion : constraint.exclusions) {
    // Zero-area (collinear) exclusions have no interior: no-ops under the
    // closed-set semantics.
    if (!(exclusion.SignedArea() > 0.0)) continue;
    for (const ConvexPolygon& tri : exclusion.Triangulate()) {
      std::vector<ConvexPolygon> next;
      for (const ConvexPolygon& piece : pieces) {
        AppendConvexDifference(piece, tri, &next);
      }
      pieces = std::move(next);
    }
  }
  return Region::FromPieces(std::move(pieces));
}

Movd ClipMovdToFeasible(const Movd& movd, const Region& feasible) {
  Movd out;
  for (const Ovr& ovr : movd.ovrs) {
    MOVD_CHECK_MSG(!ovr.region.Empty(),
                   "constrained MOLQ requires an RRB MOVD: every OVR must "
                   "carry its real region");
    Ovr clipped;
    clipped.region = Region::Intersect(ovr.region, feasible);
    if (clipped.region.Empty()) continue;
    clipped.mbr = clipped.region.Bbox();
    clipped.pois = ovr.pois;
    out.ovrs.push_back(std::move(clipped));
  }
  return out;
}

ConstrainedMolqResult ConstrainedFromClippedMovd(
    const MolqQuery& query, const Movd& clipped,
    const CandidateOptions& options) {
  MOVD_CHECK_MSG(options.epsilon > 0.0,
                 "the constrained optimizer needs epsilon > 0");
  ConstrainedMolqResult result;
  TraceContextScope trace_scope(options.exec.trace);
  TraceSpan span("query_constrained");
  result.clipped_ovrs = clipped.ovrs.size();

  struct Slot {
    bool solved = false;
    bool on_boundary = false;
    SiteCandidate candidate;
  };
  std::vector<Slot> slots(clipped.ovrs.size());
  std::atomic<bool> cancelled{false};
  const Trace::Context ctx = Trace::CaptureContext();
  ParallelFor(
      ResolveThreads(options.exec.threads), clipped.ovrs.size(),
      [&](size_t i) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        if (TokenExpired(options.exec.cancel)) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
        TraceContextScope scope(ctx);
        const Ovr& ovr = clipped.ovrs[i];
        MOVD_CHECK(!ovr.pois.empty());
        std::vector<WeightedPoint> points;
        points.reserve(ovr.pois.size());
        double offset = 0.0;
        for (const PoiRef& ref : ovr.pois) {
          const SpatialObject& obj =
              query.sets.at(ref.set).objects.at(ref.object);
          const FermatWeberTerm term = DecomposeWeightedDistance(
              obj, query.type_function, query.ObjectFunction(ref.set));
          points.push_back({obj.location, term.fw_weight});
          offset += term.offset;
        }
        FermatWeberOptions fw;
        fw.epsilon = options.epsilon;
        const FermatWeberResult free = SolveFermatWeber(points, fw);
        Slot& slot = slots[i];
        Point where = free.location;
        double fw_cost = free.cost;
        if (!ovr.region.Contains(free.location)) {
          // The cost is convex, so with the unconstrained optimum outside
          // the clipped region the constrained optimum lies on its
          // boundary: minimize over every edge of every convex piece, in
          // deterministic piece/edge order with strict-< so the first
          // minimal edge wins ties.
          slot.on_boundary = true;
          bool have = false;
          for (const ConvexPolygon& piece : ovr.region.pieces()) {
            const std::vector<Point>& ring = piece.vertices();
            for (size_t e = 0; e < ring.size(); ++e) {
              double edge_cost = 0.0;
              const Point p = MinimizeOnSegment(
                  points, ring[e], ring[(e + 1) % ring.size()], &edge_cost);
              if (!have || edge_cost < fw_cost) {
                have = true;
                where = p;
                fw_cost = edge_cost;
              }
            }
          }
        }
        slot.candidate.location = where;
        slot.candidate.cost = fw_cost + offset;
        slot.candidate.group = ovr.pois;
        slot.candidate.criteria = CandidateCriteria(query, ovr.pois, where);
        slot.solved = true;
      });
  if (cancelled.load(std::memory_order_relaxed)) {
    result.status = StatusCode::kCancelled;
    return result;
  }
  for (const Slot& slot : slots) {
    if (!slot.solved) continue;
    if (slot.on_boundary) ++result.boundary_solves;
    const SiteCandidate& c = slot.candidate;
    if (!result.feasible || c.cost < result.best.cost ||
        (!(result.best.cost < c.cost) &&
         GroupBefore(c.group, result.best.group))) {
      result.feasible = true;
      result.best = c;
    }
  }
  span.Counter("clipped_ovrs", static_cast<int64_t>(result.clipped_ovrs));
  span.Counter("boundary_solves",
               static_cast<int64_t>(result.boundary_solves));
  return result;
}

ConstrainedMolqResult ConstrainedMolqFromMovd(const MolqQuery& query,
                                              const Movd& movd,
                                              const QueryConstraint& constraint,
                                              const Rect& search_space,
                                              const CandidateOptions& options) {
  MOVD_CHECK_MSG(!movd.ovrs.empty() && !search_space.Empty(),
                 "constrained MOLQ needs a non-empty MOVD and search space");
  const Region feasible = BuildFeasibleRegion(constraint, search_space);
  const Movd clipped = ClipMovdToFeasible(movd, feasible);
  return ConstrainedFromClippedMovd(query, clipped, options);
}

ConstrainedGridReferenceResult ConstrainedGridReference(
    const MolqQuery& query, const QueryConstraint& constraint,
    const Rect& search_space, int resolution) {
  MOVD_CHECK_MSG(resolution >= 2 && !search_space.Empty() &&
                     ValidateConstraint(constraint).ok(),
                 "the grid reference needs resolution >= 2, a non-empty "
                 "search space and a valid constraint");
  ConstrainedGridReferenceResult result;
  const double step = 1.0 / static_cast<double>(resolution - 1);
  for (int iy = 0; iy < resolution; ++iy) {
    for (int ix = 0; ix < resolution; ++ix) {
      const Point p{
          search_space.min_x + search_space.Width() * (ix * step),
          search_space.min_y + search_space.Height() * (iy * step)};
      if (!constraint.boundary.Empty() && !constraint.boundary.Contains(p)) {
        continue;
      }
      bool excluded = false;
      for (const Polygon& exclusion : constraint.exclusions) {
        if (exclusion.SignedArea() > 0.0 && exclusion.Contains(p)) {
          excluded = true;
          break;
        }
      }
      if (excluded) continue;
      const double cost = MinWeightedGroupDistance(query, p);
      if (!result.feasible || cost < result.cost) {
        result.feasible = true;
        result.cost = cost;
        result.location = p;
      }
    }
  }
  if (result.feasible) {
    const std::vector<int32_t> group = ArgMinGroup(query, result.location);
    result.group.reserve(group.size());
    for (size_t i = 0; i < group.size(); ++i) {
      result.group.push_back(PoiRef{static_cast<int32_t>(i), group[i]});
    }
  }
  return result;
}

}  // namespace movd
