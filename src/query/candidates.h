#ifndef MOVD_QUERY_CANDIDATES_H_
#define MOVD_QUERY_CANDIDATES_H_

#include <functional>
#include <vector>

#include "model/movd_model.h"
#include "model/query_model.h"
#include "util/exec_options.h"
#include "util/status.h"

namespace movd {

/// Shared execution knobs of the query-shape evaluators.
struct CandidateOptions {
  /// Relative error bound of each Fermat–Weber solve.
  double epsilon = 1e-3;
  ExecOptions exec;
  /// When set, only combinations whose anchor point passes are solved.
  /// A combination's anchor is the MBR center of its first-seen OVR in
  /// the canonical scan order, so each distinct combination has exactly
  /// one anchor however many OVRs repeat it — the property the sharded
  /// skyline scatter (DESIGN.md §15) uses to give every combination to
  /// exactly one shard. The dedup scan itself is never filtered.
  std::function<bool(const Point&)> anchor_filter;
};

/// The criteria vector of `group` at `location`: per member, WD through
/// the same Fermat–Weber decomposition the optimizer uses
/// (fw_weight * d + offset), in group order.
std::vector<double> CandidateCriteria(const MolqQuery& query,
                                      const std::vector<PoiRef>& group,
                                      const Point& location);

/// Enumerates the distinct object combinations of `movd` (first-seen OVR
/// scan order, so MBRB false-positive duplicates collapse) and solves each
/// combination's unconstrained Fermat–Weber problem into a SiteCandidate.
/// No cost-bound pruning is applied: unlike top-k, the downstream shapes
/// (skyline, diversification) can keep a candidate whose *aggregate* cost
/// is poor, so every optimum must be solved in full.
///
/// The per-candidate solves are independent, so they fan out on
/// options.exec.threads with each worker writing only its own slot —
/// results are bit-identical for every thread count. Returns kCancelled
/// (with `out` empty, never partial) when options.exec.cancel fires.
StatusCode EnumerateCandidates(const MolqQuery& query, const Movd& movd,
                               const CandidateOptions& options,
                               std::vector<SiteCandidate>* out);

}  // namespace movd

#endif  // MOVD_QUERY_CANDIDATES_H_
