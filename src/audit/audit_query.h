#ifndef MOVD_AUDIT_AUDIT_QUERY_H_
#define MOVD_AUDIT_AUDIT_QUERY_H_

#include <cstddef>
#include <vector>

#include "audit/audit.h"
#include "geom/rect.h"
#include "model/object.h"
#include "model/query_model.h"

namespace movd {

/// Re-check validators for the query-algebra answers (DESIGN.md §13).
///
/// Each validator replays the *answer contract* from the model-layer data
/// alone — weighted distances are recomputed from the raw query objects
/// through model/object.h's ApplyWeight, never through core — so a bug in
/// the evaluators (src/query) cannot also hide in the checker. Violations
/// come back as structured AuditReport entries, one witness per failure.

/// Validates a skyline answer: group/criteria shape, cost and criteria
/// agreement with an independent WD recomputation at each reported
/// location, SkylineOrderBefore output order, and a full pairwise
/// dominance replay (no member may dominate another).
AuditReport AuditSkyline(const MolqQuery& query, const SkylineResult& result);

/// Validates a diversified top-k answer: shape and cost recomputation as
/// above, at most k results, ascending CandidateOrderBefore order, and
/// every selected pair at squared distance >= min_distance^2 (the same
/// exact comparison the evaluator makes).
AuditReport AuditDiverseTopK(const MolqQuery& query, size_t k,
                             double min_distance,
                             const DiverseTopKResult& result);

/// Validates a constrained-MOLQ answer: shape and cost recomputation, the
/// location inside the search space and the boundary ring (when present;
/// a point within a small tolerance of a boundary edge counts as inside,
/// since boundary solves legitimately land on the ring), and not strictly
/// inside any exclusion ring (a point on an exclusion edge is feasible;
/// "strictly inside" is contained and farther than a tolerance from every
/// exclusion edge). Infeasible results must be empty.
AuditReport AuditConstrainedMolq(const MolqQuery& query,
                                 const QueryConstraint& constraint,
                                 const Rect& search_space,
                                 const ConstrainedMolqResult& result);

/// Validates a what-if sweep: one ranking per vector, each checked for
/// shape, ascending CandidateOrderBefore order, at most k entries, and
/// cost/criteria recomputation against the *scaled* query
/// (ApplyWhatIfVector applied to `base`).
AuditReport AuditWhatIfSweep(const MolqQuery& base,
                             const std::vector<WhatIfVector>& vectors,
                             size_t k, const WhatIfSweepResult& result);

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_QUERY_H_
