#ifndef MOVD_AUDIT_AUDIT_WEIGHTED_H_
#define MOVD_AUDIT_AUDIT_WEIGHTED_H_

#include <vector>

#include "audit/audit.h"
#include "geom/rect.h"
#include "voronoi/weighted.h"

namespace movd {

/// Validates the grid-approximated weighted Voronoi diagram produced by
/// ApproximateWeightedVoronoi against its defining invariants:
///  - one cell per generator, cells[i].site == i;
///  - `empty` consistent with `sample_count`, and empty cells carry no
///    hull/cover/MBR;
///  - per-cell sample counts sum to resolution^2 (every grid cell has
///    exactly one owner);
///  - MBR containment: the hull's bbox and every cover ring's bbox lie
///    inside the cell MBR, and the MBR inside the (slack-expanded) bounds;
///  - dominance re-check: every hull vertex is a dominated sample center —
///    recomputing the weighted distance to all generators (ties to the
///    lowest index, the sampler's rule) must select this cell's generator.
///    The recomputation replays the sampler's arithmetic exactly, so this
///    check is bit-exact, not tolerance-based;
///  - every cover ring is a simple CCW polygon (AuditPolygon).
AuditReport AuditWeightedCells(const std::vector<WeightedSite>& sites,
                               const std::vector<WeightedCellApprox>& cells,
                               const Rect& bounds, int resolution);

/// Validates the adaptive quadtree diagram (WeightedMethod::kAdaptive,
/// DESIGN.md §11) against its conservative-cover contract:
///  - the structural invariants shared with the dense method (cell/site
///    alignment, empty-flag consistency with the sentinel invalid MBR,
///    MBR-in-bounds and cover-in-MBR containment, simple CCW cover rings);
///  - the cross-method dominance guarantee: every sample center of the
///    EffectiveWeightedResolution(resolution) dense lattice that the
///    BestWeightedSite tie rule assigns to generator i lies inside cell
///    i's cover (and MBR). The replay uses the same shared owner function
///    as both builders, so the tie rule is asserted to be
///    resolution-independent and method-independent at once. Because the
///    adaptive covers contain the whole classified dominance region, a
///    single missed sample is a real construction bug, not tolerance
///    noise.
/// The dense-lattice replay costs O(resolution^2 * sites) — the price the
/// construction avoided — so this belongs in opt-in audit sweeps, not on
/// the hot path.
AuditReport AuditAdaptiveWeightedCells(
    const std::vector<WeightedSite>& sites,
    const std::vector<WeightedCellApprox>& cells, const Rect& bounds,
    int resolution);

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_WEIGHTED_H_
