#include "audit/audit_polygon.h"

#include <cmath>
#include <vector>

#include "geom/predicates.h"

namespace movd {
namespace {

// True when segments [a,b] and [c,d] properly cross (their interiors
// intersect) or overlap collinearly over a positive length. Point touches —
// shared vertices, a vertex resting on another edge — are deliberately NOT
// crossings: a weakly-simple ring that pinches at a vertex is a faithful
// boundary of a pinched region (grid-dominance covers produce these at
// lattice pinch points), while a proper crossing always means a bowtie.
bool SegmentsCross(const Point& a, const Point& b, const Point& c,
                   const Point& d) {
  const double d1 = Orient2D(c, d, a);
  const double d2 = Orient2D(c, d, b);
  const double d3 = Orient2D(a, b, c);
  const double d4 = Orient2D(a, b, d);
  const bool ab_split = (d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0);
  const bool cd_split = (d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0);
  if (ab_split && cd_split) return true;
  if (d1 == 0.0 && d2 == 0.0 && d3 == 0.0 && d4 == 0.0) {
    // Collinear: a positive-length 1-D overlap shows on at least one axis.
    const double x_lo = std::max(std::min(a.x, b.x), std::min(c.x, d.x));
    const double x_hi = std::min(std::max(a.x, b.x), std::max(c.x, d.x));
    const double y_lo = std::max(std::min(a.y, b.y), std::min(c.y, d.y));
    const double y_hi = std::min(std::max(a.y, b.y), std::max(c.y, d.y));
    return x_lo < x_hi || y_lo < y_hi;
  }
  return false;
}

std::vector<int64_t> Tagged(int64_t tag, std::initializer_list<int64_t> rest) {
  std::vector<int64_t> out;
  out.push_back(tag);
  out.insert(out.end(), rest);
  return out;
}

// Shared ring checks; `convex` additionally requires every turn to be
// non-clockwise. Returns early on structural failures that would make the
// later checks meaningless (non-finite coordinates).
AuditReport AuditRing(const std::vector<Point>& v, bool convex, int64_t tag) {
  AuditReport report;
  const size_t n = v.size();
  if (n < 3) {
    report.NoteChecks(1);
    if (n != 0) {
      report.Add(AuditKind::kPolygonVertexCount,
                 AuditStrFormat("ring has %zu vertices (want 0 or >= 3)", n),
                 Tagged(tag, {static_cast<int64_t>(n)}));
    }
    return report;
  }

  for (size_t i = 0; i < n; ++i) {
    report.NoteChecks(1);
    if (!std::isfinite(v[i].x) || !std::isfinite(v[i].y)) {
      report.Add(AuditKind::kPolygonNonFinite,
                 AuditStrFormat("vertex %zu is not finite", i),
                 Tagged(tag, {static_cast<int64_t>(i)}), {v[i]});
      return report;
    }
  }

  for (size_t i = 0; i < n; ++i) {
    report.NoteChecks(1);
    if (v[i] == v[(i + 1) % n]) {
      report.Add(AuditKind::kPolygonDuplicateVertex,
                 AuditStrFormat("vertices %zu and %zu coincide at (%g, %g)",
                                i, (i + 1) % n, v[i].x, v[i].y),
                 Tagged(tag, {static_cast<int64_t>(i)}), {v[i]});
    }
  }

  // Orientation: positive shoelace signed area.
  double area2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    area2 += v[i].Cross(v[(i + 1) % n]);
  }
  report.NoteChecks(1);
  if (!(area2 > 0.0)) {
    report.Add(AuditKind::kPolygonOrientation,
               AuditStrFormat("signed area %g (want > 0: CCW)", 0.5 * area2),
               Tagged(tag, {}));
  }

  if (convex) {
    for (size_t i = 0; i < n; ++i) {
      report.NoteChecks(1);
      const Point& a = v[i];
      const Point& b = v[(i + 1) % n];
      const Point& c = v[(i + 2) % n];
      if (Orient2D(a, b, c) < 0.0) {
        report.Add(AuditKind::kPolygonNotConvex,
                   AuditStrFormat("clockwise turn at vertex %zu (%g, %g)",
                                  (i + 1) % n, b.x, b.y),
                   Tagged(tag, {static_cast<int64_t>((i + 1) % n)}), {b});
      }
    }
  }

  // Simplicity: no two non-adjacent edges cross. O(n^2) exact tests —
  // the auditors favour completeness over speed (they are opt-in).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      // Skip the edge itself and the two ring-adjacent edges.
      if (j == i || (j + 1) % n == i || (i + 1) % n == j) continue;
      report.NoteChecks(1);
      if (SegmentsCross(v[i], v[(i + 1) % n], v[j], v[(j + 1) % n])) {
        report.Add(
            AuditKind::kPolygonSelfIntersection,
            AuditStrFormat("edge %zu->%zu intersects edge %zu->%zu", i,
                           (i + 1) % n, j, (j + 1) % n),
            Tagged(tag, {static_cast<int64_t>(i), static_cast<int64_t>(j)}),
            {v[i], v[(i + 1) % n], v[j], v[(j + 1) % n]});
      }
    }
  }
  return report;
}

}  // namespace

AuditReport AuditPolygon(const Polygon& polygon, int64_t tag) {
  return AuditRing(polygon.vertices(), /*convex=*/false, tag);
}

AuditReport AuditConvexPolygon(const ConvexPolygon& polygon, int64_t tag) {
  return AuditRing(polygon.vertices(), /*convex=*/true, tag);
}

}  // namespace movd
