#include "audit/audit_weighted.h"

#include <algorithm>
#include <limits>

#include "audit/audit_polygon.h"

namespace movd {
namespace {

// Structural invariants shared by both construction methods: cell/site
// alignment, empty-flag consistency (empty cells keep the sentinel invalid
// Rect and no hull/cover), the MBR containment chain, and simple-CCW cover
// rings. Returns false when the cell vector does not even line up with the
// sites (the per-cell checks would be meaningless).
bool StructuralChecks(const std::vector<WeightedSite>& sites,
                      const std::vector<WeightedCellApprox>& cells,
                      const Rect& bounds, AuditReport* report) {
  report->NoteChecks(1);
  if (cells.size() != sites.size()) {
    report->Add(AuditKind::kWeightedCellCount,
                AuditStrFormat("%zu cells for %zu generators", cells.size(),
                               sites.size()),
                {static_cast<int64_t>(cells.size()),
                 static_cast<int64_t>(sites.size())});
    return false;
  }

  const double slack = 1e-9 * std::max(bounds.Width(), bounds.Height());
  const Rect slack_bounds(bounds.min_x - slack, bounds.min_y - slack,
                          bounds.max_x + slack, bounds.max_y + slack);

  for (size_t i = 0; i < cells.size(); ++i) {
    const WeightedCellApprox& cell = cells[i];

    report->NoteChecks(2);
    if (cell.site != static_cast<int32_t>(i)) {
      report->Add(AuditKind::kWeightedCellCount,
                  AuditStrFormat("cell %zu tagged with generator %d", i,
                                 cell.site),
                  {static_cast<int64_t>(i), cell.site});
    }
    if (cell.empty != (cell.sample_count == 0)) {
      report->Add(AuditKind::kWeightedEmptyFlag,
                  AuditStrFormat("cell %zu: empty=%d but sample_count=%zu",
                                 i, cell.empty ? 1 : 0, cell.sample_count),
                  {static_cast<int64_t>(i),
                   static_cast<int64_t>(cell.sample_count)});
    }
    if (cell.empty) {
      report->NoteChecks(1);
      if (!cell.mbr.Empty() || !cell.hull.Empty() || !cell.cover.empty()) {
        report->Add(AuditKind::kWeightedEmptyFlag,
                    AuditStrFormat("empty cell %zu still carries an MBR, "
                                   "hull, or cover (the MBR must stay the "
                                   "sentinel invalid Rect)",
                                   i),
                    {static_cast<int64_t>(i)});
      }
      continue;
    }

    // MBR containment chain: hull bbox and cover bboxes inside the MBR,
    // MBR inside the bounds.
    report->NoteChecks(2);
    if (cell.mbr.Empty()) {
      report->Add(AuditKind::kWeightedContainment,
                  AuditStrFormat("non-empty cell %zu has an empty MBR", i),
                  {static_cast<int64_t>(i)});
      continue;
    }
    if (!slack_bounds.Contains(cell.mbr)) {
      report->Add(AuditKind::kWeightedContainment,
                  AuditStrFormat("cell %zu MBR [%g, %g]x[%g, %g] escapes "
                                 "the bounds",
                                 i, cell.mbr.min_x, cell.mbr.max_x,
                                 cell.mbr.min_y, cell.mbr.max_y),
                  {static_cast<int64_t>(i)});
    }
    if (!cell.hull.Empty()) {
      report->NoteChecks(1);
      if (!cell.mbr.Contains(cell.hull.Bbox())) {
        report->Add(AuditKind::kWeightedContainment,
                    AuditStrFormat("cell %zu hull bbox escapes its MBR", i),
                    {static_cast<int64_t>(i)});
      }
    }
    for (size_t r = 0; r < cell.cover.size(); ++r) {
      report->NoteChecks(1);
      if (!cell.mbr.Contains(cell.cover[r].Bbox())) {
        report->Add(AuditKind::kWeightedContainment,
                    AuditStrFormat("cell %zu cover ring %zu escapes its "
                                   "MBR",
                                   i, r),
                    {static_cast<int64_t>(i), static_cast<int64_t>(r)});
      }
      AuditReport ring = AuditPolygon(cell.cover[r],
                                      static_cast<int64_t>(i));
      for (const AuditViolation& v : ring.violations()) {
        report->Add(AuditKind::kWeightedCoverRing,
                    AuditStrFormat("cell %zu cover ring %zu: %s", i, r,
                                   v.message.c_str()),
                    v.indices, v.witness);
      }
      report->NoteChecks(ring.checks());
    }
  }
  return true;
}

}  // namespace

AuditReport AuditWeightedCells(const std::vector<WeightedSite>& sites,
                               const std::vector<WeightedCellApprox>& cells,
                               const Rect& bounds, int resolution) {
  AuditReport report;
  if (!StructuralChecks(sites, cells, bounds, &report)) return report;
  if (sites.empty()) return report;

  size_t total_samples = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const WeightedCellApprox& cell = cells[i];
    total_samples += cell.sample_count;
    if (cell.empty) continue;

    // Dominance re-check at every hull vertex: the hull is built from
    // dominated sample centers, so replaying the owner rule — the shared
    // BestWeightedSite, bit-exact with the sampler's arithmetic — must
    // pick this generator. A hull vertex owned by someone else means the
    // cell leaks outside its dominance region.
    for (size_t k = 0; k < cell.hull.vertices().size(); ++k) {
      report.NoteChecks(1);
      const Point& v = cell.hull.vertices()[k];
      const size_t owner = BestWeightedSite(v, sites);
      if (owner != i) {
        report.Add(AuditKind::kWeightedDominance,
                   AuditStrFormat("cell %zu hull vertex %zu (%g, %g) is "
                                  "dominated by generator %zu",
                                  i, k, v.x, v.y, owner),
                   {static_cast<int64_t>(i), static_cast<int64_t>(k),
                    static_cast<int64_t>(owner)},
                   {v});
      }
    }
  }

  report.NoteChecks(1);
  const size_t want =
      static_cast<size_t>(resolution) * static_cast<size_t>(resolution);
  if (total_samples != want) {
    report.Add(AuditKind::kWeightedSampleCount,
               AuditStrFormat("sample counts sum to %zu over a %d x %d grid "
                              "(want %zu)",
                              total_samples, resolution, resolution, want),
               {static_cast<int64_t>(total_samples),
                static_cast<int64_t>(want)});
  }

  return report;
}

AuditReport AuditAdaptiveWeightedCells(
    const std::vector<WeightedSite>& sites,
    const std::vector<WeightedCellApprox>& cells, const Rect& bounds,
    int resolution) {
  AuditReport report;
  if (!StructuralChecks(sites, cells, bounds, &report)) return report;
  if (sites.empty()) return report;

  // Cross-method dominance containment: replay the dense lattice at the
  // adaptive method's effective resolution with the shared tie rule and
  // demand every dominated sample center inside its owner's cover. This
  // is the "adaptive strictly contains the dense-grid dominated set"
  // guarantee; it also pins the tie rule to one shared implementation —
  // if any caller diverged from BestWeightedSite, the replay would flag
  // the flipped boundary samples here.
  const int res = EffectiveWeightedResolution(resolution);
  const double step_x = bounds.Width() / res;
  const double step_y = bounds.Height() / res;
  for (int gy = 0; gy < res; ++gy) {
    for (int gx = 0; gx < res; ++gx) {
      const Point c{bounds.min_x + (gx + 0.5) * step_x,
                    bounds.min_y + (gy + 0.5) * step_y};
      const size_t owner = BestWeightedSite(c, sites);
      const WeightedCellApprox& cell = cells[owner];
      report.NoteChecks(1);
      if (cell.empty || !cell.mbr.Contains(c)) {
        report.Add(AuditKind::kWeightedCoverMiss,
                   AuditStrFormat("dominated sample (%g, %g) of generator "
                                  "%zu outside the cell MBR",
                                  c.x, c.y, owner),
                   {static_cast<int64_t>(owner), gx, gy}, {c});
        continue;
      }
      bool covered = false;
      for (const Polygon& ring : cell.cover) {
        if (ring.Contains(c)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        report.Add(AuditKind::kWeightedCoverMiss,
                   AuditStrFormat("dominated sample (%g, %g) of generator "
                                  "%zu outside every cover ring",
                                  c.x, c.y, owner),
                   {static_cast<int64_t>(owner), gx, gy}, {c});
      }
    }
  }

  return report;
}

}  // namespace movd
