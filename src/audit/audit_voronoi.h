#ifndef MOVD_AUDIT_AUDIT_VORONOI_H_
#define MOVD_AUDIT_AUDIT_VORONOI_H_

#include <vector>

#include "audit/audit.h"
#include "geom/rect.h"
#include "voronoi/voronoi.h"

namespace movd {

/// Tolerances for the ordinary-Voronoi audit. Cell vertices are constructed
/// by half-plane clipping, so they carry double rounding; the tolerances
/// absorb that while still catching real structural damage.
struct VoronoiAuditOptions {
  /// Max |sum of cell areas - bounds area| as a fraction of the bounds area.
  double coverage_rel_tol = 1e-6;
  /// Max area of a pairwise cell intersection as a fraction of the bounds
  /// area before it counts as interior overlap (cells legitimately share
  /// boundary slivers up to rounding).
  double overlap_rel_tol = 1e-7;
  /// How far a vertex may poke outside the clip rectangle, as a fraction
  /// of the bounds' larger side.
  double bounds_rel_slack = 1e-9;
};

/// Validates an ordinary Voronoi diagram given as raw data, so tests can
/// audit deliberately corrupted cell sets. Checks:
///  - one cell per site, cells()[i].site == i;
///  - every non-empty cell is a valid convex CCW ring (AuditConvexPolygon);
///  - every cell vertex lies inside the clip rectangle (within slack);
///  - each site lies inside its own cell (exact point-in-convex-polygon),
///    and a site strictly inside the bounds never has an empty cell;
///  - pairwise-disjoint interiors: cells whose bboxes meet have an
///    intersection of negligible area;
///  - coverage: cell areas sum to the bounds area within tolerance.
AuditReport AuditVoronoiCells(const std::vector<Point>& sites,
                              const std::vector<VoronoiCell>& cells,
                              const Rect& bounds,
                              const VoronoiAuditOptions& options = {});

/// Audits a live diagram.
AuditReport AuditVoronoi(const VoronoiDiagram& vd,
                         const VoronoiAuditOptions& options = {});

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_VORONOI_H_
