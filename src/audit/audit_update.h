#ifndef MOVD_AUDIT_AUDIT_UPDATE_H_
#define MOVD_AUDIT_AUDIT_UPDATE_H_

#include "audit/audit.h"
#include "model/movd_model.h"

namespace movd {

/// Validates the live-update contract (DESIGN.md §14): an incrementally
/// patched artifact must be byte-identical to the artifact a from-scratch
/// rebuild of the mutated dataset produces. `patched` and `rebuilt` must
/// be in the same canonical order (basic MOVDs are site-ordered by
/// construction; overlays must have been through CanonicalizeOvrOrder).
///
/// Reports kPatchedOvrCount when the OVR counts differ, and one
/// kPatchedOvrMismatch per position where the OVRs are not bit-identical,
/// with the first diverging poi/coordinate as witness. The serve stack
/// runs this when auditing is enabled and falls back to the rebuilt
/// artifact on any violation, so a patching bug degrades performance —
/// never answers.
AuditReport AuditPatchedMovd(const Movd& patched, const Movd& rebuilt);

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_UPDATE_H_
