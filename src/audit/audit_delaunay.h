#ifndef MOVD_AUDIT_AUDIT_DELAUNAY_H_
#define MOVD_AUDIT_AUDIT_DELAUNAY_H_

#include <cstdint>
#include <vector>

#include "audit/audit.h"
#include "voronoi/delaunay.h"

namespace movd {

/// Validates a triangulation given as raw data, so tests can audit
/// deliberately corrupted triangle lists. Checks, in order:
///  - vertex/neighbor indices in range, vertices distinct per triangle;
///  - counterclockwise orientation of every triangle (exact Orient2D);
///  - neighbor symmetry: t's neighbor across an edge lists t back across
///    the same (reversed) edge;
///  - edge manifoldness (each undirected edge bounds at most 2 triangles)
///    and the Euler relation V - E + (T + 1) = 2 of a triangulated disk;
///  - the empty-circumcircle property: no real point strictly inside the
///    circumcircle of any all-real triangle (exact InCircle; O(T*N));
///  - every convex-hull edge of the real points is a triangulation edge.
///
/// `points` may include synthetic bounding vertices at indices >= num_real
/// (as Delaunay places them); triangles touching them are skipped by the
/// circumcircle check, exactly like Delaunay::VerifyDelaunay. `tris` must
/// be compact: neighbor values index `tris` itself, or -1 on the boundary
/// (Delaunay::Triangles() returns this form).
AuditReport AuditDelaunayTriangles(
    const std::vector<Point>& points, size_t num_real,
    const std::vector<Delaunay::Triangle>& tris);

/// Audits a live triangulation.
AuditReport AuditDelaunay(const Delaunay& dt);

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_DELAUNAY_H_
