#ifndef MOVD_AUDIT_AUDIT_POLYGON_H_
#define MOVD_AUDIT_AUDIT_POLYGON_H_

#include <cstdint>

#include "audit/audit.h"
#include "geom/polygon.h"

namespace movd {

/// Validates a simple (possibly concave) CCW ring: finite coordinates, no
/// consecutive duplicate vertices, positive signed area, and weak
/// simplicity (no two non-adjacent edges properly cross or overlap over a
/// positive length; exact predicates — point touches at pinch vertices
/// are allowed, as grid-dominance covers produce them). Empty polygons
/// (< 3 vertices after construction) audit clean by definition.
///
/// `tag` is prepended to every violation's index list so callers auditing
/// many polygons (cells, cover rings) can attribute the witness.
AuditReport AuditPolygon(const Polygon& polygon, int64_t tag = -1);

/// Validates a ConvexPolygon ring: the simple-ring checks plus strict
/// convexity (every turn counterclockwise or collinear, CCW overall).
AuditReport AuditConvexPolygon(const ConvexPolygon& polygon, int64_t tag = -1);

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_POLYGON_H_
