#include "audit/audit_update.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "model/update_model.h"

namespace movd {
namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

bool PointSameBits(const Point& a, const Point& b) {
  return DoubleBits(a.x) == DoubleBits(b.x) &&
         DoubleBits(a.y) == DoubleBits(b.y);
}

std::string PoisString(const std::vector<PoiRef>& pois) {
  std::string out = "[";
  for (size_t i = 0; i < pois.size(); ++i) {
    if (i > 0) out += " ";
    out += AuditStrFormat("%d:%d", pois[i].set, pois[i].object);
  }
  out += "]";
  return out;
}

/// Names the first facet where the two OVRs diverge, filling `witness`
/// with the diverging coordinates when the diff is geometric. Called only
/// when !OvrBitIdentical(a, b).
std::string DescribeOvrDiff(const Ovr& a, const Ovr& b,
                            std::vector<Point>* witness) {
  if (a.pois != b.pois) {
    return "pois " + PoisString(a.pois) + " vs " + PoisString(b.pois);
  }
  if (!PointSameBits({a.mbr.min_x, a.mbr.min_y}, {b.mbr.min_x, b.mbr.min_y}) ||
      !PointSameBits({a.mbr.max_x, a.mbr.max_y}, {b.mbr.max_x, b.mbr.max_y})) {
    witness->push_back({a.mbr.min_x, a.mbr.min_y});
    witness->push_back({b.mbr.min_x, b.mbr.min_y});
    return AuditStrFormat("mbr [%g,%g]x[%g,%g] vs [%g,%g]x[%g,%g]",
                          a.mbr.min_x, a.mbr.max_x, a.mbr.min_y, a.mbr.max_y,
                          b.mbr.min_x, b.mbr.max_x, b.mbr.min_y, b.mbr.max_y);
  }
  const auto& ap = a.region.pieces();
  const auto& bp = b.region.pieces();
  if (ap.size() != bp.size()) {
    return AuditStrFormat("region piece count %zu vs %zu", ap.size(),
                          bp.size());
  }
  for (size_t i = 0; i < ap.size(); ++i) {
    const auto& av = ap[i].vertices();
    const auto& bv = bp[i].vertices();
    if (av.size() != bv.size()) {
      return AuditStrFormat("piece %zu vertex count %zu vs %zu", i,
                            av.size(), bv.size());
    }
    for (size_t j = 0; j < av.size(); ++j) {
      if (!PointSameBits(av[j], bv[j])) {
        witness->push_back(av[j]);
        witness->push_back(bv[j]);
        return AuditStrFormat(
            "piece %zu vertex %zu (%.17g, %.17g) vs (%.17g, %.17g)", i, j,
            av[j].x, av[j].y, bv[j].x, bv[j].y);
      }
    }
  }
  return "no diff found (internal)";
}

}  // namespace

AuditReport AuditPatchedMovd(const Movd& patched, const Movd& rebuilt) {
  AuditReport report;
  report.NoteChecks(1);
  if (patched.ovrs.size() != rebuilt.ovrs.size()) {
    report.Add(AuditKind::kPatchedOvrCount,
               AuditStrFormat(
                   "patched artifact has %zu OVRs, rebuild has %zu",
                   patched.ovrs.size(), rebuilt.ovrs.size()),
               {static_cast<int64_t>(patched.ovrs.size()),
                static_cast<int64_t>(rebuilt.ovrs.size())});
  }
  const size_t n = std::min(patched.ovrs.size(), rebuilt.ovrs.size());
  for (size_t i = 0; i < n; ++i) {
    const Ovr& a = patched.ovrs[i];
    const Ovr& b = rebuilt.ovrs[i];
    report.NoteChecks(1);
    if (OvrBitIdentical(a, b)) continue;
    std::vector<Point> witness;
    const std::string diff = DescribeOvrDiff(a, b, &witness);
    report.Add(AuditKind::kPatchedOvrMismatch,
               AuditStrFormat("OVR %zu %s differs from rebuild: %s", i,
                              PoisString(a.pois).c_str(), diff.c_str()),
               {static_cast<int64_t>(i)}, std::move(witness));
  }
  return report;
}

}  // namespace movd
