#include "audit/audit_delaunay.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "geom/hull.h"
#include "geom/predicates.h"

namespace movd {
namespace {

// Index of `value` within a triangle vertex array, or -1.
int IndexOf(const int32_t v[3], int32_t value) {
  for (int i = 0; i < 3; ++i) {
    if (v[i] == value) return i;
  }
  return -1;
}

}  // namespace

AuditReport AuditDelaunayTriangles(
    const std::vector<Point>& points, size_t num_real,
    const std::vector<Delaunay::Triangle>& tris) {
  AuditReport report;
  const auto np = static_cast<int32_t>(points.size());
  const auto nt = static_cast<int32_t>(tris.size());

  // Pass 1: index sanity. Later passes assume it, so bail out on failure.
  for (int32_t t = 0; t < nt; ++t) {
    report.NoteChecks(1);
    const auto& tri = tris[t];
    for (int i = 0; i < 3; ++i) {
      if (tri.v[i] < 0 || tri.v[i] >= np) {
        report.Add(AuditKind::kDelaunayIndexRange,
                   AuditStrFormat("triangle %d vertex slot %d holds %d "
                                  "(have %d points)",
                                  t, i, tri.v[i], np),
                   {t, i, tri.v[i]});
        return report;
      }
      if (tri.neighbor[i] < -1 || tri.neighbor[i] >= nt) {
        report.Add(AuditKind::kDelaunayIndexRange,
                   AuditStrFormat("triangle %d neighbor slot %d holds %d "
                                  "(have %d triangles)",
                                  t, i, tri.neighbor[i], nt),
                   {t, i, tri.neighbor[i]});
        return report;
      }
    }
    if (tri.v[0] == tri.v[1] || tri.v[1] == tri.v[2] ||
        tri.v[0] == tri.v[2]) {
      report.Add(AuditKind::kDelaunayIndexRange,
                 AuditStrFormat("triangle %d repeats a vertex (%d, %d, %d)",
                                t, tri.v[0], tri.v[1], tri.v[2]),
                 {t});
      return report;
    }
  }

  // Pass 2: orientation.
  for (int32_t t = 0; t < nt; ++t) {
    report.NoteChecks(1);
    const auto& tri = tris[t];
    const double o =
        Orient2D(points[tri.v[0]], points[tri.v[1]], points[tri.v[2]]);
    if (!(o > 0.0)) {
      report.Add(AuditKind::kDelaunayOrientation,
                 AuditStrFormat("triangle %d (%d, %d, %d) is %s", t,
                                tri.v[0], tri.v[1], tri.v[2],
                                o == 0.0 ? "degenerate" : "clockwise"),
                 {t, tri.v[0], tri.v[1], tri.v[2]},
                 {points[tri.v[0]], points[tri.v[1]], points[tri.v[2]]});
    }
  }

  // Pass 3: neighbor symmetry + the undirected edge incidence map.
  std::map<std::pair<int32_t, int32_t>, std::vector<int32_t>> edge_tris;
  for (int32_t t = 0; t < nt; ++t) {
    const auto& tri = tris[t];
    for (int i = 0; i < 3; ++i) {
      const int32_t a = tri.v[(i + 1) % 3];
      const int32_t b = tri.v[(i + 2) % 3];
      edge_tris[{std::min(a, b), std::max(a, b)}].push_back(t);

      report.NoteChecks(1);
      const int32_t nb = tri.neighbor[i];
      if (nb < 0) continue;
      const auto& other = tris[nb];
      // The neighbor must hold the reversed edge (b, a) and point back.
      bool mirrored = false;
      for (int j = 0; j < 3; ++j) {
        if (other.v[(j + 1) % 3] == b && other.v[(j + 2) % 3] == a) {
          mirrored = other.neighbor[j] == t;
          break;
        }
      }
      if (!mirrored) {
        report.Add(
            AuditKind::kDelaunayNeighborSymmetry,
            AuditStrFormat("triangle %d lists %d across edge (%d, %d) but "
                           "%d does not mirror it",
                           t, nb, a, b, nb),
            {t, nb, a, b}, {points[a], points[b]});
      }
    }
  }

  // Pass 4: edge manifoldness and Euler's relation. A triangulated disk
  // (the super-quad interior, or any convex region in hand-built test
  // data) satisfies V - E + F = 2 with F = T + 1 for the outer face.
  for (const auto& [edge, ts] : edge_tris) {
    report.NoteChecks(1);
    if (ts.size() > 2) {
      report.Add(AuditKind::kDelaunayEdgeManifold,
                 AuditStrFormat("edge (%d, %d) bounds %zu triangles",
                                edge.first, edge.second, ts.size()),
                 {edge.first, edge.second},
                 {points[edge.first], points[edge.second]});
    }
  }
  if (nt > 0) {
    std::vector<int32_t> used;
    for (const auto& tri : tris) used.insert(used.end(), tri.v, tri.v + 3);
    std::sort(used.begin(), used.end());
    used.erase(std::unique(used.begin(), used.end()), used.end());
    const auto v = static_cast<int64_t>(used.size());
    const auto e = static_cast<int64_t>(edge_tris.size());
    const int64_t f = nt + 1;
    report.NoteChecks(1);
    if (v - e + f != 2) {
      report.Add(AuditKind::kDelaunayEuler,
                 AuditStrFormat("V - E + F = %lld - %lld + %lld = %lld "
                                "(want 2)",
                                static_cast<long long>(v),
                                static_cast<long long>(e),
                                static_cast<long long>(f),
                                static_cast<long long>(v - e + f)),
                 {v, e, f});
    }
  }

  // Pass 5: the empty-circumcircle property over all-real triangles, with
  // a witness per offending (triangle, point) pair. Skips triangles whose
  // orientation already failed (InCircle's sign assumes CCW).
  for (int32_t t = 0; t < nt; ++t) {
    const auto& tri = tris[t];
    bool synthetic = false;
    for (int i = 0; i < 3; ++i) {
      synthetic |= tri.v[i] >= static_cast<int32_t>(num_real);
    }
    if (synthetic) continue;
    const Point& a = points[tri.v[0]];
    const Point& b = points[tri.v[1]];
    const Point& c = points[tri.v[2]];
    if (!(Orient2D(a, b, c) > 0.0)) continue;
    for (int32_t p = 0; p < static_cast<int32_t>(num_real); ++p) {
      if (IndexOf(tri.v, p) >= 0) continue;
      report.NoteChecks(1);
      if (InCircle(a, b, c, points[p]) > 0.0) {
        report.Add(AuditKind::kDelaunayCircumcircle,
                   AuditStrFormat("point %d (%g, %g) lies inside the "
                                  "circumcircle of triangle %d (%d, %d, %d)",
                                  p, points[p].x, points[p].y, t, tri.v[0],
                                  tri.v[1], tri.v[2]),
                   {t, p}, {a, b, c, points[p]});
      }
    }
  }

  // Pass 6: the triangulation boundary contains the convex hull of the
  // real points. ConvexHull keeps only extreme corners while the
  // triangulation legitimately subdivides a hull edge at input points
  // lying exactly on it (point generators clamp out-of-range samples onto
  // the bounding rectangle, manufacturing collinear boundary chains), so
  // each hull edge is checked as a chain: the input points on the edge,
  // sorted along it, must be pairwise connected by triangulation edges.
  const ConvexPolygon hull = ConvexHull(
      std::vector<Point>(points.begin(), points.begin() + num_real));
  const auto& hv = hull.vertices();
  if (!hull.Empty()) {
    using Coord = std::pair<double, double>;
    // Edges keyed by coordinates, so duplicate input points collapse onto
    // whichever copy the triangulation actually inserted.
    std::set<std::pair<Coord, Coord>> edge_coords;
    for (const auto& entry : edge_tris) {
      Coord ca{points[entry.first.first].x, points[entry.first.first].y};
      Coord cb{points[entry.first.second].x, points[entry.first.second].y};
      if (cb < ca) std::swap(ca, cb);
      edge_coords.insert({ca, cb});
    }
    // Lowest input index per coordinate, for violation messages.
    std::map<Coord, int32_t> index_of;
    for (int32_t i = static_cast<int32_t>(num_real) - 1; i >= 0; --i) {
      index_of[{points[i].x, points[i].y}] = i;
    }
    for (size_t i = 0; i < hv.size(); ++i) {
      const Point& pa = hv[i];
      const Point& pb = hv[(i + 1) % hv.size()];
      // The chain: unique coordinates of real points exactly on [pa, pb].
      // Collinear points on a segment are monotone in lexicographic
      // (x, y) order, so a plain sort orders them along the edge.
      std::vector<Coord> chain;
      for (size_t p = 0; p < num_real; ++p) {
        const Point& c = points[p];
        if (Orient2D(pa, pb, c) != 0.0) continue;
        if (c.x < std::min(pa.x, pb.x) || c.x > std::max(pa.x, pb.x) ||
            c.y < std::min(pa.y, pb.y) || c.y > std::max(pa.y, pb.y)) {
          continue;
        }
        chain.push_back({c.x, c.y});
      }
      std::sort(chain.begin(), chain.end());
      chain.erase(std::unique(chain.begin(), chain.end()), chain.end());
      if (Coord{pa.x, pa.y} > Coord{pb.x, pb.y}) {
        std::reverse(chain.begin(), chain.end());
      }
      report.NoteChecks(1);
      if (chain.size() < 2 || chain.front() != Coord{pa.x, pa.y} ||
          chain.back() != Coord{pb.x, pb.y}) {
        report.Add(AuditKind::kDelaunayHullEdge,
                   AuditStrFormat("hull edge (%g, %g)->(%g, %g) endpoints "
                                  "are not input points",
                                  pa.x, pa.y, pb.x, pb.y),
                   {}, {pa, pb});
        continue;
      }
      for (size_t k = 0; k + 1 < chain.size(); ++k) {
        Coord ca = chain[k];
        Coord cb = chain[k + 1];
        if (cb < ca) std::swap(ca, cb);
        report.NoteChecks(1);
        if (edge_coords.find({ca, cb}) == edge_coords.end()) {
          report.Add(AuditKind::kDelaunayHullEdge,
                     AuditStrFormat("hull edge (%d, %d) is missing from the "
                                    "triangulation",
                                    index_of[ca], index_of[cb]),
                     {index_of[ca], index_of[cb]},
                     {Point(ca.first, ca.second),
                      Point(cb.first, cb.second)});
        }
      }
    }
  }

  return report;
}

AuditReport AuditDelaunay(const Delaunay& dt) {
  return AuditDelaunayTriangles(dt.points(), dt.num_real_points(),
                                dt.Triangles());
}

}  // namespace movd
