#include "audit/audit.h"

#include <cstdarg>
#include <cstdio>

namespace movd {

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kDelaunayIndexRange: return "delaunay-index-range";
    case AuditKind::kDelaunayOrientation: return "delaunay-orientation";
    case AuditKind::kDelaunayNeighborSymmetry:
      return "delaunay-neighbor-symmetry";
    case AuditKind::kDelaunayEdgeManifold: return "delaunay-edge-manifold";
    case AuditKind::kDelaunayEuler: return "delaunay-euler";
    case AuditKind::kDelaunayCircumcircle: return "delaunay-circumcircle";
    case AuditKind::kDelaunayHullEdge: return "delaunay-hull-edge";
    case AuditKind::kVoronoiCellCount: return "voronoi-cell-count";
    case AuditKind::kVoronoiCellNotConvex: return "voronoi-cell-not-convex";
    case AuditKind::kVoronoiVertexOutOfBounds:
      return "voronoi-vertex-out-of-bounds";
    case AuditKind::kVoronoiSiteNotInCell: return "voronoi-site-not-in-cell";
    case AuditKind::kVoronoiEmptyCell: return "voronoi-empty-cell";
    case AuditKind::kVoronoiCellOverlap: return "voronoi-cell-overlap";
    case AuditKind::kVoronoiCoverage: return "voronoi-coverage";
    case AuditKind::kWeightedCellCount: return "weighted-cell-count";
    case AuditKind::kWeightedEmptyFlag: return "weighted-empty-flag";
    case AuditKind::kWeightedContainment: return "weighted-containment";
    case AuditKind::kWeightedDominance: return "weighted-dominance";
    case AuditKind::kWeightedSampleCount: return "weighted-sample-count";
    case AuditKind::kWeightedCoverRing: return "weighted-cover-ring";
    case AuditKind::kWeightedCoverMiss: return "weighted-cover-miss";
    case AuditKind::kOverlayPoiOrder: return "overlay-poi-order";
    case AuditKind::kOverlayMbr: return "overlay-mbr";
    case AuditKind::kOverlayRegion: return "overlay-region";
    case AuditKind::kOverlaySource: return "overlay-source";
    case AuditKind::kPolygonVertexCount: return "polygon-vertex-count";
    case AuditKind::kPolygonNonFinite: return "polygon-non-finite";
    case AuditKind::kPolygonDuplicateVertex: return "polygon-duplicate-vertex";
    case AuditKind::kPolygonOrientation: return "polygon-orientation";
    case AuditKind::kPolygonNotConvex: return "polygon-not-convex";
    case AuditKind::kPolygonSelfIntersection:
      return "polygon-self-intersection";
    case AuditKind::kQueryGroupShape: return "query-group-shape";
    case AuditKind::kQueryCostMismatch: return "query-cost-mismatch";
    case AuditKind::kQueryOrder: return "query-order";
    case AuditKind::kQueryDominated: return "query-dominated";
    case AuditKind::kQueryDiversity: return "query-diversity";
    case AuditKind::kQueryInfeasible: return "query-infeasible";
    case AuditKind::kPatchedOvrCount: return "patched-ovr-count";
    case AuditKind::kPatchedOvrMismatch: return "patched-ovr-mismatch";
  }
  return "unknown";
}

void AuditReport::Add(AuditKind kind, std::string message,
                      std::vector<int64_t> indices,
                      std::vector<Point> witness) {
  violations_.push_back(AuditViolation{kind, std::move(message),
                                       std::move(indices),
                                       std::move(witness)});
}

void AuditReport::Merge(AuditReport other) {
  checks_ += other.checks_;
  violations_.reserve(violations_.size() + other.violations_.size());
  for (AuditViolation& v : other.violations_) {
    violations_.push_back(std::move(v));
  }
}

size_t AuditReport::CountKind(AuditKind kind) const {
  size_t n = 0;
  for (const AuditViolation& v : violations_) n += v.kind == kind ? 1 : 0;
  return n;
}

std::vector<std::string> AuditReport::Messages() const {
  std::vector<std::string> out;
  out.reserve(violations_.size());
  for (const AuditViolation& v : violations_) {
    out.push_back(std::string(AuditKindName(v.kind)) + ": " + v.message);
  }
  return out;
}

std::string AuditReport::Summary() const {
  if (ok()) {
    return AuditStrFormat("ok (%llu checks)",
                          static_cast<unsigned long long>(checks_));
  }
  std::string s = AuditStrFormat(
      "%zu violation(s) in %llu checks:", violations_.size(),
      static_cast<unsigned long long>(checks_));
  for (const std::string& m : Messages()) {
    s += "\n  ";
    s += m;
  }
  return s;
}

std::string AuditStrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace movd
