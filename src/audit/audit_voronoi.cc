#include "audit/audit_voronoi.h"

#include <algorithm>
#include <cmath>

#include "audit/audit_polygon.h"

namespace movd {

AuditReport AuditVoronoiCells(const std::vector<Point>& sites,
                              const std::vector<VoronoiCell>& cells,
                              const Rect& bounds,
                              const VoronoiAuditOptions& options) {
  AuditReport report;

  report.NoteChecks(1);
  if (cells.size() != sites.size()) {
    report.Add(AuditKind::kVoronoiCellCount,
               AuditStrFormat("%zu cells for %zu sites", cells.size(),
                              sites.size()),
               {static_cast<int64_t>(cells.size()),
                static_cast<int64_t>(sites.size())});
    return report;
  }

  const double slack =
      options.bounds_rel_slack * std::max(bounds.Width(), bounds.Height());
  const Rect slack_bounds(bounds.min_x - slack, bounds.min_y - slack,
                          bounds.max_x + slack, bounds.max_y + slack);

  double total_area = 0.0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const VoronoiCell& cell = cells[i];
    report.NoteChecks(1);
    if (cell.site != static_cast<int32_t>(i)) {
      report.Add(AuditKind::kVoronoiCellCount,
                 AuditStrFormat("cell %zu tagged with site %d", i, cell.site),
                 {static_cast<int64_t>(i), cell.site});
    }

    if (cell.region.Empty()) {
      // A site strictly inside the bounds always dominates its own
      // location, so its clipped cell cannot be empty.
      report.NoteChecks(1);
      const Point& s = sites[i];
      if (s.x > bounds.min_x && s.x < bounds.max_x && s.y > bounds.min_y &&
          s.y < bounds.max_y) {
        report.Add(AuditKind::kVoronoiEmptyCell,
                   AuditStrFormat("site %zu (%g, %g) is inside the bounds "
                                  "but its cell is empty",
                                  i, s.x, s.y),
                   {static_cast<int64_t>(i)}, {s});
      }
      continue;
    }

    // Convexity / orientation / simplicity of the ring itself.
    AuditReport ring = AuditConvexPolygon(cell.region,
                                          static_cast<int64_t>(i));
    for (const AuditViolation& v : ring.violations()) {
      report.Add(AuditKind::kVoronoiCellNotConvex,
                 AuditStrFormat("cell %zu: %s", i, v.message.c_str()),
                 v.indices, v.witness);
    }
    report.NoteChecks(ring.checks());

    for (size_t k = 0; k < cell.region.VertexCount(); ++k) {
      report.NoteChecks(1);
      const Point& v = cell.region.vertices()[k];
      if (!slack_bounds.Contains(v)) {
        report.Add(AuditKind::kVoronoiVertexOutOfBounds,
                   AuditStrFormat("cell %zu vertex %zu (%g, %g) escapes the "
                                  "clip rectangle",
                                  i, k, v.x, v.y),
                   {static_cast<int64_t>(i), static_cast<int64_t>(k)}, {v});
      }
    }

    report.NoteChecks(1);
    if (!cell.region.Contains(sites[i])) {
      report.Add(AuditKind::kVoronoiSiteNotInCell,
                 AuditStrFormat("site %zu (%g, %g) lies outside its own cell",
                                i, sites[i].x, sites[i].y),
                 {static_cast<int64_t>(i)}, {sites[i]});
    }

    total_area += cell.region.Area();
  }

  // Pairwise-disjoint interiors. Bbox prefilter keeps the quadratic pass
  // tolerable; the audit is opt-in and correctness-first.
  const double overlap_tol = options.overlap_rel_tol * bounds.Area();
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].region.Empty()) continue;
    const Rect bi = cells[i].region.Bbox();
    for (size_t j = i + 1; j < cells.size(); ++j) {
      if (cells[j].region.Empty()) continue;
      if (!bi.Intersects(cells[j].region.Bbox())) continue;
      report.NoteChecks(1);
      const ConvexPolygon inter =
          ConvexPolygon::Intersect(cells[i].region, cells[j].region);
      const double area = inter.Area();
      if (area > overlap_tol) {
        const Point w = inter.Centroid();
        report.Add(AuditKind::kVoronoiCellOverlap,
                   AuditStrFormat("cells %zu and %zu overlap with area %g "
                                  "around (%g, %g)",
                                  i, j, area, w.x, w.y),
                   {static_cast<int64_t>(i), static_cast<int64_t>(j)}, {w});
      }
    }
  }

  // Coverage: the clipped cells tile the bounds.
  report.NoteChecks(1);
  const double gap = std::abs(total_area - bounds.Area());
  if (gap > options.coverage_rel_tol * bounds.Area()) {
    report.Add(AuditKind::kVoronoiCoverage,
               AuditStrFormat("cell areas sum to %g but the bounds cover %g "
                              "(gap %g)",
                              total_area, bounds.Area(), gap),
               {});
  }

  return report;
}

AuditReport AuditVoronoi(const VoronoiDiagram& vd,
                         const VoronoiAuditOptions& options) {
  return AuditVoronoiCells(vd.sites(), vd.cells(), vd.bounds(), options);
}

}  // namespace movd
