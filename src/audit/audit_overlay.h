#ifndef MOVD_AUDIT_AUDIT_OVERLAY_H_
#define MOVD_AUDIT_AUDIT_OVERLAY_H_

#include <vector>

#include "audit/audit.h"
#include "model/movd_model.h"
#include "geom/rect.h"

namespace movd {

/// Validates the result of the MOVD overlap stage against the basic MOVDs
/// it was folded from. For every output OVR:
///  - the poi list is sorted and unique by (set, object);
///  - the MBR is non-empty and inside the (slack-expanded) search space;
///  - RRB (BoundaryMode::kRealRegion): the region is non-empty, every
///    piece is a valid convex CCW ring, and the region's bbox is contained
///    in the MBR within rounding slack (basic weighted OVRs carry an MBR
///    that is deliberately larger than the region bbox, so containment —
///    not equality — is the invariant that survives every pipeline stage);
///  - source consistency: for each input MOVD, some source OVR's pois are
///    a subset of the output's pois (the OVR descends from it), the output
///    MBR is contained in that source's MBR, and in RRB mode each region
///    piece's centroid lies inside the source region (within clipping
///    rounding slack). An overlap region leaking outside any of the
///    dominance regions that generated it is exactly the class of bug the
///    paper's Property 4 forbids.
AuditReport AuditMovdOverlay(const Movd& result,
                             const std::vector<Movd>& inputs,
                             BoundaryMode mode, const Rect& search_space);

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_OVERLAY_H_
