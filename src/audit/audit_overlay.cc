#include "audit/audit_overlay.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/point.h"

namespace movd {
namespace {

// Distance from `p` to the boundary of a convex CCW polygon; 0 when inside.
double DistanceToConvex(const ConvexPolygon& poly, const Point& p) {
  if (poly.Empty()) return std::numeric_limits<double>::infinity();
  if (poly.Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  const auto& v = poly.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    const Point& a = v[i];
    const Point& b = v[(i + 1) % v.size()];
    const Point ab = b - a;
    const double len2 = ab.Norm2();
    double t = len2 > 0.0 ? (p - a).Dot(ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    best = std::min(best, Distance(p, a + ab * t));
  }
  return best;
}

// Distance from `p` to a region (union of convex pieces); 0 when inside.
double DistanceToRegion(const Region& region, const Point& p) {
  double best = std::numeric_limits<double>::infinity();
  for (const ConvexPolygon& piece : region.pieces()) {
    best = std::min(best, DistanceToConvex(piece, p));
    if (best == 0.0) break;
  }
  return best;
}

// Validity of one region piece of an overlap OVR. Overlap regions are
// second-generation constructed geometry — a clip of already-clipped
// cells — so exact convexity does not survive rounding: the clipper emits
// near-degenerate slivers with marginally negative area and big pieces
// with exactly-clockwise wobbles at nearly-collinear vertices. Degenerate
// slivers (|area| <= area_tol) are accepted outright; anything larger must
// be finite, duplicate-free, CCW and convex up to `cross_tol` on the turn
// cross products. A genuinely corrupted piece fails by orders of
// magnitude, so the tolerances cost no detection power.
void AuditClippedPiece(const ConvexPolygon& piece, size_t r, size_t p,
                       double area_tol, double cross_tol,
                       AuditReport* report) {
  const std::vector<Point>& v = piece.vertices();
  const size_t n = v.size();
  report->NoteChecks(1);
  if (n < 3) {
    if (n != 0) {
      report->Add(AuditKind::kOverlayRegion,
                  AuditStrFormat("OVR %zu piece %zu has %zu vertices "
                                 "(want 0 or >= 3)",
                                 r, p, n),
                  {static_cast<int64_t>(r), static_cast<int64_t>(p)});
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    report->NoteChecks(1);
    if (!std::isfinite(v[i].x) || !std::isfinite(v[i].y)) {
      report->Add(AuditKind::kOverlayRegion,
                  AuditStrFormat("OVR %zu piece %zu vertex %zu is not finite",
                                 r, p, i),
                  {static_cast<int64_t>(r), static_cast<int64_t>(p),
                   static_cast<int64_t>(i)});
      return;
    }
  }
  double area2 = 0.0;
  for (size_t i = 0; i < n; ++i) area2 += v[i].Cross(v[(i + 1) % n]);
  report->NoteChecks(1);
  if (std::abs(0.5 * area2) <= area_tol) return;  // rounding sliver
  if (area2 <= 0.0) {
    report->Add(AuditKind::kOverlayRegion,
                AuditStrFormat("OVR %zu piece %zu signed area %g "
                               "(want > 0: CCW)",
                               r, p, 0.5 * area2),
                {static_cast<int64_t>(r), static_cast<int64_t>(p)});
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    report->NoteChecks(1);
    const Point& a = v[i];
    const Point& b = v[(i + 1) % n];
    const Point& c = v[(i + 2) % n];
    const double cross = (b - a).Cross(c - b);
    if (cross < -cross_tol) {
      report->Add(AuditKind::kOverlayRegion,
                  AuditStrFormat("OVR %zu piece %zu: clockwise turn %g at "
                                 "vertex %zu (%g, %g)",
                                 r, p, cross, (i + 1) % n, b.x, b.y),
                  {static_cast<int64_t>(r), static_cast<int64_t>(p),
                   static_cast<int64_t>((i + 1) % n)},
                  {b});
    }
  }
}

}  // namespace

AuditReport AuditMovdOverlay(const Movd& result,
                             const std::vector<Movd>& inputs,
                             BoundaryMode mode, const Rect& search_space) {
  AuditReport report;

  const double diag = std::sqrt(search_space.Width() * search_space.Width() +
                                search_space.Height() *
                                    search_space.Height());
  const double slack = 1e-9 * diag;
  // Clipping rounds constructed intersection vertices, so a piece centroid
  // can sit marginally outside the source region it descends from.
  const double containment_tol = 1e-7 * diag;
  // Piece-validity tolerances (see AuditClippedPiece): slivers below
  // area_tol are rounding debris; turn cross products above -cross_tol are
  // nearly-collinear wobbles.
  const double area_tol = 1e-9 * search_space.Width() * search_space.Height();
  const double cross_tol = 1e-12 * diag * diag;
  const Rect slack_space(search_space.min_x - slack,
                         search_space.min_y - slack,
                         search_space.max_x + slack,
                         search_space.max_y + slack);

  for (size_t r = 0; r < result.ovrs.size(); ++r) {
    const Ovr& ovr = result.ovrs[r];

    // Poi list sorted and unique by (set, object).
    report.NoteChecks(1);
    for (size_t k = 0; k + 1 < ovr.pois.size(); ++k) {
      if (!(ovr.pois[k] < ovr.pois[k + 1])) {
        report.Add(AuditKind::kOverlayPoiOrder,
                   AuditStrFormat("OVR %zu poi list out of order at slot %zu "
                                  "((%d, %d) then (%d, %d))",
                                  r, k, ovr.pois[k].set, ovr.pois[k].object,
                                  ovr.pois[k + 1].set,
                                  ovr.pois[k + 1].object),
                   {static_cast<int64_t>(r), static_cast<int64_t>(k)});
        break;
      }
    }

    report.NoteChecks(2);
    if (ovr.mbr.Empty()) {
      report.Add(AuditKind::kOverlayMbr,
                 AuditStrFormat("OVR %zu has an empty MBR", r),
                 {static_cast<int64_t>(r)});
      continue;
    }
    if (!slack_space.Contains(ovr.mbr)) {
      report.Add(AuditKind::kOverlayMbr,
                 AuditStrFormat("OVR %zu MBR [%g, %g]x[%g, %g] escapes the "
                                "search space",
                                r, ovr.mbr.min_x, ovr.mbr.max_x,
                                ovr.mbr.min_y, ovr.mbr.max_y),
                 {static_cast<int64_t>(r)});
    }

    if (mode == BoundaryMode::kRealRegion) {
      report.NoteChecks(1);
      if (ovr.region.Empty()) {
        report.Add(AuditKind::kOverlayRegion,
                   AuditStrFormat("OVR %zu has no region in RRB mode", r),
                   {static_cast<int64_t>(r)});
        continue;
      }
      for (size_t p = 0; p < ovr.region.pieces().size(); ++p) {
        AuditClippedPiece(ovr.region.pieces()[p], r, p, area_tol, cross_tol,
                          &report);
      }
      // The MBR is a conservative cover of the region: equal to its bbox
      // for overlap outputs, possibly larger for basic weighted cells
      // (whose MBR covers the whole dominance approximation).
      report.NoteChecks(1);
      const Rect bbox = ovr.region.Bbox();
      const Rect grown(ovr.mbr.min_x - slack, ovr.mbr.min_y - slack,
                       ovr.mbr.max_x + slack, ovr.mbr.max_y + slack);
      if (!grown.Contains(bbox)) {
        report.Add(AuditKind::kOverlayMbr,
                   AuditStrFormat("OVR %zu region bbox leaks outside its "
                                  "MBR",
                                  r),
                   {static_cast<int64_t>(r)});
      }
    }

    // Source consistency against every input MOVD.
    for (size_t in = 0; in < inputs.size(); ++in) {
      const Movd& input = inputs[in];
      report.NoteChecks(1);
      const Ovr* source = nullptr;
      for (const Ovr& cand : input.ovrs) {
        const bool subset = std::includes(ovr.pois.begin(), ovr.pois.end(),
                                          cand.pois.begin(),
                                          cand.pois.end());
        if (subset && !cand.pois.empty()) {
          source = &cand;
          break;
        }
      }
      if (source == nullptr) {
        report.Add(AuditKind::kOverlaySource,
                   AuditStrFormat("OVR %zu matches no OVR of input %zu", r,
                                  in),
                   {static_cast<int64_t>(r), static_cast<int64_t>(in)});
        continue;
      }

      report.NoteChecks(1);
      const Rect grown(source->mbr.min_x - slack, source->mbr.min_y - slack,
                       source->mbr.max_x + slack,
                       source->mbr.max_y + slack);
      if (!grown.Contains(ovr.mbr)) {
        report.Add(AuditKind::kOverlaySource,
                   AuditStrFormat("OVR %zu MBR leaks outside its input-%zu "
                                  "source MBR",
                                  r, in),
                   {static_cast<int64_t>(r), static_cast<int64_t>(in)});
      }

      if (mode == BoundaryMode::kRealRegion && !source->region.Empty()) {
        for (size_t p = 0; p < ovr.region.pieces().size(); ++p) {
          const ConvexPolygon& piece = ovr.region.pieces()[p];
          if (piece.Empty()) continue;
          // Rounding slivers (see AuditClippedPiece) have a near-zero area
          // denominator, so their centroid is numerically meaningless —
          // skip them here too.
          if (std::abs(piece.Area()) <= area_tol) continue;
          report.NoteChecks(1);
          const Point c = piece.Centroid();
          const double d = DistanceToRegion(source->region, c);
          if (d > containment_tol) {
            report.Add(
                AuditKind::kOverlaySource,
                AuditStrFormat("OVR %zu piece %zu centroid (%g, %g) lies %g "
                               "outside its input-%zu source region",
                               r, p, c.x, c.y, d, in),
                {static_cast<int64_t>(r), static_cast<int64_t>(p),
                 static_cast<int64_t>(in)},
                {c});
          }
        }
      }
    }
  }

  return report;
}

}  // namespace movd
