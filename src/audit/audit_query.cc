#include "audit/audit_query.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace movd {
namespace {

/// Relative tolerance for cost/criteria recomputation. The evaluators
/// compute WD through the Fermat–Weber decomposition (fw_weight * d +
/// offset) while this file recomputes it through the raw ApplyWeight
/// composition; the two differ by a few ulps of rounding, orders of
/// magnitude below this bound, while a real evaluator bug (wrong object,
/// wrong weight function, stale location) lands far above it.
constexpr double kRelTol = 1e-9;

/// Absolute distance below which a point counts as *on* an exclusion edge
/// (boundary points are feasible under the closed-set semantics).
constexpr double kBoundaryTol = 1e-7;

bool NearlyEqual(double a, double b) {
  return std::abs(a - b) <= kRelTol * (1.0 + std::abs(a) + std::abs(b));
}

/// WD recomputed from the model alone (paper Eq. 1), independent of
/// core/weighted_distance.cc.
double RecomputeWd(const MolqQuery& query, const Point& q,
                   const PoiRef& ref) {
  const SpatialObject& obj =
      query.sets[static_cast<size_t>(ref.set)]
          .objects[static_cast<size_t>(ref.object)];
  const double d = Distance(q, obj.location);
  const double od = ApplyWeight(query.ObjectFunction(
                                    static_cast<size_t>(ref.set)),
                                d, obj.object_weight);
  return ApplyWeight(query.type_function, od, obj.type_weight);
}

/// Shape + cost/criteria recomputation for one reported candidate.
/// `where` labels the candidate in violation messages ("skyline[3]").
void CheckCandidate(const MolqQuery& query, const SiteCandidate& c,
                    const std::string& where, AuditReport* report) {
  report->NoteChecks(3 + c.group.size());
  if (c.group.empty()) {
    report->Add(AuditKind::kQueryGroupShape, where + ": empty group");
    return;
  }
  for (size_t i = 0; i < c.group.size(); ++i) {
    const PoiRef& ref = c.group[i];
    if (ref.set < 0 ||
        static_cast<size_t>(ref.set) >= query.sets.size() ||
        ref.object < 0 ||
        static_cast<size_t>(ref.object) >=
            query.sets[static_cast<size_t>(ref.set)].objects.size()) {
      report->Add(AuditKind::kQueryGroupShape,
                  AuditStrFormat("%s: group[%zu] = (%d, %d) out of range",
                                 where.c_str(), i, ref.set, ref.object));
      return;
    }
    if (i > 0 && !(c.group[i - 1].set < ref.set)) {
      report->Add(AuditKind::kQueryGroupShape,
                  AuditStrFormat("%s: group sets not strictly ascending at "
                                 "position %zu",
                                 where.c_str(), i));
      return;
    }
  }
  if (c.criteria.size() != c.group.size()) {
    report->Add(AuditKind::kQueryGroupShape,
                AuditStrFormat("%s: %zu criteria for a group of %zu",
                               where.c_str(), c.criteria.size(),
                               c.group.size()));
    return;
  }
  double sum = 0.0;
  for (size_t i = 0; i < c.group.size(); ++i) {
    const double wd = RecomputeWd(query, c.location, c.group[i]);
    sum += wd;
    if (!NearlyEqual(c.criteria[i], wd)) {
      report->Add(AuditKind::kQueryCostMismatch,
                  AuditStrFormat("%s: criteria[%zu] = %.17g but WD "
                                 "recomputes to %.17g",
                                 where.c_str(), i, c.criteria[i], wd),
                  {}, {c.location});
    }
  }
  if (!NearlyEqual(c.cost, sum)) {
    report->Add(AuditKind::kQueryCostMismatch,
                AuditStrFormat("%s: cost = %.17g but WGD recomputes to "
                               "%.17g",
                               where.c_str(), c.cost, sum),
                {}, {c.location});
  }
}

void CheckOrder(const std::vector<SiteCandidate>& seq,
                bool (*before)(const SiteCandidate&, const SiteCandidate&),
                const char* what, AuditReport* report) {
  for (size_t i = 1; i < seq.size(); ++i) {
    report->NoteChecks(1);
    if (before(seq[i], seq[i - 1])) {
      report->Add(AuditKind::kQueryOrder,
                  AuditStrFormat("%s[%zu] orders before its predecessor",
                                 what, i),
                  {static_cast<int64_t>(i)});
    }
  }
}

double PointSegmentDistance2(const Point& p, const Point& a,
                             const Point& b) {
  const Point ab = b - a;
  const double len2 = ab.Norm2();
  if (!(len2 > 0.0)) return Distance2(p, a);
  double t = (p - a).Dot(ab) / len2;
  t = std::max(0.0, std::min(1.0, t));
  return Distance2(p, a + ab * t);
}

/// Contained, or within the boundary tolerance of a ring edge: closed-set
/// membership made robust to the optimizer's boundary solves, whose
/// golden-section iterates can round a last ulp outside the exact ring.
bool InsideOrNearRing(const Polygon& ring, const Point& p) {
  if (ring.Contains(p)) return true;
  const std::vector<Point>& v = ring.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    if (PointSegmentDistance2(p, v[i], v[(i + 1) % v.size()]) <=
        kBoundaryTol * kBoundaryTol) {
      return true;
    }
  }
  return false;
}

/// Contained and farther than the boundary tolerance from every edge:
/// strictly inside for the closed-set exclusion semantics.
bool StrictlyInside(const Polygon& ring, const Point& p) {
  if (!ring.Contains(p)) return false;
  const std::vector<Point>& v = ring.vertices();
  for (size_t i = 0; i < v.size(); ++i) {
    const Point& a = v[i];
    const Point& b = v[(i + 1) % v.size()];
    if (PointSegmentDistance2(p, a, b) <= kBoundaryTol * kBoundaryTol) {
      return false;
    }
  }
  return true;
}

}  // namespace

AuditReport AuditSkyline(const MolqQuery& query,
                         const SkylineResult& result) {
  AuditReport report;
  for (size_t i = 0; i < result.skyline.size(); ++i) {
    CheckCandidate(query, result.skyline[i],
                   AuditStrFormat("skyline[%zu]", i), &report);
  }
  CheckOrder(result.skyline, &SkylineOrderBefore, "skyline", &report);
  for (size_t i = 0; i < result.skyline.size(); ++i) {
    for (size_t j = 0; j < result.skyline.size(); ++j) {
      if (i == j) continue;
      report.NoteChecks(1);
      if (Dominates(result.skyline[i].criteria,
                    result.skyline[j].criteria)) {
        report.Add(AuditKind::kQueryDominated,
                   AuditStrFormat("skyline[%zu] dominates skyline[%zu]", i,
                                  j),
                   {static_cast<int64_t>(i), static_cast<int64_t>(j)});
      }
    }
  }
  return report;
}

AuditReport AuditDiverseTopK(const MolqQuery& query, size_t k,
                             double min_distance,
                             const DiverseTopKResult& result) {
  AuditReport report;
  report.NoteChecks(1);
  if (result.selected.size() > k) {
    report.Add(AuditKind::kQueryOrder,
               AuditStrFormat("%zu selected answers for k = %zu",
                              result.selected.size(), k));
  }
  for (size_t i = 0; i < result.selected.size(); ++i) {
    CheckCandidate(query, result.selected[i],
                   AuditStrFormat("selected[%zu]", i), &report);
  }
  CheckOrder(result.selected, &CandidateOrderBefore, "selected", &report);
  const double min2 = min_distance * min_distance;
  for (size_t i = 0; i < result.selected.size(); ++i) {
    for (size_t j = i + 1; j < result.selected.size(); ++j) {
      report.NoteChecks(1);
      // The exact comparison the evaluator makes — no tolerance.
      if (Distance2(result.selected[i].location,
                    result.selected[j].location) < min2) {
        report.Add(AuditKind::kQueryDiversity,
                   AuditStrFormat("selected[%zu] and selected[%zu] are "
                                  "closer than the min distance %.17g",
                                  i, j, min_distance),
                   {static_cast<int64_t>(i), static_cast<int64_t>(j)},
                   {result.selected[i].location,
                    result.selected[j].location});
      }
    }
  }
  return report;
}

AuditReport AuditConstrainedMolq(const MolqQuery& query,
                                 const QueryConstraint& constraint,
                                 const Rect& search_space,
                                 const ConstrainedMolqResult& result) {
  AuditReport report;
  report.NoteChecks(1);
  if (!result.feasible) {
    if (!result.best.group.empty()) {
      report.Add(AuditKind::kQueryInfeasible,
                 "infeasible result carries an answer");
    }
    return report;
  }
  CheckCandidate(query, result.best, "best", &report);
  report.NoteChecks(2 + constraint.exclusions.size());
  if (!search_space.Contains(result.best.location)) {
    report.Add(AuditKind::kQueryInfeasible,
               "answer outside the search space", {},
               {result.best.location});
  }
  if (!constraint.boundary.Empty() &&
      !InsideOrNearRing(constraint.boundary, result.best.location)) {
    report.Add(AuditKind::kQueryInfeasible,
               "answer outside the boundary ring", {},
               {result.best.location});
  }
  for (size_t i = 0; i < constraint.exclusions.size(); ++i) {
    if (StrictlyInside(constraint.exclusions[i], result.best.location)) {
      report.Add(AuditKind::kQueryInfeasible,
                 AuditStrFormat("answer strictly inside exclusion %zu", i),
                 {static_cast<int64_t>(i)}, {result.best.location});
    }
  }
  return report;
}

AuditReport AuditWhatIfSweep(const MolqQuery& base,
                             const std::vector<WhatIfVector>& vectors,
                             size_t k, const WhatIfSweepResult& result) {
  AuditReport report;
  report.NoteChecks(1);
  if (result.per_vector.size() != vectors.size()) {
    report.Add(AuditKind::kQueryOrder,
               AuditStrFormat("%zu rankings for %zu sweep vectors",
                              result.per_vector.size(), vectors.size()));
    return report;
  }
  for (size_t v = 0; v < vectors.size(); ++v) {
    const MolqQuery scaled = ApplyWhatIfVector(base, vectors[v]);
    const std::vector<SiteCandidate>& ranking = result.per_vector[v];
    report.NoteChecks(1);
    if (ranking.size() > k) {
      report.Add(AuditKind::kQueryOrder,
                 AuditStrFormat("sweep[%zu] has %zu answers for k = %zu", v,
                                ranking.size(), k));
    }
    for (size_t i = 0; i < ranking.size(); ++i) {
      CheckCandidate(scaled, ranking[i],
                     AuditStrFormat("sweep[%zu][%zu]", v, i), &report);
    }
    CheckOrder(ranking, &CandidateOrderBefore,
               AuditStrFormat("sweep[%zu]", v).c_str(), &report);
  }
  return report;
}

}  // namespace movd
