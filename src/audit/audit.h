#ifndef MOVD_AUDIT_AUDIT_H_
#define MOVD_AUDIT_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace movd {

/// Structural-invariant audit layer (see DESIGN.md §7).
///
/// The MOLQ pipeline silently produces wrong optima when a structural
/// invariant breaks upstream — a non-Delaunay triangulation, a non-convex
/// ordinary Voronoi cell, a weighted-cell hull leaking outside its dominance
/// region. The auditors in this directory re-validate those invariants with
/// the same exact predicates the constructions use and report violations as
/// structured data (kind + witness) instead of aborting, so a sweep can
/// tabulate every failure of a run rather than dying on the first.

/// Every invariant the auditors check, one enumerator per failure mode.
enum class AuditKind {
  // AuditDelaunay
  kDelaunayIndexRange,        ///< vertex/neighbor index out of range
  kDelaunayOrientation,       ///< triangle not counterclockwise / degenerate
  kDelaunayNeighborSymmetry,  ///< neighbor link not mirrored across the edge
  kDelaunayEdgeManifold,      ///< an edge bounds more than two triangles
  kDelaunayEuler,             ///< V - E + F != 2
  kDelaunayCircumcircle,      ///< a point inside a triangle's circumcircle
  kDelaunayHullEdge,          ///< a convex-hull edge is not a Delaunay edge
  // AuditVoronoi
  kVoronoiCellCount,        ///< cells() does not line up with sites()
  kVoronoiCellNotConvex,    ///< a cell polygon fails convexity/orientation
  kVoronoiVertexOutOfBounds,///< a cell vertex escapes the clip rectangle
  kVoronoiSiteNotInCell,    ///< a site outside its own cell
  kVoronoiEmptyCell,        ///< an in-bounds site with an empty cell
  kVoronoiCellOverlap,      ///< two cell interiors intersect
  kVoronoiCoverage,         ///< cell areas do not sum to the bounds area
  // AuditWeightedCells
  kWeightedCellCount,   ///< cell vector does not line up with the sites
  kWeightedEmptyFlag,   ///< `empty` inconsistent with `sample_count`
  kWeightedContainment, ///< hull/cover escapes the MBR, or MBR the bounds
  kWeightedDominance,   ///< a hull vertex not dominated by its generator
  kWeightedSampleCount, ///< per-cell sample counts do not sum to the grid
  kWeightedCoverRing,   ///< a cover contour is not a simple CCW ring
  kWeightedCoverMiss,   ///< a dominated lattice sample escapes its cover
  // AuditMovdOverlay
  kOverlayPoiOrder,    ///< poi list not sorted/unique by (set, object)
  kOverlayMbr,         ///< OVR MBR empty, outside the search space, or
                       ///< inconsistent with the OVR's region
  kOverlayRegion,      ///< RRB region empty or with an invalid piece
  kOverlaySource,      ///< no source OVR matches, or the OVR leaks outside
                       ///< a source OVR it claims to descend from
  // AuditPolygon / AuditConvexPolygon
  kPolygonVertexCount,      ///< non-empty ring with fewer than 3 vertices
  kPolygonNonFinite,        ///< NaN/inf coordinate
  kPolygonDuplicateVertex,  ///< consecutive duplicate vertices
  kPolygonOrientation,      ///< ring is clockwise or has zero signed area
  kPolygonNotConvex,        ///< clockwise turn in a ConvexPolygon
  kPolygonSelfIntersection, ///< two non-adjacent edges intersect
  // Query-algebra answer validators (audit_query.cc)
  kQueryGroupShape,    ///< group not sorted one-per-set, or criteria size
                       ///< does not match the group
  kQueryCostMismatch,  ///< cost/criteria disagree with an independent WD
                       ///< recomputation at the reported location
  kQueryOrder,         ///< result sequence violates its documented tie order
  kQueryDominated,     ///< a reported skyline member dominated by another
  kQueryDiversity,     ///< a selected pair closer than the min distance
  kQueryInfeasible,    ///< a constrained answer outside the feasible region
  // Patched-vs-rebuilt equivalence (audit_update.cc)
  kPatchedOvrCount,    ///< patched artifact OVR count differs from rebuild
  kPatchedOvrMismatch, ///< a patched OVR differs bytewise from the rebuild
};

/// Short stable identifier for a kind, e.g. "delaunay-circumcircle".
const char* AuditKindName(AuditKind kind);

/// One invariant violation with enough of a witness to reproduce it:
/// structure-specific indices (triangle/cell/vertex numbers) and the
/// offending coordinates.
struct AuditViolation {
  AuditKind kind;
  std::string message;           ///< human-readable, embeds witness values
  std::vector<int64_t> indices;  ///< witness indices, auditor-specific
  std::vector<Point> witness;    ///< witness coordinates, auditor-specific
};

/// The outcome of one audit: every violation found plus the number of
/// individual invariant checks that ran (so "0 violations" is meaningful).
class AuditReport {
 public:
  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  uint64_t checks() const { return checks_; }

  void Add(AuditKind kind, std::string message,
           std::vector<int64_t> indices = {}, std::vector<Point> witness = {});

  /// Counts `n` executed invariant checks toward checks().
  void NoteChecks(uint64_t n) { checks_ += n; }

  /// Absorbs `other`'s violations and check count.
  void Merge(AuditReport other);

  size_t CountKind(AuditKind kind) const;

  /// "kind: message" per violation; what the pipeline hooks export into
  /// MolqStats::audit_violations.
  std::vector<std::string> Messages() const;

  /// One line: "ok (N checks)" or "K violation(s) in N checks: ...".
  std::string Summary() const;

 private:
  std::vector<AuditViolation> violations_;
  uint64_t checks_ = 0;
};

/// printf-style formatting into a std::string; shared by the auditors.
std::string AuditStrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace movd

#endif  // MOVD_AUDIT_AUDIT_H_
