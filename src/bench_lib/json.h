#ifndef MOVD_BENCH_LIB_JSON_H_
#define MOVD_BENCH_LIB_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace movd::bench {

/// Minimal JSON document model for the benchmark pipeline: BENCH_*.json
/// emission, baseline parsing in tools/bench_diff, and the roundtrip
/// tests. Objects preserve insertion order (a std::vector of pairs, not a
/// hash map) so emission is deterministic and diffs of emitted files stay
/// readable. This is not a general-purpose JSON library: numbers are
/// doubles, strings hold the repo's ASCII identifiers (escapes are
/// handled, full UTF-16 surrogate pairs are not), and parse errors carry
/// byte offsets instead of line/column.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Array elements (valid for kArray).
  const std::vector<JsonValue>& items() const { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  /// Object members in insertion order (valid for kObject).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  void Set(std::string key, JsonValue v);

  /// Member lookup; null when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience typed lookups with defaults.
  double NumberOr(const std::string& key, double def) const;
  std::string StringOr(const std::string& key, const std::string& def) const;

  /// Serialises this value. `indent` < 0 emits compact one-line JSON;
  /// otherwise pretty-prints with that many spaces per level.
  std::string Write(int indent = -1) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static StatusOr<JsonValue> Parse(const std::string& text);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace movd::bench

#endif  // MOVD_BENCH_LIB_JSON_H_
