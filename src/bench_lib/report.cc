#include "bench_lib/report.h"

#include <unistd.h>

#include <cstdio>
#include <thread>

namespace movd::bench {
namespace {

#ifndef MOVD_BUILD_TYPE
#define MOVD_BUILD_TYPE "unknown"
#endif

JsonValue SummaryToJson(const Summary& s) {
  JsonValue o = JsonValue::Object();
  o.Set("count", JsonValue::Number(static_cast<double>(s.count)));
  o.Set("outliers", JsonValue::Number(static_cast<double>(s.outliers)));
  o.Set("min", JsonValue::Number(s.min));
  o.Set("median", JsonValue::Number(s.median));
  o.Set("mean", JsonValue::Number(s.mean));
  o.Set("p95", JsonValue::Number(s.p95));
  o.Set("max", JsonValue::Number(s.max));
  o.Set("stddev", JsonValue::Number(s.stddev));
  return o;
}

Summary SummaryFromJson(const JsonValue& o) {
  Summary s;
  s.count = static_cast<uint64_t>(o.NumberOr("count", 0));
  s.outliers = static_cast<uint64_t>(o.NumberOr("outliers", 0));
  s.min = o.NumberOr("min", 0.0);
  s.median = o.NumberOr("median", 0.0);
  s.mean = o.NumberOr("mean", 0.0);
  s.p95 = o.NumberOr("p95", 0.0);
  s.max = o.NumberOr("max", 0.0);
  s.stddev = o.NumberOr("stddev", 0.0);
  return s;
}

JsonValue PairsToJson(
    const std::vector<std::pair<std::string, double>>& pairs) {
  JsonValue o = JsonValue::Object();
  for (const auto& [k, v] : pairs) o.Set(k, JsonValue::Number(v));
  return o;
}

std::vector<std::pair<std::string, double>> PairsFromJson(
    const JsonValue* o) {
  std::vector<std::pair<std::string, double>> out;
  if (o == nullptr || !o->is_object()) return out;
  for (const auto& [k, v] : o->members()) {
    if (v.is_number()) out.emplace_back(k, v.AsNumber());
  }
  return out;
}

}  // namespace

BenchReport::Machine BenchReport::ThisMachine() {
  Machine m;
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0) m.host = host;
  m.hardware_threads =
      static_cast<int64_t>(std::thread::hardware_concurrency());
  m.compiler = __VERSION__;
  m.build_type = MOVD_BUILD_TYPE;
  return m;
}

JsonValue BenchReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::Str(kBenchSchema));
  doc.Set("suite", JsonValue::Str(suite));

  JsonValue m = JsonValue::Object();
  m.Set("host", JsonValue::Str(machine.host));
  m.Set("hardware_threads",
        JsonValue::Number(static_cast<double>(machine.hardware_threads)));
  m.Set("compiler", JsonValue::Str(machine.compiler));
  m.Set("build_type", JsonValue::Str(machine.build_type));
  doc.Set("machine", std::move(m));

  JsonValue c = JsonValue::Object();
  c.Set("threads", JsonValue::Number(static_cast<double>(config.threads)));
  c.Set("seed", JsonValue::Number(static_cast<double>(config.seed)));
  c.Set("repetitions",
        JsonValue::Number(static_cast<double>(config.repetitions)));
  c.Set("warmup", JsonValue::Number(static_cast<double>(config.warmup)));
  c.Set("phases", JsonValue::Bool(config.phases));
  doc.Set("config", std::move(c));

  JsonValue arr = JsonValue::Array();
  for (const BenchCaseResult& cr : cases) {
    JsonValue o = JsonValue::Object();
    o.Set("bench", JsonValue::Str(cr.bench));
    o.Set("name", JsonValue::Str(cr.name));
    JsonValue params = JsonValue::Object();
    for (const auto& [k, v] : cr.params) params.Set(k, JsonValue::Str(v));
    o.Set("params", std::move(params));
    o.Set("wall_seconds", SummaryToJson(cr.wall));
    if (!cr.phases.empty()) {
      o.Set("phases_seconds", PairsToJson(cr.phases));
    }
    if (!cr.metrics.empty()) o.Set("metrics", PairsToJson(cr.metrics));
    if (!cr.derived.empty()) o.Set("derived", PairsToJson(cr.derived));
    arr.Append(std::move(o));
  }
  doc.Set("cases", std::move(arr));
  return doc;
}

StatusOr<BenchReport> BenchReport::FromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::DataLoss("bench report: top level is not an object");
  }
  const std::string schema = doc.StringOr("schema", "");
  if (schema != kBenchSchema) {
    return Status::DataLoss("bench report: schema '" + schema +
                            "' (expected '" + kBenchSchema + "')");
  }
  BenchReport r;
  r.suite = doc.StringOr("suite", "");
  if (r.suite.empty()) {
    return Status::DataLoss("bench report: missing suite name");
  }
  if (const JsonValue* m = doc.Find("machine"); m != nullptr) {
    r.machine.host = m->StringOr("host", "");
    r.machine.hardware_threads =
        static_cast<int64_t>(m->NumberOr("hardware_threads", 0));
    r.machine.compiler = m->StringOr("compiler", "");
    r.machine.build_type = m->StringOr("build_type", "");
  }
  if (const JsonValue* c = doc.Find("config"); c != nullptr) {
    r.config.threads = static_cast<int64_t>(c->NumberOr("threads", 1));
    r.config.seed = static_cast<uint64_t>(c->NumberOr("seed", 1));
    r.config.repetitions =
        static_cast<int64_t>(c->NumberOr("repetitions", 0));
    r.config.warmup = static_cast<int64_t>(c->NumberOr("warmup", 0));
    const JsonValue* phases = c->Find("phases");
    r.config.phases = phases == nullptr || phases->AsBool();
  }
  const JsonValue* cases = doc.Find("cases");
  if (cases == nullptr || !cases->is_array()) {
    return Status::DataLoss("bench report: missing cases array");
  }
  for (const JsonValue& o : cases->items()) {
    BenchCaseResult cr;
    cr.bench = o.StringOr("bench", "");
    cr.name = o.StringOr("name", "");
    if (cr.name.empty()) {
      return Status::DataLoss("bench report: case without a name");
    }
    if (const JsonValue* params = o.Find("params");
        params != nullptr && params->is_object()) {
      for (const auto& [k, v] : params->members()) {
        if (v.is_string()) cr.params.emplace_back(k, v.AsString());
      }
    }
    const JsonValue* wall = o.Find("wall_seconds");
    if (wall == nullptr || !wall->is_object()) {
      return Status::DataLoss("bench report: case '" + cr.name +
                              "' has no wall_seconds summary");
    }
    cr.wall = SummaryFromJson(*wall);
    cr.phases = PairsFromJson(o.Find("phases_seconds"));
    cr.metrics = PairsFromJson(o.Find("metrics"));
    cr.derived = PairsFromJson(o.Find("derived"));
    r.cases.push_back(std::move(cr));
  }
  return r;
}

Status BenchReport::Save(const std::string& path) const {
  const std::string text = ToJson().Write(/*indent=*/2);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !closed) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::Ok();
}

StatusOr<BenchReport> BenchReport::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  StatusOr<JsonValue> doc = JsonValue::Parse(text);
  if (!doc.ok()) {
    return Status::DataLoss(path + ": " + doc.status().message());
  }
  StatusOr<BenchReport> report = FromJson(*doc);
  if (!report.ok()) {
    return Status::DataLoss(path + ": " + report.status().message());
  }
  return report;
}

}  // namespace movd::bench
