#ifndef MOVD_BENCH_LIB_REPORT_H_
#define MOVD_BENCH_LIB_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_lib/json.h"
#include "util/status.h"
#include "util/summary.h"

namespace movd::bench {

/// Schema identifier emitted in every BENCH_*.json. Bump the suffix when
/// the document shape changes incompatibly; bench_diff refuses to compare
/// documents whose schema strings differ (DESIGN.md §10 documents the
/// fields).
inline constexpr char kBenchSchema[] = "movd-bench/1";

/// One measured configuration of one registered benchmark.
struct BenchCaseResult {
  std::string bench;  ///< registered BENCH() name
  std::string name;   ///< case id, unique within the bench ("rrb/n=64")
  /// Declared parameters, in declaration order ("n" -> "64"). Stringly
  /// typed on purpose: parameters identify a case, they are not compared
  /// numerically.
  std::vector<std::pair<std::string, std::string>> params;
  /// Per-repetition wall seconds (IQR-rejected; see util/summary.h).
  Summary wall;
  /// Mean seconds per repetition spent in each trace phase (span name ->
  /// seconds), from the PR-4 trace aggregation. Empty when --phases=0.
  std::vector<std::pair<std::string, double>> phases;
  /// Deterministic outputs (costs, OVR counts, bytes). bench_diff gates
  /// on these exactly (within a tiny relative tolerance): a drift here is
  /// an answer change, not noise.
  std::vector<std::pair<std::string, double>> metrics;
  /// Timing-derived informational values (speedups, ns/op). Reported and
  /// plotted but never gated — they inherit wall-clock noise.
  std::vector<std::pair<std::string, double>> derived;
};

/// A full harness run: identity, environment, policy, results.
struct BenchReport {
  std::string suite;  ///< binary-level name ("fig08_molq_three_types")

  /// Machine fingerprint. bench_diff treats timing comparisons between
  /// different fingerprints as advisory (cross-machine wall clocks are
  /// not comparable); metric comparisons always apply.
  struct Machine {
    std::string host;
    int64_t hardware_threads = 0;
    std::string compiler;    ///< __VERSION__
    std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time

    bool SameAs(const Machine& other) const {
      return host == other.host &&
             hardware_threads == other.hardware_threads &&
             compiler == other.compiler && build_type == other.build_type;
    }
  } machine;

  /// Harness policy the run used (the shared flags).
  struct Config {
    int64_t threads = 1;
    uint64_t seed = 1;
    int64_t repetitions = 3;
    int64_t warmup = 1;
    bool phases = true;
  } config;

  std::vector<BenchCaseResult> cases;

  /// The running binary's fingerprint.
  static Machine ThisMachine();

  JsonValue ToJson() const;
  static StatusOr<BenchReport> FromJson(const JsonValue& doc);

  /// Whole-file convenience wrappers (pretty-printed, 2-space indent).
  Status Save(const std::string& path) const;
  static StatusOr<BenchReport> Load(const std::string& path);
};

}  // namespace movd::bench

#endif  // MOVD_BENCH_LIB_REPORT_H_
