#ifndef MOVD_BENCH_LIB_BENCH_H_
#define MOVD_BENCH_LIB_BENCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_lib/report.h"
#include "util/exec_options.h"
#include "util/flags.h"
#include "util/summary.h"

namespace movd {
class Trace;
}

namespace movd::bench {

/// Declarative benchmark harness (DESIGN.md §10). A bench binary declares
/// its workloads with BENCH(name) and delegates main to RunMain, which
/// owns everything the fifteen binaries used to hand-roll: flag parsing
/// with Flags::WarnUnused, deterministic seeding, warmup + repetition
/// policy, noise-aware summaries (util/summary.h), per-phase splits from
/// the trace aggregation, the human-readable result table, and the
/// machine-readable BENCH_<suite>.json emission that tools/bench_diff
/// gates regressions on.
///
///   BENCH(fig08) {
///     const auto sizes = ParseSizes(ctx.flags().GetString("sizes", "16,32"));
///     for (const size_t n : sizes) {
///       const MolqQuery query = MakeQuery({n, n, n}, ctx.seed());
///       BenchCase& c = ctx.Case("rrb/n=" + std::to_string(n))
///                          .Param("algo", "rrb").Param("n", n);
///       double cost = 0.0;
///       ctx.Measure(c, [&] { cost = Solve(query, ctx.MakeExec()); });
///       c.Metric("cost", cost);
///     }
///   }
///   MOVD_BENCH_MAIN("fig08_molq_three_types")
///
/// Flags shared by every harnessed binary:
///   --threads=N        pipeline parallelism (0 = hardware threads)
///   --seed=S           deterministic workload seed
///   --repetitions=R    timed repetitions per case (default 3)
///   --warmup=W         untimed warmup runs per case (default 1)
///   --json=FILE        report path (default BENCH_<suite>.json; "off"
///                      disables emission)
///   --phases[=0]       per-phase splits via an ambient Trace (default on)
///   --trace=FILE       additionally write a Chrome trace_event profile
///   --audit            run the invariant auditors inside measured code
///   --filter=SUBSTR    only run benches whose name contains SUBSTR
///   --list             print registered bench names and exit
class BenchContext;

/// Handle for one case under construction. Param/Metric/Derived return
/// *this so declaration reads as one fluent chain. The handle stays valid
/// until RunMain returns (cases are stored in a deque-like list).
class BenchCase {
 public:
  BenchCase& Param(const std::string& key, const std::string& value);
  BenchCase& Param(const std::string& key, int64_t value);
  BenchCase& Param(const std::string& key, size_t value);
  BenchCase& Param(const std::string& key, double value);

  /// Deterministic output of the measured code (cost, OVR count, bytes).
  /// bench_diff compares these exactly across runs; record a value here
  /// only if it must not change run-to-run for a fixed seed.
  BenchCase& Metric(const std::string& key, double value);

  /// Timing-derived informational value (speedup ratio, ns/op). Never
  /// gated by bench_diff.
  BenchCase& Derived(const std::string& key, double value);

  /// Wall-time summary; valid after BenchContext::Measure.
  const Summary& wall() const { return result_.wall; }

  /// The accumulated record (harness reporter/emitter use).
  const BenchCaseResult& result() const { return result_; }

 private:
  friend class BenchContext;
  BenchCaseResult result_;
};

/// Per-run context handed to every BENCH body.
class BenchContext {
 public:
  const Flags& flags() const { return flags_; }
  uint64_t seed() const { return seed_; }
  int threads() const { return threads_; }
  int repetitions() const { return repetitions_; }
  int warmup() const { return warmup_; }

  /// Execution knobs for pipeline entry points: --threads, --audit, and
  /// the harness's ambient trace (null with --phases=0).
  ExecOptions MakeExec() const;

  /// Declares a new case. `name` must be unique within the bench.
  BenchCase& Case(std::string name);

  /// Runs `fn` warmup() untimed times, then repetitions() timed times;
  /// summarises the timed wall seconds into c.wall() and attributes trace
  /// phase deltas (per-repetition mean seconds) to the case. The returned
  /// reference is the case's summary — use it for derived ratios.
  const Summary& Measure(BenchCase& c, const std::function<void()>& fn);

  /// Harness-internal: construction and case access belong to RunMain's
  /// driver loop, not to BENCH bodies.
  BenchContext(const Flags& flags, const std::string& bench_name,
               Trace* trace);
  const std::vector<std::unique_ptr<BenchCase>>& cases() const {
    return cases_;
  }

 private:
  const Flags& flags_;
  std::string bench_name_;
  Trace* trace_;  // null when --phases=0
  uint64_t seed_;
  int threads_;
  int repetitions_;
  int warmup_;
  bool audit_;
  std::vector<std::unique_ptr<BenchCase>> cases_;
};

using BenchFn = void (*)(BenchContext&);

/// Static registrar behind the BENCH macro.
class BenchRegistrar {
 public:
  BenchRegistrar(const char* name, BenchFn fn);
};

/// Declares a benchmark body `void (BenchContext& ctx)` and registers it
/// under `name`. One binary may register several (the micro suites do).
#define BENCH(name)                                                       \
  static void movd_bench_body_##name(::movd::bench::BenchContext& ctx);   \
  static const ::movd::bench::BenchRegistrar movd_bench_reg_##name(       \
      #name, &movd_bench_body_##name);                                    \
  static void movd_bench_body_##name(::movd::bench::BenchContext& ctx)

/// Shared main: runs every registered bench, prints the result tables,
/// emits BENCH_<suite>.json, and reports unused flags. Returns the
/// process exit code.
int RunMain(const std::string& suite, int argc, char** argv);

/// Defines main() for a bench binary.
#define MOVD_BENCH_MAIN(suite)                                 \
  int main(int argc, char** argv) {                            \
    return ::movd::bench::RunMain(suite, argc, argv);          \
  }

/// In-process harness run for unit tests: executes the registered benches
/// against synthetic argv and returns the report instead of writing it.
BenchReport RunBenchesForTest(const std::string& suite,
                              const std::vector<std::string>& args);

/// Keeps a value alive and opaque to the optimizer so measured kernels
/// are not dead-code-eliminated (the micro suites' DoNotOptimize).
template <class T>
inline void Keep(T const& value) {
  asm volatile("" : : "r"(&value) : "memory");
}

}  // namespace movd::bench

#endif  // MOVD_BENCH_LIB_BENCH_H_
