#include "bench_lib/bench.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "trace/trace.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

struct Registration {
  const char* name;
  BenchFn fn;
};

std::vector<Registration>& Registry() {
  static std::vector<Registration> registry;
  return registry;
}

/// Total nanoseconds per span name, snapshotted between cases (the run is
/// quiescent there: every span closed, every ParallelFor joined).
std::map<std::string, int64_t> PhaseTotals(const Trace& trace) {
  std::map<std::string, int64_t> totals;
  for (const TracePhaseRow& row : trace.AggregatePhases()) {
    totals[row.name] += row.total_ns;
  }
  return totals;
}

std::string JoinPairs(
    const std::vector<std::pair<std::string, double>>& pairs, int digits) {
  std::string out;
  for (const auto& [k, v] : pairs) {
    if (!out.empty()) out += " ";
    out += k + "=" + Table::Fmt(v, digits);
  }
  return out;
}

void PrintBenchTable(const std::string& bench,
                     const std::vector<std::unique_ptr<BenchCase>>& cases,
                     const BenchReport::Config& config) {
  std::printf("\n%s — %lld repetition(s) after %lld warmup run(s), "
              "seed=%llu, threads=%lld\n\n",
              bench.c_str(), static_cast<long long>(config.repetitions),
              static_cast<long long>(config.warmup),
              static_cast<unsigned long long>(config.seed),
              static_cast<long long>(config.threads));
  Table table({"case", "median(s)", "min(s)", "p95(s)", "stddev", "reps",
               "out", "metrics", "derived"});
  for (const auto& c : cases) {
    const BenchCaseResult& r = c->result();
    table.AddRow({r.name, Table::Fmt(r.wall.median, 4),
                  Table::Fmt(r.wall.min, 4), Table::Fmt(r.wall.p95, 4),
                  Table::Fmt(r.wall.stddev, 4),
                  std::to_string(r.wall.count),
                  std::to_string(r.wall.outliers),
                  JoinPairs(r.metrics, 4), JoinPairs(r.derived, 2)});
  }
  table.Print(stdout);

  // Phase splits (trace aggregation): top phases per case by total time.
  bool any_phases = false;
  for (const auto& c : cases) any_phases |= !c->result().phases.empty();
  if (!any_phases) return;
  std::printf("\nper-phase splits (mean seconds/repetition, from the trace "
              "aggregation; parents include children)\n\n");
  Table phases({"case", "phases"});
  for (const auto& c : cases) {
    auto sorted = c->result().phases;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second > b.second;
                     });
    if (sorted.size() > 4) sorted.resize(4);
    phases.AddRow({c->result().name, JoinPairs(sorted, 4)});
  }
  phases.Print(stdout);
}

BenchReport RunAll(const std::string& suite, const Flags& flags,
                   bool print) {
  const bool phases =
      flags.GetBool("phases", true) || flags.Has("trace");
  const std::string filter = flags.GetString("filter", "");

  Trace trace;
  TraceContextScope scope(phases ? &trace : nullptr);

  BenchReport report;
  report.suite = suite;
  report.machine = BenchReport::ThisMachine();
  {
    // One context per bench re-reads these, so read once for the report.
    report.config.threads = flags.GetInt("threads", 1);
    report.config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    report.config.repetitions =
        std::max<int64_t>(1, flags.GetInt("repetitions", 3));
    report.config.warmup = std::max<int64_t>(0, flags.GetInt("warmup", 1));
    report.config.phases = phases;
  }

  size_t matched = 0;
  for (const Registration& reg : Registry()) {
    if (!filter.empty() &&
        std::string(reg.name).find(filter) == std::string::npos) {
      continue;
    }
    ++matched;
    BenchContext ctx(flags, reg.name, phases ? &trace : nullptr);
    reg.fn(ctx);
    if (print) PrintBenchTable(reg.name, ctx.cases(), report.config);
    for (const auto& c : ctx.cases()) report.cases.push_back(c->result());
  }
  MOVD_CHECK_MSG(filter.empty() || matched > 0,
                 "--filter matched no registered bench");

  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    const Status written = trace.WriteChromeJson(trace_path);
    if (written.ok()) {
      std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
    }
    trace.PrintPhaseTable(stderr);
  }
  return report;
}

}  // namespace

BenchCase& BenchCase::Param(const std::string& key,
                            const std::string& value) {
  result_.params.emplace_back(key, value);
  return *this;
}

BenchCase& BenchCase::Param(const std::string& key, int64_t value) {
  return Param(key, std::to_string(value));
}

BenchCase& BenchCase::Param(const std::string& key, size_t value) {
  return Param(key, std::to_string(value));
}

BenchCase& BenchCase::Param(const std::string& key, double value) {
  return Param(key, Table::Fmt(value, 6));
}

BenchCase& BenchCase::Metric(const std::string& key, double value) {
  result_.metrics.emplace_back(key, value);
  return *this;
}

BenchCase& BenchCase::Derived(const std::string& key, double value) {
  result_.derived.emplace_back(key, value);
  return *this;
}

BenchContext::BenchContext(const Flags& flags,
                           const std::string& bench_name, Trace* trace)
    : flags_(flags),
      bench_name_(bench_name),
      trace_(trace),
      seed_(static_cast<uint64_t>(flags.GetInt("seed", 1))),
      threads_(static_cast<int>(flags.GetInt("threads", 1))),
      repetitions_(
          std::max<int>(1, static_cast<int>(flags.GetInt("repetitions", 3)))),
      warmup_(std::max<int>(0, static_cast<int>(flags.GetInt("warmup", 1)))),
      audit_(flags.GetBool("audit", ExecOptions{}.audit)) {}

ExecOptions BenchContext::MakeExec() const {
  ExecOptions exec;
  exec.threads = threads_;
  exec.audit = audit_;
  exec.trace = trace_;
  return exec;
}

BenchCase& BenchContext::Case(std::string name) {
  for (const auto& existing : cases_) {
    MOVD_CHECK_MSG(existing->result_.name != name,
                   "duplicate bench case name");
  }
  auto c = std::make_unique<BenchCase>();
  c->result_.bench = bench_name_;
  c->result_.name = std::move(name);
  cases_.push_back(std::move(c));
  return *cases_.back();
}

const Summary& BenchContext::Measure(BenchCase& c,
                                     const std::function<void()>& fn) {
  // Untimed warmup: first-touch page faults, allocator growth, and the
  // weighted-grid memoisation cold path all land here instead of in the
  // first timed repetition (the fig11/fig13 instability the harness
  // exists to fix — EXPERIMENTS.md records the before/after).
  for (int i = 0; i < warmup_; ++i) fn();

  std::map<std::string, int64_t> before;
  if (trace_ != nullptr) before = PhaseTotals(*trace_);

  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions_));
  for (int i = 0; i < repetitions_; ++i) {
    Stopwatch sw;
    fn();
    samples.push_back(sw.ElapsedSeconds());
  }
  c.result_.wall = Summary::FromSamples(std::move(samples));

  if (trace_ != nullptr) {
    const std::map<std::string, int64_t> after = PhaseTotals(*trace_);
    for (const auto& [name, total_ns] : after) {
      const auto it = before.find(name);
      const int64_t delta =
          total_ns - (it == before.end() ? 0 : it->second);
      if (delta > 0) {
        c.result_.phases.emplace_back(
            name, static_cast<double>(delta) * 1e-9 /
                      static_cast<double>(repetitions_));
      }
    }
  }
  return c.result_.wall;
}

BenchRegistrar::BenchRegistrar(const char* name, BenchFn fn) {
  Registry().push_back({name, fn});
}

int RunMain(const std::string& suite, int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.GetBool("list", false)) {
    for (const Registration& reg : Registry()) {
      std::printf("%s\n", reg.name);
    }
    return 0;
  }

  const BenchReport report = RunAll(suite, flags, /*print=*/true);

  const std::string json_path =
      flags.GetString("json", "BENCH_" + suite + ".json");
  flags.WarnUnused(stderr);
  if (json_path != "off") {
    const Status saved = report.Save(json_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "bench report write failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s (%zu cases)\n", json_path.c_str(),
                 report.cases.size());
  }
  return 0;
}

BenchReport RunBenchesForTest(const std::string& suite,
                              const std::vector<std::string>& args) {
  std::vector<std::string> argv_storage;
  argv_storage.push_back(suite);
  for (const std::string& a : args) argv_storage.push_back(a);
  std::vector<char*> argv;
  argv.reserve(argv_storage.size());
  for (std::string& a : argv_storage) argv.push_back(a.data());
  const Flags flags(static_cast<int>(argv.size()), argv.data());
  return RunAll(suite, flags, /*print=*/false);
}

}  // namespace movd::bench
