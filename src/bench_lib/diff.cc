#include "bench_lib/diff.h"

#include <cmath>
#include <map>

#include "util/table.h"

namespace movd::bench {
namespace {

std::string CaseKey(const BenchCaseResult& c) {
  return c.bench.empty() ? c.name : c.bench + "/" + c.name;
}

double FindMetric(const std::vector<std::pair<std::string, double>>& metrics,
                  const std::string& key, bool* found) {
  for (const auto& [k, v] : metrics) {
    if (k == key) {
      *found = true;
      return v;
    }
  }
  *found = false;
  return 0.0;
}

/// Relative difference scaled by the larger magnitude; exact zero-vs-zero
/// compares equal.
double RelDiff(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  if (scale == 0.0) return 0.0;
  return std::fabs(a - b) / scale;
}

CaseVerdict TimingVerdict(const BenchCaseResult& old_case,
                          const BenchCaseResult& new_case,
                          const DiffOptions& options, bool same_machine,
                          std::string* note) {
  const Summary& o = old_case.wall;
  const Summary& n = new_case.wall;
  if (o.count == 0 || n.count == 0) return CaseVerdict::kWithinNoise;

  // Noisy-machine gate: a run that cannot hold its own wall time steady
  // (high coefficient of variation) cannot support a timing verdict.
  const double old_cv = o.median > 0.0 ? o.stddev / o.median : 0.0;
  const double new_cv = n.median > 0.0 ? n.stddev / n.median : 0.0;
  if (old_cv > options.max_noise_cv || new_cv > options.max_noise_cv) {
    *note = "noisy (cv " + Table::Fmt(std::max(old_cv, new_cv), 2) + ")";
    return CaseVerdict::kWithinNoise;
  }

  const double delta = n.median - o.median;
  const double noise_floor =
      options.noise_multiplier * std::max(o.stddev, n.stddev);
  const bool beats_noise = std::fabs(delta) > noise_floor;

  if (delta > o.median * options.time_threshold && beats_noise) {
    if (!same_machine && !options.cross_machine_timing) {
      *note = "different machine; timing advisory only";
      return CaseVerdict::kTimingAdvisory;
    }
    return CaseVerdict::kRegression;
  }
  if (-delta > o.median * options.time_threshold && beats_noise) {
    return CaseVerdict::kImprovement;
  }
  return CaseVerdict::kWithinNoise;
}

}  // namespace

const char* CaseVerdictName(CaseVerdict verdict) {
  switch (verdict) {
    case CaseVerdict::kImprovement: return "IMPROVEMENT";
    case CaseVerdict::kWithinNoise: return "within-noise";
    case CaseVerdict::kRegression: return "REGRESSION";
    case CaseVerdict::kTimingAdvisory: return "advisory";
    case CaseVerdict::kMetricMismatch: return "METRIC-MISMATCH";
    case CaseVerdict::kMissingCase: return "MISSING";
    case CaseVerdict::kNewCase: return "new";
  }
  return "?";
}

DiffResult DiffReports(const BenchReport& old_report,
                       const BenchReport& new_report,
                       const DiffOptions& options) {
  DiffResult result;
  result.same_machine = old_report.machine.SameAs(new_report.machine);

  std::map<std::string, const BenchCaseResult*> new_by_key;
  for (const BenchCaseResult& c : new_report.cases) {
    new_by_key[CaseKey(c)] = &c;
  }

  for (const BenchCaseResult& old_case : old_report.cases) {
    CaseDiff d;
    d.key = CaseKey(old_case);
    d.old_median = old_case.wall.median;
    const auto it = new_by_key.find(d.key);
    if (it == new_by_key.end()) {
      d.verdict = CaseVerdict::kMissingCase;
      d.note = "case disappeared from the new run";
      ++result.regressions;
      result.cases.push_back(std::move(d));
      continue;
    }
    const BenchCaseResult& new_case = *it->second;
    new_by_key.erase(it);
    d.new_median = new_case.wall.median;
    if (d.old_median > 0.0) d.ratio = d.new_median / d.old_median;

    // Deterministic metrics gate first: an answer drift is a bug even
    // when the timing looks fine.
    for (const auto& [key, old_value] : old_case.metrics) {
      bool found = false;
      const double new_value = FindMetric(new_case.metrics, key, &found);
      if (!found) {
        d.verdict = CaseVerdict::kMetricMismatch;
        d.note = "metric '" + key + "' missing from the new run";
        break;
      }
      if (RelDiff(old_value, new_value) > options.metric_tolerance) {
        d.verdict = CaseVerdict::kMetricMismatch;
        d.note = "metric '" + key + "': " + Table::Fmt(old_value, 9) +
                 " -> " + Table::Fmt(new_value, 9);
        break;
      }
    }
    if (d.verdict == CaseVerdict::kMetricMismatch) {
      ++result.regressions;
      result.cases.push_back(std::move(d));
      continue;
    }

    if (!options.metrics_only) {
      d.verdict = TimingVerdict(old_case, new_case, options,
                                result.same_machine, &d.note);
    }
    if (d.verdict == CaseVerdict::kRegression) ++result.regressions;
    if (d.verdict == CaseVerdict::kImprovement) ++result.improvements;
    result.cases.push_back(std::move(d));
  }

  // Cases only present in the new run (new_by_key retains them). Map
  // order keeps the report deterministic.
  for (const auto& [key, new_case] : new_by_key) {
    CaseDiff d;
    d.key = key;
    d.new_median = new_case->wall.median;
    d.verdict = CaseVerdict::kNewCase;
    d.note = "no baseline";
    result.cases.push_back(std::move(d));
  }
  return result;
}

void PrintDiff(const DiffResult& result, std::FILE* out) {
  Table table({"case", "old median(s)", "new median(s)", "ratio",
               "verdict", "note"});
  for (const CaseDiff& d : result.cases) {
    table.AddRow({d.key, Table::Fmt(d.old_median, 4),
                  Table::Fmt(d.new_median, 4),
                  d.ratio > 0.0 ? Table::Fmt(d.ratio, 2) + "x" : "-",
                  CaseVerdictName(d.verdict), d.note});
  }
  table.Print(out);
  std::fprintf(out,
               "\n%zu case(s): %d failing, %d improvement(s)%s\n",
               result.cases.size(), result.regressions,
               result.improvements,
               result.same_machine
                   ? ""
                   : " (machines differ: timings advisory)");
}

}  // namespace movd::bench
