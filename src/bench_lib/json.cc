#include "bench_lib/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace movd::bench {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; emit null
    *out += "null";
    return;
  }
  // Integers up to 2^53 print without an exponent so counts stay exact
  // and readable; everything else gets %.17g (shortest exact roundtrip
  // is overkill here, 17 significant digits always roundtrips).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    JsonValue v;
    Status s = ParseValue(&v);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return v;
  }

 private:
  Status Fail(const std::string& what) {
    return Status::DataLoss("json parse error at byte " +
                            std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    if (Consume('}')) return Status::Ok();
    while (true) {
      JsonValue key;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      if (!Consume(':')) return Fail("expected ':' after key");
      JsonValue value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      out->Set(key.AsString(), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status s = ParseValue(&value);
      if (!s.ok()) return s;
      out->Append(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // '"'
    std::string s;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = JsonValue::Str(std::move(s));
        return Status::Ok();
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'n': s += '\n'; break;
        case 't': s += '\t'; break;
        case 'r': s += '\r'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          if (code < 0x80) {
            s += static_cast<char>(code);
          } else {  // encode BMP code point as UTF-8 (no surrogate pairs)
            if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            }
            s += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return Status::Ok();
    }
    return Fail("bad literal");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue();
      return Status::Ok();
    }
    return Fail("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return Fail("expected a value");
    pos_ += static_cast<size_t>(end - begin);
    *out = JsonValue::Number(v);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void WriteValue(const JsonValue& v, int indent, int depth, std::string* out) {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(
      static_cast<size_t>(indent) * (static_cast<size_t>(depth) + 1), ' ')
                                 : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent) *
                           static_cast<size_t>(depth), ' ')
             : "";
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      AppendNumber(out, v.AsNumber());
      break;
    case JsonValue::Kind::kString:
      AppendEscaped(out, v.AsString());
      break;
    case JsonValue::Kind::kArray: {
      if (v.items().empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) *out += ',';
        first = false;
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        WriteValue(item, indent, depth + 1, out);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      if (v.members().empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) *out += ',';
        first = false;
        if (pretty) {
          *out += '\n';
          *out += pad;
        }
        AppendEscaped(out, key);
        *out += pretty ? ": " : ":";
        WriteValue(value, indent, depth + 1, out);
      }
      if (pretty) {
        *out += '\n';
        *out += close_pad;
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::Set(std::string key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : def;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& def) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : def;
}

std::string JsonValue::Write(int indent) const {
  std::string out;
  WriteValue(*this, indent, 0, &out);
  if (indent >= 0) out += '\n';
  return out;
}

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

}  // namespace movd::bench
