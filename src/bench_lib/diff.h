#ifndef MOVD_BENCH_LIB_DIFF_H_
#define MOVD_BENCH_LIB_DIFF_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench_lib/report.h"

namespace movd::bench {

/// Regression-gating comparison of two BenchReports (tools/bench_diff).
///
/// Timing policy — a case's wall median counts as a REGRESSION only when
/// all three hold:
///   1. new.median > old.median * (1 + time_threshold);
///   2. the absolute delta exceeds noise_multiplier x the larger of the
///      two runs' stddevs (a slow-but-noisy case is kWithinNoise, the
///      "noisy-machine" gate keyed on stddev);
///   3. the two reports carry the same machine fingerprint, or
///      cross_machine_timing is true. Wall clocks of different hosts are
///      not comparable, so cross-machine timing deltas are advisory by
///      default (reported, never failing) while metric gating still
///      applies — that is what lets CI diff against checked-in baselines.
///
/// Metric policy — `metrics` entries are deterministic outputs; any
/// relative difference beyond metric_tolerance is kMetricMismatch and
/// fails regardless of machine. `derived` entries are never compared.
struct DiffOptions {
  double time_threshold = 0.20;    ///< relative median growth that fails
  double noise_multiplier = 3.0;   ///< stddev multiple the delta must beat
  double metric_tolerance = 1e-6;  ///< relative tolerance for metrics
  bool cross_machine_timing = false;  ///< gate timings across machines too
  bool metrics_only = false;          ///< skip timing verdicts entirely
  /// Cases whose relative stddev (stddev/median) exceeds this in either
  /// run are too noisy for a timing verdict and report kWithinNoise.
  double max_noise_cv = 0.30;
};

enum class CaseVerdict {
  kImprovement,     ///< median shrank beyond threshold + noise gate
  kWithinNoise,     ///< no actionable timing change
  kRegression,      ///< timing gate failed (fails the diff)
  kTimingAdvisory,  ///< would regress, but machines differ — not gated
  kMetricMismatch,  ///< deterministic metric drifted (fails the diff)
  kMissingCase,     ///< case in old but not new (fails the diff)
  kNewCase,         ///< case in new but not old (reported, not failing)
};

const char* CaseVerdictName(CaseVerdict verdict);

struct CaseDiff {
  std::string key;  ///< "bench/name"
  CaseVerdict verdict = CaseVerdict::kWithinNoise;
  double old_median = 0.0;
  double new_median = 0.0;
  double ratio = 0.0;  ///< new/old median (0 when either side missing)
  std::string note;    ///< human-readable detail (mismatched metric, ...)
};

struct DiffResult {
  std::vector<CaseDiff> cases;
  int regressions = 0;   ///< kRegression + kMetricMismatch + kMissingCase
  int improvements = 0;
  bool same_machine = false;

  bool failed() const { return regressions > 0; }
};

/// Compares `new_report` against `old_report` (the baseline).
DiffResult DiffReports(const BenchReport& old_report,
                       const BenchReport& new_report,
                       const DiffOptions& options);

/// Renders the diff as a fixed-width table.
void PrintDiff(const DiffResult& result, std::FILE* out);

}  // namespace movd::bench

#endif  // MOVD_BENCH_LIB_DIFF_H_
