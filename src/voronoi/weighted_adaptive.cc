// Adaptive quadtree construction of approximate weighted Voronoi cells
// (DESIGN.md §11). Instead of sampling every cell of a dense lattice, it
// classifies whole quad nodes with interval dominance bounds on the affine
// weighted distance wd_i(p) = multiplier_i * d(p, site_i) + offset_i:
//
//   over a node rectangle R, d(p, site_i) ranges over
//   [mindist(site_i, R), maxdist(site_i, R)], so wd_i ranges over an
//   interval [lo_i, hi_i] computable in O(1).
//
// At each node the surviving candidate set shrinks: generator i can own a
// point of R under the BestWeightedSite tie rule only if lo_i <= min_j
// hi_j (a generator whose best case loses to someone's worst case loses
// everywhere in R). A node with one candidate is interior to that
// generator's dominance region — recursion stops. Only boundary-ambiguous
// nodes split, down to leaves of the EffectiveWeightedResolution lattice,
// where every surviving candidate records the leaf. The recorded node set
// of generator i therefore contains ALL of i's true dominance region, so
// the extracted covers are conservative by construction — a strict
// superset of what dense-grid sampling marks at the same effective
// resolution (the audit cross-checks exactly that containment).

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/gridcontour.h"
#include "geom/hull.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "voronoi/weighted.h"

namespace movd {
namespace {

// A lattice-aligned square: [x0, x0+size) x [y0, y0+size) in leaf units.
struct QuadNode {
  int x0 = 0;
  int y0 = 0;
  int size = 0;
};

// One generator's recorded (possibly-owned) node.
struct OwnedNode {
  int32_t site;
  QuadNode node;
};

struct LatticeFrame {
  Rect bounds;
  double sx = 0.0;  // world width of one leaf cell
  double sy = 0.0;
  int resolution = 0;  // leaves per axis (power of two)

  double WorldX(int x) const {
    return x == resolution ? bounds.max_x : bounds.min_x + x * sx;
  }
  double WorldY(int y) const {
    return y == resolution ? bounds.max_y : bounds.min_y + y * sy;
  }
  Rect NodeRect(const QuadNode& n) const {
    return Rect(WorldX(n.x0), WorldY(n.y0), WorldX(n.x0 + n.size),
                WorldY(n.y0 + n.size));
  }
};

// Interval bound of wd(p) = m * d(p, site) + off over a rectangle. The
// distance interval is exact up to rounding; a tiny relative slack is
// folded into the comparison at the caller so rounding can only widen the
// candidate set (never prune a true owner).
struct WdInterval {
  double lo;
  double hi;
};

WdInterval WdOverRect(const WeightedSite& s, const Rect& r) {
  const double dmin = std::sqrt(r.MinDistance2(s.location));
  const double cx = std::max(s.location.x - r.min_x, r.max_x - s.location.x);
  const double cy = std::max(s.location.y - r.min_y, r.max_y - s.location.y);
  const double dmax = std::sqrt(cx * cx + cy * cy);
  const double a = s.multiplier * dmin + s.offset;
  const double b = s.multiplier * dmax + s.offset;
  return {std::min(a, b), std::max(a, b)};
}

// Relative slack absorbing the few-ulp rounding of WdOverRect, so interval
// pruning stays conservative w.r.t. the exactly-evaluated tie rule.
inline double PruneSlack(double lo, double min_hi) {
  return 1e-12 * (std::abs(lo) + std::abs(min_hi));
}

// Classifies `node` against `candidates` and either records it (single
// survivor, or leaf) or recurses into its four children with the pruned
// candidate list. Appends to `out` in a deterministic depth-first order.
void Classify(const std::vector<WeightedSite>& sites,
              const LatticeFrame& frame, const QuadNode& node,
              const std::vector<int32_t>& candidates,
              std::vector<OwnedNode>* out) {
  const Rect r = frame.NodeRect(node);
  double min_hi = std::numeric_limits<double>::infinity();
  std::vector<WdInterval> iv(candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    iv[k] = WdOverRect(sites[candidates[k]], r);
    min_hi = std::min(min_hi, iv[k].hi);
  }
  std::vector<int32_t> kept;
  kept.reserve(candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    if (iv[k].lo <= min_hi + PruneSlack(iv[k].lo, min_hi)) {
      kept.push_back(candidates[k]);
    }
  }
  MOVD_DCHECK(!kept.empty());
  if (kept.size() == 1) {
    out->push_back({kept[0], node});
    return;
  }
  if (node.size == 1) {
    // Boundary-ambiguous leaf: every surviving candidate might own part of
    // it; record it for all of them (conservative cover).
    for (const int32_t s : kept) out->push_back({s, node});
    return;
  }
  const int half = node.size / 2;
  Classify(sites, frame, {node.x0, node.y0, half}, kept, out);
  Classify(sites, frame, {node.x0 + half, node.y0, half}, kept, out);
  Classify(sites, frame, {node.x0, node.y0 + half, half}, kept, out);
  Classify(sites, frame, {node.x0 + half, node.y0 + half, half}, kept, out);
}

}  // namespace

std::vector<WeightedCellApprox> AdaptiveWeightedVoronoi(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    int resolution, int threads) {
  MOVD_CHECK_MSG(resolution > 0, "the dominance lattice needs >= 1 cell");
  MOVD_CHECK_MSG(!bounds.Empty(),
                 "weighted diagrams need a non-empty bounding rectangle");
  std::vector<WeightedCellApprox> cells(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    cells[i].site = static_cast<int32_t>(i);
  }
  if (sites.empty()) return cells;

  LatticeFrame frame;
  frame.bounds = bounds;
  frame.resolution = EffectiveWeightedResolution(resolution);
  frame.sx = bounds.Width() / frame.resolution;
  frame.sy = bounds.Height() / frame.resolution;

  const Trace::Context trace_ctx = Trace::CaptureContext();

  // Seed the recursion at a fixed shallow frontier (independent of the
  // thread count, so the classification work list — and with it every
  // output byte — is identical for any `threads`). Splitting an
  // already-interior node only fragments it into interior children, which
  // the per-site rasterisation below re-merges, so forcing the first few
  // levels costs nothing but yields parallelisable subtrees.
  const int frontier_size = std::max(1, frame.resolution / 8);
  std::vector<QuadNode> frontier;
  for (int y0 = 0; y0 < frame.resolution; y0 += frontier_size) {
    for (int x0 = 0; x0 < frame.resolution; x0 += frontier_size) {
      frontier.push_back({x0, y0, frontier_size});
    }
  }
  std::vector<int32_t> all(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) all[i] = static_cast<int32_t>(i);

  // Classify each frontier subtree into its own slot; concatenating the
  // slots in frontier order keeps the record list deterministic.
  std::vector<std::vector<OwnedNode>> records(frontier.size());
  ParallelFor(threads, frontier.size(), [&](size_t f) {
    TraceContextScope trace_scope(trace_ctx);
    TRACE_SPAN("weighted_adaptive_classify");
    Classify(sites, frame, frontier[f], all, &records[f]);
  });

  std::vector<std::vector<QuadNode>> nodes_of(sites.size());
  for (const std::vector<OwnedNode>& slot : records) {
    for (const OwnedNode& rec : slot) {
      nodes_of[rec.site].push_back(rec.node);
    }
  }

  // Per-site cover extraction, independent across sites. The node set is
  // rasterised onto a local leaf-unit mask padded by one cell (clamped to
  // the lattice), so the one-cell dilation has room everywhere and the
  // dilated contours stay clipped to `bounds` by construction.
  ParallelFor(threads, sites.size(), [&](size_t i) {
    TraceContextScope trace_scope(trace_ctx);
    TraceSpan span("weighted_adaptive_cover");
    WeightedCellApprox& cell = cells[i];
    const std::vector<QuadNode>& nodes = nodes_of[i];
    cell.empty = nodes.empty();
    size_t leaves = 0;
    for (const QuadNode& n : nodes) {
      leaves += static_cast<size_t>(n.size) * n.size;
    }
    cell.sample_count = leaves;
    span.Counter("cells_covered", static_cast<int64_t>(leaves));
    if (cell.empty) return;  // mbr stays the sentinel invalid Rect()

    int lx0 = frame.resolution, ly0 = frame.resolution, lx1 = 0, ly1 = 0;
    for (const QuadNode& n : nodes) {
      lx0 = std::min(lx0, n.x0);
      ly0 = std::min(ly0, n.y0);
      lx1 = std::max(lx1, n.x0 + n.size);
      ly1 = std::max(ly1, n.y0 + n.size);
    }
    // Pad by one leaf cell for the dilation, clamped to the lattice.
    lx0 = std::max(0, lx0 - 1);
    ly0 = std::max(0, ly0 - 1);
    lx1 = std::min(frame.resolution, lx1 + 1);
    ly1 = std::min(frame.resolution, ly1 + 1);
    const int w = lx1 - lx0;
    const int h = ly1 - ly0;
    std::vector<uint8_t> mask(static_cast<size_t>(w) * h, 0);
    for (const QuadNode& n : nodes) {
      for (int y = n.y0; y < n.y0 + n.size; ++y) {
        uint8_t* row = mask.data() + static_cast<size_t>(y - ly0) * w;
        std::fill(row + (n.x0 - lx0), row + (n.x0 - lx0 + n.size),
                  uint8_t{1});
      }
    }
    const Rect local(frame.WorldX(lx0), frame.WorldY(ly0), frame.WorldX(lx1),
                     frame.WorldY(ly1));
    cell.cover = ExtractOuterContours(mask, w, h, local, /*dilate=*/true);
    cell.mbr = Rect();
    for (const Polygon& piece : cell.cover) cell.mbr.Expand(piece.Bbox());
    // Hull of the cover vertices: same conservative role as the dense
    // path's sample hull, for visualisation and MBR cross-checks.
    std::vector<Point> corners;
    for (const Polygon& piece : cell.cover) {
      corners.insert(corners.end(), piece.vertices().begin(),
                     piece.vertices().end());
    }
    const ConvexPolygon hull = ConvexHull(corners);
    if (!hull.Empty()) cell.hull = Polygon(hull.vertices());
  });
  return cells;
}

}  // namespace movd
