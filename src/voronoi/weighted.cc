#include "voronoi/weighted.h"

#include "geom/gridcontour.h"
#include "geom/hull.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace movd {

double WeightedSiteDistance(const Point& p, const WeightedSite& site) {
  return site.multiplier * Distance(p, site.location) + site.offset;
}

int EffectiveWeightedResolution(int resolution) {
  MOVD_CHECK_MSG(resolution > 0, "the dominance lattice needs >= 1 cell");
  int r = 1;
  while (r < resolution && r < (1 << 14)) r <<= 1;
  return r;
}

std::vector<WeightedCellApprox> BuildWeightedCells(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    const WeightedOptions& options) {
  MOVD_CHECK_MSG(options.resolution > 0,
                 "weighted diagrams need a positive target resolution");
  MOVD_CHECK_MSG(!bounds.Empty(),
                 "weighted diagrams need a non-empty bounding rectangle");
  switch (options.method) {
    case WeightedMethod::kDenseGrid:
      return ApproximateWeightedVoronoi(sites, bounds, options.resolution,
                                        options.threads);
    case WeightedMethod::kAdaptive:
      break;
  }
  return AdaptiveWeightedVoronoi(sites, bounds, options.resolution,
                                 options.threads);
}

std::vector<WeightedCellApprox> ApproximateWeightedVoronoi(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    int resolution, int threads) {
  MOVD_CHECK_MSG(resolution > 0, "the dominance grid needs >= 1 cell");
  MOVD_CHECK_MSG(!bounds.Empty(),
                 "weighted diagrams need a non-empty bounding rectangle");
  std::vector<WeightedCellApprox> cells(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    cells[i].site = static_cast<int32_t>(i);
  }
  if (sites.empty()) return cells;

  const double step_x = bounds.Width() / resolution;
  const double step_y = bounds.Height() / resolution;
  std::vector<int32_t> owner(static_cast<size_t>(resolution) * resolution);

  // Dominance sampling, one grid row per task: each cell's owner depends
  // only on the sites, so rows are independent and the owner grid is
  // identical for every thread count.
  const Trace::Context trace_ctx = Trace::CaptureContext();
  ParallelFor(threads, static_cast<size_t>(resolution), [&](size_t row) {
    TraceContextScope trace_scope(trace_ctx);
    TRACE_SPAN("weighted_grid_row");
    const int gy = static_cast<int>(row);
    for (int gx = 0; gx < resolution; ++gx) {
      const Point c{bounds.min_x + (gx + 0.5) * step_x,
                    bounds.min_y + (gy + 0.5) * step_y};
      // The shared tie rule (strict <, lowest index): the owner of a
      // sample center is a pure function of the point, never of the grid
      // it was sampled on.
      owner[static_cast<size_t>(gy) * resolution + gx] =
          static_cast<int32_t>(BestWeightedSite(c, sites));
    }
  });

  // Gather each site's dominated sample centers (row-major, as the serial
  // scan produced them).
  std::vector<std::vector<Point>> samples(sites.size());
  for (int gy = 0; gy < resolution; ++gy) {
    for (int gx = 0; gx < resolution; ++gx) {
      const int32_t o = owner[static_cast<size_t>(gy) * resolution + gx];
      samples[o].push_back({bounds.min_x + (gx + 0.5) * step_x,
                            bounds.min_y + (gy + 0.5) * step_y});
    }
  }

  // Per-site cover extraction: each task writes only cells[i] and reads
  // the shared owner grid, so sites are independent.
  ParallelFor(threads, sites.size(), [&](size_t i) {
    TraceContextScope trace_scope(trace_ctx);
    TraceSpan span("weighted_cell_cover");
    WeightedCellApprox& cell = cells[i];
    cell.sample_count = samples[i].size();
    cell.empty = samples[i].empty();
    span.Counter("cells_clipped",
                 static_cast<int64_t>(cell.sample_count));
    if (cell.empty) return;
    Rect mbr;
    for (const Point& p : samples[i]) mbr.Expand(p);
    // Conservative cover: a dominated sample is the center of a grid cell.
    cell.mbr = Rect(mbr.min_x - 0.5 * step_x, mbr.min_y - 0.5 * step_y,
                    mbr.max_x + 0.5 * step_x, mbr.max_y + 0.5 * step_y);
    const ConvexPolygon hull = ConvexHull(samples[i]);
    if (!hull.Empty()) cell.hull = Polygon(hull.vertices());
    // Tight conservative cover: one-cell-dilated outer contours of the
    // dominated cells.
    std::vector<uint8_t> cell_mask(owner.size());
    for (size_t c = 0; c < owner.size(); ++c) {
      cell_mask[c] = owner[c] == static_cast<int32_t>(i) ? 1 : 0;
    }
    cell.cover = ExtractOuterContours(cell_mask, resolution, resolution,
                                      bounds, /*dilate=*/true);
    // The dilation can push the cover past the half-step MBR; keep the
    // MBR a cover of both.
    for (const Polygon& piece : cell.cover) {
      cell.mbr.Expand(piece.Bbox());
    }
    // The half-step expansion can land an ulp past the domain edge; the
    // dominance region lives inside `bounds` by definition, so clipping
    // the MBR to it loses nothing and keeps every consumer in-domain.
    cell.mbr = cell.mbr.Intersect(bounds);
  });
  return cells;
}

}  // namespace movd
