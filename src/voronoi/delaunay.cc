#include "voronoi/delaunay.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "geom/predicates.h"
#include "geom/rect.h"
#include "util/check.h"
#include "util/hilbert.h"

namespace movd {
namespace {

// Index of `value` within the triangle vertex array.
int IndexOf(const int32_t v[3], int32_t value) {
  for (int i = 0; i < 3; ++i) {
    if (v[i] == value) return i;
  }
  return -1;
}

}  // namespace

Delaunay::Delaunay(const std::vector<Point>& points) {
  points_ = points;
  std::sort(points_.begin(), points_.end(), LessXY);
  points_.erase(std::unique(points_.begin(), points_.end()), points_.end());
  num_real_ = points_.size();

  // Bounding super-quad, far enough away that within the input's bounding
  // box the synthetic vertices never shadow a real Delaunay edge in
  // practice. (The kNN-based Voronoi builder does not rely on this; the
  // Delaunay structure is used for neighbour queries and cross-checks.)
  Rect bb;
  for (const Point& p : points_) bb.Expand(p);
  if (bb.Empty()) bb = Rect(0, 0, 1, 1);
  const double span = std::max({bb.Width(), bb.Height(), 1.0});
  const Point c = bb.Center();
  const double kFar = 1e6;
  const double s = span * kFar;
  const int32_t q0 = static_cast<int32_t>(points_.size());
  points_.push_back({c.x - s, c.y - s});
  points_.push_back({c.x + s, c.y - s});
  points_.push_back({c.x + s, c.y + s});
  points_.push_back({c.x - s, c.y + s});

  // The two triangles share the diagonal (q0, q2): opposite vertex 1 in the
  // first triangle and vertex 2 in the second.
  tris_.push_back({{q0, q0 + 1, q0 + 2}, {-1, 1, -1}, true});
  tris_.push_back({{q0, q0 + 2, q0 + 3}, {-1, -1, 0}, true});
  last_created_ = 0;

  // Hilbert-sorted insertion order over the real points.
  std::vector<int32_t> order(num_real_);
  for (size_t i = 0; i < num_real_; ++i) order[i] = static_cast<int32_t>(i);
  constexpr uint32_t kOrder = 16;
  const double scale = (1u << kOrder) - 1;
  std::vector<uint64_t> key(num_real_);
  for (size_t i = 0; i < num_real_; ++i) {
    const uint32_t hx = static_cast<uint32_t>(
        (points_[i].x - bb.min_x) / std::max(bb.Width(), 1e-300) * scale);
    const uint32_t hy = static_cast<uint32_t>(
        (points_[i].y - bb.min_y) / std::max(bb.Height(), 1e-300) * scale);
    key[i] = HilbertIndex(kOrder, hx, hy);
  }
  // Points in one Hilbert cell share a key; break the tie by index so the
  // insertion order (and thus tie-breaking in degenerate configurations)
  // does not depend on the std::sort implementation.
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return key[a] != key[b] ? key[a] < key[b] : a < b;
  });

  for (const int32_t pi : order) Insert(pi);
}

int32_t Delaunay::Locate(const Point& p, int32_t hint) const {
  int32_t cur = hint;
  MOVD_DCHECK(tris_[cur].alive);
  size_t steps = 0;
  const size_t max_steps = 4 * tris_.size() + 64;
  int32_t prev = -1;
  while (steps++ < max_steps) {
    const Tri& t = tris_[cur];
    int32_t next = -1;
    for (int i = 0; i < 3; ++i) {
      const int32_t nb = t.nb[i];
      if (nb == prev || nb < 0) continue;
      const Point& a = points_[t.v[(i + 1) % 3]];
      const Point& b = points_[t.v[(i + 2) % 3]];
      if (Orient2D(a, b, p) < 0.0) {
        next = nb;
        break;
      }
    }
    if (next < 0) {
      // Re-check all edges including the one back to prev (p may sit in
      // prev after a degenerate step); if none is violated, cur contains p.
      bool inside = true;
      for (int i = 0; i < 3; ++i) {
        const Point& a = points_[t.v[(i + 1) % 3]];
        const Point& b = points_[t.v[(i + 2) % 3]];
        if (Orient2D(a, b, p) < 0.0) {
          inside = false;
          if (t.nb[i] >= 0) next = t.nb[i];
          break;
        }
      }
      if (inside) return cur;
      if (next < 0) break;  // walked off the triangulation: shouldn't happen
    }
    prev = cur;
    cur = next;
  }
  // Fallback: exhaustive scan (degenerate walk cycles are theoretically
  // impossible with exact predicates, but stay safe).
  for (size_t i = 0; i < tris_.size(); ++i) {
    if (!tris_[i].alive) continue;
    const Tri& t = tris_[i];
    bool inside = true;
    for (int e = 0; e < 3 && inside; ++e) {
      inside = Orient2D(points_[t.v[(e + 1) % 3]], points_[t.v[(e + 2) % 3]],
                        p) >= 0.0;
    }
    if (inside) return static_cast<int32_t>(i);
  }
  MOVD_CHECK(false);  // point outside the super-quad
  return -1;
}

bool Delaunay::InCavity(int32_t tri, const Point& p) const {
  const Tri& t = tris_[tri];
  return InCircle(points_[t.v[0]], points_[t.v[1]], points_[t.v[2]], p) > 0.0;
}

void Delaunay::Insert(int32_t pi) {
  const Point& p = points_[pi];
  const int32_t seed = Locate(p, last_created_);

  // Grow the cavity: all triangles whose circumcircle strictly contains p.
  std::vector<int32_t> cavity;
  std::unordered_set<int32_t> in_cavity;
  std::vector<int32_t> stack = {seed};
  in_cavity.insert(seed);
  while (!stack.empty()) {
    const int32_t cur = stack.back();
    stack.pop_back();
    cavity.push_back(cur);
    for (int i = 0; i < 3; ++i) {
      const int32_t nb = tris_[cur].nb[i];
      if (nb < 0 || in_cavity.count(nb)) continue;
      if (InCavity(nb, p)) {
        in_cavity.insert(nb);
        stack.push_back(nb);
      }
    }
  }

  // Collect the boundary: directed edges (a, b) of cavity triangles whose
  // across-neighbour is outside the cavity. Cavity interior lies to the
  // left of each directed edge.
  struct BoundaryEdge {
    int32_t a, b;
    int32_t outside;  // triangle across, or -1
  };
  std::vector<BoundaryEdge> boundary;
  for (const int32_t ti : cavity) {
    const Tri& t = tris_[ti];
    for (int i = 0; i < 3; ++i) {
      const int32_t nb = t.nb[i];
      if (nb >= 0 && in_cavity.count(nb)) continue;
      boundary.push_back({t.v[(i + 1) % 3], t.v[(i + 2) % 3], nb});
    }
  }

  // Retriangulate the cavity as a fan around p.
  std::unordered_map<int32_t, int32_t> tri_by_start;  // edge.a -> new tri id
  std::vector<int32_t> new_ids;
  new_ids.reserve(boundary.size());
  // Reuse dead slots to curb growth.
  size_t reuse_cursor = 0;
  auto alloc = [&]() -> int32_t {
    while (reuse_cursor < cavity.size()) {
      const int32_t id = cavity[reuse_cursor++];
      return id;
    }
    tris_.push_back({});
    return static_cast<int32_t>(tris_.size() - 1);
  };
  for (const int32_t ti : cavity) tris_[ti].alive = false;

  for (const BoundaryEdge& e : boundary) {
    const int32_t id = alloc();
    Tri& t = tris_[id];
    t.v[0] = e.a;
    t.v[1] = e.b;
    t.v[2] = pi;
    t.nb[0] = -1;  // edge (b, p): wired below
    t.nb[1] = -1;  // edge (p, a): wired below
    t.nb[2] = e.outside;
    t.alive = true;
    if (e.outside >= 0) {
      Tri& o = tris_[e.outside];
      // Find the edge of `outside` matching (b, a) and point it at us.
      for (int i = 0; i < 3; ++i) {
        if (o.v[(i + 1) % 3] == e.b && o.v[(i + 2) % 3] == e.a) {
          o.nb[i] = id;
          break;
        }
      }
    }
    tri_by_start[e.a] = id;
    new_ids.push_back(id);
  }
  // Stitch the fan: triangle starting at a has edges (b,p) and (p,a).
  for (const int32_t id : new_ids) {
    Tri& t = tris_[id];
    const int32_t a = t.v[0];
    const int32_t b = t.v[1];
    const auto next = tri_by_start.find(b);  // shares edge (b, p)
    MOVD_DCHECK(next != tri_by_start.end());
    t.nb[0] = next->second;
    // The triangle sharing (p, a) is the one whose edge ends at a, i.e. the
    // unique triangle T' with T'.v[1] == a; equivalently next_of[T'] == this.
    // We wire it symmetrically from the other side: T'.nb[0] points here, so
    // set our nb[1] when visiting as someone else's next.
    tris_[next->second].nb[1] = id;
    (void)a;
  }
  last_created_ = new_ids.empty() ? last_created_ : new_ids.back();
  MOVD_DCHECK(!new_ids.empty());
}

std::vector<Delaunay::Triangle> Delaunay::Triangles() const {
  std::vector<Triangle> out;
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    Triangle tri;
    for (int i = 0; i < 3; ++i) {
      tri.v[i] = t.v[i];
      tri.neighbor[i] = t.nb[i];
    }
    out.push_back(tri);
  }
  return out;
}

std::vector<int32_t> Delaunay::Neighbors(int32_t site) const {
  std::unordered_set<int32_t> seen;
  std::vector<int32_t> out;
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    const int idx = IndexOf(t.v, site);
    if (idx < 0) continue;
    for (int i = 0; i < 3; ++i) {
      const int32_t v = t.v[i];
      if (v == site || v >= static_cast<int32_t>(num_real_)) continue;
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<std::vector<int32_t>> Delaunay::NeighborLists() const {
  const auto real = static_cast<int32_t>(num_real_);
  std::vector<std::vector<int32_t>> lists(num_real_);
  const auto add = [&](int32_t a, int32_t b) {
    if (a >= real || b >= real) return;
    lists[a].push_back(b);
  };
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    // Record each directed edge once per incident triangle; duplicates
    // (each interior edge appears in two triangles) are removed below.
    add(t.v[0], t.v[1]);
    add(t.v[1], t.v[2]);
    add(t.v[2], t.v[0]);
    add(t.v[1], t.v[0]);
    add(t.v[2], t.v[1]);
    add(t.v[0], t.v[2]);
  }
  for (auto& list : lists) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return lists;
}

bool Delaunay::VerifyDelaunay() const {
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    bool synthetic = false;
    for (int i = 0; i < 3; ++i) {
      synthetic |= t.v[i] >= static_cast<int32_t>(num_real_);
    }
    if (synthetic) continue;
    for (size_t p = 0; p < num_real_; ++p) {
      if (IndexOf(t.v, static_cast<int32_t>(p)) >= 0) continue;
      if (InCircle(points_[t.v[0]], points_[t.v[1]], points_[t.v[2]],
                   points_[p]) > 0.0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace movd
