#ifndef MOVD_VORONOI_DYNAMIC_H_
#define MOVD_VORONOI_DYNAMIC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "index/rtree.h"

namespace movd {

/// A dynamically maintained ordinary Voronoi diagram (extension beyond the
/// paper, supporting the "frequently updated databases" setting its related
/// work discusses): sites can be inserted and removed with local cell
/// recomputation instead of a full rebuild.
///
/// Insertion carves the new site's cell out of its neighbours (each
/// affected cell is clipped by one bisector); removal recomputes the cells
/// adjacent to the vacated region. Both operations touch O(local
/// neighbourhood) sites. Cells are identical to a fresh
/// VoronoiDiagram::Build over the live sites (verified by tests).
class DynamicVoronoi {
 public:
  explicit DynamicVoronoi(const Rect& bounds);

  /// Bulk constructor: equivalent to inserting every site (duplicates
  /// collapsed), but built with the static builder.
  DynamicVoronoi(const std::vector<Point>& sites, const Rect& bounds);

  /// Inserts a site and returns its id, or nullopt if a site already
  /// exists at exactly that location.
  std::optional<int32_t> InsertSite(const Point& p);

  /// Removes a site by id. Returns false for unknown/removed ids.
  bool RemoveSite(int32_t id);

  /// The site's location; nullopt for removed/unknown ids.
  std::optional<Point> SiteLocation(int32_t id) const;

  /// The site's current cell; nullptr for removed/unknown ids.
  const ConvexPolygon* Cell(int32_t id) const;

  /// Ids of all live sites, ascending.
  std::vector<int32_t> LiveSites() const;

  size_t size() const { return live_count_; }
  const Rect& bounds() const { return bounds_; }

 private:
  struct Site {
    Point location;
    ConvexPolygon cell;
    bool alive = false;
  };

  /// Recomputes one site's cell from scratch against the current index.
  ConvexPolygon ComputeCell(const Point& p, int32_t self_id) const;

  Rect bounds_;
  std::vector<Site> sites_;
  RTree index_;  // live sites, id = site index
  size_t live_count_ = 0;
};

}  // namespace movd

#endif  // MOVD_VORONOI_DYNAMIC_H_
