#include "voronoi/dynamic.h"

#include <algorithm>

#include "util/check.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

// Clips `cell` to the bisector half-plane of p against q (p's side).
void ClipByBisector(ConvexPolygon* cell, const Point& p, const Point& q) {
  const Point mid = (p + q) * 0.5;
  const Point dir{-(q.y - p.y), q.x - p.x};
  cell->ClipByHalfPlane(mid, mid + dir);
}

double MaxVertexDistance2(const ConvexPolygon& cell, const Point& p) {
  double r2 = 0.0;
  for (const Point& v : cell.vertices()) {
    r2 = std::max(r2, Distance2(v, p));
  }
  return r2;
}

}  // namespace

DynamicVoronoi::DynamicVoronoi(const Rect& bounds) : bounds_(bounds) {
  MOVD_CHECK(!bounds.Empty());
}

DynamicVoronoi::DynamicVoronoi(const std::vector<Point>& sites,
                               const Rect& bounds)
    : DynamicVoronoi(bounds) {
  const VoronoiDiagram vd = VoronoiDiagram::Build(sites, bounds);
  sites_.reserve(vd.sites().size());
  std::vector<RTree::Entry> entries;
  for (size_t i = 0; i < vd.sites().size(); ++i) {
    Site site;
    site.location = vd.sites()[i];
    site.cell = vd.cells()[i].region;
    site.alive = true;
    sites_.push_back(std::move(site));
    entries.push_back({Rect::OfPoint(vd.sites()[i]),
                       static_cast<int64_t>(i)});
  }
  index_ = RTree::BulkLoad(std::move(entries));
  live_count_ = sites_.size();
}

ConvexPolygon DynamicVoronoi::ComputeCell(const Point& p,
                                          int32_t self_id) const {
  ConvexPolygon cell = ConvexPolygon::FromRect(bounds_);
  RTree::NearestStream stream(index_, p);
  double r2 = MaxVertexDistance2(cell, p);
  RTree::Neighbor nb;
  while (!cell.Empty() && stream.Next(&nb)) {
    if (nb.id == self_id) continue;
    if (nb.distance2 > 4.0 * r2) break;
    ClipByBisector(&cell, p, sites_[nb.id].location);
    r2 = MaxVertexDistance2(cell, p);
  }
  return cell;
}

std::optional<int32_t> DynamicVoronoi::InsertSite(const Point& p) {
  // Reject exact duplicates (they would create an empty cell).
  for (const int64_t id : index_.RangeQuery(Rect::OfPoint(p))) {
    if (sites_[id].location == p) return std::nullopt;
  }
  const auto new_id = static_cast<int32_t>(sites_.size());
  // Compute the new cell against the existing sites, then subtract it from
  // every neighbour it overlaps: each affected cell just gains one
  // bisector constraint.
  ConvexPolygon cell = ComputeCell(p, new_id);
  const Rect carve = cell.Bbox();
  // Every cell overlapping the carved region gains exactly one bisector
  // constraint. Candidates are selected by cell-box overlap (a superset);
  // clipping an unaffected cell by the bisector is a no-op.
  for (size_t i = 0; i < sites_.size(); ++i) {
    Site& site = sites_[i];
    if (!site.alive || static_cast<int32_t>(i) == new_id) continue;
    if (!site.cell.Bbox().Intersects(carve)) continue;
    ClipByBisector(&site.cell, site.location, p);
  }

  Site site;
  site.location = p;
  site.cell = std::move(cell);
  site.alive = true;
  sites_.push_back(std::move(site));
  index_.Insert({Rect::OfPoint(p), new_id});
  ++live_count_;
  return new_id;
}

bool DynamicVoronoi::RemoveSite(int32_t id) {
  if (id < 0 || id >= static_cast<int32_t>(sites_.size()) ||
      !sites_[id].alive) {
    return false;
  }
  Site& victim = sites_[id];
  const Rect vacated = victim.cell.Empty() ? Rect::OfPoint(victim.location)
                                           : victim.cell.Bbox();
  victim.alive = false;
  victim.cell = ConvexPolygon();
  MOVD_CHECK(index_.Remove({Rect::OfPoint(victim.location), id}));
  --live_count_;

  // Recompute every cell that could expand into the vacated region: the
  // cells adjacent to it. Their new extent is bounded by their old extent
  // plus the vacated cell, so candidates are exactly the live sites whose
  // current cell box touches the vacated box.
  for (size_t i = 0; i < sites_.size(); ++i) {
    Site& site = sites_[i];
    if (!site.alive) continue;
    if (!site.cell.Bbox().Intersects(vacated) &&
        !(site.cell.Empty() && vacated.Contains(site.location))) {
      continue;
    }
    site.cell = ComputeCell(site.location, static_cast<int32_t>(i));
  }
  return true;
}

std::optional<Point> DynamicVoronoi::SiteLocation(int32_t id) const {
  if (id < 0 || id >= static_cast<int32_t>(sites_.size()) ||
      !sites_[id].alive) {
    return std::nullopt;
  }
  return sites_[id].location;
}

const ConvexPolygon* DynamicVoronoi::Cell(int32_t id) const {
  if (id < 0 || id >= static_cast<int32_t>(sites_.size()) ||
      !sites_[id].alive) {
    return nullptr;
  }
  return &sites_[id].cell;
}

std::vector<int32_t> DynamicVoronoi::LiveSites() const {
  std::vector<int32_t> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].alive) out.push_back(static_cast<int32_t>(i));
  }
  return out;
}

}  // namespace movd
