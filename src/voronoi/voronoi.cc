#include "voronoi/voronoi.h"

#include <algorithm>
#include <limits>

#include "index/rtree.h"
#include "util/check.h"
#include "voronoi/delaunay.h"

namespace movd {
namespace {

// Clips `cell` to the half-plane of points at least as close to `p` as to
// `q` (the perpendicular-bisector half-plane containing p).
void ClipByBisector(ConvexPolygon* cell, const Point& p, const Point& q) {
  const Point mid = (p + q) * 0.5;
  const Point dir{-(q.y - p.y), q.x - p.x};  // bisector direction; p on left
  cell->ClipByHalfPlane(mid, mid + dir);
}

// Squared circumradius of the cell around `p`.
double MaxVertexDistance2(const ConvexPolygon& cell, const Point& p) {
  double r2 = 0.0;
  for (const Point& v : cell.vertices()) {
    r2 = std::max(r2, Distance2(v, p));
  }
  return r2;
}

}  // namespace

VoronoiDiagram VoronoiDiagram::Build(std::vector<Point> sites,
                                     const Rect& bounds, Strategy strategy) {
  std::sort(sites.begin(), sites.end(), LessXY);
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());

  VoronoiDiagram vd;
  vd.bounds_ = bounds;
  vd.sites_ = std::move(sites);
  vd.cells_.resize(vd.sites_.size());
  if (vd.sites_.empty()) return vd;

  if (strategy == Strategy::kDelaunay) {
    // Delaunay route: a site's Voronoi cell is bounded exactly by the
    // bisectors against its Delaunay neighbours.
    const Delaunay dt(vd.sites_);
    MOVD_CHECK(dt.num_real_points() == vd.sites_.size());
    // The triangulation deduplicates and sorts with the same order as
    // above, so indices line up.
    const auto neighbors = dt.NeighborLists();
    for (size_t i = 0; i < vd.sites_.size(); ++i) {
      const Point& p = vd.sites_[i];
      // NeighborLists() is ascending by index over the LessXY-sorted site
      // array, so this is the canonical (LessXY) clip order.
      std::vector<Point> nb_points;
      nb_points.reserve(neighbors[i].size());
      for (const int32_t nb : neighbors[i]) {
        nb_points.push_back(dt.points()[nb]);
      }
      vd.cells_[i].site = static_cast<int32_t>(i);
      vd.cells_[i].region = CanonicalVoronoiCell(p, nb_points, bounds);
    }
    return vd;
  }

  const RTree tree = RTree::BulkLoadPoints(vd.sites_);
  for (size_t i = 0; i < vd.sites_.size(); ++i) {
    const Point& p = vd.sites_[i];
    ConvexPolygon cell = ConvexPolygon::FromRect(bounds);
    RTree::NearestStream stream(tree, p);
    double r2 = MaxVertexDistance2(cell, p);
    RTree::Neighbor nb;
    while (!cell.Empty() && stream.Next(&nb)) {
      if (nb.id == static_cast<int64_t>(i)) continue;  // the site itself
      // A site farther than twice the current circumradius cannot cut the
      // cell: its bisector stays outside the disk containing the cell.
      if (nb.distance2 > 4.0 * r2) break;
      ClipByBisector(&cell, p, vd.sites_[nb.id]);
      r2 = MaxVertexDistance2(cell, p);
    }
    vd.cells_[i].site = static_cast<int32_t>(i);
    vd.cells_[i].region = std::move(cell);
  }
  return vd;
}

ConvexPolygon CanonicalVoronoiCell(const Point& site,
                                   const std::vector<Point>& neighbors,
                                   const Rect& bounds) {
  ConvexPolygon cell = ConvexPolygon::FromRect(bounds);
  for (const Point& q : neighbors) {
    if (cell.Empty()) break;
    ClipByBisector(&cell, site, q);
  }
  return cell;
}

int32_t VoronoiDiagram::NearestSiteBrute(const Point& p) const {
  MOVD_CHECK(!sites_.empty());
  int32_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < sites_.size(); ++i) {
    const double d2 = Distance2(p, sites_[i]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

}  // namespace movd
