#ifndef MOVD_VORONOI_DELAUNAY_H_
#define MOVD_VORONOI_DELAUNAY_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace movd {

/// Incremental Delaunay triangulation (Bowyer–Watson with a far-away
/// bounding super-quad, exact predicates, visibility-walk point location,
/// Hilbert-order insertion).
///
/// Used as an independent substrate and as a cross-check for the kNN-based
/// Voronoi cell builder (see voronoi.h): interior sites' Delaunay neighbour
/// sets must match the sites cutting their Voronoi cells.
class Delaunay {
 public:
  /// One triangle; vertex indices refer to points(); neighbor[i] is the
  /// triangle across the edge opposite vertex i, or -1.
  struct Triangle {
    int32_t v[3];
    int32_t neighbor[3];
  };

  /// Triangulates `points` (duplicates are collapsed). The four synthetic
  /// super-quad vertices occupy indices n..n+3 of points().
  explicit Delaunay(const std::vector<Point>& points);

  /// All points, including the 4 synthetic bounding vertices at the end.
  const std::vector<Point>& points() const { return points_; }

  /// Number of real (input, deduplicated) points.
  size_t num_real_points() const { return num_real_; }

  /// Triangles that survive (not removed by later insertions), including
  /// those incident to synthetic vertices.
  std::vector<Triangle> Triangles() const;

  /// Indices of real points adjacent to real point `site` via a Delaunay
  /// edge (synthetic vertices filtered out). Order unspecified.
  std::vector<int32_t> Neighbors(int32_t site) const;

  /// Adjacency lists for every real point in one O(T) pass; result[i] is
  /// Neighbors(i) (order unspecified).
  std::vector<std::vector<int32_t>> NeighborLists() const;

  /// True when the triangulation satisfies the empty-circumcircle property
  /// for every real triangle against every real point (O(T*N); tests only).
  bool VerifyDelaunay() const;

 private:
  struct Tri {
    int32_t v[3];
    int32_t nb[3];
    bool alive = true;
  };

  void Insert(int32_t pi);
  int32_t Locate(const Point& p, int32_t hint) const;
  bool InCavity(int32_t tri, const Point& p) const;

  std::vector<Point> points_;
  size_t num_real_ = 0;
  std::vector<Tri> tris_;
  int32_t last_created_ = 0;  // locate hint
};

}  // namespace movd

#endif  // MOVD_VORONOI_DELAUNAY_H_
