#ifndef MOVD_VORONOI_VORONOI_H_
#define MOVD_VORONOI_VORONOI_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"

namespace movd {

/// One cell of an ordinary Voronoi diagram, clipped to the search space.
struct VoronoiCell {
  int32_t site = -1;     ///< index into VoronoiDiagram::sites()
  ConvexPolygon region;  ///< closed convex polygon; empty if the site's
                         ///< dominance region misses the bounds entirely
};

/// An ordinary (unweighted) Voronoi diagram clipped to a rectangle.
///
/// Cells are built independently per site by incremental nearest-neighbour
/// expansion over an R-tree: the cell starts as the full bounding rectangle
/// and is clipped by the perpendicular bisector against each neighbour in
/// ascending distance until the next neighbour is provably too far to cut
/// (distance > 2x the cell's current circumradius around the site). This
/// yields exactly the clipped Voronoi cell without requiring global hull
/// bookkeeping, and is cross-checked against the Delaunay triangulation in
/// tests.
class VoronoiDiagram {
 public:
  /// Cell-construction strategy; both produce the same diagram and are
  /// cross-validated against each other in tests.
  enum class Strategy {
    /// Independent per-site construction by incremental nearest-neighbour
    /// expansion over an R-tree (the default; see the class comment).
    kNearestNeighbor,
    /// Bowyer–Watson Delaunay triangulation first, then each cell as the
    /// bounds clipped by bisectors against the site's Delaunay neighbours.
    kDelaunay,
  };

  /// Builds the diagram of `sites` (exact duplicates collapsed) clipped to
  /// `bounds`. Average cost O(n log n).
  static VoronoiDiagram Build(std::vector<Point> sites, const Rect& bounds,
                              Strategy strategy = Strategy::kNearestNeighbor);

  /// Deduplicated generator points; cells()[i].site indexes this vector.
  const std::vector<Point>& sites() const { return sites_; }

  /// One cell per site, in site order.
  const std::vector<VoronoiCell>& cells() const { return cells_; }

  const Rect& bounds() const { return bounds_; }

  /// Index of the nearest site to `p` by linear scan (ties to the lowest
  /// index). O(n); intended for tests and small inputs.
  int32_t NearestSiteBrute(const Point& p) const;

 private:
  std::vector<Point> sites_;
  std::vector<VoronoiCell> cells_;
  Rect bounds_;
};

/// The canonical clipped Voronoi cell of `site`: the bounds rectangle cut
/// by the perpendicular bisector against each neighbour, in the order
/// given. With `neighbors` = the site's Delaunay neighbours sorted by
/// LessXY this is exactly the cell the Strategy::kDelaunay build produces;
/// the incremental update path (src/core/update) relies on that byte
/// identity, so every caller that wants reproducible cells must pass the
/// neighbours in LessXY order.
ConvexPolygon CanonicalVoronoiCell(const Point& site,
                                   const std::vector<Point>& neighbors,
                                   const Rect& bounds);

}  // namespace movd

#endif  // MOVD_VORONOI_VORONOI_H_
