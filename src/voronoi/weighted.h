#ifndef MOVD_VORONOI_WEIGHTED_H_
#define MOVD_VORONOI_WEIGHTED_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"

namespace movd {

/// A weighted Voronoi generator with an affine distance deformation:
///   weighted_distance(q) = multiplier * d(q, location) + offset.
/// This subsumes the two classic weighted Voronoi diagrams (paper §5.3,
/// Fig. 5): multiplicative (multiplier = w, offset = 0, Apollonius-circle
/// boundaries) and additive (multiplier = 1, offset = w, hyperbolic
/// boundaries) — and the compositions of ς^t/ς^o the MOLQ engine produces.
struct WeightedSite {
  Point location;
  double multiplier = 1.0;
  double offset = 0.0;
};

/// Convenience constructors for the two classic diagrams.
inline WeightedSite MultiplicativeSite(Point location, double weight) {
  return {location, weight, 0.0};
}
inline WeightedSite AdditiveSite(Point location, double weight) {
  return {location, 1.0, weight};
}

/// The weighted distance used for dominance tests.
double WeightedSiteDistance(const Point& p, const WeightedSite& site);

/// Grid-sampled approximation of one weighted Voronoi dominance region.
///
/// Weighted cells are bounded by circular/hyperbolic arcs, can be concave
/// and even disconnected; the paper's MBRB approach (§5.3) is motivated by
/// exactly this. The approximation provides what MBRB consumes — a
/// *conservative* MBR covering every grid cell the generator dominates —
/// plus a convex-hull polygon of the dominated samples for visualisation.
/// `empty` marks generators that dominate no sample.
struct WeightedCellApprox {
  int32_t site = -1;
  Rect mbr;
  Polygon hull;
  /// Tight conservative polygonal cover: outer contours of the dominated
  /// grid cells, dilated by one grid step (possibly several components;
  /// may be concave). Strictly covers the sampled dominance region, much
  /// tighter than `mbr` — this is what the RRB pipeline uses for weighted
  /// diagrams.
  std::vector<Polygon> cover;
  size_t sample_count = 0;
  bool empty = true;
};

/// Approximates the weighted Voronoi diagram of `sites` in `bounds` by
/// assigning each cell of a `resolution` x `resolution` grid to its
/// dominating generator (ties to the lowest index). Each returned MBR is
/// expanded by half a grid step so it covers the sampled dominance region
/// conservatively. O(resolution^2 * n).
///
/// `threads` parallelises the dominance sampling (by grid row) and the
/// per-site cover extraction; every grid cell's owner is a pure function
/// of (sites, bounds, resolution), so the result is identical for every
/// thread count. 1 is serial, 0 means one thread per hardware thread.
std::vector<WeightedCellApprox> ApproximateWeightedVoronoi(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    int resolution, int threads = 1);

}  // namespace movd

#endif  // MOVD_VORONOI_WEIGHTED_H_
