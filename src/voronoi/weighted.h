#ifndef MOVD_VORONOI_WEIGHTED_H_
#define MOVD_VORONOI_WEIGHTED_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "util/exec_options.h"

namespace movd {

/// A weighted Voronoi generator with an affine distance deformation:
///   weighted_distance(q) = multiplier * d(q, location) + offset.
/// This subsumes the two classic weighted Voronoi diagrams (paper §5.3,
/// Fig. 5): multiplicative (multiplier = w, offset = 0, Apollonius-circle
/// boundaries) and additive (multiplier = 1, offset = w, hyperbolic
/// boundaries) — and the compositions of ς^t/ς^o the MOLQ engine produces.
struct WeightedSite {
  Point location;
  double multiplier = 1.0;
  double offset = 0.0;
};

/// Convenience constructors for the two classic diagrams.
inline WeightedSite MultiplicativeSite(Point location, double weight) {
  return {location, weight, 0.0};
}
inline WeightedSite AdditiveSite(Point location, double weight) {
  return {location, 1.0, weight};
}

/// The weighted distance used for dominance tests.
double WeightedSiteDistance(const Point& p, const WeightedSite& site);

/// The owner of point `p`: the lowest-index generator achieving the
/// minimum weighted distance. This is THE dominance tie rule of the
/// library — a strict, epsilon-free `<` with the index as tie-breaker, so
/// the owner of a fixed point is a pure function of (p, sites) and cannot
/// flip with the sampling resolution or construction method. Every
/// per-point dominance decision (dense-grid sampling, adaptive leaf
/// classification, audit re-checks) must go through this function.
inline size_t BestWeightedSite(const Point& p,
                               const std::vector<WeightedSite>& sites) {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < sites.size(); ++i) {
    const double d =
        sites[i].multiplier * Distance(p, sites[i].location) +
        sites[i].offset;
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

/// Grid-sampled approximation of one weighted Voronoi dominance region.
///
/// Weighted cells are bounded by circular/hyperbolic arcs, can be concave
/// and even disconnected; the paper's MBRB approach (§5.3) is motivated by
/// exactly this. The approximation provides what MBRB consumes — a
/// *conservative* MBR covering every grid cell the generator dominates —
/// plus a convex-hull polygon of the dominated samples for visualisation.
/// `empty` marks generators that dominate no sample.
struct WeightedCellApprox {
  int32_t site = -1;
  /// Conservative MBR of the dominance region. Empty generators keep the
  /// sentinel invalid Rect() (min > max, Rect::Empty() true); consumers
  /// must skip `empty` cells rather than feed the sentinel into MBR
  /// arithmetic.
  Rect mbr;
  Polygon hull;
  /// Tight conservative polygonal cover: outer contours of the dominated
  /// grid cells (dense) or possibly-owned quadtree leaves (adaptive),
  /// dilated by one grid step and clipped to the construction bounds
  /// (possibly several components; may be concave). Strictly covers the
  /// constructed dominance region, much tighter than `mbr` — this is what
  /// the RRB pipeline uses for weighted diagrams.
  std::vector<Polygon> cover;
  /// Dense grid: number of lattice samples this generator dominates.
  /// Adaptive: number of effective-lattice leaf cells the cover was built
  /// from (ambiguous boundary leaves count toward every candidate, so the
  /// per-cell counts can sum past the lattice size).
  size_t sample_count = 0;
  bool empty = true;
};

/// Construction knobs for BuildWeightedCells. `resolution` is the target
/// accuracy: the dense grid samples a resolution x resolution lattice; the
/// adaptive method refines to leaf cells of the next power-of-two lattice
/// (EffectiveWeightedResolution), so its covers are at least as fine.
struct WeightedOptions {
  WeightedMethod method = WeightedMethod::kAdaptive;
  int resolution = 128;
  /// 1 is serial, 0 means one thread per hardware thread. The result is
  /// identical for every thread count under both methods.
  int threads = 1;
};

/// The adaptive method's effective leaf lattice for a target `resolution`:
/// the smallest power of two >= resolution (so leaves align to an exact
/// binary subdivision of `bounds`).
int EffectiveWeightedResolution(int resolution);

/// Builds the approximate weighted Voronoi diagram of `sites` in `bounds`
/// with the method selected in `options`. This is the ONLY entry point
/// callers may use (a lint rule forbids direct calls to the per-method
/// builders below): it keeps the method knob, tie rule, and conservative
/// guarantees in one place.
///
/// Both methods guarantee, per generator i:
///  - `cover` (and `mbr`) conservatively contain every sampled/classified
///    point owned by i under the BestWeightedSite tie rule — the adaptive
///    cover contains the entire true dominance region;
///  - covers are clipped to `bounds` (dominance is never reported outside
///    the query domain);
///  - `empty` generators carry the sentinel invalid Rect() as `mbr` and no
///    hull/cover.
std::vector<WeightedCellApprox> BuildWeightedCells(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    const WeightedOptions& options);

/// Dense-grid reference builder (WeightedMethod::kDenseGrid): assigns each
/// cell of a `resolution` x `resolution` grid to its dominating generator
/// via BestWeightedSite. Each returned MBR is expanded by half a grid step
/// so it covers the sampled dominance region conservatively.
/// O(resolution^2 * n). `threads` parallelises the dominance sampling (by
/// grid row) and the per-site cover extraction.
///
/// Call through BuildWeightedCells — direct calls are lint-rejected
/// outside the dispatch.
std::vector<WeightedCellApprox> ApproximateWeightedVoronoi(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    int resolution, int threads = 1);

/// Adaptive quadtree builder (WeightedMethod::kAdaptive, DESIGN.md §11):
/// classifies quad nodes by interval dominance bounds on the affine
/// weighted distance, recurses only on boundary-ambiguous nodes down to
/// leaves of the EffectiveWeightedResolution lattice, and emits covers of
/// every node a generator might own — a strict superset of the dense
/// grid's dominated samples at the same effective resolution.
///
/// Call through BuildWeightedCells — direct calls are lint-rejected
/// outside the dispatch.
std::vector<WeightedCellApprox> AdaptiveWeightedVoronoi(
    const std::vector<WeightedSite>& sites, const Rect& bounds,
    int resolution, int threads = 1);

}  // namespace movd

#endif  // MOVD_VORONOI_WEIGHTED_H_
