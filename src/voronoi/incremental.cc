#include "voronoi/incremental.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <unordered_set>
#include <utility>

#include "geom/predicates.h"
#include "util/check.h"
#include "util/hilbert.h"

namespace movd {
namespace {

// Index of `value` within the triangle vertex array.
int IndexOf(const int32_t v[3], int32_t value) {
  for (int i = 0; i < 3; ++i) {
    if (v[i] == value) return i;
  }
  return -1;
}

}  // namespace

IncrementalDelaunay::IncrementalDelaunay(const std::vector<Point>& points,
                                         const Rect& world) {
  MOVD_CHECK_MSG(!world.Empty(),
                 "IncrementalDelaunay: world rectangle must be non-empty");
  world_ = world;

  // Synthetic super-quad at indices 0..3, derived from the fixed world
  // rectangle so it never moves as sites come and go.
  const double span = std::max({world.Width(), world.Height(), 1.0});
  const Point c = world.Center();
  const double kFar = 1e6;
  const double s = span * kFar;
  points_.push_back({c.x - s, c.y - s});
  points_.push_back({c.x + s, c.y - s});
  points_.push_back({c.x + s, c.y + s});
  points_.push_back({c.x - s, c.y + s});
  live_.assign(4, true);

  // The two seed triangles share the diagonal (0, 2).
  tris_.push_back({{0, 1, 2}, {-1, 1, -1}, true});
  tris_.push_back({{0, 2, 3}, {-1, -1, 0}, true});
  last_created_ = 0;

  // Hilbert-sorted initial insertion (same curve the batch builder uses),
  // with a LessXY tie-break so the order is implementation-independent.
  std::vector<Point> initial = points;
  std::sort(initial.begin(), initial.end(), LessXY);
  initial.erase(std::unique(initial.begin(), initial.end()), initial.end());
  constexpr uint32_t kOrder = 16;
  const double scale = (1u << kOrder) - 1;
  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(initial.size());
  for (const Point& p : initial) {
    const uint32_t hx = static_cast<uint32_t>(
        (p.x - world.min_x) / std::max(world.Width(), 1e-300) * scale);
    const uint32_t hy = static_cast<uint32_t>(
        (p.y - world.min_y) / std::max(world.Height(), 1e-300) * scale);
    keyed.emplace_back(HilbertIndex(kOrder, hx, hy), p);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [key, p] : keyed) {
    (void)key;
    const bool inserted = Insert(p, nullptr);
    MOVD_CHECK(inserted);
  }
}

int32_t IncrementalDelaunay::AllocVertex(const Point& p) {
  if (!free_vertices_.empty()) {
    const int32_t id = free_vertices_.back();
    free_vertices_.pop_back();
    points_[id] = p;
    live_[id] = true;
    return id;
  }
  points_.push_back(p);
  live_.push_back(true);
  return static_cast<int32_t>(points_.size() - 1);
}

int32_t IncrementalDelaunay::AllocTri() {
  if (!free_tris_.empty()) {
    const int32_t id = free_tris_.back();
    free_tris_.pop_back();
    return id;
  }
  tris_.push_back({});
  return static_cast<int32_t>(tris_.size() - 1);
}

int32_t IncrementalDelaunay::Locate(const Point& p, int32_t hint) const {
  int32_t cur = hint;
  MOVD_DCHECK(tris_[cur].alive);
  size_t steps = 0;
  const size_t max_steps = 4 * tris_.size() + 64;
  int32_t prev = -1;
  while (steps++ < max_steps) {
    const Tri& t = tris_[cur];
    int32_t next = -1;
    for (int i = 0; i < 3; ++i) {
      const int32_t nb = t.nb[i];
      if (nb == prev || nb < 0) continue;
      const Point& a = points_[t.v[(i + 1) % 3]];
      const Point& b = points_[t.v[(i + 2) % 3]];
      if (Orient2D(a, b, p) < 0.0) {
        next = nb;
        break;
      }
    }
    if (next < 0) {
      // Re-check all edges including the one back to prev (p may sit in
      // prev after a degenerate step); if none is violated, cur contains p.
      bool inside = true;
      for (int i = 0; i < 3; ++i) {
        const Point& a = points_[t.v[(i + 1) % 3]];
        const Point& b = points_[t.v[(i + 2) % 3]];
        if (Orient2D(a, b, p) < 0.0) {
          inside = false;
          if (t.nb[i] >= 0) next = t.nb[i];
          break;
        }
      }
      if (inside) return cur;
      if (next < 0) break;  // walked off the triangulation: shouldn't happen
    }
    prev = cur;
    cur = next;
  }
  // Fallback: exhaustive scan (degenerate walk cycles are theoretically
  // impossible with exact predicates, but stay safe).
  for (size_t i = 0; i < tris_.size(); ++i) {
    if (!tris_[i].alive) continue;
    const Tri& t = tris_[i];
    bool inside = true;
    for (int e = 0; e < 3 && inside; ++e) {
      inside = Orient2D(points_[t.v[(e + 1) % 3]], points_[t.v[(e + 2) % 3]],
                        p) >= 0.0;
    }
    if (inside) return static_cast<int32_t>(i);
  }
  MOVD_CHECK(false);  // point outside the super-quad
  return -1;
}

bool IncrementalDelaunay::InCavity(int32_t tri, const Point& p) const {
  const Tri& t = tris_[tri];
  return InCircle(points_[t.v[0]], points_[t.v[1]], points_[t.v[2]], p) > 0.0;
}

void IncrementalDelaunay::InsertVertex(int32_t pi) {
  const Point& p = points_[pi];
  const int32_t seed = Locate(p, last_created_);

  // Grow the cavity: all triangles whose circumcircle strictly contains p.
  std::vector<int32_t> cavity;
  std::unordered_set<int32_t> in_cavity;
  std::vector<int32_t> stack = {seed};
  in_cavity.insert(seed);
  while (!stack.empty()) {
    const int32_t cur = stack.back();
    stack.pop_back();
    cavity.push_back(cur);
    for (int i = 0; i < 3; ++i) {
      const int32_t nb = tris_[cur].nb[i];
      if (nb < 0 || in_cavity.count(nb)) continue;
      if (InCavity(nb, p)) {
        in_cavity.insert(nb);
        stack.push_back(nb);
      }
    }
  }

  // Collect the boundary: directed edges (a, b) of cavity triangles whose
  // across-neighbour is outside the cavity. Cavity interior lies to the
  // left of each directed edge.
  struct BoundaryEdge {
    int32_t a, b;
    int32_t outside;  // triangle across, or -1
  };
  std::vector<BoundaryEdge> boundary;
  for (const int32_t ti : cavity) {
    const Tri& t = tris_[ti];
    for (int i = 0; i < 3; ++i) {
      const int32_t nb = t.nb[i];
      if (nb >= 0 && in_cavity.count(nb)) continue;
      boundary.push_back({t.v[(i + 1) % 3], t.v[(i + 2) % 3], nb});
    }
  }

  // Retriangulate the cavity as a fan around p, reusing the dead slots
  // before touching the free list or growing the pool.
  std::unordered_map<int32_t, int32_t> tri_by_start;  // edge.a -> new tri id
  std::vector<int32_t> new_ids;
  new_ids.reserve(boundary.size());
  size_t reuse_cursor = 0;
  auto alloc = [&]() -> int32_t {
    if (reuse_cursor < cavity.size()) return cavity[reuse_cursor++];
    return AllocTri();
  };
  for (const int32_t ti : cavity) tris_[ti].alive = false;

  for (const BoundaryEdge& e : boundary) {
    const int32_t id = alloc();
    Tri& t = tris_[id];
    t.v[0] = e.a;
    t.v[1] = e.b;
    t.v[2] = pi;
    t.nb[0] = -1;  // edge (b, p): wired below
    t.nb[1] = -1;  // edge (p, a): wired below
    t.nb[2] = e.outside;
    t.alive = true;
    if (e.outside >= 0) {
      Tri& o = tris_[e.outside];
      // Find the edge of `outside` matching (b, a) and point it at us.
      for (int i = 0; i < 3; ++i) {
        if (o.v[(i + 1) % 3] == e.b && o.v[(i + 2) % 3] == e.a) {
          o.nb[i] = id;
          break;
        }
      }
    }
    tri_by_start[e.a] = id;
    new_ids.push_back(id);
  }
  // Cavity slots the fan did not need (never happens for Bowyer–Watson —
  // the fan has cavity+2 triangles — but keep the invariant local).
  while (reuse_cursor < cavity.size()) {
    free_tris_.push_back(cavity[reuse_cursor++]);
  }
  // Stitch the fan: triangle starting at a has edges (b,p) and (p,a).
  for (const int32_t id : new_ids) {
    Tri& t = tris_[id];
    const int32_t b = t.v[1];
    const auto next = tri_by_start.find(b);  // shares edge (b, p)
    MOVD_DCHECK(next != tri_by_start.end());
    t.nb[0] = next->second;
    tris_[next->second].nb[1] = id;
  }
  last_created_ = new_ids.empty() ? last_created_ : new_ids.back();
  MOVD_DCHECK(!new_ids.empty());
}

bool IncrementalDelaunay::Insert(const Point& p,
                                 std::vector<Point>* affected) {
  MOVD_CHECK_MSG(std::isfinite(p.x) && std::isfinite(p.y) &&
                     world_.Contains(p),
                 "IncrementalDelaunay::Insert: point outside the world "
                 "rectangle");
  if (site_of_.count(p) > 0) return false;
  const int32_t pi = AllocVertex(p);
  InsertVertex(pi);
  site_of_.emplace(p, pi);
  if (affected != nullptr) {
    affected->clear();
    affected->push_back(p);
    for (const int32_t nb : NeighborIds(pi)) {
      affected->push_back(points_[nb]);
    }
    std::sort(affected->begin(), affected->end(), LessXY);
  }
  return true;
}

bool IncrementalDelaunay::Remove(const Point& p,
                                 std::vector<Point>* affected) {
  const auto it = site_of_.find(p);
  if (it == site_of_.end()) return false;
  const int32_t vi = it->second;

  // The star of vi and its link polygon: each star triangle (vi, a, b)
  // contributes the directed edge a->b (interior of the star to its
  // left), and chaining those edges walks the link counterclockwise.
  std::vector<int32_t> star;
  std::map<int32_t, int32_t> link_next;
  std::map<std::pair<int32_t, int32_t>, int32_t> out_tri;
  for (size_t ti = 0; ti < tris_.size(); ++ti) {
    const Tri& t = tris_[ti];
    if (!t.alive) continue;
    const int idx = IndexOf(t.v, vi);
    if (idx < 0) continue;
    star.push_back(static_cast<int32_t>(ti));
    const int32_t a = t.v[(idx + 1) % 3];
    const int32_t b = t.v[(idx + 2) % 3];
    link_next[a] = b;
    out_tri[{a, b}] = t.nb[idx];
  }
  if (star.size() < 3 || link_next.size() != star.size()) {
    return false;  // corrupt star; let the caller rebuild
  }
  // Start the cycle at the smallest link vertex id so the ear scan order
  // (and with it the diagonal choice in cocircular cavities) is a
  // deterministic function of the current triangulation.
  std::vector<int32_t> cycle;
  const int32_t start = link_next.begin()->first;
  cycle.push_back(start);
  for (int32_t cur = link_next[start]; cur != start;
       cur = link_next[cur]) {
    if (cycle.size() > star.size()) return false;  // not a single cycle
    cycle.push_back(cur);
  }
  if (cycle.size() != star.size()) return false;

  // Plan the cavity retriangulation by Delaunay ear-clipping before
  // mutating anything, so a stall leaves the triangulation untouched. An
  // ear (a, b, c) is valid when it is counterclockwise and no other
  // remaining link vertex lies strictly inside its circumcircle (which
  // also excludes any vertex inside the triangle itself).
  std::vector<std::array<int32_t, 3>> ears;
  std::vector<int32_t> poly = cycle;
  while (poly.size() > 3) {
    bool clipped = false;
    for (size_t i = 0; i < poly.size() && !clipped; ++i) {
      const size_t n = poly.size();
      const int32_t a = poly[(i + n - 1) % n];
      const int32_t b = poly[i];
      const int32_t c = poly[(i + 1) % n];
      if (Orient2D(points_[a], points_[b], points_[c]) <= 0.0) continue;
      bool empty = true;
      for (const int32_t d : poly) {
        if (d == a || d == b || d == c) continue;
        if (InCircle(points_[a], points_[b], points_[c], points_[d]) > 0.0) {
          empty = false;
          break;
        }
      }
      if (!empty) continue;
      ears.push_back({a, b, c});
      poly.erase(poly.begin() + static_cast<std::ptrdiff_t>(i));
      clipped = true;
    }
    if (!clipped) return false;  // stalled; caller falls back to a rebuild
  }
  if (Orient2D(points_[poly[0]], points_[poly[1]], points_[poly[2]]) <= 0.0) {
    return false;
  }
  ears.push_back({poly[0], poly[1], poly[2]});

  if (affected != nullptr) {
    affected->clear();
    for (const int32_t v : cycle) {
      if (!IsSynthetic(v)) affected->push_back(points_[v]);
    }
    std::sort(affected->begin(), affected->end(), LessXY);
  }

  // Apply: kill the star, then materialise the planned ears, wiring
  // adjacency through a directed half-edge map. The map is pre-seeded
  // with the triangles outside the cavity (keyed by their directed edge
  // (b, a) opposite the cavity's (a, b)); each new triangle either finds
  // its partner in the map or registers its own half-edges.
  std::map<std::pair<int32_t, int32_t>, std::pair<int32_t, int>> half;
  for (size_t i = 0; i < cycle.size(); ++i) {
    const int32_t a = cycle[i];
    const int32_t b = cycle[(i + 1) % cycle.size()];
    const int32_t outside = out_tri[{a, b}];
    if (outside < 0) continue;
    const Tri& o = tris_[outside];
    for (int e = 0; e < 3; ++e) {
      if (o.v[(e + 1) % 3] == b && o.v[(e + 2) % 3] == a) {
        half[{b, a}] = {outside, e};
        break;
      }
    }
  }
  for (const int32_t ti : star) tris_[ti].alive = false;
  size_t reuse_cursor = 0;
  int32_t last_id = -1;
  for (const auto& ear : ears) {
    const int32_t id = star[reuse_cursor++];
    Tri& t = tris_[id];
    t.v[0] = ear[0];
    t.v[1] = ear[1];
    t.v[2] = ear[2];
    t.nb[0] = t.nb[1] = t.nb[2] = -1;
    t.alive = true;
    for (int e = 0; e < 3; ++e) {
      const int32_t u = t.v[(e + 1) % 3];
      const int32_t v = t.v[(e + 2) % 3];
      const auto partner = half.find({v, u});
      if (partner != half.end()) {
        t.nb[e] = partner->second.first;
        tris_[partner->second.first].nb[partner->second.second] = id;
      } else {
        half[{u, v}] = {id, e};
      }
    }
    last_id = id;
  }
  // An m-gon retriangulates into m-2 ears, so two star slots are left.
  while (reuse_cursor < star.size()) {
    free_tris_.push_back(star[reuse_cursor++]);
  }
  last_created_ = last_id;
  live_[vi] = false;
  free_vertices_.push_back(vi);
  site_of_.erase(it);
  return true;
}

std::vector<int32_t> IncrementalDelaunay::NeighborIds(int32_t vertex) const {
  std::unordered_set<int32_t> seen;
  std::vector<int32_t> out;
  for (const Tri& t : tris_) {
    if (!t.alive) continue;
    if (IndexOf(t.v, vertex) < 0) continue;
    for (int i = 0; i < 3; ++i) {
      const int32_t v = t.v[i];
      if (v == vertex || IsSynthetic(v)) continue;
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

std::vector<Point> IncrementalDelaunay::Sites() const {
  std::vector<Point> out;
  out.reserve(site_of_.size());
  for (size_t i = 4; i < points_.size(); ++i) {
    if (live_[i]) out.push_back(points_[i]);
  }
  std::sort(out.begin(), out.end(), LessXY);
  return out;
}

std::vector<Point> IncrementalDelaunay::NeighborsOf(const Point& p) const {
  const auto it = site_of_.find(p);
  MOVD_CHECK_MSG(it != site_of_.end(),
                 "IncrementalDelaunay::NeighborsOf: unknown site");
  std::vector<Point> out;
  for (const int32_t nb : NeighborIds(it->second)) {
    out.push_back(points_[nb]);
  }
  std::sort(out.begin(), out.end(), LessXY);
  return out;
}

bool IncrementalDelaunay::Verify() const {
  for (size_t ti = 0; ti < tris_.size(); ++ti) {
    const Tri& t = tris_[ti];
    if (!t.alive) continue;
    for (int i = 0; i < 3; ++i) {
      const int32_t v = t.v[i];
      if (v < 0 || v >= static_cast<int32_t>(points_.size())) return false;
      if (!IsSynthetic(v) && !live_[v]) return false;
      const int32_t nb = t.nb[i];
      if (nb < 0) continue;
      if (nb >= static_cast<int32_t>(tris_.size()) || !tris_[nb].alive) {
        return false;
      }
      // The neighbour must share the edge opposite v[i], mirrored.
      const Tri& o = tris_[nb];
      const int back = IndexOf(o.nb, static_cast<int32_t>(ti));
      if (back < 0) return false;
      if (o.v[(back + 1) % 3] != t.v[(i + 2) % 3] ||
          o.v[(back + 2) % 3] != t.v[(i + 1) % 3]) {
        return false;
      }
    }
    bool synthetic = false;
    for (int i = 0; i < 3; ++i) synthetic |= IsSynthetic(t.v[i]);
    if (!synthetic &&
        Orient2D(points_[t.v[0]], points_[t.v[1]], points_[t.v[2]]) <= 0.0) {
      return false;
    }
    if (synthetic) continue;
    for (size_t pi = 4; pi < points_.size(); ++pi) {
      if (!live_[pi] || IndexOf(t.v, static_cast<int32_t>(pi)) >= 0) continue;
      if (InCircle(points_[t.v[0]], points_[t.v[1]], points_[t.v[2]],
                   points_[pi]) > 0.0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace movd
