#ifndef MOVD_VORONOI_INCREMENTAL_H_
#define MOVD_VORONOI_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// Dynamic Delaunay triangulation over a fixed world rectangle.
///
/// `Delaunay` (delaunay.cc) is a batch structure: it sorts its input once
/// and parks the four synthetic super-quad vertices at the end of the
/// point array, so every consumer can treat `index >= num_real_points()`
/// as "synthetic". That convention cannot survive appends, which is why
/// live updates get their own class instead of growing the batch one:
/// here the synthetic quad sits at indices 0..3 (derived from the world
/// rectangle, not the data), real vertices are appended after it and
/// addressed by location, and vertex/triangle slots are recycled across
/// deletions so long-lived serving datasets do not leak.
///
/// Insertion is the same Bowyer–Watson cavity algorithm the batch builder
/// uses; deletion collects the star of the doomed vertex and
/// retriangulates its link polygon by Delaunay ear-clipping (an ear is
/// valid when it is counterclockwise and no other link vertex lies
/// strictly inside its circumcircle). Both report the set of sites whose
/// neighbour sets may have changed — exactly {p} ∪ neighbours(p) for an
/// insert and the former neighbours of p for a delete — which is what the
/// incremental Voronoi/MOVD patcher (src/core/update) recomputes.
///
/// Degenerate point sets (4+ cocircular sites) admit more than one valid
/// Delaunay triangulation; this class picks one deterministically, but it
/// may differ from the batch builder's choice. Callers that need byte
/// agreement with a from-scratch rebuild (the serve patch path) gate that
/// with the audit validator and fall back to a full rebuild.
class IncrementalDelaunay {
 public:
  /// Builds the triangulation of `points` (exact duplicates collapsed).
  /// Every point — initial or inserted later — must lie inside `world`.
  IncrementalDelaunay(const std::vector<Point>& points, const Rect& world);

  /// Whether `p` is currently a vertex of the triangulation.
  bool Contains(const Point& p) const { return site_of_.count(p) > 0; }

  /// Number of live real vertices.
  size_t size() const { return site_of_.size(); }

  /// Inserts `p`; returns false (and changes nothing) when `p` is already
  /// a vertex. On success `affected` (if non-null) receives the sites
  /// whose Delaunay neighbour sets may have changed — `p` and its new
  /// neighbours — sorted by LessXY.
  bool Insert(const Point& p, std::vector<Point>* affected);

  /// Removes `p`; returns false when `p` is not a vertex or the cavity
  /// retriangulation stalls (the triangulation is left unchanged in both
  /// cases — on a stall the caller rebuilds from scratch). On success
  /// `affected` (if non-null) receives the former neighbours of `p`,
  /// sorted by LessXY.
  bool Remove(const Point& p, std::vector<Point>* affected);

  /// Live sites, sorted by LessXY (the batch builders' site order).
  std::vector<Point> Sites() const;

  /// Delaunay neighbours of the existing vertex `p`, sorted by LessXY.
  std::vector<Point> NeighborsOf(const Point& p) const;

  /// Structural self-check for tests: neighbour-link symmetry, triangle
  /// orientation, and the empty-circumcircle property of every triangle
  /// with no synthetic vertex.
  bool Verify() const;

 private:
  struct Tri {
    int32_t v[3];   // CCW vertices
    int32_t nb[3];  // nb[i] across the edge opposite v[i]; -1 = none
    bool alive;
  };

  bool IsSynthetic(int32_t vertex) const { return vertex < 4; }
  int32_t AllocVertex(const Point& p);
  int32_t AllocTri();
  int32_t Locate(const Point& p, int32_t hint) const;
  bool InCavity(int32_t tri, const Point& p) const;
  void InsertVertex(int32_t pi);
  std::vector<int32_t> NeighborIds(int32_t vertex) const;

  Rect world_;
  std::vector<Point> points_;  // indices 0..3 are the synthetic quad
  std::vector<bool> live_;
  std::vector<int32_t> free_vertices_;
  std::unordered_map<Point, int32_t, PointHash> site_of_;
  std::vector<Tri> tris_;
  std::vector<int32_t> free_tris_;
  int32_t last_created_ = 0;
};

}  // namespace movd

#endif  // MOVD_VORONOI_INCREMENTAL_H_
