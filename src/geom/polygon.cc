#include "geom/polygon.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "geom/predicates.h"
#include "util/check.h"

namespace movd {
namespace {

// Removes consecutive duplicate vertices (including wrap-around).
void Dedup(std::vector<Point>* pts) {
  pts->erase(std::unique(pts->begin(), pts->end()), pts->end());
  while (pts->size() > 1 && pts->front() == pts->back()) pts->pop_back();
}

double RingSignedArea(const std::vector<Point>& v) {
  double area2 = 0.0;
  for (size_t i = 0, n = v.size(); i < n; ++i) {
    const Point& p = v[i];
    const Point& q = v[(i + 1) % n];
    area2 += p.Cross(q);
  }
  return 0.5 * area2;
}

// Intersection of segment (p, q) with the infinite line through (a, b).
// The caller guarantees p and q straddle the line per the *exact*
// predicates; the double-precision denominator can still vanish when p and
// q differ by an ulp, in which case either endpoint is the crossing within
// representable precision.
Point LineSegmentCross(const Point& a, const Point& b, const Point& p,
                       const Point& q) {
  const Point d = b - a;
  const double denom = d.Cross(q - p);
  if (denom == 0.0) return p;
  double t = d.Cross(a - p) / denom;  // position along p->q
  t = std::clamp(t, 0.0, 1.0);
  return p + (q - p) * t;
}

bool PointInTriangle(const Point& a, const Point& b, const Point& c,
                     const Point& p) {
  // Triangle is CCW; boundary counts as inside.
  return Orient2D(a, b, p) >= 0.0 && Orient2D(b, c, p) >= 0.0 &&
         Orient2D(c, a, p) >= 0.0;
}

}  // namespace

ConvexPolygon::ConvexPolygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  Dedup(&vertices_);
  if (vertices_.size() < 3) {
    vertices_.clear();
    return;
  }
#ifndef NDEBUG
  for (size_t i = 0, n = vertices_.size(); i < n; ++i) {
    MOVD_DCHECK(Orient2D(vertices_[i], vertices_[(i + 1) % n],
                         vertices_[(i + 2) % n]) >= 0.0);
  }
#endif
}

ConvexPolygon ConvexPolygon::FromTrustedRing(std::vector<Point> vertices) {
  ConvexPolygon p;
  p.vertices_ = std::move(vertices);
  if (p.vertices_.size() < 3) p.vertices_.clear();
  return p;
}

ConvexPolygon ConvexPolygon::FromRect(const Rect& r) {
  if (r.Empty()) return ConvexPolygon();
  return ConvexPolygon({{r.min_x, r.min_y},
                        {r.max_x, r.min_y},
                        {r.max_x, r.max_y},
                        {r.min_x, r.max_y}});
}

ConvexPolygon ConvexPolygon::Intersect(const ConvexPolygon& a,
                                       const ConvexPolygon& b) {
  if (a.Empty() || b.Empty()) return ConvexPolygon();
  if (!a.Bbox().Intersects(b.Bbox())) return ConvexPolygon();
  ConvexPolygon out = a;
  const auto& bv = b.vertices();
  for (size_t i = 0, n = bv.size(); i < n && !out.Empty(); ++i) {
    out.ClipByHalfPlane(bv[i], bv[(i + 1) % n]);
  }
  return out;
}

double ConvexPolygon::Area() const {
  return Empty() ? 0.0 : std::fabs(RingSignedArea(vertices_));
}

Point ConvexPolygon::Centroid() const {
  MOVD_CHECK(!Empty());
  double cx = 0.0, cy = 0.0, area2 = 0.0;
  for (size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % n];
    const double w = p.Cross(q);
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
    area2 += w;
  }
  if (area2 == 0.0) return vertices_[0];  // degenerate: any vertex
  return Point(cx / (3.0 * area2), cy / (3.0 * area2));
}

Rect ConvexPolygon::Bbox() const {
  Rect r;
  for (const Point& p : vertices_) r.Expand(p);
  return r;
}

bool ConvexPolygon::Contains(const Point& p) const {
  if (Empty()) return false;
  for (size_t i = 0, n = vertices_.size(); i < n; ++i) {
    if (Orient2D(vertices_[i], vertices_[(i + 1) % n], p) < 0.0) return false;
  }
  return true;
}

void ConvexPolygon::ClipByHalfPlane(const Point& a, const Point& b) {
  if (Empty()) return;
  std::vector<Point> out;
  out.reserve(vertices_.size() + 1);
  const size_t n = vertices_.size();
  double side_p = Orient2D(a, b, vertices_[0]);
  for (size_t i = 0; i < n; ++i) {
    const Point& p = vertices_[i];
    const Point& q = vertices_[(i + 1) % n];
    const double side_q = Orient2D(a, b, q);
    if (side_p >= 0.0) {
      out.push_back(p);
      if (side_q < 0.0) out.push_back(LineSegmentCross(a, b, p, q));
    } else if (side_q >= 0.0) {
      out.push_back(LineSegmentCross(a, b, p, q));
    }
    side_p = side_q;
  }
  Dedup(&out);
  if (out.size() < 3) out.clear();
  vertices_ = std::move(out);
}

void ConvexPolygon::DropIfSliver(double min_area) {
  if (!Empty() && Area() < min_area) vertices_.clear();
}

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  Dedup(&vertices_);
  if (vertices_.size() < 3) {
    vertices_.clear();
    return;
  }
  // Normalise to CCW orientation.
  if (RingSignedArea(vertices_) < 0.0) {
    std::reverse(vertices_.begin(), vertices_.end());
  }
}

double Polygon::SignedArea() const {
  return Empty() ? 0.0 : RingSignedArea(vertices_);
}

bool Polygon::IsConvex() const {
  if (Empty()) return false;
  for (size_t i = 0, n = vertices_.size(); i < n; ++i) {
    if (Orient2D(vertices_[i], vertices_[(i + 1) % n],
                 vertices_[(i + 2) % n]) < 0.0) {
      return false;
    }
  }
  return true;
}

Rect Polygon::Bbox() const {
  Rect r;
  for (const Point& p : vertices_) r.Expand(p);
  return r;
}

bool Polygon::Contains(const Point& p) const {
  if (Empty()) return false;
  bool inside = false;
  for (size_t i = 0, n = vertices_.size(); i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    // Boundary check: p on segment (a, b).
    if (Orient2D(a, b, p) == 0.0 && p.x >= std::min(a.x, b.x) &&
        p.x <= std::max(a.x, b.x) && p.y >= std::min(a.y, b.y) &&
        p.y <= std::max(a.y, b.y)) {
      return true;
    }
    // Crossing-number ray cast to +x.
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_cross > p.x) inside = !inside;
    }
  }
  return inside;
}

std::vector<ConvexPolygon> Polygon::Triangulate() const {
  std::vector<ConvexPolygon> out;
  if (Empty()) return out;
  std::vector<Point> ring = vertices_;

  // Ear clipping. Each iteration removes one vertex; a full pass without an
  // ear indicates a degenerate ring, in which case remaining collinear
  // vertices are dropped.
  while (ring.size() > 3) {
    const size_t n = ring.size();
    bool clipped = false;
    for (size_t i = 0; i < n; ++i) {
      const Point& prev = ring[(i + n - 1) % n];
      const Point& cur = ring[i];
      const Point& next = ring[(i + 1) % n];
      const double turn = Orient2D(prev, cur, next);
      if (turn < 0.0) continue;  // reflex vertex, not an ear
      if (turn == 0.0) {
        // Collinear vertex contributes no area; drop it outright.
        ring.erase(ring.begin() + static_cast<ptrdiff_t>(i));
        clipped = true;
        break;
      }
      bool blocked = false;
      for (size_t j = 0; j < n && !blocked; ++j) {
        if (j == i || j == (i + n - 1) % n || j == (i + 1) % n) continue;
        blocked = PointInTriangle(prev, cur, next, ring[j]);
      }
      if (blocked) continue;
      out.push_back(ConvexPolygon({prev, cur, next}));
      ring.erase(ring.begin() + static_cast<ptrdiff_t>(i));
      clipped = true;
      break;
    }
    if (!clipped) break;  // non-simple input; emit what we have
  }
  if (ring.size() == 3 && Orient2D(ring[0], ring[1], ring[2]) > 0.0) {
    out.push_back(ConvexPolygon(std::move(ring)));
  }
  return out;
}

Region Region::FromConvex(ConvexPolygon piece) {
  Region r;
  if (!piece.Empty()) r.pieces_.push_back(std::move(piece));
  return r;
}

Region Region::FromPolygon(const Polygon& polygon) {
  if (polygon.Empty()) return Region();
  if (polygon.IsConvex()) {
    return FromConvex(ConvexPolygon(polygon.vertices()));
  }
  Region r;
  r.pieces_ = polygon.Triangulate();
  return r;
}

Region Region::FromRect(const Rect& r) {
  return FromConvex(ConvexPolygon::FromRect(r));
}

Region Region::FromPieces(std::vector<ConvexPolygon> pieces) {
  Region r;
  for (ConvexPolygon& piece : pieces) {
    if (!piece.Empty()) r.pieces_.push_back(std::move(piece));
  }
  return r;
}

Region Region::Intersect(const Region& a, const Region& b, double min_area) {
  Region out;
  for (const ConvexPolygon& pa : a.pieces_) {
    const Rect ba = pa.Bbox();
    for (const ConvexPolygon& pb : b.pieces_) {
      if (!ba.Intersects(pb.Bbox())) continue;
      ConvexPolygon piece = ConvexPolygon::Intersect(pa, pb);
      piece.DropIfSliver(min_area);
      if (!piece.Empty()) out.pieces_.push_back(std::move(piece));
    }
  }
  return out;
}

double Region::Area() const {
  double a = 0.0;
  for (const ConvexPolygon& p : pieces_) a += p.Area();
  return a;
}

Rect Region::Bbox() const {
  Rect r;
  for (const ConvexPolygon& p : pieces_) r.Expand(p.Bbox());
  return r;
}

size_t Region::VertexCount() const {
  size_t n = 0;
  for (const ConvexPolygon& p : pieces_) n += p.VertexCount();
  return n;
}

bool Region::Contains(const Point& p) const {
  for (const ConvexPolygon& piece : pieces_) {
    if (piece.Contains(p)) return true;
  }
  return false;
}

}  // namespace movd
