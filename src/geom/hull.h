#ifndef MOVD_GEOM_HULL_H_
#define MOVD_GEOM_HULL_H_

#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"

namespace movd {

/// Convex hull of a point set (Andrew's monotone chain, exact predicates).
/// Returns the hull vertices in counterclockwise order without repetition;
/// collinear points on hull edges are excluded. Fewer than 3 non-collinear
/// input points yield an empty polygon.
ConvexPolygon ConvexHull(std::vector<Point> points);

}  // namespace movd

#endif  // MOVD_GEOM_HULL_H_
