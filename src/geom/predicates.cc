#include "geom/predicates.h"

#include <cmath>

#include "geom/expansion.h"

namespace movd {
namespace {

using expansion::Estimate;
using expansion::FastExpansionSumZeroelim;
using expansion::ScaleExpansionZeroelim;
using expansion::TwoProduct;
using expansion::TwoTwoDiff;

// Machine epsilon as used by Shewchuk: half an ulp of 1.0.
constexpr double kEpsilon = 0x1.0p-53;
// Forward error bounds for the fast (filtered) evaluations.
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEpsilon) * kEpsilon;
constexpr double kIccErrBoundA = (10.0 + 96.0 * kEpsilon) * kEpsilon;

// Exact sign of orient2d, via full expansion arithmetic on the untranslated
// coordinates: det = (ax*by - ax*cy) + (bx*cy - bx*ay) + (cx*ay - cx*by).
double Orient2DExact(const Point& a, const Point& b, const Point& c) {
  double axby1, axby0, axcy1, axcy0;
  double bxcy1, bxcy0, bxay1, bxay0;
  double cxay1, cxay0, cxby1, cxby0;
  double aterms[4], bterms[4], cterms[4];
  double v[8], w[12];

  TwoProduct(a.x, b.y, &axby1, &axby0);
  TwoProduct(a.x, c.y, &axcy1, &axcy0);
  TwoTwoDiff(axby1, axby0, axcy1, axcy0, aterms);

  TwoProduct(b.x, c.y, &bxcy1, &bxcy0);
  TwoProduct(b.x, a.y, &bxay1, &bxay0);
  TwoTwoDiff(bxcy1, bxcy0, bxay1, bxay0, bterms);

  TwoProduct(c.x, a.y, &cxay1, &cxay0);
  TwoProduct(c.x, b.y, &cxby1, &cxby0);
  TwoTwoDiff(cxay1, cxay0, cxby1, cxby0, cterms);

  const int vlen = FastExpansionSumZeroelim(4, aterms, 4, bterms, v);
  const int wlen = FastExpansionSumZeroelim(vlen, v, 4, cterms, w);
  return w[wlen - 1];
}

// Computes the exact 4-expansion of (px*qy - qx*py) into h.
void CrossTerm(const Point& p, const Point& q, double h[4]) {
  double pxqy1, pxqy0, qxpy1, qxpy0;
  TwoProduct(p.x, q.y, &pxqy1, &pxqy0);
  TwoProduct(q.x, p.y, &qxpy1, &qxpy0);
  TwoTwoDiff(pxqy1, pxqy0, qxpy1, qxpy0, h);
}

// h = (s.x^2 + s.y^2) * e * sign, exactly. e has elen components (<= 12);
// h needs room for 8 * elen doubles. Returns the component count.
int LiftScale(const Point& s, double sign, int elen, const double* e,
              double* h) {
  double tx[24], txx[48], ty[24], tyy[48];
  const int txlen = ScaleExpansionZeroelim(elen, e, s.x, tx);
  const int txxlen = ScaleExpansionZeroelim(txlen, tx, sign * s.x, txx);
  const int tylen = ScaleExpansionZeroelim(elen, e, s.y, ty);
  const int tyylen = ScaleExpansionZeroelim(tylen, ty, sign * s.y, tyy);
  return FastExpansionSumZeroelim(txxlen, txx, tyylen, tyy, h);
}

// Exact sign of the in-circle determinant via the lifted 4x4 expansion:
//   det = alift*bcd - blift*cda + clift*dab - dlift*abc
// where xyz denotes the 3x3 minor |x 1; y 1; z 1| of planar rows.
double InCircleExact(const Point& a, const Point& b, const Point& c,
                     const Point& d) {
  double ab[4], bc[4], cd[4], da[4], ac[4], bd[4];
  CrossTerm(a, b, ab);
  CrossTerm(b, c, bc);
  CrossTerm(c, d, cd);
  CrossTerm(d, a, da);
  CrossTerm(a, c, ac);
  CrossTerm(b, d, bd);

  double temp8[8];
  double cda[12], dab[12], abc[12], bcd[12];
  int templen = FastExpansionSumZeroelim(4, cd, 4, da, temp8);
  const int cdalen = FastExpansionSumZeroelim(templen, temp8, 4, ac, cda);
  templen = FastExpansionSumZeroelim(4, da, 4, ab, temp8);
  const int dablen = FastExpansionSumZeroelim(templen, temp8, 4, bd, dab);
  for (int i = 0; i < 4; ++i) {
    bd[i] = -bd[i];
    ac[i] = -ac[i];
  }
  templen = FastExpansionSumZeroelim(4, ab, 4, bc, temp8);
  const int abclen = FastExpansionSumZeroelim(templen, temp8, 4, ac, abc);
  templen = FastExpansionSumZeroelim(4, bc, 4, cd, temp8);
  const int bcdlen = FastExpansionSumZeroelim(templen, temp8, 4, bd, bcd);

  double adet[96], bdet[96], cdet[96], ddet[96];
  const int alen = LiftScale(a, +1.0, bcdlen, bcd, adet);
  const int blen = LiftScale(b, -1.0, cdalen, cda, bdet);
  const int clen = LiftScale(c, +1.0, dablen, dab, cdet);
  const int dlen = LiftScale(d, -1.0, abclen, abc, ddet);

  double abdet[192], cddet[192], deter[384];
  const int ablen = FastExpansionSumZeroelim(alen, adet, blen, bdet, abdet);
  const int cdlen = FastExpansionSumZeroelim(clen, cdet, dlen, ddet, cddet);
  const int deterlen =
      FastExpansionSumZeroelim(ablen, abdet, cdlen, cddet, deter);
  return deter[deterlen - 1];
}

}  // namespace

double Orient2D(const Point& a, const Point& b, const Point& c) {
  const double detleft = (a.x - c.x) * (b.y - c.y);
  const double detright = (a.y - c.y) * (b.x - c.x);
  const double det = detleft - detright;
  double detsum;

  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }
  const double errbound = kCcwErrBoundA * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return Orient2DExact(a, b, c);
}

double InCircle(const Point& a, const Point& b, const Point& c,
                const Point& d) {
  const double adx = a.x - d.x;
  const double bdx = b.x - d.x;
  const double cdx = c.x - d.x;
  const double ady = a.y - d.y;
  const double bdy = b.y - d.y;
  const double cdy = c.y - d.y;

  const double bdxcdy = bdx * cdy;
  const double cdxbdy = cdx * bdy;
  const double alift = adx * adx + ady * ady;

  const double cdxady = cdx * ady;
  const double adxcdy = adx * cdy;
  const double blift = bdx * bdx + bdy * bdy;

  const double adxbdy = adx * bdy;
  const double bdxady = bdx * ady;
  const double clift = cdx * cdx + cdy * cdy;

  const double det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) +
                     clift * (adxbdy - bdxady);

  const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * alift +
                           (std::fabs(cdxady) + std::fabs(adxcdy)) * blift +
                           (std::fabs(adxbdy) + std::fabs(bdxady)) * clift;
  const double errbound = kIccErrBoundA * permanent;
  if (det > errbound || -det > errbound) return det;
  return InCircleExact(a, b, c, d);
}

}  // namespace movd
