#include "geom/expansion.h"

#include <cmath>

namespace movd {
namespace expansion {
namespace {

/// x + y == a + b exactly, assuming |a| >= |b|.
inline void FastTwoSum(double a, double b, double* x, double* y) {
  const double sum = a + b;
  const double bvirt = sum - a;
  *x = sum;
  *y = b - bvirt;
}

}  // namespace

void TwoSum(double a, double b, double* x, double* y) {
  const double sum = a + b;
  const double bvirt = sum - a;
  const double avirt = sum - bvirt;
  const double bround = b - bvirt;
  const double around = a - avirt;
  *x = sum;
  *y = around + bround;
}

void TwoDiff(double a, double b, double* x, double* y) {
  const double diff = a - b;
  const double bvirt = a - diff;
  const double avirt = diff + bvirt;
  const double bround = bvirt - b;
  const double around = a - avirt;
  *x = diff;
  *y = around + bround;
}

void TwoProduct(double a, double b, double* x, double* y) {
  // std::fma is correctly rounded, so the residual is the exact product
  // error. This replaces the classic Dekker split on hardware with FMA.
  const double p = a * b;
  *x = p;
  *y = std::fma(a, b, -p);
}

void TwoTwoDiff(double a1, double a0, double b1, double b0, double h[4]) {
  double i, j, r0;
  // (a1, a0) - b0 -> (j, r0, h[0])
  TwoDiff(a0, b0, &i, &h[0]);
  TwoSum(a1, i, &j, &r0);
  // (j, r0) - b1 -> (h[3], h[2], h[1])
  TwoDiff(r0, b1, &i, &h[1]);
  TwoSum(j, i, &h[3], &h[2]);
}

int FastExpansionSumZeroelim(int elen, const double* e, int flen,
                             const double* f, double* h) {
  double q, qnew, hh;
  int eindex = 0;
  int findex = 0;
  int hindex = 0;
  double enow = e[0];
  double fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    if (++eindex < elen) enow = e[eindex];
  } else {
    q = fnow;
    if (++findex < flen) fnow = f[findex];
  }
  if ((eindex < elen) && (findex < flen)) {
    if ((fnow > enow) == (fnow > -enow)) {
      FastTwoSum(enow, q, &qnew, &hh);
      if (++eindex < elen) enow = e[eindex];
    } else {
      FastTwoSum(fnow, q, &qnew, &hh);
      if (++findex < flen) fnow = f[findex];
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while ((eindex < elen) && (findex < flen)) {
      if ((fnow > enow) == (fnow > -enow)) {
        TwoSum(q, enow, &qnew, &hh);
        if (++eindex < elen) enow = e[eindex];
      } else {
        TwoSum(q, fnow, &qnew, &hh);
        if (++findex < flen) fnow = f[findex];
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    TwoSum(q, enow, &qnew, &hh);
    if (++eindex < elen) enow = e[eindex];
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    TwoSum(q, fnow, &qnew, &hh);
    if (++findex < flen) fnow = f[findex];
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) {
    h[hindex++] = q;
  }
  return hindex;
}

int ScaleExpansionZeroelim(int elen, const double* e, double b, double* h) {
  double q, sum, hh, product1, product0;
  int hindex = 0;
  TwoProduct(e[0], b, &q, &hh);
  if (hh != 0.0) h[hindex++] = hh;
  for (int eindex = 1; eindex < elen; ++eindex) {
    TwoProduct(e[eindex], b, &product1, &product0);
    TwoSum(q, product0, &sum, &hh);
    if (hh != 0.0) h[hindex++] = hh;
    FastTwoSum(product1, sum, &q, &hh);
    if (hh != 0.0) h[hindex++] = hh;
  }
  if ((q != 0.0) || (hindex == 0)) {
    h[hindex++] = q;
  }
  return hindex;
}

double Estimate(int elen, const double* e) {
  double q = e[0];
  for (int i = 1; i < elen; ++i) q += e[i];
  return q;
}

}  // namespace expansion
}  // namespace movd
