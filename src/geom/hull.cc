#include "geom/hull.h"

#include <algorithm>

#include "geom/predicates.h"

namespace movd {

ConvexPolygon ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), LessXY);
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n < 3) return ConvexPolygon();

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower chain.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Orient2D(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper chain.
  const size_t lower_end = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower_end &&
           Orient2D(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point equals the first
  if (hull.size() < 3) return ConvexPolygon();
  return ConvexPolygon(std::move(hull));
}

}  // namespace movd
