#ifndef MOVD_GEOM_RECT_H_
#define MOVD_GEOM_RECT_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace movd {

/// An axis-aligned rectangle (minimum bounding rectangle, MBR).
///
/// The canonical empty rectangle has min > max; Rect() constructs it.
/// Empty rectangles absorb under Expand() and annihilate under Intersect().
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  constexpr Rect() = default;
  constexpr Rect(double x0, double y0, double x1, double y1)
      : min_x(x0), min_y(y0), max_x(x1), max_y(y1) {}

  static constexpr Rect OfPoint(const Point& p) {
    return Rect(p.x, p.y, p.x, p.y);
  }

  constexpr bool Empty() const { return min_x > max_x || min_y > max_y; }

  constexpr double Width() const { return Empty() ? 0.0 : max_x - min_x; }
  constexpr double Height() const { return Empty() ? 0.0 : max_y - min_y; }
  constexpr double Area() const { return Width() * Height(); }

  /// Half the perimeter; the classic R-tree enlargement metric.
  constexpr double Margin() const { return Width() + Height(); }

  constexpr Point Center() const {
    return Point((min_x + max_x) * 0.5, (min_y + max_y) * 0.5);
  }

  constexpr bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  constexpr bool Contains(const Rect& o) const {
    return !o.Empty() && o.min_x >= min_x && o.max_x <= max_x &&
           o.min_y >= min_y && o.max_y <= max_y;
  }

  /// Whether the closed rectangles share at least one point.
  constexpr bool Intersects(const Rect& o) const {
    return !Empty() && !o.Empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }

  /// The (possibly empty) intersection rectangle.
  constexpr Rect Intersect(const Rect& o) const {
    return Rect(std::max(min_x, o.min_x), std::max(min_y, o.min_y),
                std::min(max_x, o.max_x), std::min(max_y, o.max_y));
  }

  /// Grows this rectangle to cover `p`.
  void Expand(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows this rectangle to cover `o`.
  void Expand(const Rect& o) {
    if (o.Empty()) return;
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }

  /// The smallest rectangle covering both inputs.
  static Rect Union(const Rect& a, const Rect& b) {
    Rect r = a;
    r.Expand(b);
    return r;
  }

  /// Squared distance from `p` to the nearest point of the rectangle
  /// (zero when inside). Used by best-first kNN search.
  double MinDistance2(const Point& p) const {
    const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
    const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
    return dx * dx + dy * dy;
  }

  constexpr bool operator==(const Rect& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }
};

}  // namespace movd

#endif  // MOVD_GEOM_RECT_H_
