#ifndef MOVD_GEOM_PREDICATES_H_
#define MOVD_GEOM_PREDICATES_H_

#include "geom/point.h"

namespace movd {

/// Exact geometric predicates in the style of Shewchuk's adaptive
/// floating-point arithmetic.
///
/// Both predicates run a fast double-precision evaluation first and fall back
/// to exact multi-component ("expansion") arithmetic only when the computed
/// value is smaller than a forward error bound. The returned *sign* is always
/// exact; the magnitude from the fast path is approximate.
///
/// Requires strict IEEE-754 double semantics (the build disables
/// -ffast-math).

/// Sign of the signed area of triangle (a, b, c):
///   > 0  when c lies to the left of the directed line a->b (counterclockwise)
///   < 0  when c lies to the right (clockwise)
///   = 0  when the three points are exactly collinear.
double Orient2D(const Point& a, const Point& b, const Point& c);

/// Sign of the in-circle determinant:
///   > 0  when d lies strictly inside the circle through a, b, c
///   < 0  when strictly outside
///   = 0  when cocircular.
/// Requires (a, b, c) in counterclockwise order; the sign flips otherwise.
double InCircle(const Point& a, const Point& b, const Point& c,
                const Point& d);

/// Convenience: true when (a, b, c) are exactly collinear.
inline bool Collinear(const Point& a, const Point& b, const Point& c) {
  return Orient2D(a, b, c) == 0.0;
}

}  // namespace movd

#endif  // MOVD_GEOM_PREDICATES_H_
