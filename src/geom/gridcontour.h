#ifndef MOVD_GEOM_GRIDCONTOUR_H_
#define MOVD_GEOM_GRIDCONTOUR_H_

#include <cstdint>
#include <vector>

#include "geom/polygon.h"
#include "geom/rect.h"

namespace movd {

/// Extracts the outer boundary polygon of every connected component
/// (4-connectivity) of a boolean grid mask, as axis-aligned rings in world
/// coordinates. Holes inside a component are absorbed (the returned
/// polygon covers them) — the callers use the result as a *conservative
/// cover*, so covering more is safe while missing area is not.
///
/// `mask` is row-major, width*height cells; cell (x, y) spans
///   [bounds.min_x + x*sx, bounds.min_x + (x+1)*sx] x [... y ...]
/// with sx = bounds.Width()/width. Runs of collinear boundary vertices are
/// merged. When `dilate` is true, the mask is first grown by one cell
/// (8-connectivity), guaranteeing the contour strictly covers the original
/// cells even under later floating-point clipping. Contours are always
/// clipped to `bounds`: the outermost lattice line maps to bounds.max
/// exactly (not min + width * step, which can overshoot by an ulp), so a
/// dilated cover can never leak outside the domain rectangle.
std::vector<Polygon> ExtractOuterContours(const std::vector<uint8_t>& mask,
                                          int width, int height,
                                          const Rect& bounds,
                                          bool dilate = false);

}  // namespace movd

#endif  // MOVD_GEOM_GRIDCONTOUR_H_
