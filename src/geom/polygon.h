#ifndef MOVD_GEOM_POLYGON_H_
#define MOVD_GEOM_POLYGON_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// A convex polygon with vertices in counterclockwise order.
///
/// This is the workhorse region representation of the library: ordinary
/// Voronoi cells are convex, and intersections of convex polygons stay
/// convex, so the entire RRB pipeline (paper §5.2) runs on this type.
/// Polygons with fewer than 3 vertices are empty by definition.
class ConvexPolygon {
 public:
  ConvexPolygon() = default;

  /// Takes ownership of a CCW convex vertex ring (no repeated last vertex).
  /// Collapses consecutive duplicate vertices. MOVD_DCHECKs convexity.
  explicit ConvexPolygon(std::vector<Point> vertices);

  /// The four corners of `r`, counterclockwise. Empty rect -> empty polygon.
  static ConvexPolygon FromRect(const Rect& r);

  /// Wraps an already-validated CCW ring without convexity checking. For
  /// trusted sources only (deserialization, clipper output): constructed
  /// intersection vertices can be convex only up to double rounding, which
  /// the checked constructor would reject in debug builds.
  static ConvexPolygon FromTrustedRing(std::vector<Point> vertices);

  /// Intersection of two convex polygons (Sutherland–Hodgman: clips `a` by
  /// every edge of `b`). Result is convex and CCW; may be empty.
  static ConvexPolygon Intersect(const ConvexPolygon& a,
                                 const ConvexPolygon& b);

  const std::vector<Point>& vertices() const { return vertices_; }
  bool Empty() const { return vertices_.size() < 3; }
  size_t VertexCount() const { return vertices_.size(); }

  /// Unsigned area (shoelace).
  double Area() const;

  /// Area centroid; valid only for non-empty polygons.
  Point Centroid() const;

  /// Minimum bounding rectangle.
  Rect Bbox() const;

  /// True when `p` is inside or on the boundary (exact predicates).
  bool Contains(const Point& p) const;

  /// Clips in place against the half-plane to the left of the directed line
  /// a->b (points exactly on the line are kept).
  void ClipByHalfPlane(const Point& a, const Point& b);

  /// Removes degenerate output: if the area is below `min_area` the polygon
  /// becomes empty. Used to discard boundary-only overlap slivers
  /// (paper Property 4 guarantees real OVRs overlap only on boundaries).
  void DropIfSliver(double min_area);

 private:
  std::vector<Point> vertices_;
};

/// A simple polygon (possibly concave) with vertices in CCW order.
/// Used for polygonised weighted Voronoi cells and as a general input type;
/// converted to a piecewise-convex Region before entering the RRB pipeline.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  bool Empty() const { return vertices_.size() < 3; }

  /// Signed area: positive for CCW rings.
  double SignedArea() const;

  /// True when every vertex turn is non-clockwise.
  bool IsConvex() const;

  Rect Bbox() const;

  /// Point-in-polygon by crossing number; boundary points count as inside.
  bool Contains(const Point& p) const;

  /// Ear-clipping triangulation (O(n^2)); requires a simple CCW ring.
  /// Degenerate (zero-area) ears are skipped.
  std::vector<ConvexPolygon> Triangulate() const;

 private:
  std::vector<Point> vertices_;
};

/// A planar region represented as a union of convex pieces.
///
/// Intersecting two regions is the pairwise intersection of their pieces;
/// since convex∩convex is convex, the representation is closed under the
/// only operation the MOVD overlap needs. Ordinary Voronoi cells enter as a
/// single piece; concave (polygonised weighted) cells enter triangulated.
class Region {
 public:
  Region() = default;

  static Region FromConvex(ConvexPolygon piece);
  static Region FromPolygon(const Polygon& polygon);
  static Region FromRect(const Rect& r);

  /// Wraps pre-validated pieces (deserialization); empty pieces dropped.
  static Region FromPieces(std::vector<ConvexPolygon> pieces);

  /// Pairwise piece intersection; slivers below `min_area` are dropped.
  static Region Intersect(const Region& a, const Region& b,
                          double min_area = kDefaultMinPieceArea);

  bool Empty() const { return pieces_.empty(); }
  const std::vector<ConvexPolygon>& pieces() const { return pieces_; }

  /// Total area (pieces are interior-disjoint by construction).
  double Area() const;

  /// MBR over all pieces.
  Rect Bbox() const;

  /// Total stored vertex count; proxy for the paper's memory metric.
  size_t VertexCount() const;

  /// True when any piece contains `p`.
  bool Contains(const Point& p) const;

  /// Area threshold below which an intersection piece is considered a
  /// boundary-only sliver and discarded.
  static constexpr double kDefaultMinPieceArea = 1e-9;

 private:
  std::vector<ConvexPolygon> pieces_;
};

}  // namespace movd

#endif  // MOVD_GEOM_POLYGON_H_
