#include "geom/gridcontour.h"

#include "util/check.h"

namespace movd {
namespace {

// Lattice directions: +x, +y, -x, -y.
constexpr int kDx[4] = {1, 0, -1, 0};
constexpr int kDy[4] = {0, 1, 0, -1};

// Turn preference when several boundary edges leave a vertex (pinch
// points): hug the inside region, i.e. prefer the left-most turn relative
// to the incoming direction. For incoming direction d, left = (d+1)%4,
// straight = d, right = (d+3)%4; going back is never valid.
constexpr int kTurnPreference[3] = {1, 0, 3};

}  // namespace

std::vector<Polygon> ExtractOuterContours(const std::vector<uint8_t>& mask,
                                          int width, int height,
                                          const Rect& bounds, bool dilate) {
  MOVD_CHECK_MSG(width > 0 && height > 0,
                 "contour extraction needs a non-empty grid");
  MOVD_CHECK_MSG(mask.size() == static_cast<size_t>(width) * height,
                 "mask size must match width * height");
  MOVD_CHECK_MSG(!bounds.Empty(),
                 "contour extraction needs a non-empty world rectangle");

  std::vector<uint8_t> work = mask;
  if (dilate) {
    std::vector<uint8_t> grown(mask.size(), 0);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        bool on = false;
        for (int dy = -1; dy <= 1 && !on; ++dy) {
          for (int dx = -1; dx <= 1 && !on; ++dx) {
            const int nx = x + dx, ny = y + dy;
            if (nx < 0 || ny < 0 || nx >= width || ny >= height) continue;
            on = mask[ny * width + nx] != 0;
          }
        }
        grown[y * width + x] = on ? 1 : 0;
      }
    }
    work = std::move(grown);
  }

  const auto inside = [&](int x, int y) {
    return x >= 0 && y >= 0 && x < width && y < height &&
           work[y * width + x] != 0;
  };

  // Collect directed boundary edges (inside on the left). Key by start
  // vertex on the (width+1) x (height+1) corner lattice; value packs the
  // direction bits per outgoing edge.
  const int lattice_w = width + 1;
  const int lattice_h = height + 1;
  const auto vertex_id = [&](int x, int y) { return y * lattice_w + x; };
  // unused[v] = bitmask of directions with an untraversed edge from v. A
  // dense lattice array (not a hash map) so the loop-seeding scan below
  // visits vertices in ascending id order and the contour order is a pure
  // function of the mask, independent of hashing.
  std::vector<uint8_t> unused(static_cast<size_t>(lattice_w) * lattice_h, 0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (!inside(x, y)) continue;
      if (!inside(x, y - 1)) unused[vertex_id(x, y)] |= 1 << 0;      // +x
      if (!inside(x + 1, y)) unused[vertex_id(x + 1, y)] |= 1 << 1;  // +y
      if (!inside(x, y + 1)) unused[vertex_id(x + 1, y + 1)] |= 1 << 2;  // -x
      if (!inside(x - 1, y)) unused[vertex_id(x, y + 1)] |= 1 << 3;  // -y
    }
  }

  const double sx = bounds.Width() / width;
  const double sy = bounds.Height() / height;
  // The far edge of the lattice is pinned to bounds.max exactly: computing
  // it as min + width * sx can land one ulp past max, which would leak the
  // (dilated) contour outside the domain rectangle at the grid edge —
  // consumers treat these contours as dominance covers and must never
  // report dominance outside the query domain.
  const auto to_world = [&](int32_t v) {
    const int x = v % lattice_w;
    const int y = v / lattice_w;
    return Point(x == width ? bounds.max_x : bounds.min_x + x * sx,
                 y == height ? bounds.max_y : bounds.min_y + y * sy);
  };

  std::vector<Polygon> out;
  const int32_t lattice_size = lattice_w * lattice_h;
  for (int32_t loop_start = 0; loop_start < lattice_size; ++loop_start) {
    // A pinch vertex can seed more than one loop; drain it before moving on.
    while (unused[loop_start] != 0) {
      // Begin a loop at the lowest untraversed direction.
      int32_t v = loop_start;
      int dir = 0;
      while ((unused[loop_start] & (1 << dir)) == 0) ++dir;

      std::vector<int32_t> ring_vertices;
      double area2 = 0.0;  // twice the signed area (lattice units)
      do {
        ring_vertices.push_back(v);
        uint8_t& bits = unused[v];
        MOVD_DCHECK(bits & (1 << dir));
        bits &= static_cast<uint8_t>(~(1 << dir));
        const int x = v % lattice_w, y = v / lattice_w;
        const int nx = x + kDx[dir], ny = y + kDy[dir];
        area2 += static_cast<double>(x) * ny - static_cast<double>(nx) * y;
        v = vertex_id(nx, ny);
        if (v == loop_start) break;
        // Choose the next edge: left turn, then straight, then right.
        int next_dir = -1;
        for (const int turn : kTurnPreference) {
          const int candidate = (dir + turn) % 4;
          if (unused[v] & (1 << candidate)) {
            next_dir = candidate;
            break;
          }
        }
        MOVD_CHECK(next_dir >= 0);  // boundary edges always continue
        dir = next_dir;
      } while (true);

      if (area2 > 0.0) {  // CCW: an outer contour (CW loops are holes)
        // Merge collinear runs and map to world coordinates.
        std::vector<Point> ring;
        const size_t n = ring_vertices.size();
        for (size_t i = 0; i < n; ++i) {
          const int32_t prev = ring_vertices[(i + n - 1) % n];
          const int32_t cur = ring_vertices[i];
          const int32_t next = ring_vertices[(i + 1) % n];
          const int dx1 = cur % lattice_w - prev % lattice_w;
          const int dy1 = cur / lattice_w - prev / lattice_w;
          const int dx2 = next % lattice_w - cur % lattice_w;
          const int dy2 = next / lattice_w - cur / lattice_w;
          if (dx1 * dy2 - dy1 * dx2 != 0) ring.push_back(to_world(cur));
        }
        if (ring.size() >= 3) out.push_back(Polygon(std::move(ring)));
      }
    }
  }
  return out;
}

}  // namespace movd
