#ifndef MOVD_GEOM_POINT_H_
#define MOVD_GEOM_POINT_H_

#include <cmath>
#include <functional>

namespace movd {

/// A point (or 2-vector) in the Euclidean plane. Passive value type.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }
  constexpr bool operator!=(const Point& o) const { return !(*this == o); }

  /// Dot product, treating both points as vectors from the origin.
  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }

  /// Z-component of the cross product (signed parallelogram area).
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  /// Squared Euclidean norm.
  constexpr double Norm2() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) {
  return (a - b).Norm();
}

/// Squared Euclidean distance between two points.
constexpr double Distance2(const Point& a, const Point& b) {
  return (a - b).Norm2();
}

/// Lexicographic (x, then y) comparison; used for canonical orderings.
constexpr bool LessXY(const Point& a, const Point& b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

/// Hash functor so points can key unordered containers in tests/tools.
struct PointHash {
  size_t operator()(const Point& p) const {
    const size_t hx = std::hash<double>()(p.x);
    const size_t hy = std::hash<double>()(p.y);
    return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
  }
};

}  // namespace movd

#endif  // MOVD_GEOM_POINT_H_
