#ifndef MOVD_GEOM_EXPANSION_H_
#define MOVD_GEOM_EXPANSION_H_

#include <cstddef>

namespace movd {

/// Multi-component floating-point "expansion" arithmetic (Shewchuk 1997).
///
/// An expansion represents an exact real value as a sum of nonoverlapping
/// doubles ordered by increasing magnitude. All operations below are exact:
/// no information is lost, so computing a determinant through them and
/// inspecting the sign of the largest component yields the true sign.
///
/// This is an internal header used by predicates.cc and exposed for tests.
/// Capacity is fixed per call site; callers size output buffers as
/// |a| + |b| for sums and 2*|a|*|b| for products.
namespace expansion {

/// x + y = a + b exactly, |y| <= ulp(x)/2. No magnitude precondition.
void TwoSum(double a, double b, double* x, double* y);

/// x + y = a - b exactly.
void TwoDiff(double a, double b, double* x, double* y);

/// x + y = a * b exactly.
void TwoProduct(double a, double b, double* x, double* y);

/// h (length 4, increasing magnitude) = (a1 + a0) - (b1 + b0) exactly,
/// where (a1, a0) and (b1, b0) are two-component expansions.
void TwoTwoDiff(double a1, double a0, double b1, double b0, double h[4]);

/// h = e + f where e and f are expansions of the given lengths.
/// Returns the number of (nonzero) components written to h; h must have room
/// for elen + flen doubles. Inputs must each be nonoverlapping and ordered by
/// increasing magnitude (outputs of these routines always are).
int FastExpansionSumZeroelim(int elen, const double* e, int flen,
                             const double* f, double* h);

/// h = e * b for scalar b. Returns the component count; h needs 2*elen room.
int ScaleExpansionZeroelim(int elen, const double* e, double b, double* h);

/// Approximate value of an expansion (sum of components, largest last).
double Estimate(int elen, const double* e);

}  // namespace expansion
}  // namespace movd

#endif  // MOVD_GEOM_EXPANSION_H_
