#ifndef MOVD_DATA_GENERATE_H_
#define MOVD_DATA_GENERATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// Spatial distribution families for synthetic POI generation. These stand
/// in for the paper's GeoNames layers (see DESIGN.md, substitution 1):
///  - kUniform: scattered rural features;
///  - kGaussianClusters: town-centred features (churches, schools, places);
///  - kCorridor: anisotropic ribbons (streams) — Gaussian displacement
///    around a few random polylines.
enum class Distribution {
  kUniform,
  kGaussianClusters,
  kCorridor,
};

/// Configuration for GeneratePoints.
struct GeneratorConfig {
  Distribution distribution = Distribution::kUniform;
  size_t count = 0;
  Rect bounds = Rect(0, 0, 10000, 10000);
  /// Number of clusters / corridors for the non-uniform families.
  int clusters = 16;
  /// Cluster standard deviation as a fraction of the bounds' diagonal.
  double spread_fraction = 0.02;
  uint64_t seed = 1;
};

/// Generates `config.count` points inside `config.bounds` (points falling
/// outside during sampling are clamped to the bounds). Deterministic in
/// the seed.
std::vector<Point> GeneratePoints(const GeneratorConfig& config);

/// A synthetic stand-in for one GeoNames feature class.
struct PoiClassSpec {
  std::string name;          ///< e.g. "STM"
  size_t full_count;         ///< the paper's full data-set cardinality
  Distribution distribution;
  int clusters;
};

/// The five classes the paper evaluates, with the paper's cardinalities:
/// STM 230762, CH 225553, SCH 200996, PPL 166788, BLDG 110289. Order
/// matches the paper's type-selection sequence Ē = {STM, CH, SCH, PPL,
/// BLDG}.
const std::vector<PoiClassSpec>& GeoNamesLikeCatalog();

/// Samples `count` points of the named class (randomly subsampling the
/// class's distribution, as the paper randomly selects objects). The seed
/// is combined with the class name so different classes are independent.
std::vector<Point> SamplePoiClass(const std::string& name, size_t count,
                                  const Rect& bounds, uint64_t seed);

}  // namespace movd

#endif  // MOVD_DATA_GENERATE_H_
