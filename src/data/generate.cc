#include "data/generate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace movd {
namespace {

Point ClampToBounds(const Rect& b, Point p) {
  p.x = std::clamp(p.x, b.min_x, b.max_x);
  p.y = std::clamp(p.y, b.min_y, b.max_y);
  return p;
}

std::vector<Point> GenerateUniform(const GeneratorConfig& c, Rng* rng) {
  std::vector<Point> out;
  out.reserve(c.count);
  for (size_t i = 0; i < c.count; ++i) {
    out.push_back({rng->Uniform(c.bounds.min_x, c.bounds.max_x),
                   rng->Uniform(c.bounds.min_y, c.bounds.max_y)});
  }
  return out;
}

std::vector<Point> GenerateClusters(const GeneratorConfig& c, Rng* rng) {
  MOVD_CHECK(c.clusters > 0);
  const double diag = std::hypot(c.bounds.Width(), c.bounds.Height());
  const double sigma = diag * c.spread_fraction;
  std::vector<Point> centers;
  centers.reserve(static_cast<size_t>(c.clusters));
  for (int i = 0; i < c.clusters; ++i) {
    centers.push_back({rng->Uniform(c.bounds.min_x, c.bounds.max_x),
                       rng->Uniform(c.bounds.min_y, c.bounds.max_y)});
  }
  std::vector<Point> out;
  out.reserve(c.count);
  for (size_t i = 0; i < c.count; ++i) {
    const Point& center = centers[rng->NextBelow(centers.size())];
    out.push_back(ClampToBounds(
        c.bounds, {center.x + sigma * rng->NextGaussian(),
                   center.y + sigma * rng->NextGaussian()}));
  }
  return out;
}

std::vector<Point> GenerateCorridors(const GeneratorConfig& c, Rng* rng) {
  MOVD_CHECK(c.clusters > 0);
  const double diag = std::hypot(c.bounds.Width(), c.bounds.Height());
  const double sigma = diag * c.spread_fraction * 0.5;
  // Each corridor is a random segment across the bounds; points are placed
  // uniformly along it with Gaussian lateral displacement.
  struct Segment {
    Point a, b;
  };
  std::vector<Segment> corridors;
  corridors.reserve(static_cast<size_t>(c.clusters));
  for (int i = 0; i < c.clusters; ++i) {
    corridors.push_back({{rng->Uniform(c.bounds.min_x, c.bounds.max_x),
                          rng->Uniform(c.bounds.min_y, c.bounds.max_y)},
                         {rng->Uniform(c.bounds.min_x, c.bounds.max_x),
                          rng->Uniform(c.bounds.min_y, c.bounds.max_y)}});
  }
  std::vector<Point> out;
  out.reserve(c.count);
  for (size_t i = 0; i < c.count; ++i) {
    const Segment& s = corridors[rng->NextBelow(corridors.size())];
    const double t = rng->NextDouble();
    const Point on_line = s.a + (s.b - s.a) * t;
    out.push_back(ClampToBounds(
        c.bounds, {on_line.x + sigma * rng->NextGaussian(),
                   on_line.y + sigma * rng->NextGaussian()}));
  }
  return out;
}

uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<Point> GeneratePoints(const GeneratorConfig& config) {
  Rng rng(config.seed);
  switch (config.distribution) {
    case Distribution::kUniform:
      return GenerateUniform(config, &rng);
    case Distribution::kGaussianClusters:
      return GenerateClusters(config, &rng);
    case Distribution::kCorridor:
      return GenerateCorridors(config, &rng);
  }
  MOVD_CHECK(false);
  return {};
}

const std::vector<PoiClassSpec>& GeoNamesLikeCatalog() {
  static const std::vector<PoiClassSpec>* kCatalog =
      new std::vector<PoiClassSpec>{
          {"STM", 230762, Distribution::kCorridor, 48},
          {"CH", 225553, Distribution::kGaussianClusters, 64},
          {"SCH", 200996, Distribution::kGaussianClusters, 64},
          {"PPL", 166788, Distribution::kGaussianClusters, 32},
          {"BLDG", 110289, Distribution::kUniform, 0},
      };
  return *kCatalog;
}

std::vector<Point> SamplePoiClass(const std::string& name, size_t count,
                                  const Rect& bounds, uint64_t seed) {
  const PoiClassSpec* spec = nullptr;
  for (const PoiClassSpec& s : GeoNamesLikeCatalog()) {
    if (s.name == name) {
      spec = &s;
      break;
    }
  }
  MOVD_CHECK(spec != nullptr);
  GeneratorConfig config;
  config.distribution = spec->distribution;
  config.count = count;
  config.bounds = bounds;
  config.clusters = std::max(1, spec->clusters);
  config.seed = seed ^ HashName(name);
  return GeneratePoints(config);
}

}  // namespace movd
