#include "data/csv.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace movd {

bool SavePointsCsv(const std::string& path, const std::vector<Point>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const Point& p : points) {
    ok = ok && std::fprintf(f, "%.17g,%.17g\n", p.x, p.y) > 0;
  }
  return std::fclose(f) == 0 && ok;
}

bool SaveObjectsCsv(const std::string& path,
                    const std::vector<SpatialObject>& objects) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  bool ok = true;
  for (const SpatialObject& obj : objects) {
    ok = ok && std::fprintf(f, "%.17g,%.17g,%.17g,%.17g\n", obj.location.x,
                            obj.location.y, obj.type_weight,
                            obj.object_weight) > 0;
  }
  return std::fclose(f) == 0 && ok;
}

std::optional<std::vector<SpatialObject>> LoadObjectsCsv(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  std::vector<SpatialObject> out;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (first && std::strncmp(line, "x,y", 3) == 0) {
      first = false;
      continue;
    }
    first = false;
    if (line[0] == '\n' || line[0] == '\0') continue;
    SpatialObject obj;
    char* cursor = line;
    char* end = nullptr;
    obj.location.x = std::strtod(cursor, &end);
    if (end == cursor || *end != ',') {
      std::fclose(f);
      return std::nullopt;
    }
    cursor = end + 1;
    obj.location.y = std::strtod(cursor, &end);
    if (end == cursor) {
      std::fclose(f);
      return std::nullopt;
    }
    if (*end == ',') {
      cursor = end + 1;
      obj.type_weight = std::strtod(cursor, &end);
      if (end == cursor) {
        std::fclose(f);
        return std::nullopt;
      }
      if (*end == ',') {
        cursor = end + 1;
        obj.object_weight = std::strtod(cursor, &end);
        if (end == cursor) {
          std::fclose(f);
          return std::nullopt;
        }
      }
    }
    out.push_back(obj);
  }
  std::fclose(f);
  return out;
}

std::optional<std::vector<Point>> LoadPointsCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  std::vector<Point> out;
  char line[256];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (first && std::strncmp(line, "x,y", 3) == 0) {
      first = false;
      continue;  // header row
    }
    first = false;
    if (line[0] == '\n' || line[0] == '\0') continue;
    char* end = nullptr;
    const double x = std::strtod(line, &end);
    if (end == line || *end != ',') {
      std::fclose(f);
      return std::nullopt;
    }
    const char* ystr = end + 1;
    const double y = std::strtod(ystr, &end);
    if (end == ystr) {
      std::fclose(f);
      return std::nullopt;
    }
    out.push_back({x, y});
  }
  std::fclose(f);
  return out;
}

}  // namespace movd
