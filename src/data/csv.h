#ifndef MOVD_DATA_CSV_H_
#define MOVD_DATA_CSV_H_

#include <optional>
#include <string>
#include <vector>

#include "model/object.h"
#include "geom/point.h"

namespace movd {

/// Writes points as `x,y` lines (17 significant digits: exact double
/// round-trip). Returns false on I/O failure.
bool SavePointsCsv(const std::string& path, const std::vector<Point>& points);

/// Reads points from an `x,y`-per-line file (a leading `x,y` header row is
/// tolerated). Returns nullopt on I/O failure or malformed rows.
std::optional<std::vector<Point>> LoadPointsCsv(const std::string& path);

/// Writes spatial objects as `x,y,type_weight,object_weight` lines.
bool SaveObjectsCsv(const std::string& path,
                    const std::vector<SpatialObject>& objects);

/// Reads spatial objects from `x,y[,type_weight[,object_weight]]` lines
/// (missing weights default to 1; a header row starting with `x,y` is
/// tolerated). Returns nullopt on I/O failure or malformed rows.
std::optional<std::vector<SpatialObject>> LoadObjectsCsv(
    const std::string& path);

}  // namespace movd

#endif  // MOVD_DATA_CSV_H_
