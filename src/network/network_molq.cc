#include "network/network_molq.h"

#include <algorithm>

#include "util/check.h"

namespace movd {

NetworkMolqResult SolveNetworkMolq(
    const RoadNetwork& network, const std::vector<NetworkObjectSet>& sets) {
  MOVD_CHECK(!sets.empty());
  const size_t n = network.num_vertices();
  MOVD_CHECK(n > 0);
  std::vector<double> total(n, 0.0);
  for (const NetworkObjectSet& set : sets) {
    MOVD_CHECK(!set.vertices.empty());
    const std::vector<double> dist =
        NearestSourceDistances(network, set.vertices);
    for (size_t v = 0; v < n; ++v) {
      total[v] += set.type_weight * dist[v];
    }
  }
  NetworkMolqResult result;
  result.vertex = 0;
  result.cost = total[0];
  for (size_t v = 1; v < n; ++v) {
    if (total[v] < result.cost) {
      result.cost = total[v];
      result.vertex = static_cast<int32_t>(v);
    }
  }
  return result;
}

NetworkMolqResult SolveNetworkMolqBruteForce(
    const RoadNetwork& network, const std::vector<NetworkObjectSet>& sets) {
  MOVD_CHECK(!sets.empty());
  const size_t n = network.num_vertices();
  // Per-object single-source distances, then per-vertex min per type.
  std::vector<double> total(n, 0.0);
  for (const NetworkObjectSet& set : sets) {
    std::vector<double> best(n, RoadNetwork::kUnreachable);
    for (const int32_t source : set.vertices) {
      const std::vector<double> dist = ShortestDistances(network, source);
      for (size_t v = 0; v < n; ++v) best[v] = std::min(best[v], dist[v]);
    }
    for (size_t v = 0; v < n; ++v) total[v] += set.type_weight * best[v];
  }
  NetworkMolqResult result;
  result.vertex = 0;
  result.cost = total[0];
  for (size_t v = 1; v < n; ++v) {
    if (total[v] < result.cost) {
      result.cost = total[v];
      result.vertex = static_cast<int32_t>(v);
    }
  }
  return result;
}

std::vector<NetworkObjectSet> SnapQueryToNetwork(const RoadNetwork& network,
                                                 const MolqQuery& query) {
  std::vector<NetworkObjectSet> sets;
  sets.reserve(query.sets.size());
  for (const ObjectSet& set : query.sets) {
    MOVD_CHECK(!set.objects.empty());
    NetworkObjectSet out;
    out.type_weight = set.objects.front().type_weight;
    for (const SpatialObject& obj : set.objects) {
      MOVD_CHECK(obj.object_weight == 1.0);
      MOVD_CHECK(obj.type_weight == out.type_weight);
      out.vertices.push_back(network.NearestVertex(obj.location));
    }
    sets.push_back(std::move(out));
  }
  return sets;
}

}  // namespace movd
