#ifndef MOVD_NETWORK_NETWORK_MOLQ_H_
#define MOVD_NETWORK_NETWORK_MOLQ_H_

#include <cstdint>
#include <vector>

#include "model/object.h"
#include "network/graph.h"

namespace movd {

/// The MOLQ variant on road networks (extension beyond the paper; its §7
/// discusses the network setting via Xiao et al.'s OLQ work): distances are
/// shortest-path lengths, objects snap to their nearest network vertex,
/// and the optimum is sought over the network.
///
/// By Hakimi's classical vertex-optimality argument the optimum lies at a
/// vertex: along the interior of any edge each shortest-path distance
/// d(., p) is concave (the min of two linear ramps from the endpoints), a
/// min of concave functions is concave, and a sum of concave functions is
/// concave — so the objective restricted to an edge is concave and is
/// minimised at an endpoint. The solver therefore evaluates every vertex
/// exactly with one multi-source Dijkstra per object type.
struct NetworkMolqResult {
  int32_t vertex = -1;   ///< optimal network vertex
  double cost = 0.0;     ///< sum over types of weighted nearest distances
};

/// Objects of one type on the network, with a per-type multiplicative
/// weight (applied to the network distance).
struct NetworkObjectSet {
  std::vector<int32_t> vertices;  ///< snapped object locations
  double type_weight = 1.0;
};

/// Exact evaluation: one multi-source Dijkstra per type, then an argmin
/// scan over vertices. O(T * (E + V) log V).
NetworkMolqResult SolveNetworkMolq(const RoadNetwork& network,
                                   const std::vector<NetworkObjectSet>& sets);

/// Brute-force reference for tests: per-vertex evaluation via per-source
/// Dijkstra (O(sum |P_i| * (E + V) log V)).
NetworkMolqResult SolveNetworkMolqBruteForce(
    const RoadNetwork& network, const std::vector<NetworkObjectSet>& sets);

/// Snaps planar objects to network vertices, building NetworkObjectSets
/// from a planar MolqQuery (object weights are folded into the type weight
/// per object being impossible on networks, so they must all be 1; checked).
std::vector<NetworkObjectSet> SnapQueryToNetwork(const RoadNetwork& network,
                                                 const MolqQuery& query);

}  // namespace movd

#endif  // MOVD_NETWORK_NETWORK_MOLQ_H_
