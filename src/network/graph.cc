#include "network/graph.h"

#include <algorithm>
#include <queue>
#include <set>

#include "util/check.h"
#include "util/rng.h"
#include "voronoi/delaunay.h"

namespace movd {

RoadNetwork::RoadNetwork(std::vector<Point> vertices,
                         const std::vector<Edge>& edges)
    : vertices_(std::move(vertices)), adjacency_(vertices_.size()) {
  for (const Edge& e : edges) {
    MOVD_CHECK(e.from >= 0 &&
               e.from < static_cast<int32_t>(vertices_.size()));
    MOVD_CHECK(e.to >= 0 && e.to < static_cast<int32_t>(vertices_.size()));
    if (e.from == e.to) continue;
    const double length =
        e.length > 0.0 ? e.length
                       : Distance(vertices_[e.from], vertices_[e.to]);
    adjacency_[e.from].push_back({e.to, length});
    adjacency_[e.to].push_back({e.from, length});
    ++edge_count_;
  }
}

int32_t RoadNetwork::NearestVertex(const Point& p) const {
  MOVD_CHECK(!vertices_.empty());
  int32_t best = 0;
  double best_d2 = Distance2(p, vertices_[0]);
  for (size_t i = 1; i < vertices_.size(); ++i) {
    const double d2 = Distance2(p, vertices_[i]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int32_t>(i);
    }
  }
  return best;
}

bool RoadNetwork::IsConnected() const {
  if (vertices_.empty()) return true;
  std::vector<bool> seen(vertices_.size(), false);
  std::vector<int32_t> stack = {0};
  seen[0] = true;
  size_t count = 1;
  while (!stack.empty()) {
    const int32_t v = stack.back();
    stack.pop_back();
    for (const Arc& arc : adjacency_[v]) {
      if (!seen[arc.to]) {
        seen[arc.to] = true;
        ++count;
        stack.push_back(arc.to);
      }
    }
  }
  return count == vertices_.size();
}

RoadNetwork RandomRoadNetwork(size_t num_vertices, const Rect& bounds,
                              double keep_fraction, uint64_t seed) {
  MOVD_CHECK(num_vertices >= 2);
  MOVD_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0);
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(num_vertices);
  for (size_t i = 0; i < num_vertices; ++i) {
    pts.push_back({rng.Uniform(bounds.min_x, bounds.max_x),
                   rng.Uniform(bounds.min_y, bounds.max_y)});
  }
  const Delaunay dt(pts);
  // Delaunay may deduplicate; use its point set.
  std::vector<Point> vertices(dt.points().begin(),
                              dt.points().begin() + dt.num_real_points());

  // Collect unique Delaunay edges between real points.
  std::set<std::pair<int32_t, int32_t>> edges;
  const auto lists = dt.NeighborLists();
  for (int32_t v = 0; v < static_cast<int32_t>(lists.size()); ++v) {
    for (const int32_t u : lists[v]) {
      edges.insert({std::min(v, u), std::max(v, u)});
    }
  }

  // Keep a connected skeleton (randomized spanning tree via union-find over
  // shuffled edges), then add the requested fraction of the remainder.
  std::vector<std::pair<int32_t, int32_t>> all(edges.begin(), edges.end());
  for (size_t i = all.size(); i > 1; --i) {
    std::swap(all[i - 1], all[rng.NextBelow(i)]);
  }
  std::vector<int32_t> parent(vertices.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<int32_t>(i);
  }
  const auto find = [&](int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  std::vector<RoadNetwork::Edge> kept;
  std::vector<std::pair<int32_t, int32_t>> extras;
  for (const auto& [a, b] : all) {
    const int32_t ra = find(a), rb = find(b);
    if (ra != rb) {
      parent[ra] = rb;
      kept.push_back({a, b, 0.0});
    } else {
      extras.push_back({a, b});
    }
  }
  const size_t want_extra = static_cast<size_t>(
      keep_fraction * static_cast<double>(extras.size()));
  for (size_t i = 0; i < want_extra; ++i) {
    kept.push_back({extras[i].first, extras[i].second, 0.0});
  }
  return RoadNetwork(std::move(vertices), kept);
}

std::vector<double> ShortestDistances(const RoadNetwork& network,
                                      int32_t source) {
  return NearestSourceDistances(network, {source});
}

std::vector<double> NearestSourceDistances(
    const RoadNetwork& network, const std::vector<int32_t>& sources) {
  std::vector<double> dist(network.num_vertices(),
                           RoadNetwork::kUnreachable);
  using Item = std::pair<double, int32_t>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  for (const int32_t s : sources) {
    MOVD_CHECK(s >= 0 && s < static_cast<int32_t>(network.num_vertices()));
    if (dist[s] > 0.0) {
      dist[s] = 0.0;
      heap.push({0.0, s});
    }
  }
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry
    for (const RoadNetwork::Arc& arc : network.Neighbors(v)) {
      const double nd = d + arc.length;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

}  // namespace movd
