#ifndef MOVD_NETWORK_GRAPH_H_
#define MOVD_NETWORK_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace movd {

/// An undirected road network: embedded vertices and weighted edges
/// (weights default to Euclidean edge lengths). Compressed adjacency
/// storage; vertices are dense int32 ids.
class RoadNetwork {
 public:
  struct Edge {
    int32_t from = -1;
    int32_t to = -1;
    double length = 0.0;
  };

  /// Builds the network from an embedded vertex set and edge list.
  /// Non-positive lengths are replaced by the Euclidean distance between
  /// the endpoints. Self-loops are dropped; parallel edges are kept.
  RoadNetwork(std::vector<Point> vertices, const std::vector<Edge>& edges);

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edge_count_; }
  const std::vector<Point>& vertices() const { return vertices_; }

  /// Adjacency of vertex v: (neighbor, length) pairs.
  struct Arc {
    int32_t to;
    double length;
  };
  const std::vector<Arc>& Neighbors(int32_t v) const {
    return adjacency_[v];
  }

  /// The vertex nearest to `p` in Euclidean distance (linear scan).
  int32_t NearestVertex(const Point& p) const;

  /// True when every vertex can reach vertex 0 (or the graph is empty).
  bool IsConnected() const;

  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

 private:
  std::vector<Point> vertices_;
  std::vector<std::vector<Arc>> adjacency_;
  size_t edge_count_ = 0;
};

/// Builds a synthetic road network over `num_vertices` random points in
/// `bounds`: the Delaunay triangulation's edges thinned by `keep_fraction`
/// (1.0 keeps the full triangulation; lower values emulate sparser road
/// grids while a random spanning subset keeps the graph connected).
/// Deterministic in `seed`.
RoadNetwork RandomRoadNetwork(size_t num_vertices, const Rect& bounds,
                              double keep_fraction, uint64_t seed);

/// Single-source shortest path distances (Dijkstra, binary heap).
/// Unreachable vertices get RoadNetwork::kUnreachable.
std::vector<double> ShortestDistances(const RoadNetwork& network,
                                      int32_t source);

/// Multi-source variant: distance from every vertex to its nearest source.
std::vector<double> NearestSourceDistances(
    const RoadNetwork& network, const std::vector<int32_t>& sources);

}  // namespace movd

#endif  // MOVD_NETWORK_GRAPH_H_
