#ifndef MOVD_VIZ_SVG_H_
#define MOVD_VIZ_SVG_H_

#include <string>
#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"
#include "geom/rect.h"
#include "util/status.h"

namespace movd {

/// Minimal SVG document writer used by the examples to render Voronoi
/// diagrams, MOVDs, and query answers. World coordinates are mapped to a
/// fixed-size canvas with the y axis flipped (SVG y grows downward).
class SvgWriter {
 public:
  /// `world` is the region mapped onto a canvas of `width_px` pixels
  /// (height follows the world aspect ratio).
  SvgWriter(const Rect& world, double width_px = 800.0);

  void AddPolygon(const ConvexPolygon& poly, const std::string& fill,
                  const std::string& stroke, double stroke_width = 1.0,
                  double fill_opacity = 0.35);
  void AddPolygon(const Polygon& poly, const std::string& fill,
                  const std::string& stroke, double stroke_width = 1.0,
                  double fill_opacity = 0.35);
  void AddRect(const Rect& r, const std::string& fill,
               const std::string& stroke, double stroke_width = 1.0,
               double fill_opacity = 0.2);
  void AddCircle(const Point& center, double radius_px,
                 const std::string& fill);
  void AddLine(const Point& a, const Point& b, const std::string& stroke,
               double stroke_width = 1.0);
  void AddText(const Point& at, const std::string& text,
               double font_size_px = 12.0);

  /// Serialises the document to `path`.
  Status Save(const std::string& path) const;

  /// The document body (for tests).
  std::string ToString() const;

 private:
  Point Map(const Point& world_point) const;
  void AddRing(const std::vector<Point>& ring, const std::string& fill,
               const std::string& stroke, double stroke_width,
               double fill_opacity);

  Rect world_;
  double width_px_;
  double height_px_;
  double scale_;
  std::string body_;
};

}  // namespace movd

#endif  // MOVD_VIZ_SVG_H_
