#include "viz/svg.h"

#include <cstdio>

#include "util/check.h"

namespace movd {
namespace {

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

SvgWriter::SvgWriter(const Rect& world, double width_px)
    : world_(world), width_px_(width_px) {
  MOVD_CHECK(!world.Empty());
  scale_ = width_px_ / world_.Width();
  height_px_ = world_.Height() * scale_;
}

Point SvgWriter::Map(const Point& p) const {
  return {(p.x - world_.min_x) * scale_,
          height_px_ - (p.y - world_.min_y) * scale_};
}

void SvgWriter::AddRing(const std::vector<Point>& ring,
                        const std::string& fill, const std::string& stroke,
                        double stroke_width, double fill_opacity) {
  if (ring.size() < 2) return;
  body_ += "<polygon points=\"";
  for (const Point& p : ring) {
    const Point m = Map(p);
    body_ += Num(m.x) + "," + Num(m.y) + " ";
  }
  body_ += "\" fill=\"" + fill + "\" fill-opacity=\"" + Num(fill_opacity) +
           "\" stroke=\"" + stroke + "\" stroke-width=\"" +
           Num(stroke_width) + "\"/>\n";
}

void SvgWriter::AddPolygon(const ConvexPolygon& poly, const std::string& fill,
                           const std::string& stroke, double stroke_width,
                           double fill_opacity) {
  AddRing(poly.vertices(), fill, stroke, stroke_width, fill_opacity);
}

void SvgWriter::AddPolygon(const Polygon& poly, const std::string& fill,
                           const std::string& stroke, double stroke_width,
                           double fill_opacity) {
  AddRing(poly.vertices(), fill, stroke, stroke_width, fill_opacity);
}

void SvgWriter::AddRect(const Rect& r, const std::string& fill,
                        const std::string& stroke, double stroke_width,
                        double fill_opacity) {
  if (r.Empty()) return;
  AddRing({{r.min_x, r.min_y},
           {r.max_x, r.min_y},
           {r.max_x, r.max_y},
           {r.min_x, r.max_y}},
          fill, stroke, stroke_width, fill_opacity);
}

void SvgWriter::AddCircle(const Point& center, double radius_px,
                          const std::string& fill) {
  const Point m = Map(center);
  body_ += "<circle cx=\"" + Num(m.x) + "\" cy=\"" + Num(m.y) + "\" r=\"" +
           Num(radius_px) + "\" fill=\"" + fill + "\"/>\n";
}

void SvgWriter::AddLine(const Point& a, const Point& b,
                        const std::string& stroke, double stroke_width) {
  const Point ma = Map(a);
  const Point mb = Map(b);
  body_ += "<line x1=\"" + Num(ma.x) + "\" y1=\"" + Num(ma.y) + "\" x2=\"" +
           Num(mb.x) + "\" y2=\"" + Num(mb.y) + "\" stroke=\"" + stroke +
           "\" stroke-width=\"" + Num(stroke_width) + "\"/>\n";
}

void SvgWriter::AddText(const Point& at, const std::string& text,
                        double font_size_px) {
  const Point m = Map(at);
  body_ += "<text x=\"" + Num(m.x) + "\" y=\"" + Num(m.y) +
           "\" font-size=\"" + Num(font_size_px) +
           "\" font-family=\"sans-serif\">" + text + "</text>\n";
}

std::string SvgWriter::ToString() const {
  return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         Num(width_px_) + "\" height=\"" + Num(height_px_) +
         "\" viewBox=\"0 0 " + Num(width_px_) + " " + Num(height_px_) +
         "\">\n" + body_ + "</svg>\n";
}

Status SvgWriter::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("SvgWriter::Save: cannot open " + path);
  }
  const std::string doc = ToString();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    return Status::IoError("SvgWriter::Save: short write to " + path);
  }
  return Status::Ok();
}

}  // namespace movd
