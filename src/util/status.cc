#include "util/status.h"

namespace movd {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInvalidArgument:
      return "INVALID_REQUEST";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL_ERROR";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kUnsupportedVerb:
      return "UNSUPPORTED_VERB";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace movd
