#ifndef MOVD_UTIL_CANCEL_H_
#define MOVD_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>

namespace movd {

/// Cooperative cancellation token for long-running pipeline stages.
///
/// A token fires either explicitly (Cancel()) or implicitly once its
/// deadline passes. Pipeline loops poll Expired() at coarse checkpoints —
/// once per SSC combination, per overlap event block, per Optimizer OVR —
/// and unwind without producing an answer (never a partial one; see
/// DESIGN.md section 8 for the serving deadline semantics built on top).
///
/// Expired() latches: once it has returned true it keeps returning true,
/// even if observed through a stale clock, so every stage of a pipeline
/// agrees on whether the run was cancelled. The latch is the only mutable
/// state and is atomic, making Expired() safe to call concurrently from
/// every worker of a ParallelFor fan-out.
///
/// Thread-safety (DESIGN.md §12): deliberately lock-free, so the token
/// carries no MOVD_GUARDED_BY capability. `cancelled_` is a monotonic
/// false->true latch under relaxed ordering — a stale read can only delay
/// the checkpoint by one poll, never un-cancel a run — and `deadline_` is
/// immutable after construction.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never fires on its own (Cancel() still works).
  CancelToken() = default;

  /// A token that fires once `deadline` passes.
  explicit CancelToken(Clock::time_point deadline) : deadline_(deadline) {}

  /// A token that fires `budget` from now.
  static CancelToken After(std::chrono::nanoseconds budget) {
    return CancelToken(Clock::now() + budget);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Fires the token explicitly.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Checkpoint: true once the token was cancelled or its deadline passed.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (deadline_ != Clock::time_point::max() &&
        Clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// The deadline, or Clock::time_point::max() when none was set.
  Clock::time_point deadline() const { return deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
};

/// Nullable-pointer convenience for options structs: a null token never
/// expires.
inline bool TokenExpired(const CancelToken* token) {
  return token != nullptr && token->Expired();
}

}  // namespace movd

#endif  // MOVD_UTIL_CANCEL_H_
