#ifndef MOVD_UTIL_MUTEX_H_
#define MOVD_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace movd {

/// An annotated std::mutex (DESIGN.md §12). The standard library's mutex
/// carries no capability attribute under libstdc++, so Clang's
/// thread-safety analysis cannot check code that uses it directly; this
/// wrapper is the repo's lockable capability. All mutex-protected state
/// declares MOVD_GUARDED_BY(mu_) against an instance of this class, and
/// the Clang CI job proves the lock discipline at compile time.
///
/// Prefer MutexLock for scoped sections. Manual Lock()/Unlock() is for
/// the few places a lock must be dropped mid-function (single-flight
/// builds); the analysis checks those paths too.
class MOVD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MOVD_ACQUIRE() { mu_.lock(); }
  void Unlock() MOVD_RELEASE() { mu_.unlock(); }
  bool TryLock() MOVD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex, scoped-capability-annotated so the analysis
/// knows the capability is held for the guard's lifetime.
class MOVD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MOVD_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MOVD_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A condition variable waiting on movd::Mutex. Wait/WaitUntil require
/// the mutex held (annotated), so the classic
///
///   while (!condition) cv.Wait(mu_);
///
/// loop is fully checked: the condition reads guarded state under the
/// lock, and the analysis knows Wait re-holds the lock on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a loop.
  void Wait(Mutex& mu) MOVD_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock without unlocking so ownership returns to the caller.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Like Wait, but gives up at `deadline`. Returns false when the wait
  /// timed out (the mutex is re-held either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      MOVD_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace movd

#endif  // MOVD_UTIL_MUTEX_H_
