#include "util/thread_pool.h"

#include <atomic>
#include <utility>

namespace movd {

ThreadPool::ThreadPool(int threads) {
  if (threads < 0) threads = 0;
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) task_ready_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

int ResolveThreads(int threads) {
  if (threads >= 1) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  threads = ResolveThreads(threads);
  if (static_cast<size_t>(threads) > n) threads = static_cast<int>(n);
  if (threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  const auto drain = [&next, n, &fn] {
    for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
      fn(i);
    }
  };
  ThreadPool pool(threads - 1);
  for (int t = 1; t < threads; ++t) pool.Submit(drain);
  drain();  // the calling thread is the threads-th worker
  pool.Wait();
}

}  // namespace movd
