#ifndef MOVD_UTIL_SUMMARY_H_
#define MOVD_UTIL_SUMMARY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace movd {

/// The repo-wide statistics vocabulary (DESIGN.md §10). Two consumers,
/// one implementation:
///
///   - the benchmark harness (src/bench_lib) summarises a small batch of
///     per-repetition wall times exactly with `Summary`;
///   - the serving layer (src/serve/metrics.h) streams unbounded request
///     latencies into the lock-free `LatencyHistogram`.
///
/// Both serialise through the same JSON conventions so `BENCH_*.json`
/// and the serve STATS body agree on field names and units.

/// Exact quantile of an ascending-sorted sample, q in [0, 1], with linear
/// interpolation between adjacent order statistics (type-7 estimator, the
/// numpy/R default). Requires a non-empty sorted input.
double SortedQuantile(const std::vector<double>& sorted, double q);

/// Noise-aware summary of a small sample (benchmark repetitions). All
/// statistics are computed over the samples that survive Tukey's IQR
/// fence: a sample is an outlier when it lies more than 1.5·IQR outside
/// [Q1, Q3]. `outliers` counts the rejected samples; min/max/mean/stddev
/// cover the kept ones only, so one context-switch-inflated repetition
/// cannot drag the mean. stddev is the sample standard deviation (n-1).
struct Summary {
  uint64_t count = 0;     ///< samples kept after IQR rejection
  uint64_t outliers = 0;  ///< samples rejected by the IQR fence
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double stddev = 0.0;

  /// Summarises `samples` (unordered, unmodified). `iqr_reject` off keeps
  /// every sample (used when the caller wants raw statistics).
  static Summary FromSamples(std::vector<double> samples,
                             bool iqr_reject = true);

  /// One JSON object: {"count":..,"outliers":..,"min":..,"median":..,
  /// "mean":..,"p95":..,"max":..,"stddev":..}. Numbers use %.9g — enough
  /// to roundtrip nanosecond-scale seconds through text.
  std::string Json() const;
};

/// Fixed-bucket latency histogram: bucket i counts observations with
/// latency in [2^(i-1), 2^i) microseconds (bucket 0: < 1us; the last
/// bucket is an overflow catch-all of ~67s and up). Fixed buckets keep
/// Record() a single atomic increment — no allocation, no lock — which is
/// what a per-request hot path wants; the price is that percentiles are
/// resolved to bucket upper bounds (~2x resolution), plenty for p50/p99
/// dashboards. Exact small-sample statistics are `Summary`'s job.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 28;

  /// Records one observation. Thread-safe (relaxed atomic increment).
  void Record(double seconds);

  /// Adds every bucket of `other` into this histogram. Commutative and
  /// associative (bucket-wise integer addition), so merging per-shard
  /// histograms into a fleet view gives the same result in any grouping —
  /// the property the sharded STATS merge relies on. Thread-safe against
  /// concurrent Record on either side, with the usual torn-across-buckets
  /// caveat of any lock-free multi-counter read.
  void MergeFrom(const LatencyHistogram& other);

  /// Total observations recorded.
  uint64_t Count() const;

  /// Upper bound (in seconds) of the bucket containing the p-th percentile
  /// observation, p in (0, 100]. Returns 0 when empty.
  double PercentileSeconds(double p) const;

  /// Bucket counts as a JSON array ("[0,3,17,...]").
  std::string Json() const;

  /// Bucket-resolution Summary view: count plus median/p95/min/max drawn
  /// from bucket upper bounds (mean/stddev are bucket-approximate too).
  /// Lets dashboards treat streamed histograms and exact bench summaries
  /// uniformly.
  Summary ToSummary() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

}  // namespace movd

#endif  // MOVD_UTIL_SUMMARY_H_
