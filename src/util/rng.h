#ifndef MOVD_UTIL_RNG_H_
#define MOVD_UTIL_RNG_H_

#include <cstdint>

namespace movd {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded via splitmix64. All randomness in the library flows through this
/// class so that experiments and tests are exactly reproducible across
/// platforms (std::mt19937 distributions are not portable across standard
/// library implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Standard normal variate (Box–Muller, deterministic).
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace movd

#endif  // MOVD_UTIL_RNG_H_
