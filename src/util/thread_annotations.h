#ifndef MOVD_UTIL_THREAD_ANNOTATIONS_H_
#define MOVD_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotation macros (DESIGN.md §12).
///
/// These wrap Clang's `-Wthread-safety` attributes so lock discipline is
/// checked at compile time: which mutex guards which field, which
/// functions require or acquire which capability. Under any other
/// compiler (GCC builds locally and in most CI jobs) every macro expands
/// to nothing, so the annotations are pure documentation there; the
/// dedicated Clang CI job builds with `-Wthread-safety -Werror` and fails
/// on any violation.
///
/// Conventions:
///   - Every mutex-protected field is annotated MOVD_GUARDED_BY(mu_).
///   - Private helpers that expect the lock held are annotated
///     MOVD_REQUIRES(mu_) and named *Locked.
///   - Lock-free state (atomics: CancelToken, ServeMetrics,
///     LatencyHistogram, the shared cost bound) carries no capability —
///     its safety argument lives in comments and TSan, not here.
///
/// The macro set mirrors the attribute list in the Clang documentation
/// (and abseil's thread_annotations.h); only the spellings the codebase
/// uses are defined.

#if defined(__clang__) && (!defined(SWIG))
#define MOVD_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define MOVD_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares a class as a lockable capability, e.g.
/// `class MOVD_CAPABILITY("mutex") Mutex { ... };`.
#define MOVD_CAPABILITY(x) MOVD_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction (MutexLock).
#define MOVD_SCOPED_CAPABILITY \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// A data member readable/writable only with the given capability held.
#define MOVD_GUARDED_BY(x) MOVD_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// A pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be read freely).
#define MOVD_PT_GUARDED_BY(x) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function must be called with the capability held (and does not
/// release it).
#define MOVD_REQUIRES(...) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function must be called with the capability NOT held (it acquires
/// it itself, or would deadlock).
#define MOVD_EXCLUDES(...) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define MOVD_ACQUIRE(...) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define MOVD_RELEASE(...) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function attempts to acquire the capability; `result` is the
/// return value that means success.
#define MOVD_TRY_ACQUIRE(result, ...) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(   \
      try_acquire_capability(result, __VA_ARGS__))

/// Returns a reference to the named capability (accessor functions).
#define MOVD_RETURN_CAPABILITY(x) \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: turns the analysis off for one function. Every use needs
/// a comment saying why the analysis cannot see the invariant.
#define MOVD_NO_THREAD_SAFETY_ANALYSIS \
  MOVD_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // MOVD_UTIL_THREAD_ANNOTATIONS_H_
