#ifndef MOVD_UTIL_THREAD_POOL_H_
#define MOVD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace movd {

/// A fixed-size thread pool with one shared FIFO queue (deliberately no
/// work stealing: the pipeline's tasks are coarse — one object set, one
/// grid row range, one Fermat–Weber problem — so a single locked queue is
/// never the bottleneck and keeps the scheduling easy to reason about).
///
/// Tasks must not throw. Submit() may be called from worker tasks; Wait()
/// must only be called from outside the pool.
class ThreadPool {
 public:
  /// Spawns `threads` worker threads (clamped to >= 0). A pool of size 0
  /// runs every submitted task inline in Submit(), which keeps
  /// single-threaded callers free of synchronisation entirely.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.
  void Submit(std::function<void()> task) MOVD_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished.
  void Wait() MOVD_EXCLUDES(mu_);

  /// Number of worker threads.
  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() MOVD_EXCLUDES(mu_);

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ MOVD_GUARDED_BY(mu_);
  size_t in_flight_ MOVD_GUARDED_BY(mu_) = 0;  // queued + currently running
  bool stop_ MOVD_GUARDED_BY(mu_) = false;
  /// Written only by the constructor, then immutable; joined by the
  /// destructor. No lock needed.
  std::vector<std::thread> workers_;
};

/// Effective degree of parallelism for a `threads` knob: values >= 1 are
/// taken literally, 0 (and negatives) mean "one per hardware thread".
int ResolveThreads(int threads);

/// Runs fn(i) for every i in [0, n) across `threads` threads (the calling
/// thread participates). Iterations are claimed dynamically off a shared
/// atomic counter, so the assignment of i to threads is nondeterministic —
/// callers must make fn(i) write only to slot i of pre-sized output and
/// reduce afterwards in index order when determinism matters. With
/// threads <= 1 (or n <= 1) the loop runs inline, in order, with zero
/// threading overhead.
void ParallelFor(int threads, size_t n, const std::function<void(size_t)>& fn);

/// Lowers *target to value when value is smaller (lock-free CAS loop).
/// This is how workers share the §5.4 global cost bound: the bound only
/// ever decreases, so relaxed ordering is sufficient — a stale read can
/// only delay a prune, never admit a wrong answer.
inline void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace movd

#endif  // MOVD_UTIL_THREAD_POOL_H_
