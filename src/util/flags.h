#ifndef MOVD_UTIL_FLAGS_H_
#define MOVD_UTIL_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace movd {

/// Minimal command-line flag parser used by the benchmark and example
/// binaries. Accepts `--name=value` and bare `--name` (boolean true).
/// Unknown arguments are preserved in positional().
///
/// Every Get*/Has call records the queried name; WarnUnused reports flags
/// that were passed but never queried, so a typo'd `--flagname` is loudly
/// surfaced instead of silently ignored. Binaries call it once at the end
/// of Main, after every flag has been read.
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Returns the string value of --name, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Returns the integer value of --name, or `def` when absent or malformed.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Returns the double value of --name, or `def` when absent or malformed.
  double GetDouble(const std::string& name, double def) const;

  /// Returns true when --name was passed (with no value or a truthy value).
  bool GetBool(const std::string& name, bool def) const;

  /// Whether --name appeared at all.
  bool Has(const std::string& name) const;

  /// Arguments that did not start with `--`.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Prints one warning line to `out` for every flag that was passed on
  /// the command line but never queried through Get*/Has — almost always a
  /// misspelled flag name. Returns the number of warnings printed.
  int WarnUnused(std::FILE* out) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  /// Names queried so far; mutable so the const accessors can record.
  mutable std::set<std::string> queried_;
};

}  // namespace movd

#endif  // MOVD_UTIL_FLAGS_H_
