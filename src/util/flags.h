#ifndef MOVD_UTIL_FLAGS_H_
#define MOVD_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace movd {

/// Minimal command-line flag parser used by the benchmark and example
/// binaries. Accepts `--name=value` and bare `--name` (boolean true).
/// Unknown arguments are preserved in positional().
class Flags {
 public:
  Flags(int argc, char** argv);

  /// Returns the string value of --name, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Returns the integer value of --name, or `def` when absent or malformed.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Returns the double value of --name, or `def` when absent or malformed.
  double GetDouble(const std::string& name, double def) const;

  /// Returns true when --name was passed (with no value or a truthy value).
  bool GetBool(const std::string& name, bool def) const;

  /// Whether --name appeared at all.
  bool Has(const std::string& name) const;

  /// Arguments that did not start with `--`.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace movd

#endif  // MOVD_UTIL_FLAGS_H_
