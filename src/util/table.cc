#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace movd {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::AddRow(std::vector<std::string> cells) {
  MOVD_CHECK(cells.size() == rows_[0].size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::FILE* out) const {
  std::vector<size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(width[c]),
                   rows_[r][c].c_str(), c + 1 == rows_[r].size() ? "" : "  ");
    }
    std::fprintf(out, "\n");
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < width.size(); ++c) {
        total += width[c] + (c + 1 == width.size() ? 0 : 2);
      }
      for (size_t i = 0; i < total; ++i) std::fputc('-', out);
      std::fputc('\n', out);
    }
  }
}

std::string Table::Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace movd
