#include "util/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace movd {
namespace {

// Microsecond upper bound of bucket i: 2^i (bucket 0 catches sub-1us).
uint64_t BucketBoundUs(int i) { return 1ull << i; }

void AppendJsonNumber(std::string* out, const char* name, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", name, v);
  *out += buf;
}

}  // namespace

double SortedQuantile(const std::vector<double>& sorted, double q) {
  MOVD_CHECK_MSG(!sorted.empty(), "quantile of an empty sample");
  MOVD_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary Summary::FromSamples(std::vector<double> samples, bool iqr_reject) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());

  const size_t total = samples.size();
  std::vector<double> kept;
  if (iqr_reject && samples.size() >= 4) {
    const double q1 = SortedQuantile(samples, 0.25);
    const double q3 = SortedQuantile(samples, 0.75);
    const double fence = 1.5 * (q3 - q1);
    for (const double v : samples) {
      if (v >= q1 - fence && v <= q3 + fence) kept.push_back(v);
    }
  } else {
    kept = std::move(samples);
  }
  // The fence is centred on the quartiles, so at least half the sample
  // always survives; kept is never empty.
  s.count = kept.size();
  s.outliers = total - kept.size();
  s.min = kept.front();
  s.max = kept.back();
  s.median = SortedQuantile(kept, 0.50);
  s.p95 = SortedQuantile(kept, 0.95);
  double sum = 0.0;
  for (const double v : kept) sum += v;
  s.mean = sum / static_cast<double>(kept.size());
  if (kept.size() >= 2) {
    double ss = 0.0;
    for (const double v : kept) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(kept.size() - 1));
  }
  return s;
}

std::string Summary::Json() const {
  std::string out = "{";
  out += "\"count\":" + std::to_string(count);
  out += ",\"outliers\":" + std::to_string(outliers);
  out += ",";
  AppendJsonNumber(&out, "min", min);
  out += ",";
  AppendJsonNumber(&out, "median", median);
  out += ",";
  AppendJsonNumber(&out, "mean", mean);
  out += ",";
  AppendJsonNumber(&out, "p95", p95);
  out += ",";
  AppendJsonNumber(&out, "max", max);
  out += ",";
  AppendJsonNumber(&out, "stddev", stddev);
  out += "}";
  return out;
}

void LatencyHistogram::Record(double seconds) {
  const double us = seconds * 1e6;
  int bucket = 0;
  while (bucket < kBuckets - 1 &&
         us >= static_cast<double>(BucketBoundUs(bucket))) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
}

uint64_t LatencyHistogram::Count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::PercentileSeconds(double p) const {
  MOVD_CHECK_MSG(p > 0.0 && p <= 100.0,
                 "percentile must be in (0, 100]");
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  // Rank of the percentile observation, 1-based, rounded up.
  const uint64_t rank =
      static_cast<uint64_t>((p / 100.0) * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      return static_cast<double>(BucketBoundUs(i)) * 1e-6;
    }
  }
  return static_cast<double>(BucketBoundUs(kBuckets - 1)) * 1e-6;
}

std::string LatencyHistogram::Json() const {
  std::string out = "[";
  for (int i = 0; i < kBuckets; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(buckets_[i].load(std::memory_order_relaxed));
  }
  out += "]";
  return out;
}

Summary LatencyHistogram::ToSummary() const {
  Summary s;
  uint64_t total = 0;
  double sum = 0.0, sum_sq = 0.0;
  int first = -1, last = -1;
  for (int i = 0; i < kBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (first < 0) first = i;
    last = i;
    total += c;
    const double bound = static_cast<double>(BucketBoundUs(i)) * 1e-6;
    sum += static_cast<double>(c) * bound;
    sum_sq += static_cast<double>(c) * bound * bound;
  }
  if (total == 0) return s;
  s.count = total;
  s.min = static_cast<double>(BucketBoundUs(first)) * 1e-6;
  s.max = static_cast<double>(BucketBoundUs(last)) * 1e-6;
  s.median = PercentileSeconds(50);
  s.p95 = PercentileSeconds(95);
  s.mean = sum / static_cast<double>(total);
  if (total >= 2) {
    const double var =
        (sum_sq - sum * s.mean) / static_cast<double>(total - 1);
    s.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return s;
}

}  // namespace movd
