#ifndef MOVD_UTIL_EXEC_OPTIONS_H_
#define MOVD_UTIL_EXEC_OPTIONS_H_

#include "util/cancel.h"

namespace movd {

class Trace;

/// Execution knobs shared by every pipeline entry point — solver options
/// (MolqOptions, OptimizerOptions, SscOptions, BatchOptions) and the
/// serving layer (ServeRequest, QueryEngineOptions) embed one of these
/// instead of re-declaring the fields and copy-forwarding them across the
/// core/serve boundary. None of the knobs changes the answer: (location,
/// cost, group) is bit-identical for every thread count, with auditing on
/// or off, and with tracing on or off.
struct ExecOptions {
  /// Degree of parallelism: per-set basic-MOVD builds, weighted-grid
  /// dominance sampling, and the Fermat–Weber fan-outs (which share the
  /// §5.4 cost bound via an atomic CAS-min). 1 (default) keeps every stage
  /// serial, so paper-reproduction numbers are unchanged unless opted in;
  /// 0 means one thread per hardware thread.
  int threads = 1;

  /// Runs the structural invariant auditors (src/audit, DESIGN.md §7) as
  /// post-conditions at the pipeline seams and collects violations into
  /// the run's AuditReport instead of aborting. Defaults to off (audits
  /// cost extra passes over the built structures); building with
  /// -DMOVD_AUDIT=ON flips the default to on for the whole build.
#ifdef MOVD_AUDIT_DEFAULT_ON
  bool audit = true;
#else
  bool audit = false;
#endif

  /// Span sink (src/trace, DESIGN.md §9). Non-null makes every stage of
  /// the run record hierarchical timing spans + typed counters into this
  /// trace; null (default) disables tracing at near-zero cost (one
  /// thread-local read per would-be span). Tracing never changes answer
  /// bytes. The trace must outlive the call.
  Trace* trace = nullptr;

  /// Cooperative cancellation (serving deadlines, DESIGN.md §8). When the
  /// token fires, the pipeline unwinds at its next checkpoint — between
  /// stages, per SSC combination, per overlap event block, per Optimizer
  /// OVR — and the entry point reports StatusCode::kCancelled with no
  /// answer fields populated (never a partial answer). Null means run to
  /// completion.
  const CancelToken* cancel = nullptr;

  /// Grid resolution used to approximate weighted Voronoi diagrams when a
  /// set has non-uniform object weights (§5.3).
  int weighted_grid_resolution = 128;
};

}  // namespace movd

#endif  // MOVD_UTIL_EXEC_OPTIONS_H_
