#ifndef MOVD_UTIL_EXEC_OPTIONS_H_
#define MOVD_UTIL_EXEC_OPTIONS_H_

#include "util/cancel.h"

namespace movd {

class Trace;

/// Construction algorithm for the approximated weighted Voronoi diagrams
/// (paper §5.3). Both produce the same WeightedCellApprox shape with the
/// same conservative-cover guarantee; they differ in how the dominance
/// regions are found.
enum class WeightedMethod {
  /// Adaptive quadtree refinement (DESIGN.md §11): classifies quad nodes
  /// by interval-arithmetic dominance bounds on the affine weighted
  /// distance and recurses only where the boundary is ambiguous. The
  /// default — orders of magnitude less work than the dense grid at the
  /// same effective resolution, and its covers contain the *entire*
  /// dominance region (not just sampled centers).
  kAdaptive,
  /// Brute-force dense-grid dominance sampling: O(resolution^2 * sites).
  /// Kept as the reference fallback; its per-sample owner grid is what
  /// the audit cross-checks replay bit-exactly.
  kDenseGrid,
};

/// Execution knobs shared by every pipeline entry point — solver options
/// (MolqOptions, OptimizerOptions, SscOptions, BatchOptions) and the
/// serving layer (ServeRequest, QueryEngineOptions) embed one of these
/// instead of re-declaring the fields and copy-forwarding them across the
/// core/serve boundary. None of the knobs changes the answer: (location,
/// cost, group) is bit-identical for every thread count, with auditing on
/// or off, and with tracing on or off.
struct ExecOptions {
  /// Degree of parallelism: per-set basic-MOVD builds, weighted-grid
  /// dominance sampling, and the Fermat–Weber fan-outs (which share the
  /// §5.4 cost bound via an atomic CAS-min). 1 (default) keeps every stage
  /// serial, so paper-reproduction numbers are unchanged unless opted in;
  /// 0 means one thread per hardware thread.
  int threads = 1;

  /// Runs the structural invariant auditors (src/audit, DESIGN.md §7) as
  /// post-conditions at the pipeline seams and collects violations into
  /// the run's AuditReport instead of aborting. Defaults to off (audits
  /// cost extra passes over the built structures); building with
  /// -DMOVD_AUDIT=ON flips the default to on for the whole build.
#ifdef MOVD_AUDIT_DEFAULT_ON
  bool audit = true;
#else
  bool audit = false;
#endif

  /// Span sink (src/trace, DESIGN.md §9). Non-null makes every stage of
  /// the run record hierarchical timing spans + typed counters into this
  /// trace; null (default) disables tracing at near-zero cost (one
  /// thread-local read per would-be span). Tracing never changes answer
  /// bytes. The trace must outlive the call.
  Trace* trace = nullptr;

  /// Cooperative cancellation (serving deadlines, DESIGN.md §8). When the
  /// token fires, the pipeline unwinds at its next checkpoint — between
  /// stages, per SSC combination, per overlap event block, per Optimizer
  /// OVR — and the entry point reports StatusCode::kCancelled with no
  /// answer fields populated (never a partial answer). Null means run to
  /// completion.
  const CancelToken* cancel = nullptr;

  /// Grid resolution used to approximate weighted Voronoi diagrams when a
  /// set has non-uniform object weights (§5.3). The adaptive method rounds
  /// this up to the next power of two (its effective leaf lattice).
  int weighted_grid_resolution = 128;

  /// How weighted diagrams are constructed (see WeightedMethod). Changes
  /// only the conservative covers' tightness/cost, never which locations a
  /// correct answer may come from.
  WeightedMethod weighted_method = WeightedMethod::kAdaptive;
};

}  // namespace movd

#endif  // MOVD_UTIL_EXEC_OPTIONS_H_
