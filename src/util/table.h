#ifndef MOVD_UTIL_TABLE_H_
#define MOVD_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace movd {

/// Fixed-width text table printer for benchmark harnesses. Produces the
/// row/series layout the paper's figures report, e.g.:
///
///   Table tbl({"objects", "SSC(ms)", "RRB(ms)", "MBRB(ms)"});
///   tbl.AddRow({"1000", "812.4", "55.1", "12.9"});
///   tbl.Print(stdout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns to `out`.
  void Print(std::FILE* out) const;

  /// Formats a double with `digits` significant decimals.
  static std::string Fmt(double v, int digits = 3);

 private:
  std::vector<std::vector<std::string>> rows_;  // rows_[0] is the header
};

}  // namespace movd

#endif  // MOVD_UTIL_TABLE_H_
