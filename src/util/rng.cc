#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace movd {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  MOVD_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  MOVD_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % n;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace movd
