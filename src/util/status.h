#ifndef MOVD_UTIL_STATUS_H_
#define MOVD_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace movd {

/// The one terminal-state vocabulary shared by every subsystem (solver
/// entry points, storage, serving). Before this enum the repo had three
/// ad-hoc conventions — bool + error out-param (SaveCache,
/// ParseRequestLine), optional<T> sentinels (LoadMovd), and per-layer
/// enums (MolqStatus, ServeStatus); they are all expressed in this one
/// code space now. `MolqStatus` and `ServeStatus` are aliases of this
/// enum, and the historical enumerator spellings are kept as aliases so
/// existing callers keep compiling.
enum class StatusCode : uint8_t {
  kOk = 0,
  kCancelled,         ///< a CancelToken fired (cooperative deadline)
  kInvalidArgument,   ///< malformed request / bad parameter
  kDeadlineExceeded,  ///< a request deadline fired; no answer produced
  kNotFound,          ///< named entity (dataset, file, key) does not exist
  kDataLoss,          ///< stored data failed validation (corrupt/truncated)
  kIoError,           ///< the OS refused a read/write/open
  kInternal,          ///< invariant violation on our side
  kOverloaded,        ///< admission control shed the request (serve)
  kUnsupportedVerb,   ///< serve verb unknown to this protocol version

  // Historical spellings (serve's wire enum) kept as value aliases.
  kInvalidRequest = kInvalidArgument,
  kInternalError = kInternal,
};

/// Canonical wire name of a code ("OK", "DEADLINE_EXCEEDED",
/// "INVALID_REQUEST", ...). The serve line protocol emits these, so the
/// historical serve spellings are the canonical ones where they overlap.
const char* StatusCodeName(StatusCode code);

/// A status code plus a human-readable detail message (empty when kOk).
/// Cheap to pass by value; the common OK path allocates nothing.
class [[nodiscard]] Status {
 public:
  /// OK.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status UnsupportedVerb(std::string msg) {
    return Status(StatusCode::kUnsupportedVerb, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "DATA_LOSS: truncated record 7".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the non-OK status explaining why there is none.
/// `has_value()` / `operator*` / `operator->` mirror std::optional so the
/// optional-returning call sites this type replaced keep their shape.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value (the success path reads like `return movd;`).
  StatusOr(T value) : value_(std::move(value)) {}

  /// Implicit from a non-OK status (`return Status::DataLoss(...);`).
  StatusOr(Status status) : status_(std::move(status)) {
    MOVD_CHECK_MSG(!status_.ok(),
                   "StatusOr built from a status needs a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  bool has_value() const { return ok(); }
  explicit operator bool() const { return ok(); }

  /// kOk when a value is present.
  const Status& status() const { return status_; }

  const T& value() const& {
    MOVD_CHECK_MSG(ok(), "StatusOr::value() called without a value");
    return *value_;
  }
  T& value() & {
    MOVD_CHECK_MSG(ok(), "StatusOr::value() called without a value");
    return *value_;
  }
  T&& value() && {
    MOVD_CHECK_MSG(ok(), "StatusOr::value() called without a value");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // kOk iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace movd

#endif  // MOVD_UTIL_STATUS_H_
