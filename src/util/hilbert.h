#ifndef MOVD_UTIL_HILBERT_H_
#define MOVD_UTIL_HILBERT_H_

#include <cstdint>

namespace movd {

/// Maps cell coordinates (x, y) on a 2^order x 2^order grid to the distance
/// along the Hilbert curve. Used to sort points into a spatially local
/// insertion order (keeps incremental Delaunay point-location walks short).
inline uint64_t HilbertIndex(uint32_t order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = order == 0 ? 0 : (1u << (order - 1)); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      const uint32_t t = x;
      x = y;
      y = t;
    }
  }
  return d;
}

}  // namespace movd

#endif  // MOVD_UTIL_HILBERT_H_
