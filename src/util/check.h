#ifndef MOVD_UTIL_CHECK_H_
#define MOVD_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking macros.
//
// MOVD_CHECK(cond) aborts with a diagnostic when `cond` is false. It is kept
// in all build types: the library's algorithms are geometric and an invariant
// violation almost always means a silently wrong answer downstream, which is
// far more expensive than the branch.
//
// MOVD_CHECK_MSG(cond, msg) is the same with a human-readable explanation;
// public-API entry validation uses this form so a caller error reports what
// contract was broken, not just the raw expression (enforced by
// tools/lint_movd.py, rule `entry-check-msg`).
//
// MOVD_DCHECK(cond) compiles away in NDEBUG builds and is used on hot paths.

#define MOVD_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MOVD_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define MOVD_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MOVD_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   static_cast<const char*>(msg), __FILE__, __LINE__);       \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
// The condition must stay visible to the compiler even when it is never
// evaluated: `sizeof` type-checks the expression and counts as a use of
// every variable in it (silencing -Wunused-variable for DCHECK-only
// locals) without odr-using or executing anything.
#define MOVD_DCHECK(cond)         \
  do {                            \
    (void)sizeof(!(cond)); \
  } while (0)
#else
#define MOVD_DCHECK(cond) MOVD_CHECK(cond)
#endif

#endif  // MOVD_UTIL_CHECK_H_
