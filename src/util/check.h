#ifndef MOVD_UTIL_CHECK_H_
#define MOVD_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking macros.
//
// MOVD_CHECK(cond) aborts with a diagnostic when `cond` is false. It is kept
// in all build types: the library's algorithms are geometric and an invariant
// violation almost always means a silently wrong answer downstream, which is
// far more expensive than the branch.
//
// MOVD_DCHECK(cond) compiles away in NDEBUG builds and is used on hot paths.

#define MOVD_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "MOVD_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define MOVD_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define MOVD_DCHECK(cond) MOVD_CHECK(cond)
#endif

#endif  // MOVD_UTIL_CHECK_H_
