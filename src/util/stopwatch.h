#ifndef MOVD_UTIL_STOPWATCH_H_
#define MOVD_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace movd {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses. This is
/// the repo's only sanctioned steady-clock read besides CancelToken (the
/// raw-chrono lint rule enforces that); anything that needs a timestamp
/// goes through here or through a trace span.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Whole nanoseconds elapsed since construction or the last Reset().
  /// Integer so trace records can be compared/sorted exactly.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace movd

#endif  // MOVD_UTIL_STOPWATCH_H_
