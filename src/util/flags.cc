#include "util/flags.h"

#include <cstdlib>

namespace movd {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  queried_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "false" && it->second != "0";
}

bool Flags::Has(const std::string& name) const {
  queried_.insert(name);
  return values_.count(name) > 0;
}

int Flags::WarnUnused(std::FILE* out) const {
  int warned = 0;
  for (const auto& [name, value] : values_) {
    if (queried_.count(name)) continue;
    std::fprintf(out,
                 "warning: unknown flag --%s=%s was never read "
                 "(misspelled flag name?)\n",
                 name.c_str(), value.c_str());
    ++warned;
  }
  return warned;
}

}  // namespace movd
