// Micro-benchmarks of the geometry kernel (google-benchmark): predicate
// fast path vs exact fallback, convex clipping, hull construction.

#include <benchmark/benchmark.h>

#include "geom/hull.h"
#include "geom/polygon.h"
#include "geom/predicates.h"
#include "util/rng.h"

namespace movd {
namespace {

void BM_Orient2DFastPath(benchmark::State& state) {
  Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  size_t i = 0;
  for (auto _ : state) {
    const Point& a = pts[i % pts.size()];
    const Point& b = pts[(i + 1) % pts.size()];
    const Point& c = pts[(i + 2) % pts.size()];
    benchmark::DoNotOptimize(Orient2D(a, b, c));
    ++i;
  }
}
BENCHMARK(BM_Orient2DFastPath);

void BM_Orient2DExactFallback(benchmark::State& state) {
  // Nearly collinear triples force the exact expansion path.
  const Point a{0.5, 0.5};
  const Point b{12.0, 12.0};
  const Point c{3.0, 3.0000000000000004};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Orient2D(a, b, c));
  }
}
BENCHMARK(BM_Orient2DExactFallback);

void BM_InCircleFastPath(benchmark::State& state) {
  Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InCircle(pts[i % 997], pts[(i + 1) % 997],
                                      pts[(i + 2) % 997], pts[(i + 3) % 997]));
    ++i;
  }
}
BENCHMARK(BM_InCircleFastPath);

void BM_InCircleExactFallback(benchmark::State& state) {
  // Cocircular points (square corners) force the exact path.
  const Point a{0, 0}, b{1, 0}, c{1, 1}, d{0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(InCircle(a, b, c, d));
  }
}
BENCHMARK(BM_InCircleExactFallback);

void BM_ConvexIntersect(benchmark::State& state) {
  const int64_t verts = state.range(0);
  // Two regular polygons with `verts` vertices, offset to half-overlap.
  std::vector<Point> ring_a, ring_b;
  for (int64_t i = 0; i < verts; ++i) {
    const double ang = 2.0 * M_PI * static_cast<double>(i) / verts;
    ring_a.push_back({std::cos(ang), std::sin(ang)});
    ring_b.push_back({0.8 + std::cos(ang), 0.3 + std::sin(ang)});
  }
  const ConvexPolygon a(ring_a), b(ring_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConvexPolygon::Intersect(a, b));
  }
}
BENCHMARK(BM_ConvexIntersect)->Arg(4)->Arg(8)->Arg(32)->Arg(128);

void BM_ConvexHull(benchmark::State& state) {
  Rng rng(3);
  std::vector<Point> pts;
  for (int64_t i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.NextGaussian(), rng.NextGaussian()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConvexHull(pts));
  }
}
BENCHMARK(BM_ConvexHull)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace movd

BENCHMARK_MAIN();
