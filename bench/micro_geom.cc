// Micro-benchmarks of the geometry kernel: predicate fast path vs exact
// fallback, convex clipping, hull construction.
//
// Harnessed (DESIGN.md §10): fixed internal op batches per repetition with
// bench::Keep; ns_per_op is Derived (never gated), kernel outputs are
// Metrics (gated exactly).

#include <cmath>

#include "bench/bench_common.h"
#include "geom/hull.h"
#include "geom/polygon.h"
#include "geom/predicates.h"

namespace movd::bench {

BENCH(micro_predicates) {
  {
    BenchCase& c = ctx.Case("orient2d_fast_path");
    Rng rng(1);
    std::vector<Point> pts;
    for (int i = 0; i < 3000; ++i) {
      pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    }
    constexpr int kOps = 1000000;
    double last = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        const Point& a = pts[i % pts.size()];
        const Point& b = pts[(i + 1) % pts.size()];
        const Point& cc = pts[(i + 2) % pts.size()];
        last = Orient2D(a, b, cc);
        Keep(last);
      }
    });
    c.Metric("last_orient", last);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    // Nearly collinear triples force the exact expansion path.
    BenchCase& c = ctx.Case("orient2d_exact_fallback");
    const Point a{0.5, 0.5};
    const Point b{12.0, 12.0};
    const Point cc{3.0, 3.0000000000000004};
    constexpr int kOps = 200000;
    double last = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        last = Orient2D(a, b, cc);
        Keep(last);
      }
    });
    c.Metric("last_orient", last);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    BenchCase& c = ctx.Case("incircle_fast_path");
    Rng rng(2);
    std::vector<Point> pts;
    for (int i = 0; i < 4000; ++i) {
      pts.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    }
    constexpr int kOps = 500000;
    double last = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        last = InCircle(pts[i % 997], pts[(i + 1) % 997], pts[(i + 2) % 997],
                        pts[(i + 3) % 997]);
        Keep(last);
      }
    });
    c.Metric("last_incircle", last);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    // Cocircular points (square corners) force the exact path.
    BenchCase& c = ctx.Case("incircle_exact_fallback");
    const Point a{0, 0}, b{1, 0}, cc{1, 1}, d{0, 1};
    constexpr int kOps = 100000;
    double last = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        last = InCircle(a, b, cc, d);
        Keep(last);
      }
    });
    c.Metric("last_incircle", last);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }
}

BENCH(micro_polygons) {
  for (const int64_t verts : {4, 8, 32, 128}) {
    BenchCase& c = ctx.Case("convex_intersect/verts=" +
                            std::to_string(verts))
                       .Param("verts", verts);
    // Two regular polygons with `verts` vertices, offset to half-overlap.
    std::vector<Point> ring_a, ring_b;
    for (int64_t i = 0; i < verts; ++i) {
      const double ang =
          2.0 * M_PI * static_cast<double>(i) / static_cast<double>(verts);
      ring_a.push_back({std::cos(ang), std::sin(ang)});
      ring_b.push_back({0.8 + std::cos(ang), 0.3 + std::sin(ang)});
    }
    const ConvexPolygon a(ring_a), b(ring_b);
    constexpr int kOps = 20000;
    size_t out_verts = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        const auto clipped = ConvexPolygon::Intersect(a, b);
        out_verts = clipped.vertices().size();
        Keep(out_verts);
      }
    });
    c.Metric("out_verts", static_cast<double>(out_verts));
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  for (const int64_t n : {100, 1000, 10000}) {
    BenchCase& c = ctx.Case("convex_hull/n=" + std::to_string(n))
                       .Param("n", n);
    Rng rng(3);
    std::vector<Point> pts;
    for (int64_t i = 0; i < n; ++i) {
      pts.push_back({rng.NextGaussian(), rng.NextGaussian()});
    }
    const int ops = n <= 1000 ? 2000 : 200;
    size_t hull_verts = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < ops; ++i) {
        const auto hull = ConvexHull(pts);
        hull_verts = hull.vertices().size();
        Keep(hull_verts);
      }
    });
    c.Metric("hull_verts", static_cast<double>(hull_verts));
    c.Derived("ns_per_op", wall.median / ops * 1e9);
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("micro_geom")
