// Micro-benchmarks of the spatial substrates (google-benchmark): R-tree
// construction and queries, Delaunay triangulation, Voronoi cell building.

#include <benchmark/benchmark.h>

#include "index/kdtree.h"
#include "index/rtree.h"
#include "util/rng.h"
#include "voronoi/delaunay.h"
#include "voronoi/voronoi.h"

namespace movd {
namespace {

std::vector<Point> MakePoints(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (int64_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
  }
  return pts;
}

void BM_RTreeBulkLoad(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RTree::BulkLoadPoints(pts));
  }
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeKnn(benchmark::State& state) {
  const auto pts = MakePoints(100000, 12);
  const RTree tree = RTree::BulkLoadPoints(pts);
  Rng rng(13);
  for (auto _ : state) {
    const Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(tree.Nearest(q, state.range(0)));
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_RTreeInsert(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0), 14);
  for (auto _ : state) {
    RTree tree;
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert({Rect::OfPoint(pts[i]), static_cast<int64_t>(i)});
    }
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_KdTreeBuild(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KdTree::Build(pts));
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_KdTreeKnn(benchmark::State& state) {
  const auto pts = MakePoints(100000, 18);
  const KdTree tree = KdTree::Build(pts);
  Rng rng(19);
  for (auto _ : state) {
    const Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
    benchmark::DoNotOptimize(tree.Nearest(q, state.range(0)));
  }
}
BENCHMARK(BM_KdTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_DelaunayBuild(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0), 15);
  for (auto _ : state) {
    const Delaunay dt(pts);
    benchmark::DoNotOptimize(dt.num_real_points());
  }
}
BENCHMARK(BM_DelaunayBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_VoronoiBuild(benchmark::State& state) {
  const auto pts = MakePoints(state.range(0), 16);
  const Rect bounds(0, 0, 10000, 10000);
  for (auto _ : state) {
    const auto vd = VoronoiDiagram::Build(pts, bounds);
    benchmark::DoNotOptimize(vd.cells().size());
  }
}
BENCHMARK(BM_VoronoiBuild)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace movd

BENCHMARK_MAIN();
