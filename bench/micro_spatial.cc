// Micro-benchmarks of the spatial substrates: R-tree construction and
// queries, k-d tree, Delaunay triangulation, Voronoi cell building.
//
// Harnessed (DESIGN.md §10): fixed internal op batches per repetition with
// bench::Keep; ns_per_op is Derived (never gated), structure outputs are
// Metrics (gated exactly). The heavyweight default sizes of the old
// google-benchmark suite are trimmed via --scale so the CI perf job can run
// this suite at small sizes.

#include "bench/bench_common.h"
#include "index/kdtree.h"
#include "index/rtree.h"
#include "voronoi/delaunay.h"
#include "voronoi/voronoi.h"

namespace movd::bench {
namespace {

std::vector<Point> MakePoints(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  for (int64_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
  }
  return pts;
}

// Divides the base sizes by --scale (floor 16) and drops duplicates so an
// aggressive scale cannot produce two cases with the same name.
std::vector<int64_t> ScaledSizes(std::initializer_list<int64_t> base,
                                 int64_t scale) {
  std::vector<int64_t> out;
  for (const int64_t n : base) {
    const int64_t size = std::max<int64_t>(16, n / scale);
    if (out.empty() || out.back() != size) out.push_back(size);
  }
  return out;
}

}  // namespace

BENCH(micro_index) {
  // --scale divides every data-set size (CI uses --scale=10).
  const int64_t scale = std::max<int64_t>(1, ctx.flags().GetInt("scale", 1));

  for (const int64_t size : ScaledSizes({1000, 10000, 100000}, scale)) {
    BenchCase& c = ctx.Case("rtree_bulk_load/n=" + std::to_string(size))
                       .Param("n", size);
    const auto pts = MakePoints(size, 11);
    const int ops = size <= 1000 ? 200 : 20;
    size_t tree_size = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < ops; ++i) {
        const RTree tree = RTree::BulkLoadPoints(pts);
        tree_size = tree.size();
        Keep(tree_size);
      }
    });
    c.Metric("entries", static_cast<double>(tree_size));
    c.Derived("ns_per_op", wall.median / ops * 1e9);
  }

  {
    const int64_t size = std::max<int64_t>(1000, 100000 / scale);
    const auto pts = MakePoints(size, 12);
    const RTree tree = RTree::BulkLoadPoints(pts);
    for (const int64_t k : {1, 10, 100}) {
      BenchCase& c = ctx.Case("rtree_knn/k=" + std::to_string(k))
                         .Param("n", size)
                         .Param("k", k);
      constexpr int kOps = 2000;
      size_t found = 0;
      const Summary& wall = ctx.Measure(c, [&] {
        Rng rng(13);
        for (int i = 0; i < kOps; ++i) {
          const Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
          found = tree.Nearest(q, k).size();
          Keep(found);
        }
      });
      c.Metric("found", static_cast<double>(found));
      c.Derived("ns_per_op", wall.median / kOps * 1e9);
    }
  }

  for (const int64_t size : ScaledSizes({1000, 10000}, scale)) {
    BenchCase& c = ctx.Case("rtree_insert/n=" + std::to_string(size))
                       .Param("n", size);
    const auto pts = MakePoints(size, 14);
    const int ops = size <= 1000 ? 50 : 5;
    size_t tree_size = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < ops; ++i) {
        RTree tree;
        for (size_t j = 0; j < pts.size(); ++j) {
          tree.Insert({Rect::OfPoint(pts[j]), static_cast<int64_t>(j)});
        }
        tree_size = tree.size();
        Keep(tree_size);
      }
    });
    c.Metric("entries", static_cast<double>(tree_size));
    c.Derived("ns_per_op", wall.median / ops * 1e9);
  }

  for (const int64_t size : ScaledSizes({1000, 10000, 100000}, scale)) {
    BenchCase& c = ctx.Case("kdtree_build/n=" + std::to_string(size))
                       .Param("n", size);
    const auto pts = MakePoints(size, 17);
    const int ops = size <= 1000 ? 200 : 20;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < ops; ++i) {
        const KdTree tree = KdTree::Build(pts);
        Keep(tree);
      }
    });
    c.Derived("ns_per_op", wall.median / ops * 1e9);
  }

  {
    const int64_t size = std::max<int64_t>(1000, 100000 / scale);
    const auto pts = MakePoints(size, 18);
    const KdTree tree = KdTree::Build(pts);
    for (const int64_t k : {1, 10, 100}) {
      BenchCase& c = ctx.Case("kdtree_knn/k=" + std::to_string(k))
                         .Param("n", size)
                         .Param("k", k);
      constexpr int kOps = 2000;
      size_t found = 0;
      const Summary& wall = ctx.Measure(c, [&] {
        Rng rng(19);
        for (int i = 0; i < kOps; ++i) {
          const Point q{rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
          found = tree.Nearest(q, k).size();
          Keep(found);
        }
      });
      c.Metric("found", static_cast<double>(found));
      c.Derived("ns_per_op", wall.median / kOps * 1e9);
    }
  }
}

BENCH(micro_voronoi) {
  const int64_t scale = std::max<int64_t>(1, ctx.flags().GetInt("scale", 1));

  for (const int64_t size : ScaledSizes({1000, 10000, 50000}, scale)) {
    BenchCase& c = ctx.Case("delaunay_build/n=" + std::to_string(size))
                       .Param("n", size);
    const auto pts = MakePoints(size, 15);
    const int ops = size <= 1000 ? 20 : 2;
    size_t real_points = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < ops; ++i) {
        const Delaunay dt(pts);
        real_points = dt.num_real_points();
        Keep(real_points);
      }
    });
    c.Metric("real_points", static_cast<double>(real_points));
    c.Derived("ns_per_op", wall.median / ops * 1e9);
  }

  for (const int64_t size : ScaledSizes({1000, 10000, 50000}, scale)) {
    BenchCase& c = ctx.Case("voronoi_build/n=" + std::to_string(size))
                       .Param("n", size);
    const auto pts = MakePoints(size, 16);
    const int ops = size <= 1000 ? 20 : 2;
    size_t cells = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < ops; ++i) {
        const auto vd = VoronoiDiagram::Build(pts, kWorld);
        cells = vd.cells().size();
        Keep(cells);
      }
    });
    c.Metric("cells", static_cast<double>(cells));
    c.Derived("ns_per_op", wall.median / ops * 1e9);
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("micro_spatial")
