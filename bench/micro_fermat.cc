// Micro-benchmarks of the Fermat–Weber solvers.
//
// Harnessed (DESIGN.md §10): each case runs a fixed internal batch of ops
// per repetition (bench::Keep defeats dead-code elimination) and reports
// ns_per_op as a Derived value — timing-derived, so never gated across
// machines by bench_diff. The solver outputs recorded as Metrics (costs,
// iteration counts) ARE gated: they must be bit-stable for a fixed seed.

#include "bench/bench_common.h"
#include "fermat/fermat_weber.h"

namespace movd::bench {
namespace {

std::vector<WeightedPoint> MakeProblem(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedPoint> pts;
  for (int64_t i = 0; i < n; ++i) {
    pts.push_back(
        {{rng.Uniform(0, 10), rng.Uniform(0, 10)}, rng.Uniform(0.1, 10)});
  }
  return pts;
}

}  // namespace

BENCH(micro_weiszfeld) {
  for (const int64_t n : {4, 5, 8, 32, 128}) {
    BenchCase& c = ctx.Case("solve/n=" + std::to_string(n)).Param("n", n);
    const auto pts = MakeProblem(n, 7);
    FermatWeberOptions opts;
    opts.epsilon = 1e-3;
    constexpr int kOps = 2000;
    double cost = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        const FermatWeberResult r = SolveFermatWeber(pts, opts);
        cost = r.cost;
        Keep(cost);
      }
    });
    c.Metric("cost", cost);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    BenchCase& c = ctx.Case("solve_tight_epsilon/n=5");
    const auto pts = MakeProblem(5, 8);
    FermatWeberOptions opts;
    opts.epsilon = 1e-6;
    constexpr int kOps = 2000;
    double cost = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        cost = SolveFermatWeber(pts, opts).cost;
        Keep(cost);
      }
    });
    c.Metric("cost", cost);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    // Over-relaxed iteration (Ostresh step 1.8): same optimum, fewer steps.
    BenchCase& c = ctx.Case("solve_relaxed/n=8");
    const auto pts = MakeProblem(8, 7);
    FermatWeberOptions opts;
    opts.epsilon = 1e-6;
    opts.relaxation = 1.8;
    constexpr int kOps = 2000;
    double cost = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        cost = SolveFermatWeber(pts, opts).cost;
        Keep(cost);
      }
    });
    c.Metric("cost", cost);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }
}

BENCH(micro_fermat_kernels) {
  for (const int64_t n : {5, 32, 128}) {
    BenchCase& c = ctx.Case("lower_bound/n=" + std::to_string(n))
                       .Param("n", n);
    const auto pts = MakeProblem(n, 9);
    const Point at{5, 5};
    constexpr int kOps = 100000;
    double bound = 0.0;
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        bound = FermatWeberLowerBound(pts, at);
        Keep(bound);
      }
    });
    c.Metric("bound", bound);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    BenchCase& c = ctx.Case("exact_triangle");
    const std::vector<WeightedPoint> pts = {
        {{0, 0}, 1.0}, {{10, 1}, 1.0}, {{4, 8}, 1.0}};
    constexpr int kOps = 100000;
    Point at{0, 0};
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        at = SolveTriangle(pts);
        Keep(at);
      }
    });
    c.Metric("x", at.x);
    c.Metric("y", at.y);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }

  {
    BenchCase& c = ctx.Case("collinear_median/n=64");
    std::vector<WeightedPoint> pts;
    Rng rng(10);
    for (int i = 0; i < 64; ++i) {
      const double t = rng.Uniform(0, 100);
      pts.push_back({{t, 2.0 * t}, rng.Uniform(0.1, 10)});
    }
    constexpr int kOps = 20000;
    Point at{0, 0};
    const Summary& wall = ctx.Measure(c, [&] {
      for (int i = 0; i < kOps; ++i) {
        const auto median = SolveCollinear(pts);
        if (median.has_value()) at = *median;
        Keep(at);
      }
    });
    c.Metric("x", at.x);
    c.Metric("y", at.y);
    c.Derived("ns_per_op", wall.median / kOps * 1e9);
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("micro_fermat")
