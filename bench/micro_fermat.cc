// Micro-benchmarks of the Fermat–Weber solvers (google-benchmark).

#include <benchmark/benchmark.h>

#include "fermat/fermat_weber.h"
#include "util/rng.h"

namespace movd {
namespace {

std::vector<WeightedPoint> MakeProblem(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedPoint> pts;
  for (int64_t i = 0; i < n; ++i) {
    pts.push_back(
        {{rng.Uniform(0, 10), rng.Uniform(0, 10)}, rng.Uniform(0.1, 10)});
  }
  return pts;
}

void BM_WeiszfeldSolve(benchmark::State& state) {
  const auto pts = MakeProblem(state.range(0), 7);
  FermatWeberOptions opts;
  opts.epsilon = 1e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveFermatWeber(pts, opts));
  }
}
BENCHMARK(BM_WeiszfeldSolve)->Arg(4)->Arg(5)->Arg(8)->Arg(32)->Arg(128);

void BM_WeiszfeldSolveTightEpsilon(benchmark::State& state) {
  const auto pts = MakeProblem(5, 8);
  FermatWeberOptions opts;
  opts.epsilon = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveFermatWeber(pts, opts));
  }
}
BENCHMARK(BM_WeiszfeldSolveTightEpsilon);

void BM_WeiszfeldRelaxed(benchmark::State& state) {
  // Over-relaxed iteration (Ostresh step 1.8): same optimum, fewer steps.
  const auto pts = MakeProblem(8, 7);
  FermatWeberOptions opts;
  opts.epsilon = 1e-6;
  opts.relaxation = 1.8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveFermatWeber(pts, opts));
  }
}
BENCHMARK(BM_WeiszfeldRelaxed);

void BM_LowerBound(benchmark::State& state) {
  const auto pts = MakeProblem(state.range(0), 9);
  const Point at{5, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(FermatWeberLowerBound(pts, at));
  }
}
BENCHMARK(BM_LowerBound)->Arg(5)->Arg(32)->Arg(128);

void BM_ExactTriangle(benchmark::State& state) {
  const std::vector<WeightedPoint> pts = {
      {{0, 0}, 1.0}, {{10, 1}, 1.0}, {{4, 8}, 1.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveTriangle(pts));
  }
}
BENCHMARK(BM_ExactTriangle);

void BM_CollinearMedian(benchmark::State& state) {
  std::vector<WeightedPoint> pts;
  Rng rng(10);
  for (int i = 0; i < 64; ++i) {
    const double t = rng.Uniform(0, 100);
    pts.push_back({{t, 2.0 * t}, rng.Uniform(0.1, 10)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveCollinear(pts));
  }
}
BENCHMARK(BM_CollinearMedian);

}  // namespace
}  // namespace movd

BENCHMARK_MAIN();
