// Reproduces Fig. 13: memory consumption of the MOVD produced by
// overlapping two Voronoi diagrams, RRB vs MBRB. The paper's finding: even
// though MBRB holds more OVRs (Fig. 12), each is just two points, so MBRB
// consumes 26-29% less memory at two object types. Memory is measured by
// byte-accurate structure accounting (see Movd::MemoryBytes), so the byte
// counts are deterministic Metrics gated exactly by bench_diff.
//
// Harnessed (DESIGN.md §10). Extra flags: --sizes=1000,2000,4000,8000.

#include "bench/bench_common.h"

namespace movd::bench {

BENCH(fig13_overlap_memory) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "1000,2000,4000,8000"));
  for (const size_t n : sizes) {
    for (const size_t m : sizes) {
      const auto basic = MakeBasicMovds({n, m}, ctx.seed(), ctx.threads());
      const std::string suffix =
          "/n=" + std::to_string(n) + "/m=" + std::to_string(m);
      size_t rrb_bytes = 0;
      for (const auto& [mode, name] :
           {std::pair{BoundaryMode::kRealRegion, "rrb"},
            std::pair{BoundaryMode::kMbr, "mbrb"}}) {
        BenchCase& c = ctx.Case(std::string(name) + suffix)
                           .Param("mode", name)
                           .Param("n", n)
                           .Param("m", m);
        size_t bytes = 0;
        size_t points = 0;
        ctx.Measure(c, [&] {
          const Movd out = Overlap(basic[0], basic[1], mode);
          bytes = out.MemoryBytes(mode);
          points = mode == BoundaryMode::kRealRegion
                       ? out.VertexCount()
                       : 2 * out.ovrs.size();
          Keep(bytes);
        });
        c.Metric("bytes", static_cast<double>(bytes));
        c.Metric("points", static_cast<double>(points));
        if (mode == BoundaryMode::kRealRegion) {
          rrb_bytes = bytes;
        } else {
          c.Derived("bytes_ratio_vs_rrb",
                    static_cast<double>(bytes) /
                        static_cast<double>(std::max<size_t>(1, rrb_bytes)));
        }
      }
    }
  }
  // Weighted build phase (see fig11).
  const int wres = static_cast<int>(ctx.flags().GetInt("wres", 256));
  for (const size_t n : sizes) WeightedBuildCases(ctx, 2, n, wres);
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig13_overlap_memory")
