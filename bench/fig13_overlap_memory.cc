// Reproduces Fig. 13: memory consumption of the MOVD produced by
// overlapping two Voronoi diagrams, RRB vs MBRB. The paper's finding: even
// though MBRB holds more OVRs (Fig. 12), each is just two points, so MBRB
// consumes 26-29% less memory at two object types. Memory is measured by
// byte-accurate structure accounting (see Movd::MemoryBytes).
//
// Flags: --sizes=1000,2000,4000,8000  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchTrace bench_trace(flags);
  const auto sizes = ParseSizes(flags.GetString("sizes", "1000,2000,4000,8000"));
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Fig. 13 — memory consumption of the overlapped MOVD, "
              "RRB vs MBRB (structure bytes; points stored)\n\n");
  Table table({"|STM|", "|CH|", "RRB bytes", "MBRB bytes", "MBRB/RRB",
               "RRB points", "MBRB points"});
  for (const size_t n : sizes) {
    for (const size_t m : sizes) {
      const auto basic = MakeBasicMovds({n, m}, seed, threads);
      const Movd rrb = Overlap(basic[0], basic[1], BoundaryMode::kRealRegion);
      const Movd mbrb = Overlap(basic[0], basic[1], BoundaryMode::kMbr);
      const size_t rrb_bytes = rrb.MemoryBytes(BoundaryMode::kRealRegion);
      const size_t mbrb_bytes = mbrb.MemoryBytes(BoundaryMode::kMbr);
      table.AddRow({std::to_string(n), std::to_string(m),
                    FormatBytes(rrb_bytes), FormatBytes(mbrb_bytes),
                    Table::Fmt(static_cast<double>(mbrb_bytes) / rrb_bytes,
                               2),
                    std::to_string(rrb.VertexCount()),
                    std::to_string(2 * mbrb.ovrs.size())});
    }
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
