// Benchmark of the query-algebra evaluators (DESIGN.md §13): all four
// shapes — skyline, diversified top-k, constrained MOLQ, and what-if
// sweeps — run against the SAME prebuilt MOVD overlay, isolating the
// per-shape evaluation cost from the (shared, cacheable) artifact build.
// The overlay build itself is measured once per size as its own case so a
// regression in either half is attributable.
//
// Deterministic metrics gate exactly through bench_diff: candidate and
// skyline sizes, dominance-test counts from the pruning pass, diversified
// selection/skip counts, constrained boundary-solve counts, and the
// sweep's answer count. All evaluators are bit-identical across thread
// counts, so these survive machine changes.
//
// Extra flags: --sizes=16,32  --vectors=8

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/overlap.h"
#include "model/query_model.h"
#include "query/constrained.h"
#include "query/diversify.h"
#include "query/skyline.h"
#include "query/whatif.h"
#include "util/rng.h"

namespace movd::bench {
namespace {

Movd BuildOverlay(const MolqQuery& query, int threads) {
  std::vector<Movd> basic(query.sets.size());
  ParallelFor(threads, query.sets.size(), [&](size_t s) {
    basic[s] = BuildBasicMovd(query, static_cast<int32_t>(s), kWorld,
                              /*weighted_grid_resolution=*/128);
  });
  return OverlapAll(basic, BoundaryMode::kRealRegion);
}

/// A boundary box over the central quarter of the world plus one exclusion
/// inside it: every seed keeps the constrained solve non-trivial (clipping
/// splits OVRs) without going infeasible.
QueryConstraint MakeConstraint() {
  QueryConstraint c;
  const double w = kWorld.max_x - kWorld.min_x;
  const double h = kWorld.max_y - kWorld.min_y;
  c.boundary = Polygon({{0.25 * w, 0.25 * h},
                        {0.75 * w, 0.25 * h},
                        {0.75 * w, 0.75 * h},
                        {0.25 * w, 0.75 * h}});
  c.exclusions.push_back(Polygon({{0.45 * w, 0.45 * h},
                                  {0.55 * w, 0.45 * h},
                                  {0.55 * w, 0.55 * h},
                                  {0.45 * w, 0.55 * h}}));
  return c;
}

std::vector<WhatIfVector> MakeVectors(size_t count, size_t arity,
                                      uint64_t seed) {
  Rng rng(seed ^ 0x51feull);
  std::vector<WhatIfVector> vectors;
  for (size_t v = 0; v < count; ++v) {
    WhatIfVector w;
    for (size_t s = 0; s < arity; ++s) {
      w.scale.push_back(rng.Uniform(0.5, 2.0));
    }
    vectors.push_back(std::move(w));
  }
  return vectors;
}

}  // namespace

BENCH(query) {
  const auto sizes = ParseSizes(ctx.flags().GetString("sizes", "16,32"));
  const size_t vector_count =
      static_cast<size_t>(ctx.flags().GetInt("vectors", 8));
  for (const size_t n : sizes) {
    const std::string suffix = "/n=" + std::to_string(n);
    const MolqQuery query = MakeQuery({n, n, n}, ctx.seed());

    Movd movd;
    {
      BenchCase& c = ctx.Case(std::string("overlay") + suffix)
                         .Param("shape", "overlay")
                         .Param("n", n);
      ctx.Measure(c, [&] { movd = BuildOverlay(query, ctx.threads()); });
      c.Metric("ovrs", static_cast<double>(movd.ovrs.size()));
    }

    CandidateOptions opts;
    opts.exec = ctx.MakeExec();

    {
      BenchCase& c = ctx.Case(std::string("skyline") + suffix)
                         .Param("shape", "skyline")
                         .Param("n", n);
      SkylineResult r;
      ctx.Measure(c, [&] { r = SkylineFromMovd(query, movd, opts); });
      c.Metric("candidates", static_cast<double>(r.candidates));
      c.Metric("skyline_size", static_cast<double>(r.skyline.size()));
      c.Metric("dominance_tests", static_cast<double>(r.dominance_tests));
    }

    {
      const size_t k = 8;
      const double min_dist = (kWorld.max_x - kWorld.min_x) / 50.0;
      BenchCase& c = ctx.Case(std::string("diverse") + suffix)
                         .Param("shape", "diverse")
                         .Param("n", n)
                         .Param("k", k);
      DiverseTopKResult r;
      ctx.Measure(c, [&] {
        r = DiverseTopKFromMovd(query, movd, k, min_dist, opts);
      });
      c.Metric("selected", static_cast<double>(r.selected.size()));
      c.Metric("skipped", static_cast<double>(r.skipped));
    }

    {
      const QueryConstraint constraint = MakeConstraint();
      BenchCase& c = ctx.Case(std::string("constrained") + suffix)
                         .Param("shape", "constrained")
                         .Param("n", n);
      ConstrainedMolqResult r;
      ctx.Measure(c, [&] {
        r = ConstrainedMolqFromMovd(query, movd, constraint, kWorld, opts);
      });
      c.Metric("feasible", r.feasible ? 1.0 : 0.0);
      c.Metric("clipped_ovrs", static_cast<double>(r.clipped_ovrs));
      c.Metric("boundary_solves", static_cast<double>(r.boundary_solves));
    }

    {
      const auto vectors =
          MakeVectors(vector_count, query.sets.size(), ctx.seed());
      WhatIfOptions wopts;
      wopts.topk = 2;
      wopts.exec = ctx.MakeExec();
      BenchCase& c = ctx.Case(std::string("whatif") + suffix)
                         .Param("shape", "whatif")
                         .Param("n", n)
                         .Param("vectors", vector_count);
      WhatIfSweepResult r;
      ctx.Measure(c, [&] {
        r = WhatIfSweepFromMovd(query, movd, vectors, wopts);
      });
      size_t answers = 0;
      for (const auto& ranking : r.per_vector) answers += ranking.size();
      c.Metric("answers", static_cast<double>(answers));
      // Per-vector amortised cost vs one full evaluation is the number the
      // sweep exists to improve; observability only, never gated.
      c.Derived("answers_per_vector",
                static_cast<double>(answers) /
                    static_cast<double>(vector_count));
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("query")
