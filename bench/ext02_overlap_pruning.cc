// Extension experiment 2 (paper §8 future work: filtering impossible POI
// combinations during MOVD overlapping): the combination-pruning overlap
// vs the plain pipeline, for RRB and MBRB at 3 and 4 object types.
//
// Harnessed (DESIGN.md §10). Extra flags: --sizes=16,32,64 --epsilon=1e-3.

#include "bench/bench_common.h"

namespace movd::bench {

BENCH(ext02_overlap_pruning) {
  const auto sizes = ParseSizes(ctx.flags().GetString("sizes", "16,32,64"));
  const double epsilon = ctx.flags().GetDouble("epsilon", 1e-3);
  for (const size_t types : {3u, 4u}) {
    for (const size_t n : sizes) {
      const MolqQuery query =
          MakeQuery(std::vector<size_t>(types, n), ctx.seed());
      for (const auto& [algo, name] :
           {std::pair{MolqAlgorithm::kRrb, "rrb"},
            std::pair{MolqAlgorithm::kMbrb, "mbrb"}}) {
        const std::string suffix = std::string("/") + name + "/types=" +
                                   std::to_string(types) + "/n=" +
                                   std::to_string(n);
        MolqOptions opts;
        opts.algorithm = algo;
        opts.epsilon = epsilon;
        opts.exec = ctx.MakeExec();

        BenchCase& plain = ctx.Case("plain" + suffix)
                               .Param("algo", name)
                               .Param("types", types)
                               .Param("n", n);
        MolqResult plain_r;
        const Summary& plain_wall = ctx.Measure(
            plain, [&] { plain_r = SolveMolq(query, kWorld, opts); });
        plain.Metric("cost", plain_r.cost);
        plain.Metric("final_ovrs",
                     static_cast<double>(plain_r.stats.final_ovrs));

        opts.use_overlap_pruning = true;
        BenchCase& pruned = ctx.Case("pruned" + suffix)
                                .Param("algo", name)
                                .Param("types", types)
                                .Param("n", n);
        MolqResult pruned_r;
        const Summary& pruned_wall = ctx.Measure(
            pruned, [&] { pruned_r = SolveMolq(query, kWorld, opts); });
        pruned.Metric("cost", pruned_r.cost);
        pruned.Metric("final_ovrs",
                      static_cast<double>(pruned_r.stats.final_ovrs));
        const double cut =
            plain_r.stats.final_ovrs == 0
                ? 0.0
                : 100.0 * (1.0 -
                           static_cast<double>(pruned_r.stats.final_ovrs) /
                               static_cast<double>(plain_r.stats.final_ovrs));
        pruned.Derived("ovr_cut_pct", cut);
        pruned.Derived("speedup_vs_plain",
                       plain_wall.median / pruned_wall.median);
      }
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("ext02_overlap_pruning")
