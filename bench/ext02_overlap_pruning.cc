// Extension experiment 2 (paper §8 future work: filtering impossible POI
// combinations during MOVD overlapping): the combination-pruning overlap
// vs the plain pipeline, for RRB and MBRB at 3 and 4 object types.
//
// Flags: --sizes=16,32,64  --epsilon=1e-3  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sizes = ParseSizes(flags.GetString("sizes", "16,32,64"));
  const double epsilon = flags.GetDouble("epsilon", 1e-3);
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Extension: combination pruning during overlap "
              "(epsilon=%g, threads=%d)\n\n", epsilon, threads);
  Table table({"types", "objects", "algo", "plain(s)", "pruned(s)",
               "plain OVRs", "pruned OVRs", "cut"});
  for (const size_t types : {3u, 4u}) {
    for (const size_t n : sizes) {
      const MolqQuery query = MakeQuery(std::vector<size_t>(types, n), seed);
      for (const auto& [algo, name] :
           {std::pair{MolqAlgorithm::kRrb, "RRB"},
            std::pair{MolqAlgorithm::kMbrb, "MBRB"}}) {
        MolqOptions opts;
        opts.algorithm = algo;
        opts.epsilon = epsilon;
        opts.exec.threads = threads;
        Stopwatch sw;
        const MolqResult plain = SolveMolq(query, kWorld, opts);
        const double plain_s = sw.ElapsedSeconds();
        opts.use_overlap_pruning = true;
        sw.Reset();
        const MolqResult pruned = SolveMolq(query, kWorld, opts);
        const double pruned_s = sw.ElapsedSeconds();
        const double cut =
            plain.stats.final_ovrs == 0
                ? 0.0
                : 100.0 * (1.0 - static_cast<double>(pruned.stats.final_ovrs) /
                                     plain.stats.final_ovrs);
        table.AddRow({std::to_string(types), std::to_string(n), name,
                      Table::Fmt(plain_s, 3), Table::Fmt(pruned_s, 3),
                      std::to_string(plain.stats.final_ovrs),
                      std::to_string(pruned.stats.final_ovrs),
                      Table::Fmt(cut, 1) + "%"});
      }
    }
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
