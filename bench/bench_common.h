#ifndef MOVD_BENCH_BENCH_COMMON_H_
#define MOVD_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_lib/bench.h"
#include "core/molq.h"
#include "model/object.h"
#include "data/generate.h"
#include "geom/rect.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace movd::bench {

/// Workload builders shared by the harnessed bench binaries. Everything
/// the binaries used to hand-roll around these — flag parsing, warmup /
/// repetition policy, tracing, JSON emission — lives in the harness
/// (src/bench_lib, DESIGN.md §10) now; this header only makes paper-shaped
/// inputs.

/// The search space used by every harness (arbitrary units; the paper's
/// data is continental-scale but only relative geometry matters).
inline constexpr Rect kWorld(0, 0, 10000, 10000);

/// Builds a MOLQ query over the first `sizes.size()` classes of the
/// GeoNames-like catalog (Ē follows the paper's selection sequence
/// STM, CH, SCH, PPL, BLDG), with `sizes[i]` objects sampled per class and
/// one type weight per *type* drawn uniformly from (0, 10) as in §6.1
/// (ς^t must rank uniformly within a type for the OVD model's Property 5).
/// Object weights stay 1 (the paper's default), keeping the exact
/// ordinary-Voronoi path.
inline MolqQuery MakeQuery(const std::vector<size_t>& sizes, uint64_t seed) {
  const auto& catalog = GeoNamesLikeCatalog();
  Rng rng(seed);
  MolqQuery query;
  for (size_t s = 0; s < sizes.size(); ++s) {
    ObjectSet set;
    set.name = catalog[s % catalog.size()].name;
    double type_weight = rng.Uniform(0.0, 10.0);
    if (type_weight == 0.0) type_weight = 0.1;  // keep positive
    const auto points = SamplePoiClass(set.name, sizes[s], kWorld, seed + s);
    for (const Point& p : points) {
      SpatialObject obj;
      obj.location = p;
      obj.type_weight = type_weight;
      set.objects.push_back(obj);
    }
    query.sets.push_back(std::move(set));
  }
  return query;
}

/// One basic MOVD per class for overlap-only experiments (Figs. 11-14).
/// `threads` parallelises across sets exactly like SolveMolq's VD Generator
/// stage (each set writes its own slot, so the result is independent of the
/// thread count).
inline std::vector<Movd> MakeBasicMovds(const std::vector<size_t>& sizes,
                                        uint64_t seed, int threads = 1) {
  const MolqQuery query = MakeQuery(sizes, seed);
  std::vector<Movd> out(query.sets.size());
  ParallelFor(threads, query.sets.size(), [&](size_t s) {
    out[s] = BuildBasicMovd(query, static_cast<int32_t>(s), kWorld,
                            /*weighted_grid_resolution=*/128);
  });
  return out;
}

/// Weighted variant of MakeQuery: per-object weights drawn from (0.5, 2.5)
/// make ς^o rank-shuffling, so every set routes to the approximated
/// weighted diagram instead of the exact ordinary one. This is the
/// VD-Generator configuration the weighted-build benchmark cases measure.
inline MolqQuery MakeWeightedQuery(const std::vector<size_t>& sizes,
                                   uint64_t seed) {
  MolqQuery query = MakeQuery(sizes, seed);
  Rng rng(seed ^ 0x5eedull);
  for (ObjectSet& set : query.sets) {
    for (SpatialObject& obj : set.objects) {
      obj.object_weight = rng.Uniform(0.5, 2.5);
    }
  }
  return query;
}

/// One weighted basic MOVD per class, built with the given construction
/// method (paper §5.3; DESIGN.md §11). The `ovrs_out` sum is a
/// deterministic metric: both methods derive ownership from the shared
/// BestWeightedSite tie rule, and each construction is bit-identical for
/// every thread count.
inline std::vector<Movd> MakeWeightedBasicMovds(const MolqQuery& query,
                                                WeightedMethod method,
                                                int resolution, int threads) {
  std::vector<Movd> out(query.sets.size());
  for (size_t s = 0; s < query.sets.size(); ++s) {
    out[s] = BuildBasicMovd(query, static_cast<int32_t>(s), kWorld,
                            resolution, threads, /*audit=*/nullptr, method);
  }
  return out;
}

/// The weighted VD-Generator (build-phase) cases shared by the Fig. 11-14
/// harnesses: one adaptive and one dense-grid case per workload, measuring
/// BuildBasicMovd over a `types`-set weighted query of `n` objects per
/// set. The summed OVR count is a deterministic gated Metric; the adaptive
/// case carries a Derived speedup_vs_dense for observability.
inline void WeightedBuildCases(BenchContext& ctx, size_t types, size_t n,
                               int resolution) {
  const MolqQuery query =
      MakeWeightedQuery(std::vector<size_t>(types, n), ctx.seed());
  const std::string suffix =
      "/types=" + std::to_string(types) + "/n=" + std::to_string(n);
  const Summary* dense_wall = nullptr;
  for (const auto& [method, name] :
       {std::pair{WeightedMethod::kDenseGrid, "dense"},
        std::pair{WeightedMethod::kAdaptive, "adaptive"}}) {
    BenchCase& c = ctx.Case(std::string("wbuild_") + name + suffix)
                       .Param("method", name)
                       .Param("types", types)
                       .Param("n", n)
                       .Param("resolution", static_cast<int64_t>(resolution));
    size_t ovrs = 0;
    const Summary& wall = ctx.Measure(c, [&] {
      const auto basic =
          MakeWeightedBasicMovds(query, method, resolution, ctx.threads());
      ovrs = 0;
      for (const Movd& m : basic) ovrs += m.ovrs.size();
      Keep(ovrs);
    });
    c.Metric("movd_ovrs", static_cast<double>(ovrs));
    if (method == WeightedMethod::kDenseGrid) {
      dense_wall = &wall;
    } else {
      c.Derived("speedup_vs_dense", dense_wall->median / wall.median);
    }
  }
}

/// Parses a comma-separated size list (bench --sizes flags).
inline std::vector<size_t> ParseSizes(const std::string& csv) {
  std::vector<size_t> sizes;
  size_t pos = 0;
  while (pos < csv.size()) {
    sizes.push_back(std::strtoull(csv.c_str() + pos, nullptr, 10));
    const size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

/// Parses a comma-separated double list (bench --epsilons flags).
inline std::vector<double> ParseDoubles(const std::string& csv) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::strtod(csv.c_str() + pos, nullptr));
    const size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// Compact %g formatting for case names ("eps=0.001", "keep=0.05").
inline std::string FmtG(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

/// Human-readable byte count.
inline std::string FormatBytes(size_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1fMiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1fKiB",
                  static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace movd::bench

#endif  // MOVD_BENCH_BENCH_COMMON_H_
