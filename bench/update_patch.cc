// Live-update maintenance (DESIGN.md §14): incremental artifact patching
// vs rebuilding from scratch after every site mutation. Four cases per
// workload size, all replaying the same deterministic mutation script on
// layer 0 of a two-layer ordinary query:
//
//   basic_patch     mirror the layer in an OrdinaryLayerState and Apply()
//                   each mutation (includes the initial mirror build, like
//                   ext03's repair case — subtract nothing, the speedup is
//                   reported against the honest end-to-end loop)
//   basic_rebuild   BuildBasicMovd from scratch after every mutation
//                   (post-mutation queries prematerialised; the rebuilds
//                   fan out across --threads workers)
//   overlay_patch   keep the two-layer overlay current with PatchOverlay
//                   after each mutation
//   overlay_rebuild refold the overlay from the per-update basics with the
//                   engine's identity fold (basics prematerialised)
//
// The patched artifacts are byte-identical to the rebuilt ones (that is
// the §14 contract, enforced by tests/update_test.cc); this harness gates
// the speed side of the bargain. The recomputed/retained counters are
// deterministic script functions and gate exactly.
// Extra flags: --sizes=200,800  --updates=32.

#include <utility>

#include "bench/bench_common.h"
#include "core/overlap.h"
#include "core/update.h"
#include "model/update_model.h"
#include "util/check.h"

namespace movd::bench {
namespace {

/// The engine's overlay fold: left-fold from the identity MOVD in
/// ascending layer order, then canonicalise. PatchOverlay's output is
/// byte-comparable against exactly this shape.
Movd FoldOverlay(const Movd& b0, const Movd& b1, BoundaryMode mode) {
  Movd acc = IdentityMovd(kWorld);
  acc = Overlap(acc, b0, mode);
  acc = Overlap(acc, b1, mode);
  CanonicalizeOvrOrder(&acc);
  return acc;
}

/// One scripted mutation plus the bookkeeping the patchers need: the
/// deleted object's pre-mutation index (PatchOverlay's renumbering input)
/// and the full post-mutation query (the rebuild baselines' input).
struct ScriptStep {
  SiteMutation mut;
  int32_t deleted_object = -1;
  MolqQuery after;
};

/// Builds the deterministic mutation script: alternating inserts and
/// deletes on layer 0, reproducible from the harness seed.
std::vector<ScriptStep> MakeScript(const MolqQuery& base, size_t updates,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<ScriptStep> script;
  MolqQuery query = base;
  for (size_t u = 0; u < updates; ++u) {
    ScriptStep step;
    step.mut.layer = 0;
    ObjectSet& set = query.sets[0];
    if (u % 2 == 0 || set.objects.size() < 2) {
      step.mut.kind = MutationKind::kInsert;
      step.mut.location = {rng.Uniform(0, 10000), rng.Uniform(0, 10000)};
      SpatialObject obj;
      obj.location = step.mut.location;
      obj.type_weight = set.objects.front().type_weight;
      set.objects.push_back(obj);
    } else {
      const size_t pick = rng.NextBelow(set.objects.size());
      step.mut.kind = MutationKind::kDelete;
      step.mut.location = set.objects[pick].location;
      step.deleted_object = static_cast<int32_t>(pick);
      set.objects.erase(set.objects.begin() + static_cast<ptrdiff_t>(pick));
    }
    step.after = query;
    script.push_back(std::move(step));
  }
  return script;
}

}  // namespace

BENCH(update_patch) {
  const auto sizes = ParseSizes(ctx.flags().GetString("sizes", "200,800"));
  const size_t updates =
      static_cast<size_t>(ctx.flags().GetInt("updates", 32));
  const BoundaryMode mode = BoundaryMode::kRealRegion;
  for (const size_t n : sizes) {
    const MolqQuery base = MakeQuery({n, n}, ctx.seed());
    const std::vector<ScriptStep> script =
        MakeScript(base, updates, ctx.seed() + 1);
    const std::string suffix = "/n=" + std::to_string(n);

    // --- basic MOVD maintenance ---------------------------------------
    BenchCase& bp = ctx.Case("basic_patch" + suffix)
                        .Param("n", n)
                        .Param("updates", updates);
    size_t recomputed_cells = 0;
    size_t final_ovrs = 0;
    const Summary& bp_wall = ctx.Measure(bp, [&] {
      OrdinaryLayerState state(base, /*set=*/0, kWorld);
      recomputed_cells = 0;
      for (size_t u = 0; u < updates; ++u) {
        LayerPatchStats stats;
        if (state.Apply(script[u].mut, &stats)) {
          recomputed_cells += stats.recomputed_cells;
        } else {
          // Incremental deletion stalled: restart the mirror, exactly as
          // the serve engine does, and charge every live cell.
          state = OrdinaryLayerState(script[u].after, 0, kWorld);
          recomputed_cells += state.num_objects();
        }
      }
      final_ovrs = state.Materialize().ovrs.size();
      Keep(final_ovrs);
    });
    bp.Metric("recomputed_cells", static_cast<double>(recomputed_cells));
    bp.Metric("final_ovrs", static_cast<double>(final_ovrs));

    BenchCase& br = ctx.Case("basic_rebuild" + suffix)
                        .Param("n", n)
                        .Param("updates", updates);
    const Summary& br_wall = ctx.Measure(br, [&] {
      ParallelFor(ctx.threads(), updates, [&](size_t u) {
        const Movd movd = BuildBasicMovd(script[u].after, 0, kWorld,
                                         /*weighted_grid_resolution=*/128);
        Keep(movd.ovrs.size());
      });
    });
    br.Derived("rebuild_over_patch",
               br_wall.median / std::max(bp_wall.median, 1e-9));

    // --- overlay maintenance ------------------------------------------
    // Layer 1 never mutates; its basic is shared by both overlay cases.
    const Movd b1 = BuildBasicMovd(base, 1, kWorld, 128);
    const auto basic_of = [&](int32_t) { return &b1; };

    BenchCase& op = ctx.Case("overlay_patch" + suffix)
                        .Param("n", n)
                        .Param("updates", updates);
    size_t retained = 0;
    size_t recomputed_ovrs = 0;
    size_t overlay_ovrs = 0;
    const Summary& op_wall = ctx.Measure(op, [&] {
      OrdinaryLayerState state(base, 0, kWorld);
      Movd b0 = state.Materialize();
      Movd overlay = FoldOverlay(b0, b1, mode);
      retained = recomputed_ovrs = 0;
      for (size_t u = 0; u < updates; ++u) {
        LayerPatchStats ls;
        if (!state.Apply(script[u].mut, &ls)) {
          state = OrdinaryLayerState(script[u].after, 0, kWorld);
          Movd fresh = state.Materialize();
          overlay = FoldOverlay(fresh, b1, mode);
          recomputed_ovrs += overlay.ovrs.size();
          b0 = std::move(fresh);
          continue;
        }
        Movd nb0 = state.Materialize();
        Movd next;
        OverlayPatchStats os;
        const bool ok =
            PatchOverlay(overlay, {0, 1}, /*mutated_layer=*/0, b0, nb0,
                         basic_of, mode, kWorld, script[u].deleted_object,
                         &next, &os);
        MOVD_CHECK(ok);
        retained += os.retained_ovrs;
        recomputed_ovrs += os.recomputed_ovrs;
        overlay = std::move(next);
        b0 = std::move(nb0);
      }
      overlay_ovrs = overlay.ovrs.size();
      Keep(overlay_ovrs);
    });
    op.Metric("retained_ovrs", static_cast<double>(retained));
    op.Metric("recomputed_ovrs", static_cast<double>(recomputed_ovrs));
    op.Metric("overlay_ovrs", static_cast<double>(overlay_ovrs));

    // Rebuild baseline: what a non-incremental server does per mutation —
    // rebuild the mutated layer's basic from scratch, then refold the
    // overlay. (overlay_patch pays the matching costs: Apply + Materialize
    // + PatchOverlay.) The per-update rebuilds fan out across --threads
    // workers.
    BenchCase& orb = ctx.Case("overlay_rebuild" + suffix)
                         .Param("n", n)
                         .Param("updates", updates);
    const Summary& orb_wall = ctx.Measure(orb, [&] {
      ParallelFor(ctx.threads(), updates, [&](size_t u) {
        const Movd b0u = BuildBasicMovd(script[u].after, 0, kWorld, 128);
        const Movd overlay = FoldOverlay(b0u, b1, mode);
        Keep(overlay.ovrs.size());
      });
    });
    orb.Derived("rebuild_over_patch",
                orb_wall.median / std::max(op_wall.median, 1e-9));
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("update")
