// Reproduces Fig. 14: overlapping multiple Voronoi diagrams (2-5 object
// types drawn in the paper's sequence STM, CH, SCH, PPL, BLDG).
//
//  part (a): availability — the largest per-type object count whose final
//            MOVD fits a memory budget, per approach (the paper exhausts a
//            24 GB server; we model a configurable budget with the same
//            byte-accurate accounting used in Fig. 13).
//  parts (b)/(c)/(d): execution time / #OVRs / memory along the
//            availability line, including RRB* (RRB run at MBRB's sizes
//            for a fair comparison, as in the paper).
//
// Flags: --budget_mb=8  --max_n=16384  --seed=1  --types=2,3,4,5  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

struct Measurement {
  size_t ovrs = 0;
  size_t bytes = 0;
  double overlap_seconds = 0.0;
};

Measurement Measure(size_t types, size_t n, BoundaryMode mode,
                    uint64_t seed, int threads) {
  const std::vector<size_t> sizes(types, n);
  const auto basic = MakeBasicMovds(sizes, seed, threads);
  Stopwatch sw;
  const Movd out = OverlapAll(basic, mode);
  Measurement m;
  m.overlap_seconds = sw.ElapsedSeconds();
  m.ovrs = out.ovrs.size();
  m.bytes = out.MemoryBytes(mode);
  return m;
}

// Largest n (doubling + binary search) whose final MOVD memory fits the
// budget. Capped by max_n to keep the search laptop-friendly.
size_t MaxSizeUnderBudget(size_t types, BoundaryMode mode, size_t budget,
                          size_t max_n, uint64_t seed, int threads) {
  size_t lo = 16;
  if (Measure(types, lo, mode, seed, threads).bytes > budget) return 0;
  size_t hi = lo;
  while (hi < max_n) {
    const size_t next = std::min(max_n, hi * 2);
    if (Measure(types, next, mode, seed, threads).bytes > budget) {
      hi = next;
      break;
    }
    lo = hi = next;
  }
  while (hi - lo > std::max<size_t>(1, lo / 16)) {  // ~6% resolution
    const size_t mid = lo + (hi - lo) / 2;
    if (Measure(types, mid, mode, seed, threads).bytes > budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchTrace bench_trace(flags);
  const size_t budget =
      static_cast<size_t>(flags.GetInt("budget_mb", 8)) << 20;
  const size_t max_n = static_cast<size_t>(flags.GetInt("max_n", 16384));
  const uint64_t seed = flags.GetInt("seed", 1);
  const auto types_list = ParseSizes(flags.GetString("types", "2,3,4,5"));
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Fig. 14(a) — availability: max objects/type under a %s "
              "MOVD-memory budget\n\n", FormatBytes(budget).c_str());
  std::vector<size_t> rrb_max(types_list.size());
  std::vector<size_t> mbrb_max(types_list.size());
  {
    Table table({"#types", "RRB max objects", "MBRB max objects"});
    for (size_t i = 0; i < types_list.size(); ++i) {
      const size_t t = types_list[i];
      rrb_max[i] = MaxSizeUnderBudget(t, BoundaryMode::kRealRegion, budget,
                                      max_n, seed, threads);
      mbrb_max[i] = MaxSizeUnderBudget(t, BoundaryMode::kMbr, budget, max_n,
                                       seed, threads);
      table.AddRow({std::to_string(t), std::to_string(rrb_max[i]),
                    std::to_string(mbrb_max[i])});
    }
    table.Print(stdout);
  }

  std::printf("\nFig. 14(b)/(c)/(d) — overlap time, #OVRs and memory along "
              "the availability line (RRB* = RRB at MBRB's sizes)\n\n");
  Table table({"#types", "n(RRB)", "RRB(s)", "RRB OVRs", "RRB mem",
               "n(MBRB)", "MBRB(s)", "MBRB OVRs", "MBRB mem", "RRB*(s)",
               "RRB* OVRs", "RRB* mem"});
  for (size_t i = 0; i < types_list.size(); ++i) {
    const size_t t = types_list[i];
    if (rrb_max[i] == 0 || mbrb_max[i] == 0) continue;
    const Measurement rrb =
        Measure(t, rrb_max[i], BoundaryMode::kRealRegion, seed, threads);
    const Measurement mbrb =
        Measure(t, mbrb_max[i], BoundaryMode::kMbr, seed, threads);
    const Measurement rrb_star =
        Measure(t, mbrb_max[i], BoundaryMode::kRealRegion, seed, threads);
    table.AddRow({std::to_string(t), std::to_string(rrb_max[i]),
                  Table::Fmt(rrb.overlap_seconds, 3),
                  std::to_string(rrb.ovrs), FormatBytes(rrb.bytes),
                  std::to_string(mbrb_max[i]),
                  Table::Fmt(mbrb.overlap_seconds, 3),
                  std::to_string(mbrb.ovrs), FormatBytes(mbrb.bytes),
                  Table::Fmt(rrb_star.overlap_seconds, 3),
                  std::to_string(rrb_star.ovrs), FormatBytes(rrb_star.bytes)});
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
