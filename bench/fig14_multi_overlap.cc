// Reproduces Fig. 14: overlapping multiple Voronoi diagrams (2-5 object
// types drawn in the paper's sequence STM, CH, SCH, PPL, BLDG).
//
//  part (a): availability — the largest per-type object count whose final
//            MOVD fits a memory budget, per approach (the paper exhausts a
//            24 GB server; we model a configurable budget with the same
//            byte-accurate accounting used in Fig. 13). The search is
//            unmeasured setup; its result is the max_n Metric.
//  parts (b)/(c)/(d): execution time / #OVRs / memory along the
//            availability line, including RRB* (RRB run at MBRB's sizes
//            for a fair comparison, as in the paper) — one measured case
//            per (#types, approach).
//
// Harnessed (DESIGN.md §10). Extra flags:
//   --budget_mb=8  --max_n=16384  --types=2,3,4,5

#include "bench/bench_common.h"

namespace movd::bench {
namespace {

struct Probe {
  size_t ovrs = 0;
  size_t bytes = 0;
};

Probe ProbeOverlap(size_t types, size_t n, BoundaryMode mode, uint64_t seed,
                   int threads) {
  const std::vector<size_t> sizes(types, n);
  const auto basic = MakeBasicMovds(sizes, seed, threads);
  const Movd out = OverlapAll(basic, mode);
  return {out.ovrs.size(), out.MemoryBytes(mode)};
}

// Largest n (doubling + binary search) whose final MOVD memory fits the
// budget. Capped by max_n to keep the search laptop-friendly.
size_t MaxSizeUnderBudget(size_t types, BoundaryMode mode, size_t budget,
                          size_t max_n, uint64_t seed, int threads) {
  size_t lo = 16;
  if (ProbeOverlap(types, lo, mode, seed, threads).bytes > budget) return 0;
  size_t hi = lo;
  while (hi < max_n) {
    const size_t next = std::min(max_n, hi * 2);
    if (ProbeOverlap(types, next, mode, seed, threads).bytes > budget) {
      hi = next;
      break;
    }
    lo = hi = next;
  }
  while (hi - lo > std::max<size_t>(1, lo / 16)) {  // ~6% resolution
    const size_t mid = lo + (hi - lo) / 2;
    if (ProbeOverlap(types, mid, mode, seed, threads).bytes > budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

void MeasureAt(BenchContext& ctx, const char* approach, size_t types,
               size_t n, BoundaryMode mode) {
  BenchCase& c = ctx.Case(std::string(approach) + "/types=" +
                          std::to_string(types))
                     .Param("approach", approach)
                     .Param("types", types)
                     .Param("n", n);
  const std::vector<size_t> sizes(types, n);
  const auto basic = MakeBasicMovds(sizes, ctx.seed(), ctx.threads());
  size_t ovrs = 0;
  size_t bytes = 0;
  ctx.Measure(c, [&] {
    const Movd out = OverlapAll(basic, mode);
    ovrs = out.ovrs.size();
    bytes = out.MemoryBytes(mode);
    Keep(bytes);
  });
  c.Metric("max_n", static_cast<double>(n));
  c.Metric("ovrs", static_cast<double>(ovrs));
  c.Metric("bytes", static_cast<double>(bytes));
}

}  // namespace

BENCH(fig14_multi_overlap) {
  const size_t budget =
      static_cast<size_t>(ctx.flags().GetInt("budget_mb", 8)) << 20;
  const size_t max_n =
      static_cast<size_t>(ctx.flags().GetInt("max_n", 16384));
  const auto types_list =
      ParseSizes(ctx.flags().GetString("types", "2,3,4,5"));
  for (const size_t t : types_list) {
    const size_t rrb_max = MaxSizeUnderBudget(
        t, BoundaryMode::kRealRegion, budget, max_n, ctx.seed(),
        ctx.threads());
    const size_t mbrb_max = MaxSizeUnderBudget(
        t, BoundaryMode::kMbr, budget, max_n, ctx.seed(), ctx.threads());
    if (rrb_max == 0 || mbrb_max == 0) continue;
    MeasureAt(ctx, "rrb", t, rrb_max, BoundaryMode::kRealRegion);
    MeasureAt(ctx, "mbrb", t, mbrb_max, BoundaryMode::kMbr);
    // RRB* = RRB at MBRB's availability line.
    MeasureAt(ctx, "rrb_star", t, mbrb_max, BoundaryMode::kRealRegion);
  }
  // Weighted build phase across type counts (see fig11): fixed per-set
  // size, so the case sweep isolates how the number of diagrams scales.
  const int wres = static_cast<int>(ctx.flags().GetInt("wres", 256));
  const size_t wbuild_n =
      static_cast<size_t>(ctx.flags().GetInt("wbuild_n", 128));
  for (const size_t t : types_list) {
    WeightedBuildCases(ctx, t, wbuild_n, wres);
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig14_multi_overlap")
