// Reproduces Fig. 10: the cost-bound (CB) batch Fermat–Weber solver vs the
// basic (Original) approach, varying the number of problems and the error
// bound epsilon. Each problem has 5 points with coordinates and weights
// drawn from [0, 10), exactly the paper's setup (§6.2).
//
// Flags: --problems=1000,5000,10000,50000  --epsilons=1e-2,1e-3,1e-4
//        --seed=1  --ablate (adds prefilter-only / bound-only rows)

#include <cstdio>

#include "bench/bench_common.h"
#include "fermat/batch.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

Trace* g_trace = nullptr;

std::vector<std::vector<WeightedPoint>> MakeProblems(size_t count,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<WeightedPoint>> problems(count);
  for (auto& problem : problems) {
    problem.reserve(5);
    for (int i = 0; i < 5; ++i) {
      double w = rng.Uniform(0.0, 10.0);
      if (w == 0.0) w = 0.1;
      problem.push_back({{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)}, w});
    }
  }
  return problems;
}

struct RunResult {
  double seconds;
  double cost;
  uint64_t iterations;
};

RunResult Run(const std::vector<std::vector<WeightedPoint>>& problems,
              double epsilon, bool cost_bound, bool prefilter,
              int threads = 1) {
  BatchOptions opts;
  opts.epsilon = epsilon;
  opts.use_cost_bound = cost_bound;
  opts.use_two_point_prefilter = prefilter;
  opts.exec.threads = threads;
  opts.exec.trace = g_trace;
  Stopwatch sw;
  const BatchResult r = SolveFermatWeberBatch(problems, opts);
  return {sw.ElapsedSeconds(), r.cost, r.total_iterations};
}

std::vector<double> ParseDoubles(const std::string& csv) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    out.push_back(std::strtod(csv.c_str() + pos, nullptr));
    const size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchTrace bench_trace(flags);
  g_trace = bench_trace.trace();
  const auto counts =
      ParseSizes(flags.GetString("problems", "1000,5000,10000,50000"));
  const auto epsilons =
      ParseDoubles(flags.GetString("epsilons", "1e-2,1e-3,1e-4"));
  const uint64_t seed = flags.GetInt("seed", 1);
  const bool ablate = flags.GetBool("ablate", false);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Fig. 10 — batch Fermat–Weber: Original vs cost-bound (CB); "
              "5 points/problem, coords & weights U[0,10)\n\n");
  Table table({"#problems", "epsilon", "Original(s)", "CB(s)", "speedup",
               "orig iters", "CB iters"});
  for (const size_t count : counts) {
    const auto problems = MakeProblems(count, seed);
    for (const double eps : epsilons) {
      const RunResult original = Run(problems, eps, false, false);
      const RunResult cb = Run(problems, eps, true, true);
      table.AddRow({std::to_string(count), Table::Fmt(eps, 4),
                    Table::Fmt(original.seconds, 3), Table::Fmt(cb.seconds, 3),
                    Table::Fmt(original.seconds / cb.seconds, 1) + "x",
                    std::to_string(original.iterations),
                    std::to_string(cb.iterations)});
    }
  }
  table.Print(stdout);

  if (threads > 1) {
    std::printf("\nParallel batch solver — CB serial vs %d threads, shared "
                "atomic cost bound (epsilon=%g)\n\n", threads,
                epsilons.back());
    Table par({"#problems", "CB 1thr(s)", "CB Nthr(s)", "speedup"});
    for (const size_t count : counts) {
      const auto problems = MakeProblems(count, seed);
      const double eps = epsilons.back();
      const RunResult serial = Run(problems, eps, true, true, 1);
      const RunResult parallel = Run(problems, eps, true, true, threads);
      par.AddRow({std::to_string(count), Table::Fmt(serial.seconds, 3),
                  Table::Fmt(parallel.seconds, 3),
                  Table::Fmt(serial.seconds / parallel.seconds, 2) + "x"});
    }
    par.Print(stdout);
  }

  if (ablate) {
    std::printf("\nAblation — contribution of the two CB ingredients "
                "(epsilon=%g)\n\n", epsilons.back());
    Table ab({"#problems", "Original(s)", "bound only(s)", "prefilter only(s)",
              "both(s)"});
    for (const size_t count : counts) {
      const auto problems = MakeProblems(count, seed);
      const double eps = epsilons.back();
      ab.AddRow({std::to_string(count),
                 Table::Fmt(Run(problems, eps, false, false).seconds, 3),
                 Table::Fmt(Run(problems, eps, true, false).seconds, 3),
                 Table::Fmt(Run(problems, eps, false, true).seconds, 3),
                 Table::Fmt(Run(problems, eps, true, true).seconds, 3)});
    }
    ab.Print(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
