// Reproduces Fig. 10: the cost-bound (CB) batch Fermat–Weber solver vs the
// basic (Original) approach, varying the number of problems and the error
// bound epsilon. Each problem has 5 points with coordinates and weights
// drawn from [0, 10), exactly the paper's setup (§6.2).
//
// Harnessed (DESIGN.md §10). Extra flags:
//   --problems=1000,5000,10000,50000  --epsilons=1e-2,1e-3,1e-4
//   --ablate (adds bound-only / prefilter-only cases)
// With --threads=N > 1 the fig10_parallel bench adds CB serial-vs-parallel
// cases (shared atomic cost bound).

#include "bench/bench_common.h"
#include "fermat/batch.h"

namespace movd::bench {
namespace {

std::vector<std::vector<WeightedPoint>> MakeProblems(size_t count,
                                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<WeightedPoint>> problems(count);
  for (auto& problem : problems) {
    problem.reserve(5);
    for (int i = 0; i < 5; ++i) {
      double w = rng.Uniform(0.0, 10.0);
      if (w == 0.0) w = 0.1;
      problem.push_back({{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)}, w});
    }
  }
  return problems;
}

BatchResult RunBatch(const BenchContext& ctx,
                     const std::vector<std::vector<WeightedPoint>>& problems,
                     double epsilon, bool cost_bound, bool prefilter,
                     int threads) {
  BatchOptions opts;
  opts.epsilon = epsilon;
  opts.use_cost_bound = cost_bound;
  opts.use_two_point_prefilter = prefilter;
  opts.exec = ctx.MakeExec();
  opts.exec.threads = threads;
  return SolveFermatWeberBatch(problems, opts);
}

}  // namespace

BENCH(fig10_cost_bound) {
  const auto counts =
      ParseSizes(ctx.flags().GetString("problems", "1000,5000,10000,50000"));
  const auto epsilons =
      ParseDoubles(ctx.flags().GetString("epsilons", "1e-2,1e-3,1e-4"));
  for (const size_t count : counts) {
    const auto problems = MakeProblems(count, ctx.seed());
    for (const double eps : epsilons) {
      const std::string suffix =
          "/p=" + std::to_string(count) + "/eps=" + FmtG(eps);
      BenchCase& orig = ctx.Case("original" + suffix)
                            .Param("variant", "original")
                            .Param("problems", count)
                            .Param("epsilon", eps);
      BatchResult r;
      const Summary& orig_wall = ctx.Measure(orig, [&] {
        r = RunBatch(ctx, problems, eps, /*cost_bound=*/false,
                     /*prefilter=*/false, ctx.threads());
      });
      orig.Metric("cost", r.cost);
      orig.Metric("iterations", static_cast<double>(r.total_iterations));

      BenchCase& cb = ctx.Case("cb" + suffix)
                          .Param("variant", "cb")
                          .Param("problems", count)
                          .Param("epsilon", eps);
      const Summary& cb_wall = ctx.Measure(cb, [&] {
        r = RunBatch(ctx, problems, eps, /*cost_bound=*/true,
                     /*prefilter=*/true, ctx.threads());
      });
      cb.Metric("cost", r.cost);
      cb.Metric("iterations", static_cast<double>(r.total_iterations));
      cb.Derived("speedup_vs_original", orig_wall.median / cb_wall.median);
    }
  }
}

// Contribution of the two CB ingredients at the tightest epsilon; gated on
// --ablate as before the harness migration.
BENCH(fig10_ablation) {
  if (!ctx.flags().GetBool("ablate", false)) return;
  const auto counts =
      ParseSizes(ctx.flags().GetString("problems", "1000,5000,10000,50000"));
  const auto epsilons =
      ParseDoubles(ctx.flags().GetString("epsilons", "1e-2,1e-3,1e-4"));
  const double eps = epsilons.back();
  constexpr struct {
    const char* name;
    bool bound;
    bool prefilter;
  } kVariants[] = {{"bound_only", true, false},
                   {"prefilter_only", false, true}};
  for (const size_t count : counts) {
    const auto problems = MakeProblems(count, ctx.seed());
    for (const auto& v : kVariants) {
      BenchCase& c = ctx.Case(std::string(v.name) + "/p=" +
                              std::to_string(count) + "/eps=" + FmtG(eps))
                         .Param("variant", v.name)
                         .Param("problems", count)
                         .Param("epsilon", eps);
      BatchResult r;
      ctx.Measure(c, [&] {
        r = RunBatch(ctx, problems, eps, v.bound, v.prefilter,
                     ctx.threads());
      });
      c.Metric("cost", r.cost);
      c.Metric("iterations", static_cast<double>(r.total_iterations));
    }
  }
}

// CB serial vs --threads=N with the shared atomic cost bound; populated
// only when --threads > 1.
BENCH(fig10_parallel) {
  const int threads = ctx.threads();
  if (threads <= 1) return;
  const auto counts =
      ParseSizes(ctx.flags().GetString("problems", "1000,5000,10000,50000"));
  const auto epsilons =
      ParseDoubles(ctx.flags().GetString("epsilons", "1e-2,1e-3,1e-4"));
  const double eps = epsilons.back();
  for (const size_t count : counts) {
    const auto problems = MakeProblems(count, ctx.seed());
    BenchCase& serial = ctx.Case("cb/1thr/p=" + std::to_string(count))
                            .Param("problems", count)
                            .Param("threads", static_cast<int64_t>(1));
    BatchResult r;
    const Summary& w1 = ctx.Measure(serial, [&] {
      r = RunBatch(ctx, problems, eps, true, true, 1);
    });
    serial.Metric("cost", r.cost);

    BenchCase& par = ctx.Case("cb/" + std::to_string(threads) + "thr/p=" +
                              std::to_string(count))
                         .Param("problems", count)
                         .Param("threads", static_cast<int64_t>(threads));
    const Summary& wn = ctx.Measure(par, [&] {
      r = RunBatch(ctx, problems, eps, true, true, threads);
    });
    par.Metric("cost", r.cost);
    par.Derived("speedup_vs_serial", w1.median / wn.median);
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig10_cost_bound")
