// Reproduces Fig. 12: the number of OVRs produced when overlapping two
// ordinary Voronoi diagrams under RRB vs MBRB. The paper reports MBRB
// producing ~150% more OVRs on average (MBR hits that are not real region
// overlaps).
//
// Harnessed (DESIGN.md §10): the OVR counts are deterministic Metrics that
// bench_diff gates exactly — this bench is primarily a correctness tripwire
// over the overlap machinery. Extra flags: --sizes=1000,2000,4000,8000.

#include "bench/bench_common.h"

namespace movd::bench {

BENCH(fig12_ovr_count) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "1000,2000,4000,8000"));
  for (const size_t n : sizes) {
    for (const size_t m : sizes) {
      const auto basic = MakeBasicMovds({n, m}, ctx.seed(), ctx.threads());
      const std::string suffix =
          "/n=" + std::to_string(n) + "/m=" + std::to_string(m);
      size_t rrb_ovrs = 0;
      for (const auto& [mode, name] :
           {std::pair{BoundaryMode::kRealRegion, "rrb"},
            std::pair{BoundaryMode::kMbr, "mbrb"}}) {
        BenchCase& c = ctx.Case(std::string(name) + suffix)
                           .Param("mode", name)
                           .Param("n", n)
                           .Param("m", m);
        size_t ovrs = 0;
        ctx.Measure(c, [&] {
          const Movd out = Overlap(basic[0], basic[1], mode);
          ovrs = out.ovrs.size();
          Keep(ovrs);
        });
        c.Metric("ovrs", static_cast<double>(ovrs));
        if (mode == BoundaryMode::kRealRegion) {
          rrb_ovrs = ovrs;
        } else {
          c.Derived("ovr_ratio_vs_rrb",
                    static_cast<double>(ovrs) /
                        static_cast<double>(std::max<size_t>(1, rrb_ovrs)));
        }
      }
    }
  }
  // Weighted build phase (see fig11): OVR counts double as a correctness
  // tripwire over the adaptive construction's non-empty-cell set.
  const int wres = static_cast<int>(ctx.flags().GetInt("wres", 256));
  for (const size_t n : sizes) WeightedBuildCases(ctx, 2, n, wres);
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig12_ovr_count")
