// Reproduces Fig. 12: the number of OVRs produced when overlapping two
// ordinary Voronoi diagrams under RRB vs MBRB. The paper reports MBRB
// producing ~150% more OVRs on average (MBR hits that are not real region
// overlaps).
//
// Flags: --sizes=1000,2000,4000,8000  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/table.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchTrace bench_trace(flags);
  const auto sizes = ParseSizes(flags.GetString("sizes", "1000,2000,4000,8000"));
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Fig. 12 — number of OVRs after overlapping two Voronoi "
              "diagrams, RRB vs MBRB\n\n");
  Table table({"|STM|", "|CH|", "RRB OVRs", "MBRB OVRs", "MBRB/RRB"});
  for (const size_t n : sizes) {
    for (const size_t m : sizes) {
      const auto basic = MakeBasicMovds({n, m}, seed, threads);
      const Movd rrb = Overlap(basic[0], basic[1], BoundaryMode::kRealRegion);
      const Movd mbrb = Overlap(basic[0], basic[1], BoundaryMode::kMbr);
      table.AddRow({std::to_string(n), std::to_string(m),
                    std::to_string(rrb.ovrs.size()),
                    std::to_string(mbrb.ovrs.size()),
                    Table::Fmt(static_cast<double>(mbrb.ovrs.size()) /
                                   std::max<size_t>(1, rrb.ovrs.size()),
                               2) +
                        "x"});
    }
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
