// Reproduces Fig. 11: execution time of overlapping two ordinary Voronoi
// diagrams (random STM and CH samples) under RRB vs MBRB, across a grid of
// data-set sizes. The paper sweeps 10K-160K on a 24 GB server; the default
// here is scaled to laptop size — raise --sizes to reproduce the original
// scale.
//
// Flags: --sizes=1000,2000,4000,8000  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchTrace bench_trace(flags);
  const auto sizes = ParseSizes(flags.GetString("sizes", "1000,2000,4000,8000"));
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Fig. 11 — overlap of two Voronoi diagrams (STM x CH): "
              "execution time, RRB vs MBRB\n\n");
  Table table({"|STM|", "|CH|", "RRB(s)", "MBRB(s)", "MBRB speedup"});
  for (const size_t n : sizes) {
    for (const size_t m : sizes) {
      const auto basic = MakeBasicMovds({n, m}, seed, threads);
      Stopwatch sw;
      const Movd rrb = Overlap(basic[0], basic[1], BoundaryMode::kRealRegion);
      const double rrb_s = sw.ElapsedSeconds();
      sw.Reset();
      const Movd mbrb = Overlap(basic[0], basic[1], BoundaryMode::kMbr);
      const double mbrb_s = sw.ElapsedSeconds();
      table.AddRow({std::to_string(n), std::to_string(m),
                    Table::Fmt(rrb_s, 3), Table::Fmt(mbrb_s, 3),
                    Table::Fmt(rrb_s / mbrb_s, 1) + "x"});
      (void)rrb;
      (void)mbrb;
    }
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
