// Reproduces Fig. 11: execution time of overlapping two ordinary Voronoi
// diagrams (random STM and CH samples) under RRB vs MBRB, across a grid of
// data-set sizes. The paper sweeps 10K-160K on a 24 GB server; the default
// here is scaled to laptop size — raise --sizes to reproduce the original
// scale.
//
// Harnessed (DESIGN.md §10): diagram construction is unmeasured setup; the
// Measure body is the overlap alone. The harness's default --warmup=1 runs
// each overlap once untimed first, which is what makes these numbers stable
// run-to-run (first-touch page faults and allocator growth land in the
// warmup — see EXPERIMENTS.md). Extra flags: --sizes=1000,2000,4000,8000.

#include "bench/bench_common.h"

namespace movd::bench {

BENCH(fig11_overlap_time) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "1000,2000,4000,8000"));
  for (const size_t n : sizes) {
    for (const size_t m : sizes) {
      const auto basic = MakeBasicMovds({n, m}, ctx.seed(), ctx.threads());
      const std::string suffix =
          "/n=" + std::to_string(n) + "/m=" + std::to_string(m);

      BenchCase& rrb = ctx.Case("rrb" + suffix)
                           .Param("mode", "rrb")
                           .Param("n", n)
                           .Param("m", m);
      size_t rrb_ovrs = 0;
      const Summary& rrb_wall = ctx.Measure(rrb, [&] {
        const Movd out = Overlap(basic[0], basic[1],
                                 BoundaryMode::kRealRegion);
        rrb_ovrs = out.ovrs.size();
        Keep(rrb_ovrs);
      });
      rrb.Metric("ovrs", static_cast<double>(rrb_ovrs));

      BenchCase& mbrb = ctx.Case("mbrb" + suffix)
                            .Param("mode", "mbrb")
                            .Param("n", n)
                            .Param("m", m);
      size_t mbrb_ovrs = 0;
      const Summary& mbrb_wall = ctx.Measure(mbrb, [&] {
        const Movd out = Overlap(basic[0], basic[1], BoundaryMode::kMbr);
        mbrb_ovrs = out.ovrs.size();
        Keep(mbrb_ovrs);
      });
      mbrb.Metric("ovrs", static_cast<double>(mbrb_ovrs));
      mbrb.Derived("speedup_vs_rrb", rrb_wall.median / mbrb_wall.median);
    }
  }
  // Build phase with per-object weights: the VD Generator routes to the
  // weighted constructions instead of exact ordinary Voronoi
  // (--wres controls the diagram resolution).
  const int wres = static_cast<int>(ctx.flags().GetInt("wres", 256));
  for (const size_t n : sizes) WeightedBuildCases(ctx, 2, n, wres);
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig11_overlap_time")
