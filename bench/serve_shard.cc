// Benchmark of the sharded serving router (DESIGN.md §15), always run
// pairwise — a single-replica engine vs a sharded fleet with the SAME
// total worker count and cache budget, so the measured difference is
// routing, not extra hardware:
//
//   local/…    throughput of the point-local verbs (SOLVE / DIVERSE /
//              CONSTRAIN): a burst of warm tiny requests with spatial
//              routing hints through HandleAsync. Each request runs whole
//              on one shard, so the fleets do equal work and the delta is
//              queue/cache contention.
//   scatter/…  latency of the scatter verbs (SKYLINE / WHATIF): heavier
//              requests served one at a time. The sharded router splits
//              each request's candidate combinations / sweep vectors
//              across the shard pools, so this is where sharding buys
//              wall-clock per request.
//   mutate/…   INSERT/DELETE pairs — the replication fan-out cost
//              sharding adds to the mutation path.
//
// The deterministic gates are the answer counts: the sharding contract
// says answers are bit-identical for any shard count, so the counts must
// not move between the s=1 and s=4 cases (or between machines). Errors
// must stay 0 — admission shedding is disabled here. Throughput and the
// s=1-relative speedups are Derived (observability only).
//
// Extra flags: --sizes=24  --requests=240  --scatter_requests=8
//              --shards=1,4  --workers=8  --updates=8

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "geom/polygon.h"
#include "model/update_model.h"
#include "serve/engine_api.h"
#include "serve/shard.h"
#include "util/rng.h"

namespace movd::bench {
namespace {

/// Layer subsets the workload rotates through (empty = all layers). Each
/// distinct subset is its own overlay artifact, so the rotation exercises
/// per-shard cache warmth rather than hammering one cache entry.
const std::vector<std::vector<int32_t>>& LayerPatterns() {
  static const std::vector<std::vector<int32_t>> kPatterns = {
      {}, {0, 1}, {1, 2}, {0, 2}};
  return kPatterns;
}

/// A deterministic burst of `count` point-local requests (SOLVE /
/// DIVERSE / CONSTRAIN over rotating layer subsets). Requests carry a
/// routing rect around a seeded world location so they spread across
/// shard regions the way a spatially-local client mix would.
std::vector<EngineRequest> MakeLocalWorkload(size_t count, uint64_t seed) {
  Rng rng(seed ^ 0x5a4dull);
  const double w = kWorld.max_x - kWorld.min_x;
  const double h = kWorld.max_y - kWorld.min_y;
  QueryConstraint constraint;
  constraint.boundary = Polygon({{0.25 * w, 0.25 * h},
                                 {0.75 * w, 0.25 * h},
                                 {0.75 * w, 0.75 * h},
                                 {0.25 * w, 0.75 * h}});

  std::vector<EngineRequest> workload;
  workload.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    EngineRequest request;
    request.id = "b" + std::to_string(i);
    request.dataset = "bench";
    request.layers = LayerPatterns()[(i / 3) % LayerPatterns().size()];
    request.exec.threads = 1;
    const Point hint{kWorld.min_x + rng.Uniform(0.05, 0.95) * w,
                     kWorld.min_y + rng.Uniform(0.05, 0.95) * h};
    request.routing_rect =
        Rect(hint.x - 50, hint.y - 50, hint.x + 50, hint.y + 50);
    switch (i % 3) {
      case 0:
        request.op = SolveSpec{MolqAlgorithm::kRrb, 2};
        break;
      case 1:
        request.op = DiverseSpec{MolqAlgorithm::kRrb, 2, w / 50.0};
        break;
      default: {
        ConstrainSpec spec;
        spec.constraint = constraint;
        request.op = spec;
        break;
      }
    }
    workload.push_back(std::move(request));
  }
  return workload;
}

/// A deterministic sequence of `count` scatter-verb requests: SKYLINE
/// over all layers alternating with 8-vector WHATIF sweeps. These are
/// served one at a time, so the sharded fleet's win is the per-request
/// split, not request-level concurrency.
std::vector<EngineRequest> MakeScatterWorkload(size_t count) {
  std::vector<EngineRequest> workload;
  workload.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    EngineRequest request;
    request.id = "sc" + std::to_string(i);
    request.dataset = "bench";
    request.exec.threads = 1;
    if (i % 2 == 0) {
      request.op = SkylineSpec{MolqAlgorithm::kRrb};
    } else {
      WhatIfSpec spec;
      spec.algorithm = MolqAlgorithm::kRrb;
      spec.topk = 2;
      for (size_t v = 0; v < 8; ++v) {
        std::vector<double> scale(3, 1.0);
        scale[v % 3] = 0.5 + 0.25 * static_cast<double>(v);
        spec.sweep.push_back(std::move(scale));
      }
      request.op = spec;
    }
    workload.push_back(std::move(request));
  }
  return workload;
}

/// Sums the deterministic answer count of one response (0 on error).
size_t CountAnswers(const EngineResponse& resp) {
  size_t answers = resp.answers.size();
  for (const auto& ranking : resp.sweep_answers) {
    answers += ranking.size();
  }
  return answers;
}

ShardedEngineOptions MakeOptions(int shards, int workers) {
  ShardedEngineOptions options;
  options.shards = shards;
  options.engine.workers = workers;
  return options;
}

}  // namespace

BENCH(shard) {
  const auto sizes = ParseSizes(ctx.flags().GetString("sizes", "24"));
  const size_t requests =
      static_cast<size_t>(ctx.flags().GetInt("requests", 240));
  const size_t scatter_requests =
      static_cast<size_t>(ctx.flags().GetInt("scatter_requests", 8));
  const auto shard_counts = ParseSizes(ctx.flags().GetString("shards", "1,4"));
  const int workers = static_cast<int>(ctx.flags().GetInt("workers", 8));
  const size_t updates =
      static_cast<size_t>(ctx.flags().GetInt("updates", 8));

  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n}, ctx.seed());
    const auto local = MakeLocalWorkload(requests, ctx.seed());
    const auto scatter = MakeScatterWorkload(scatter_requests);
    const Summary* local_s1 = nullptr;
    const Summary* scatter_s1 = nullptr;
    for (const size_t shards : shard_counts) {
      const std::string suffix =
          "/s=" + std::to_string(shards) + "/n=" + std::to_string(n);
      ShardedEngine engine(
          MakeOptions(static_cast<int>(shards), workers));
      engine.RegisterDataset("bench", query, kWorld);

      size_t answers = 0;
      size_t errors = 0;
      BenchCase& c = ctx.Case(std::string("local") + suffix)
                         .Param("shards", shards)
                         .Param("n", n)
                         .Param("requests", requests)
                         .Param("workers", static_cast<int64_t>(workers));
      const Summary& wall = ctx.Measure(c, [&] {
        std::vector<std::future<EngineResponse>> pending;
        pending.reserve(local.size());
        for (const EngineRequest& request : local) {
          pending.push_back(engine.HandleAsync(request));
        }
        answers = 0;
        errors = 0;
        for (auto& f : pending) {
          const EngineResponse resp = f.get();
          if (resp.status != ServeStatus::kOk) {
            ++errors;
            continue;
          }
          answers += CountAnswers(resp);
        }
        Keep(answers);
      });
      c.Metric("answers", static_cast<double>(answers));
      c.Metric("errors", static_cast<double>(errors));
      c.Derived("rps", static_cast<double>(requests) / wall.median);
      if (local_s1 == nullptr) {
        local_s1 = &wall;
      } else {
        c.Derived("speedup_vs_s1", local_s1->median / wall.median);
      }

      size_t scatter_answers = 0;
      size_t scatter_errors = 0;
      BenchCase& sc = ctx.Case(std::string("scatter") + suffix)
                          .Param("shards", shards)
                          .Param("n", n)
                          .Param("requests", scatter_requests);
      const Summary& scatter_wall = ctx.Measure(sc, [&] {
        scatter_answers = 0;
        scatter_errors = 0;
        for (const EngineRequest& request : scatter) {
          const EngineResponse resp = engine.Handle(request);
          if (resp.status != ServeStatus::kOk) {
            ++scatter_errors;
            continue;
          }
          scatter_answers += CountAnswers(resp);
        }
        Keep(scatter_answers);
      });
      sc.Metric("answers", static_cast<double>(scatter_answers));
      sc.Metric("errors", static_cast<double>(scatter_errors));
      if (scatter_s1 == nullptr) {
        scatter_s1 = &scatter_wall;
      } else {
        sc.Derived("speedup_vs_s1", scatter_s1->median / scatter_wall.median);
      }

      // Mutation replication: `updates` insert/delete pairs applied
      // synchronously (the state returns to the baseline each repetition,
      // so the patch counters are deterministic). Every mutation reaches
      // every shard — this case prices that fan-out.
      BenchCase& m = ctx.Case(std::string("mutate") + suffix)
                         .Param("shards", shards)
                         .Param("n", n)
                         .Param("updates", updates);
      size_t applied = 0;
      size_t recomputed = 0;
      ctx.Measure(m, [&] {
        applied = 0;
        recomputed = 0;
        for (size_t u = 0; u < updates; ++u) {
          SiteMutation mutation;
          mutation.layer = static_cast<int32_t>(u % query.sets.size());
          mutation.location =
              Point{kWorld.min_x + 101.0 + 37.0 * static_cast<double>(u),
                    kWorld.min_y + 211.0 + 53.0 * static_cast<double>(u)};
          for (const MutationKind kind :
               {MutationKind::kInsert, MutationKind::kDelete}) {
            mutation.kind = kind;
            EngineRequest request;
            request.id = "m" + std::to_string(u);
            request.dataset = "bench";
            request.op = mutation;
            const EngineResponse resp = engine.Handle(request);
            if (resp.status == ServeStatus::kOk) {
              ++applied;
              recomputed += resp.mutation.recomputed_cells;
            }
          }
        }
        Keep(applied);
      });
      m.Metric("applied", static_cast<double>(applied));
      m.Metric("recomputed_cells", static_cast<double>(recomputed));
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("shard")
