// Extension experiment 3: dynamically maintained Voronoi diagram (local
// cell repair on insert/remove) vs rebuilding from scratch on every
// update. Also compares the static cell-construction strategies
// (kNN-expansion vs Delaunay) used by the VD Generator.
//
// Flags: --sizes=500,2000,8000  --updates=64  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "voronoi/dynamic.h"
#include "voronoi/voronoi.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sizes = ParseSizes(flags.GetString("sizes", "500,2000,8000"));
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 64));
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Extension: dynamic Voronoi maintenance — %zu mixed updates, "
              "local repair vs full rebuild per update (rebuilds use "
              "--threads=%d)\n\n", updates, threads);
  Table table({"sites", "build knn(s)", "build delaunay(s)",
               "repair total(s)", "rebuild total(s)", "speedup/update"});
  for (const size_t n : sizes) {
    Rng rng(seed);
    std::vector<Point> pts;
    for (size_t i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
    }

    Stopwatch sw;
    const auto knn = VoronoiDiagram::Build(
        pts, kWorld, VoronoiDiagram::Strategy::kNearestNeighbor);
    const double knn_s = sw.ElapsedSeconds();
    sw.Reset();
    const auto del = VoronoiDiagram::Build(
        pts, kWorld, VoronoiDiagram::Strategy::kDelaunay);
    const double del_s = sw.ElapsedSeconds();
    (void)knn;
    (void)del;

    // Dynamic updates: alternate insertions and removals.
    DynamicVoronoi dyn(pts, kWorld);
    std::vector<int32_t> live = dyn.LiveSites();
    sw.Reset();
    for (size_t u = 0; u < updates; ++u) {
      if (u % 2 == 0) {
        const auto id =
            dyn.InsertSite({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
        if (id.has_value()) live.push_back(*id);
      } else if (!live.empty()) {
        const size_t pick = rng.NextBelow(live.size());
        dyn.RemoveSite(live[pick]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      }
    }
    const double repair_s = sw.ElapsedSeconds();

    // The baseline: rebuild the whole diagram after each update. The
    // post-update point sets are materialised first so the rebuilds
    // themselves can fan out across --threads workers (each update's
    // rebuild is independent; the timing covers rebuild work only, and the
    // repair-vs-rebuild speedup is reported against this parallel
    // baseline).
    std::vector<std::vector<Point>> snapshots;
    snapshots.reserve(updates);
    std::vector<Point> rebuild_pts = pts;
    for (size_t u = 0; u < updates; ++u) {
      if (u % 2 == 0) {
        rebuild_pts.push_back(
            {rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
      } else if (!rebuild_pts.empty()) {
        rebuild_pts.pop_back();
      }
      snapshots.push_back(rebuild_pts);
    }
    sw.Reset();
    ParallelFor(threads, snapshots.size(), [&](size_t u) {
      const auto vd = VoronoiDiagram::Build(snapshots[u], kWorld);
      (void)vd;
    });
    const double rebuild_s = sw.ElapsedSeconds();

    table.AddRow({std::to_string(n), Table::Fmt(knn_s, 3),
                  Table::Fmt(del_s, 3), Table::Fmt(repair_s, 3),
                  Table::Fmt(rebuild_s, 3),
                  Table::Fmt(rebuild_s / std::max(repair_s, 1e-9), 0) + "x"});
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
