// Extension experiment 3: dynamically maintained Voronoi diagram (local
// cell repair on insert/remove) vs rebuilding from scratch on every
// update. Also compares the static cell-construction strategies
// (kNN-expansion vs Delaunay) used by the VD Generator.
//
// Harnessed (DESIGN.md §10). Each repetition of the repair case constructs
// a fresh DynamicVoronoi and replays the same scripted update sequence
// (reseeded Rng per repetition keeps it deterministic), so the repair
// timing includes the initial construction — compare against the build_*
// cases to separate the two. The rebuild baseline fans the per-update full
// rebuilds across --threads workers as before the migration.
// Extra flags: --sizes=500,2000,8000  --updates=64.

#include "bench/bench_common.h"
#include "voronoi/dynamic.h"
#include "voronoi/voronoi.h"

namespace movd::bench {

BENCH(ext03_dynamic_voronoi) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "500,2000,8000"));
  const size_t updates =
      static_cast<size_t>(ctx.flags().GetInt("updates", 64));
  for (const size_t n : sizes) {
    Rng rng(ctx.seed());
    std::vector<Point> pts;
    for (size_t i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(0, 10000), rng.Uniform(0, 10000)});
    }
    const std::string suffix = "/n=" + std::to_string(n);

    BenchCase& knn = ctx.Case("build_knn" + suffix).Param("n", n);
    size_t knn_cells = 0;
    ctx.Measure(knn, [&] {
      const auto vd = VoronoiDiagram::Build(
          pts, kWorld, VoronoiDiagram::Strategy::kNearestNeighbor);
      knn_cells = vd.cells().size();
      Keep(knn_cells);
    });
    knn.Metric("cells", static_cast<double>(knn_cells));

    BenchCase& del = ctx.Case("build_delaunay" + suffix).Param("n", n);
    size_t del_cells = 0;
    ctx.Measure(del, [&] {
      const auto vd = VoronoiDiagram::Build(
          pts, kWorld, VoronoiDiagram::Strategy::kDelaunay);
      del_cells = vd.cells().size();
      Keep(del_cells);
    });
    del.Metric("cells", static_cast<double>(del_cells));

    // Dynamic updates: alternate insertions and removals, rebuilt and
    // replayed identically every repetition.
    BenchCase& repair = ctx.Case("repair" + suffix)
                            .Param("n", n)
                            .Param("updates", updates);
    size_t live_after = 0;
    ctx.Measure(repair, [&] {
      Rng update_rng(ctx.seed() + 1);
      DynamicVoronoi dyn(pts, kWorld);
      std::vector<int32_t> live = dyn.LiveSites();
      for (size_t u = 0; u < updates; ++u) {
        if (u % 2 == 0) {
          const auto id = dyn.InsertSite({update_rng.Uniform(0, 10000),
                                          update_rng.Uniform(0, 10000)});
          if (id.has_value()) live.push_back(*id);
        } else if (!live.empty()) {
          const size_t pick = update_rng.NextBelow(live.size());
          dyn.RemoveSite(live[pick]);
          live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
        }
      }
      live_after = live.size();
      Keep(live_after);
    });
    repair.Metric("live_sites_after", static_cast<double>(live_after));

    // The baseline: rebuild the whole diagram after each update. The
    // post-update point sets are materialised first (unmeasured) so the
    // rebuilds themselves can fan out across --threads workers; the
    // repair-vs-rebuild speedup is reported against this parallel
    // baseline.
    std::vector<std::vector<Point>> snapshots;
    snapshots.reserve(updates);
    {
      Rng update_rng(ctx.seed() + 1);
      std::vector<Point> rebuild_pts = pts;
      for (size_t u = 0; u < updates; ++u) {
        if (u % 2 == 0) {
          rebuild_pts.push_back({update_rng.Uniform(0, 10000),
                                 update_rng.Uniform(0, 10000)});
        } else if (!rebuild_pts.empty()) {
          rebuild_pts.pop_back();
        }
        snapshots.push_back(rebuild_pts);
      }
    }
    BenchCase& rebuild = ctx.Case("rebuild" + suffix)
                             .Param("n", n)
                             .Param("updates", updates);
    const Summary& rebuild_wall = ctx.Measure(rebuild, [&] {
      ParallelFor(ctx.threads(), snapshots.size(), [&](size_t u) {
        const auto vd = VoronoiDiagram::Build(snapshots[u], kWorld);
        Keep(vd.cells().size());
      });
    });
    rebuild.Derived("rebuild_over_repair",
                    rebuild_wall.median /
                        std::max(repair.wall().median, 1e-9));
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("ext03_dynamic_voronoi")
