// Reproduces Fig. 8: MOLQ with three object types (Ē = {STM, CH, SCH}),
// execution time of SSC vs RRB vs MBRB as the per-type object count grows.
// The cost-bound approach is enabled in all three solvers, as in the paper.
//
// Flags: --sizes=16,32,64,128,256  --epsilon=1e-3  --seed=1  --threads=1
//        --audit (run the invariant auditors inside every solve)
//        --trace=out.json (Chrome trace_event span trace of every solve)
// With --threads=N > 1 a second table reports the end-to-end speedup of
// the parallel pipeline over the serial baseline (identical answers).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

// --audit runs the structural invariant auditors (DESIGN.md §7) inside
// every solve and aborts on the first violation; the timings then include
// the audit passes, so use it for validation runs, not for figures.
bool g_audit = false;
Trace* g_trace = nullptr;

double RunSolver(const MolqQuery& query, MolqAlgorithm algorithm,
                 double epsilon, double* cost, int threads = 1) {
  MolqOptions opts;
  opts.algorithm = algorithm;
  opts.epsilon = epsilon;
  opts.exec.threads = threads;
  opts.exec.audit = g_audit;
  opts.exec.trace = g_trace;
  Stopwatch sw;
  const MolqResult r = SolveMolq(query, kWorld, opts);
  *cost = r.cost;
  if (g_audit && !r.audit.ok()) {
    for (const std::string& v : r.audit.Messages()) {
      std::fprintf(stderr, "audit violation: %s\n", v.c_str());
    }
    MOVD_CHECK_MSG(false, "--audit found invariant violations");
  }
  return sw.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sizes =
      ParseSizes(flags.GetString("sizes", "16,32,64,128,256"));
  const double epsilon = flags.GetDouble("epsilon", 1e-3);
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  g_audit = flags.GetBool("audit", false);
  BenchTrace bench_trace(flags);
  g_trace = bench_trace.trace();
  flags.WarnUnused(stderr);

  std::printf("Fig. 8 — MOLQ, three object types {STM, CH, SCH}; "
              "type weights U[0,10); epsilon=%g\n\n", epsilon);
  Table table({"objects/type", "SSC(s)", "RRB(s)", "MBRB(s)", "RRB speedup",
               "MBRB speedup", "cost agreement"});
  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n}, seed);
    double ssc_cost = 0.0, rrb_cost = 0.0, mbrb_cost = 0.0;
    const double ssc = RunSolver(query, MolqAlgorithm::kSsc, epsilon,
                                 &ssc_cost);
    const double rrb = RunSolver(query, MolqAlgorithm::kRrb, epsilon,
                                 &rrb_cost);
    const double mbrb = RunSolver(query, MolqAlgorithm::kMbrb, epsilon,
                                  &mbrb_cost);
    const double dev = std::max(std::abs(rrb_cost - ssc_cost),
                                std::abs(mbrb_cost - ssc_cost)) /
                       ssc_cost;
    table.AddRow({std::to_string(n), Table::Fmt(ssc, 3), Table::Fmt(rrb, 3),
                  Table::Fmt(mbrb, 3), Table::Fmt(ssc / rrb, 1) + "x",
                  Table::Fmt(ssc / mbrb, 1) + "x",
                  "dev=" + Table::Fmt(dev * 100, 4) + "%"});
  }
  table.Print(stdout);

  if (threads > 1) {
    std::printf("\nParallel pipeline — end-to-end serial vs %d threads "
                "(answers are bit-identical)\n\n", threads);
    Table par({"objects/type", "RRB 1thr(s)", "RRB Nthr(s)", "RRB speedup",
               "MBRB 1thr(s)", "MBRB Nthr(s)", "MBRB speedup"});
    for (const size_t n : sizes) {
      const MolqQuery query = MakeQuery({n, n, n}, seed);
      double c1 = 0.0, cn = 0.0;
      const double rrb1 =
          RunSolver(query, MolqAlgorithm::kRrb, epsilon, &c1, 1);
      const double rrbn =
          RunSolver(query, MolqAlgorithm::kRrb, epsilon, &cn, threads);
      MOVD_CHECK(c1 == cn);  // determinism across thread counts
      double m1 = 0.0, mn = 0.0;
      const double mbrb1 =
          RunSolver(query, MolqAlgorithm::kMbrb, epsilon, &m1, 1);
      const double mbrbn =
          RunSolver(query, MolqAlgorithm::kMbrb, epsilon, &mn, threads);
      MOVD_CHECK(m1 == mn);
      par.AddRow({std::to_string(n), Table::Fmt(rrb1, 3),
                  Table::Fmt(rrbn, 3), Table::Fmt(rrb1 / rrbn, 2) + "x",
                  Table::Fmt(mbrb1, 3), Table::Fmt(mbrbn, 3),
                  Table::Fmt(mbrb1 / mbrbn, 2) + "x"});
    }
    par.Print(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
