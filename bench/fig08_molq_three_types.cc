// Reproduces Fig. 8: MOLQ with three object types (Ē = {STM, CH, SCH}),
// execution time of SSC vs RRB vs MBRB as the per-type object count grows.
// The cost-bound approach is enabled in all three solvers, as in the paper.
//
// Harnessed (DESIGN.md §10): bench::RunMain owns warmup/repetitions/seeding
// and emits BENCH_fig08_molq_three_types.json. Extra flags beyond the
// shared set: --sizes=16,32,64,128,256  --epsilon=1e-3.
// With --threads=N > 1 the fig08_parallel bench adds serial-vs-parallel
// cases and asserts bit-identical answers across thread counts.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/check.h"

namespace movd::bench {
namespace {

// Solves once with the harness's ExecOptions (threads/audit/trace); with
// --audit the invariant auditors (DESIGN.md §7) run inside the measured
// solve and the first violation aborts, so audit runs are for validation,
// not for figures.
double SolveOnce(const BenchContext& ctx, const MolqQuery& query,
                 MolqAlgorithm algorithm, double epsilon, int threads) {
  MolqOptions opts;
  opts.algorithm = algorithm;
  opts.epsilon = epsilon;
  opts.exec = ctx.MakeExec();
  opts.exec.threads = threads;
  const MolqResult r = SolveMolq(query, kWorld, opts);
  if (opts.exec.audit && !r.audit.ok()) {
    for (const std::string& v : r.audit.Messages()) {
      std::fprintf(stderr, "audit violation: %s\n", v.c_str());
    }
    MOVD_CHECK_MSG(false, "--audit found invariant violations");
  }
  return r.cost;
}

constexpr struct {
  MolqAlgorithm algo;
  const char* name;
} kAlgos[] = {{MolqAlgorithm::kSsc, "ssc"},
              {MolqAlgorithm::kRrb, "rrb"},
              {MolqAlgorithm::kMbrb, "mbrb"}};

}  // namespace

BENCH(fig08_three_types) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "16,32,64,128,256"));
  const double epsilon = ctx.flags().GetDouble("epsilon", 1e-3);
  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n}, ctx.seed());
    double ssc_median = 0.0;
    double ssc_cost = 0.0;
    for (const auto& [algo, name] : kAlgos) {
      BenchCase& c = ctx.Case(std::string(name) + "/n=" + std::to_string(n))
                         .Param("algo", name)
                         .Param("n", n)
                         .Param("epsilon", epsilon);
      double cost = 0.0;
      const Summary& wall = ctx.Measure(c, [&] {
        cost = SolveOnce(ctx, query, algo, epsilon, ctx.threads());
      });
      c.Metric("cost", cost);
      if (algo == MolqAlgorithm::kSsc) {
        ssc_median = wall.median;
        ssc_cost = cost;
      } else {
        c.Derived("speedup_vs_ssc", ssc_median / wall.median);
        c.Derived("cost_dev_pct",
                  100.0 * std::abs(cost - ssc_cost) / ssc_cost);
      }
    }
  }
}

// Serial vs --threads=N pipeline on the same queries. Registered always,
// populated only when --threads > 1 (single-threaded runs have nothing to
// compare).
BENCH(fig08_parallel) {
  const int threads = ctx.threads();
  if (threads <= 1) return;
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "16,32,64,128,256"));
  const double epsilon = ctx.flags().GetDouble("epsilon", 1e-3);
  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n}, ctx.seed());
    for (const auto& [algo, name] : kAlgos) {
      if (algo == MolqAlgorithm::kSsc) continue;
      BenchCase& serial =
          ctx.Case(std::string(name) + "/1thr/n=" + std::to_string(n))
              .Param("algo", name)
              .Param("n", n)
              .Param("threads", static_cast<int64_t>(1));
      double c1 = 0.0;
      const Summary& w1 =
          ctx.Measure(serial, [&] { c1 = SolveOnce(ctx, query, algo,
                                                   epsilon, 1); });
      serial.Metric("cost", c1);

      BenchCase& par = ctx.Case(std::string(name) + "/" +
                                std::to_string(threads) + "thr/n=" +
                                std::to_string(n))
                           .Param("algo", name)
                           .Param("n", n)
                           .Param("threads", static_cast<int64_t>(threads));
      double cn = 0.0;
      const Summary& wn = ctx.Measure(
          par, [&] { cn = SolveOnce(ctx, query, algo, epsilon, threads); });
      MOVD_CHECK(c1 == cn);  // determinism across thread counts
      par.Metric("cost", cn);
      par.Derived("speedup_vs_serial", w1.median / wn.median);
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig08_molq_three_types")
