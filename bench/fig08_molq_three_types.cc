// Reproduces Fig. 8: MOLQ with three object types (Ē = {STM, CH, SCH}),
// execution time of SSC vs RRB vs MBRB as the per-type object count grows.
// The cost-bound approach is enabled in all three solvers, as in the paper.
//
// Flags: --sizes=16,32,64,128,256  --epsilon=1e-3  --seed=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

double RunSolver(const MolqQuery& query, MolqAlgorithm algorithm,
                 double epsilon, double* cost) {
  MolqOptions opts;
  opts.algorithm = algorithm;
  opts.epsilon = epsilon;
  Stopwatch sw;
  const MolqResult r = SolveMolq(query, kWorld, opts);
  *cost = r.cost;
  return sw.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sizes =
      ParseSizes(flags.GetString("sizes", "16,32,64,128,256"));
  const double epsilon = flags.GetDouble("epsilon", 1e-3);
  const uint64_t seed = flags.GetInt("seed", 1);

  std::printf("Fig. 8 — MOLQ, three object types {STM, CH, SCH}; "
              "type weights U[0,10); epsilon=%g\n\n", epsilon);
  Table table({"objects/type", "SSC(s)", "RRB(s)", "MBRB(s)", "RRB speedup",
               "MBRB speedup", "cost agreement"});
  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n}, seed);
    double ssc_cost = 0.0, rrb_cost = 0.0, mbrb_cost = 0.0;
    const double ssc = RunSolver(query, MolqAlgorithm::kSsc, epsilon,
                                 &ssc_cost);
    const double rrb = RunSolver(query, MolqAlgorithm::kRrb, epsilon,
                                 &rrb_cost);
    const double mbrb = RunSolver(query, MolqAlgorithm::kMbrb, epsilon,
                                  &mbrb_cost);
    const double dev = std::max(std::abs(rrb_cost - ssc_cost),
                                std::abs(mbrb_cost - ssc_cost)) /
                       ssc_cost;
    table.AddRow({std::to_string(n), Table::Fmt(ssc, 3), Table::Fmt(rrb, 3),
                  Table::Fmt(mbrb, 3), Table::Fmt(ssc / rrb, 1) + "x",
                  Table::Fmt(ssc / mbrb, 1) + "x",
                  "dev=" + Table::Fmt(dev * 100, 4) + "%"});
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
