// Extension experiment 4: MOLQ on road networks — solver scaling with
// network size and the cost gap between the Euclidean optimum (snapped to
// the roads) and the true network optimum, as the network gets sparser.
//
// Harnessed (DESIGN.md §10): the measured body is the network solve alone;
// the Euclidean solve + snapping that produce the gap Metrics run once as
// unmeasured setup. Extra flags: --vertices=500,2000,8000.

#include "bench/bench_common.h"
#include "network/graph.h"
#include "network/network_molq.h"

namespace movd::bench {

BENCH(ext04_network_molq) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("vertices", "500,2000,8000"));
  for (const size_t n : sizes) {
    for (const double keep : {0.05, 0.5, 1.0}) {
      const RoadNetwork net = RandomRoadNetwork(n, kWorld, keep, ctx.seed());
      Rng rng(ctx.seed() + 7);
      MolqQuery query;
      std::vector<NetworkObjectSet> sets(3);
      for (size_t s = 0; s < 3; ++s) {
        ObjectSet planar;
        planar.name = std::string("t") += std::to_string(s);
        for (int i = 0; i < 8; ++i) {
          const auto v =
              static_cast<int32_t>(rng.NextBelow(net.num_vertices()));
          sets[s].vertices.push_back(v);
          SpatialObject obj;
          obj.location = net.vertices()[v];
          planar.objects.push_back(obj);
        }
        query.sets.push_back(std::move(planar));
      }

      BenchCase& c = ctx.Case("solve/v=" + std::to_string(n) +
                              "/keep=" + FmtG(keep))
                         .Param("vertices", n)
                         .Param("keep", keep);
      NetworkMolqResult network;
      ctx.Measure(c, [&] { network = SolveNetworkMolq(net, sets); });
      c.Metric("network_cost", network.cost);

      MolqOptions opts;
      opts.epsilon = 1e-6;
      opts.exec = ctx.MakeExec();
      const MolqResult euclid = SolveMolq(query, kWorld, opts);
      const int32_t snapped = net.NearestVertex(euclid.location);
      double snapped_cost = 0.0;
      for (const auto& set : sets) {
        const auto dist = NearestSourceDistances(net, set.vertices);
        snapped_cost += set.type_weight * dist[snapped];
      }
      c.Metric("snapped_euclidean_cost", snapped_cost);
      c.Derived("gap_pct", 100.0 * (snapped_cost / network.cost - 1.0));
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("ext04_network_molq")
