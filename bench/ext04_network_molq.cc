// Extension experiment 4: MOLQ on road networks — solver scaling with
// network size and the cost gap between the Euclidean optimum (snapped to
// the roads) and the true network optimum, as the network gets sparser.
//
// Flags: --vertices=500,2000,8000  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "network/graph.h"
#include "network/network_molq.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sizes = ParseSizes(flags.GetString("vertices", "500,2000,8000"));
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Extension: network MOLQ — exact vertex optimum via one "
              "multi-source Dijkstra per type (3 types, 8 objects each)\n\n");
  Table table({"vertices", "density", "solve(s)", "network cost",
               "snapped-Euclidean cost", "gap"});
  for (const size_t n : sizes) {
    for (const double keep : {0.05, 0.5, 1.0}) {
      const RoadNetwork net = RandomRoadNetwork(n, kWorld, keep, seed);
      Rng rng(seed + 7);
      MolqQuery query;
      std::vector<NetworkObjectSet> sets(3);
      for (size_t s = 0; s < 3; ++s) {
        ObjectSet planar;
        planar.name = std::string("t") += std::to_string(s);
        for (int i = 0; i < 8; ++i) {
          const auto v =
              static_cast<int32_t>(rng.NextBelow(net.num_vertices()));
          sets[s].vertices.push_back(v);
          SpatialObject obj;
          obj.location = net.vertices()[v];
          planar.objects.push_back(obj);
        }
        query.sets.push_back(std::move(planar));
      }

      Stopwatch sw;
      const NetworkMolqResult network = SolveNetworkMolq(net, sets);
      const double solve_s = sw.ElapsedSeconds();

      MolqOptions opts;
      opts.epsilon = 1e-6;
      opts.exec.threads = threads;
      const MolqResult euclid = SolveMolq(query, kWorld, opts);
      const int32_t snapped = net.NearestVertex(euclid.location);
      double snapped_cost = 0.0;
      for (const auto& set : sets) {
        const auto dist = NearestSourceDistances(net, set.vertices);
        snapped_cost += set.type_weight * dist[snapped];
      }

      table.AddRow({std::to_string(n), Table::Fmt(keep, 2),
                    Table::Fmt(solve_s, 3), Table::Fmt(network.cost, 0),
                    Table::Fmt(snapped_cost, 0),
                    Table::Fmt(100.0 * (snapped_cost / network.cost - 1.0),
                               1) +
                        "%"});
    }
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
