// Reproduces Fig. 9: MOLQ with four object types (Ē = {STM, CH, SCH, PPL}),
// execution time of SSC vs RRB vs MBRB. The paper observes RRB winning at
// four types because MBRB's false-positive OVRs compound across overlaps
// and flood the Optimizer; error bound epsilon = 0.001 as in §6.1.
//
// Harnessed (DESIGN.md §10). Extra flags: --sizes=8,16,24,32 --epsilon=1e-3.

#include "bench/bench_common.h"

namespace movd::bench {

BENCH(fig09_four_types) {
  const auto sizes = ParseSizes(ctx.flags().GetString("sizes", "8,16,24,32"));
  const double epsilon = ctx.flags().GetDouble("epsilon", 1e-3);
  constexpr struct {
    MolqAlgorithm algo;
    const char* name;
  } kAlgos[] = {{MolqAlgorithm::kSsc, "ssc"},
                {MolqAlgorithm::kRrb, "rrb"},
                {MolqAlgorithm::kMbrb, "mbrb"}};
  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n, n}, ctx.seed());
    size_t rrb_ovrs = 0;
    for (const auto& [algo, name] : kAlgos) {
      BenchCase& c = ctx.Case(std::string(name) + "/n=" + std::to_string(n))
                         .Param("algo", name)
                         .Param("n", n)
                         .Param("epsilon", epsilon);
      MolqResult result;
      ctx.Measure(c, [&] {
        MolqOptions opts;
        opts.algorithm = algo;
        opts.epsilon = epsilon;
        opts.exec = ctx.MakeExec();
        result = SolveMolq(query, kWorld, opts);
      });
      c.Metric("cost", result.cost);
      if (algo == MolqAlgorithm::kRrb) {
        rrb_ovrs = result.stats.final_ovrs;
        c.Metric("final_ovrs", static_cast<double>(rrb_ovrs));
      } else if (algo == MolqAlgorithm::kMbrb) {
        c.Metric("final_ovrs",
                 static_cast<double>(result.stats.final_ovrs));
        c.Derived("ovr_ratio_vs_rrb",
                  static_cast<double>(result.stats.final_ovrs) /
                      static_cast<double>(std::max<size_t>(1, rrb_ovrs)));
      }
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("fig09_molq_four_types")
