// Reproduces Fig. 9: MOLQ with four object types (Ē = {STM, CH, SCH, PPL}),
// execution time of SSC vs RRB vs MBRB. The paper observes RRB winning at
// four types because MBRB's false-positive OVRs compound across overlaps
// and flood the Optimizer; error bound epsilon = 0.001 as in §6.1.
//
// Flags: --sizes=8,16,24,32  --epsilon=1e-3  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

Trace* g_trace = nullptr;

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchTrace bench_trace(flags);
  g_trace = bench_trace.trace();
  const auto sizes = ParseSizes(flags.GetString("sizes", "8,16,24,32"));
  const double epsilon = flags.GetDouble("epsilon", 1e-3);
  const uint64_t seed = flags.GetInt("seed", 1);
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Fig. 9 — MOLQ, four object types {STM, CH, SCH, PPL}; "
              "epsilon=%g threads=%d\n\n", epsilon, threads);
  Table table({"objects/type", "SSC(s)", "RRB(s)", "MBRB(s)", "RRB OVRs",
               "MBRB OVRs", "OVR ratio"});
  for (const size_t n : sizes) {
    const MolqQuery query = MakeQuery({n, n, n, n}, seed);
    MolqOptions opts;
    opts.epsilon = epsilon;
    opts.exec.threads = threads;
    opts.exec.trace = g_trace;

    opts.algorithm = MolqAlgorithm::kSsc;
    Stopwatch sw;
    const MolqResult ssc = SolveMolq(query, kWorld, opts);
    const double ssc_s = sw.ElapsedSeconds();

    opts.algorithm = MolqAlgorithm::kRrb;
    sw.Reset();
    const MolqResult rrb = SolveMolq(query, kWorld, opts);
    const double rrb_s = sw.ElapsedSeconds();

    opts.algorithm = MolqAlgorithm::kMbrb;
    sw.Reset();
    const MolqResult mbrb = SolveMolq(query, kWorld, opts);
    const double mbrb_s = sw.ElapsedSeconds();

    table.AddRow({std::to_string(n), Table::Fmt(ssc_s, 3),
                  Table::Fmt(rrb_s, 3), Table::Fmt(mbrb_s, 3),
                  std::to_string(rrb.stats.final_ovrs),
                  std::to_string(mbrb.stats.final_ovrs),
                  Table::Fmt(static_cast<double>(mbrb.stats.final_ovrs) /
                                 std::max<size_t>(1, rrb.stats.final_ovrs),
                             1) +
                      "x"});
    (void)ssc;
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
