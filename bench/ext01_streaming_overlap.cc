// Extension experiment 1 (paper §8 future work: disk-based processing):
// the streaming (external-memory) overlap vs the in-memory sweep. Reports
// wall time and the peak number of resident OVRs — the streaming pipeline
// holds only the sweep-active OVRs regardless of input size.
//
// Harnessed (DESIGN.md §10): per size there are three measured cases —
// the in-memory sweep, the external sort, and the streaming sweep over the
// sorted runs (save/cleanup of the scratch files is unmeasured setup).
// Extra flags: --sizes=1000,4000,16000  --budget_kb=256  --tmpdir=/tmp.

#include <cstdio>

#include "bench/bench_common.h"
#include "storage/external_sort.h"
#include "storage/movd_file.h"
#include "storage/streaming_overlap.h"
#include "util/check.h"

namespace movd::bench {

BENCH(ext01_streaming_overlap) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "1000,4000,16000"));
  const size_t budget =
      static_cast<size_t>(ctx.flags().GetInt("budget_kb", 256)) << 10;
  const std::string dir = ctx.flags().GetString("tmpdir", "/tmp");
  for (const size_t n : sizes) {
    const auto basic = MakeBasicMovds({n, n}, ctx.seed(), ctx.threads());
    const std::string suffix = "/n=" + std::to_string(n);

    BenchCase& mem = ctx.Case("inmem" + suffix).Param("n", n);
    size_t mem_ovrs = 0;
    ctx.Measure(mem, [&] {
      const Movd out = Overlap(basic[0], basic[1],
                               BoundaryMode::kRealRegion);
      mem_ovrs = out.ovrs.size();
      Keep(mem_ovrs);
    });
    mem.Metric("ovrs", static_cast<double>(mem_ovrs));

    const std::string pa = dir + "/movd_a.bin", pb = dir + "/movd_b.bin";
    const std::string sa = dir + "/movd_a_sorted.bin";
    const std::string sb = dir + "/movd_b_sorted.bin";
    const std::string out = dir + "/movd_out.bin";
    MOVD_CHECK(SaveMovd(pa, basic[0]).ok());
    MOVD_CHECK(SaveMovd(pb, basic[1]).ok());

    BenchCase& sort = ctx.Case("sort" + suffix)
                          .Param("n", n)
                          .Param("budget_bytes", budget);
    ctx.Measure(sort, [&] {
      ExternalSortMovdFile(pa, sa, budget);
      ExternalSortMovdFile(pb, sb, budget);
    });

    BenchCase& sweep = ctx.Case("sweep" + suffix)
                           .Param("n", n)
                           .Param("budget_bytes", budget);
    StreamingOverlapStats stats;
    ctx.Measure(sweep, [&] {
      stats = StreamingOverlapStats();
      StreamingOverlap(sa, sb, BoundaryMode::kRealRegion, out, &stats);
    });
    sweep.Metric("input_ovrs", static_cast<double>(basic[0].ovrs.size() +
                                                   basic[1].ovrs.size()));
    sweep.Metric("peak_active_ovrs",
                 static_cast<double>(stats.peak_active_ovrs));
    sweep.Metric("peak_active_bytes",
                 static_cast<double>(stats.peak_active_bytes));
    sweep.Derived("stream_over_inmem",
                  (sort.wall().median + sweep.wall().median) /
                      mem.wall().median);

    for (const auto& p : {pa, pb, sa, sb, out}) std::remove(p.c_str());
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("ext01_streaming_overlap")
