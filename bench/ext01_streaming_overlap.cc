// Extension experiment 1 (paper §8 future work: disk-based processing):
// the streaming (external-memory) overlap vs the in-memory sweep. Reports
// wall time and the peak number of resident OVRs — the streaming pipeline
// holds only the sweep-active OVRs regardless of input size.
//
// Flags: --sizes=1000,4000,16000  --budget_kb=256  --seed=1  --threads=1

#include <cstdio>

#include "bench/bench_common.h"
#include "util/check.h"
#include "storage/external_sort.h"
#include "storage/movd_file.h"
#include "storage/streaming_overlap.h"
#include "util/flags.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace movd::bench {
namespace {

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto sizes = ParseSizes(flags.GetString("sizes", "1000,4000,16000"));
  const size_t budget =
      static_cast<size_t>(flags.GetInt("budget_kb", 256)) << 10;
  const uint64_t seed = flags.GetInt("seed", 1);
  const std::string dir = flags.GetString("tmpdir", "/tmp");
  const int threads = ThreadsFlag(flags);
  flags.WarnUnused(stderr);

  std::printf("Extension: disk-based streaming overlap (sorted runs under a "
              "%s sort budget) vs in-memory sweep, RRB mode\n\n",
              FormatBytes(budget).c_str());
  Table table({"objects/type", "in-mem(s)", "stream total(s)", "sort(s)",
               "sweep(s)", "input OVRs", "peak resident OVRs",
               "peak resident bytes"});
  for (const size_t n : sizes) {
    const auto basic = MakeBasicMovds({n, n}, seed, threads);

    Stopwatch sw;
    const Movd in_memory =
        Overlap(basic[0], basic[1], BoundaryMode::kRealRegion);
    const double mem_s = sw.ElapsedSeconds();

    const std::string pa = dir + "/movd_a.bin", pb = dir + "/movd_b.bin";
    const std::string sa = dir + "/movd_a_sorted.bin";
    const std::string sb = dir + "/movd_b_sorted.bin";
    const std::string out = dir + "/movd_out.bin";
    MOVD_CHECK(SaveMovd(pa, basic[0]).ok());
    MOVD_CHECK(SaveMovd(pb, basic[1]).ok());

    sw.Reset();
    ExternalSortMovdFile(pa, sa, budget);
    ExternalSortMovdFile(pb, sb, budget);
    const double sort_s = sw.ElapsedSeconds();

    StreamingOverlapStats stats;
    sw.Reset();
    StreamingOverlap(sa, sb, BoundaryMode::kRealRegion, out, &stats);
    const double sweep_s = sw.ElapsedSeconds();

    table.AddRow({std::to_string(n), Table::Fmt(mem_s, 3),
                  Table::Fmt(sort_s + sweep_s, 3), Table::Fmt(sort_s, 3),
                  Table::Fmt(sweep_s, 3),
                  std::to_string(basic[0].ovrs.size() + basic[1].ovrs.size()),
                  std::to_string(stats.peak_active_ovrs),
                  FormatBytes(stats.peak_active_bytes)});
    for (const auto& p : {pa, pb, sa, sb, out}) std::remove(p.c_str());
    (void)in_memory;
  }
  table.Print(stdout);
  return 0;
}

}  // namespace
}  // namespace movd::bench

int main(int argc, char** argv) { return movd::bench::Main(argc, argv); }
