// Microbenchmark of the weighted-Voronoi constructions (paper §5.3,
// DESIGN.md §11): the adaptive quadtree builder vs the dense-grid
// reference, across site counts and weight regimes (multiplicative-only
// and affine). The non-empty-cell and cover-ring counts are deterministic
// Metrics gated exactly by bench_diff — both constructions derive
// ownership from the shared BestWeightedSite tie rule and are
// bit-identical for every thread count — while the adaptive speedup is a
// Derived (never gated) observability number.
//
// Extra flags: --sizes=64,256  --resolution=256

#include "bench/bench_common.h"
#include "util/rng.h"
#include "voronoi/weighted.h"

namespace movd::bench {
namespace {

std::vector<WeightedSite> MakeSites(size_t n, bool affine, uint64_t seed) {
  Rng rng(seed + (affine ? 1 : 0));
  std::vector<WeightedSite> sites;
  sites.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point p{rng.Uniform(kWorld.min_x, kWorld.max_x),
                  rng.Uniform(kWorld.min_y, kWorld.max_y)};
    const double mult = rng.Uniform(0.5, 3.0);
    const double off = affine ? rng.Uniform(0.0, 2000.0) : 0.0;
    sites.push_back({p, mult, off});
  }
  return sites;
}

}  // namespace

BENCH(micro_weighted) {
  const auto sizes =
      ParseSizes(ctx.flags().GetString("sizes", "64,256"));
  const int resolution =
      static_cast<int>(ctx.flags().GetInt("resolution", 256));
  for (const size_t n : sizes) {
    for (const bool affine : {false, true}) {
      const char* regime = affine ? "affine" : "mult";
      const auto sites = MakeSites(n, affine, ctx.seed());
      const std::string suffix =
          std::string("/") + regime + "/n=" + std::to_string(n);

      WeightedOptions opts;
      opts.resolution = resolution;
      opts.threads = ctx.threads();

      const Summary* walls[2] = {nullptr, nullptr};
      for (const auto& [method, name] :
           {std::pair{WeightedMethod::kDenseGrid, "dense"},
            std::pair{WeightedMethod::kAdaptive, "adaptive"}}) {
        opts.method = method;
        BenchCase& c = ctx.Case(std::string(name) + suffix)
                           .Param("method", name)
                           .Param("regime", regime)
                           .Param("n", n)
                           .Param("resolution", static_cast<int64_t>(resolution));
        size_t nonempty = 0;
        size_t rings = 0;
        const Summary& wall = ctx.Measure(c, [&] {
          const auto cells = BuildWeightedCells(sites, kWorld, opts);
          nonempty = 0;
          rings = 0;
          for (const auto& cell : cells) {
            if (!cell.empty) ++nonempty;
            rings += cell.cover.size();
          }
          Keep(rings);
        });
        c.Metric("nonempty_cells", static_cast<double>(nonempty));
        c.Metric("cover_rings", static_cast<double>(rings));
        if (method == WeightedMethod::kDenseGrid) {
          walls[0] = &wall;
        } else {
          walls[1] = &wall;
          c.Derived("speedup_vs_dense", walls[0]->median / wall.median);
        }
      }
    }
  }
}

}  // namespace movd::bench

MOVD_BENCH_MAIN("micro_weighted")
