# Empty compiler generated dependencies file for road_network_planning.
# This may be replaced when dependencies are built.
