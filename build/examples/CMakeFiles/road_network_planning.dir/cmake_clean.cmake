file(REMOVE_RECURSE
  "CMakeFiles/road_network_planning.dir/road_network_planning.cpp.o"
  "CMakeFiles/road_network_planning.dir/road_network_planning.cpp.o.d"
  "road_network_planning"
  "road_network_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_network_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
