# Empty dependencies file for voronoi_gallery.
# This may be replaced when dependencies are built.
