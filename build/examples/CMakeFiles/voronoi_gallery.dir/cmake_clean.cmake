file(REMOVE_RECURSE
  "CMakeFiles/voronoi_gallery.dir/voronoi_gallery.cpp.o"
  "CMakeFiles/voronoi_gallery.dir/voronoi_gallery.cpp.o.d"
  "voronoi_gallery"
  "voronoi_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voronoi_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
