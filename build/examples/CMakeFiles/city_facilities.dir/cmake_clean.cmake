file(REMOVE_RECURSE
  "CMakeFiles/city_facilities.dir/city_facilities.cpp.o"
  "CMakeFiles/city_facilities.dir/city_facilities.cpp.o.d"
  "city_facilities"
  "city_facilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_facilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
