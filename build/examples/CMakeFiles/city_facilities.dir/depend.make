# Empty dependencies file for city_facilities.
# This may be replaced when dependencies are built.
