file(REMOVE_RECURSE
  "CMakeFiles/residential_planning.dir/residential_planning.cpp.o"
  "CMakeFiles/residential_planning.dir/residential_planning.cpp.o.d"
  "residential_planning"
  "residential_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/residential_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
