# Empty dependencies file for residential_planning.
# This may be replaced when dependencies are built.
