# Empty dependencies file for molq_cli.
# This may be replaced when dependencies are built.
