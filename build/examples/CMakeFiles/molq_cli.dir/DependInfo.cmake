
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/molq_cli.cpp" "examples/CMakeFiles/molq_cli.dir/molq_cli.cpp.o" "gcc" "examples/CMakeFiles/molq_cli.dir/molq_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/movd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/movd_data.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/movd_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/movd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fermat/CMakeFiles/movd_fermat.dir/DependInfo.cmake"
  "/root/repo/build/src/voronoi/CMakeFiles/movd_voronoi.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/movd_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/movd_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
