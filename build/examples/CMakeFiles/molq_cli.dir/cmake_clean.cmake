file(REMOVE_RECURSE
  "CMakeFiles/molq_cli.dir/molq_cli.cpp.o"
  "CMakeFiles/molq_cli.dir/molq_cli.cpp.o.d"
  "molq_cli"
  "molq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
