# Empty dependencies file for ext04_network_molq.
# This may be replaced when dependencies are built.
