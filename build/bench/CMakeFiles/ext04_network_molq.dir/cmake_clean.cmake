file(REMOVE_RECURSE
  "CMakeFiles/ext04_network_molq.dir/ext04_network_molq.cc.o"
  "CMakeFiles/ext04_network_molq.dir/ext04_network_molq.cc.o.d"
  "ext04_network_molq"
  "ext04_network_molq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext04_network_molq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
