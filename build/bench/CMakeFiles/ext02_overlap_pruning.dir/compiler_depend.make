# Empty compiler generated dependencies file for ext02_overlap_pruning.
# This may be replaced when dependencies are built.
