file(REMOVE_RECURSE
  "CMakeFiles/ext02_overlap_pruning.dir/ext02_overlap_pruning.cc.o"
  "CMakeFiles/ext02_overlap_pruning.dir/ext02_overlap_pruning.cc.o.d"
  "ext02_overlap_pruning"
  "ext02_overlap_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext02_overlap_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
