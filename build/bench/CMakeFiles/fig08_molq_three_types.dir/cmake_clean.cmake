file(REMOVE_RECURSE
  "CMakeFiles/fig08_molq_three_types.dir/fig08_molq_three_types.cc.o"
  "CMakeFiles/fig08_molq_three_types.dir/fig08_molq_three_types.cc.o.d"
  "fig08_molq_three_types"
  "fig08_molq_three_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_molq_three_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
