# Empty compiler generated dependencies file for fig08_molq_three_types.
# This may be replaced when dependencies are built.
