file(REMOVE_RECURSE
  "CMakeFiles/fig13_overlap_memory.dir/fig13_overlap_memory.cc.o"
  "CMakeFiles/fig13_overlap_memory.dir/fig13_overlap_memory.cc.o.d"
  "fig13_overlap_memory"
  "fig13_overlap_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overlap_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
