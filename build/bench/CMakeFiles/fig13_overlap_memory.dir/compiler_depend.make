# Empty compiler generated dependencies file for fig13_overlap_memory.
# This may be replaced when dependencies are built.
