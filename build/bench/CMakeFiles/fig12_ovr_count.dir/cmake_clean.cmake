file(REMOVE_RECURSE
  "CMakeFiles/fig12_ovr_count.dir/fig12_ovr_count.cc.o"
  "CMakeFiles/fig12_ovr_count.dir/fig12_ovr_count.cc.o.d"
  "fig12_ovr_count"
  "fig12_ovr_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ovr_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
