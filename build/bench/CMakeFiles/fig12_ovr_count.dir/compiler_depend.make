# Empty compiler generated dependencies file for fig12_ovr_count.
# This may be replaced when dependencies are built.
