file(REMOVE_RECURSE
  "CMakeFiles/fig09_molq_four_types.dir/fig09_molq_four_types.cc.o"
  "CMakeFiles/fig09_molq_four_types.dir/fig09_molq_four_types.cc.o.d"
  "fig09_molq_four_types"
  "fig09_molq_four_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_molq_four_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
