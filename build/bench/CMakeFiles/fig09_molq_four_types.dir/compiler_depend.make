# Empty compiler generated dependencies file for fig09_molq_four_types.
# This may be replaced when dependencies are built.
