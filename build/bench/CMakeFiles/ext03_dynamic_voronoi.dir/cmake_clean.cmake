file(REMOVE_RECURSE
  "CMakeFiles/ext03_dynamic_voronoi.dir/ext03_dynamic_voronoi.cc.o"
  "CMakeFiles/ext03_dynamic_voronoi.dir/ext03_dynamic_voronoi.cc.o.d"
  "ext03_dynamic_voronoi"
  "ext03_dynamic_voronoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext03_dynamic_voronoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
