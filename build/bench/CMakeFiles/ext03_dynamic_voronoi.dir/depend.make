# Empty dependencies file for ext03_dynamic_voronoi.
# This may be replaced when dependencies are built.
