# Empty compiler generated dependencies file for fig14_multi_overlap.
# This may be replaced when dependencies are built.
