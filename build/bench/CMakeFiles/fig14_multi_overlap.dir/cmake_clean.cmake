file(REMOVE_RECURSE
  "CMakeFiles/fig14_multi_overlap.dir/fig14_multi_overlap.cc.o"
  "CMakeFiles/fig14_multi_overlap.dir/fig14_multi_overlap.cc.o.d"
  "fig14_multi_overlap"
  "fig14_multi_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_multi_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
