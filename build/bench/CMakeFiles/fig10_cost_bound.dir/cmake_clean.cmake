file(REMOVE_RECURSE
  "CMakeFiles/fig10_cost_bound.dir/fig10_cost_bound.cc.o"
  "CMakeFiles/fig10_cost_bound.dir/fig10_cost_bound.cc.o.d"
  "fig10_cost_bound"
  "fig10_cost_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cost_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
