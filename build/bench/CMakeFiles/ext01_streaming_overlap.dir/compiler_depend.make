# Empty compiler generated dependencies file for ext01_streaming_overlap.
# This may be replaced when dependencies are built.
