file(REMOVE_RECURSE
  "CMakeFiles/ext01_streaming_overlap.dir/ext01_streaming_overlap.cc.o"
  "CMakeFiles/ext01_streaming_overlap.dir/ext01_streaming_overlap.cc.o.d"
  "ext01_streaming_overlap"
  "ext01_streaming_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext01_streaming_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
