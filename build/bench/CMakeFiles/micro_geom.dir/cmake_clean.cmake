file(REMOVE_RECURSE
  "CMakeFiles/micro_geom.dir/micro_geom.cc.o"
  "CMakeFiles/micro_geom.dir/micro_geom.cc.o.d"
  "micro_geom"
  "micro_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
