# Empty dependencies file for micro_fermat.
# This may be replaced when dependencies are built.
