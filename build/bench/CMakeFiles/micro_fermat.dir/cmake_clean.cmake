file(REMOVE_RECURSE
  "CMakeFiles/micro_fermat.dir/micro_fermat.cc.o"
  "CMakeFiles/micro_fermat.dir/micro_fermat.cc.o.d"
  "micro_fermat"
  "micro_fermat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fermat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
