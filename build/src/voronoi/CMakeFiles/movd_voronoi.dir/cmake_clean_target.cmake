file(REMOVE_RECURSE
  "libmovd_voronoi.a"
)
