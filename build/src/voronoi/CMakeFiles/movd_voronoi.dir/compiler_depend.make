# Empty compiler generated dependencies file for movd_voronoi.
# This may be replaced when dependencies are built.
