
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/voronoi/delaunay.cc" "src/voronoi/CMakeFiles/movd_voronoi.dir/delaunay.cc.o" "gcc" "src/voronoi/CMakeFiles/movd_voronoi.dir/delaunay.cc.o.d"
  "/root/repo/src/voronoi/dynamic.cc" "src/voronoi/CMakeFiles/movd_voronoi.dir/dynamic.cc.o" "gcc" "src/voronoi/CMakeFiles/movd_voronoi.dir/dynamic.cc.o.d"
  "/root/repo/src/voronoi/voronoi.cc" "src/voronoi/CMakeFiles/movd_voronoi.dir/voronoi.cc.o" "gcc" "src/voronoi/CMakeFiles/movd_voronoi.dir/voronoi.cc.o.d"
  "/root/repo/src/voronoi/weighted.cc" "src/voronoi/CMakeFiles/movd_voronoi.dir/weighted.cc.o" "gcc" "src/voronoi/CMakeFiles/movd_voronoi.dir/weighted.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/movd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/movd_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/movd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
