file(REMOVE_RECURSE
  "CMakeFiles/movd_voronoi.dir/delaunay.cc.o"
  "CMakeFiles/movd_voronoi.dir/delaunay.cc.o.d"
  "CMakeFiles/movd_voronoi.dir/dynamic.cc.o"
  "CMakeFiles/movd_voronoi.dir/dynamic.cc.o.d"
  "CMakeFiles/movd_voronoi.dir/voronoi.cc.o"
  "CMakeFiles/movd_voronoi.dir/voronoi.cc.o.d"
  "CMakeFiles/movd_voronoi.dir/weighted.cc.o"
  "CMakeFiles/movd_voronoi.dir/weighted.cc.o.d"
  "libmovd_voronoi.a"
  "libmovd_voronoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_voronoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
