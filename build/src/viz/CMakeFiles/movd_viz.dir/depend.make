# Empty dependencies file for movd_viz.
# This may be replaced when dependencies are built.
