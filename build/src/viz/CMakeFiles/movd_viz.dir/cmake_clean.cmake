file(REMOVE_RECURSE
  "CMakeFiles/movd_viz.dir/svg.cc.o"
  "CMakeFiles/movd_viz.dir/svg.cc.o.d"
  "libmovd_viz.a"
  "libmovd_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
