file(REMOVE_RECURSE
  "libmovd_viz.a"
)
