file(REMOVE_RECURSE
  "CMakeFiles/movd_storage.dir/external_sort.cc.o"
  "CMakeFiles/movd_storage.dir/external_sort.cc.o.d"
  "CMakeFiles/movd_storage.dir/io.cc.o"
  "CMakeFiles/movd_storage.dir/io.cc.o.d"
  "CMakeFiles/movd_storage.dir/movd_file.cc.o"
  "CMakeFiles/movd_storage.dir/movd_file.cc.o.d"
  "CMakeFiles/movd_storage.dir/streaming_overlap.cc.o"
  "CMakeFiles/movd_storage.dir/streaming_overlap.cc.o.d"
  "libmovd_storage.a"
  "libmovd_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
