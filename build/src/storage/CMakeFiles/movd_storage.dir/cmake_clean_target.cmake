file(REMOVE_RECURSE
  "libmovd_storage.a"
)
