# Empty compiler generated dependencies file for movd_storage.
# This may be replaced when dependencies are built.
