
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/grid_scan.cc" "src/core/CMakeFiles/movd_core.dir/grid_scan.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/grid_scan.cc.o.d"
  "/root/repo/src/core/molq.cc" "src/core/CMakeFiles/movd_core.dir/molq.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/molq.cc.o.d"
  "/root/repo/src/core/movd_model.cc" "src/core/CMakeFiles/movd_core.dir/movd_model.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/movd_model.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/movd_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/overlap.cc" "src/core/CMakeFiles/movd_core.dir/overlap.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/overlap.cc.o.d"
  "/root/repo/src/core/pruned_overlap.cc" "src/core/CMakeFiles/movd_core.dir/pruned_overlap.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/pruned_overlap.cc.o.d"
  "/root/repo/src/core/ssc.cc" "src/core/CMakeFiles/movd_core.dir/ssc.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/ssc.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/core/CMakeFiles/movd_core.dir/topk.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/topk.cc.o.d"
  "/root/repo/src/core/weighted_distance.cc" "src/core/CMakeFiles/movd_core.dir/weighted_distance.cc.o" "gcc" "src/core/CMakeFiles/movd_core.dir/weighted_distance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fermat/CMakeFiles/movd_fermat.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/movd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/movd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/voronoi/CMakeFiles/movd_voronoi.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/movd_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
