# Empty compiler generated dependencies file for movd_core.
# This may be replaced when dependencies are built.
