file(REMOVE_RECURSE
  "libmovd_core.a"
)
