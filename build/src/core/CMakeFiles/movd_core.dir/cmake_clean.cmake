file(REMOVE_RECURSE
  "CMakeFiles/movd_core.dir/grid_scan.cc.o"
  "CMakeFiles/movd_core.dir/grid_scan.cc.o.d"
  "CMakeFiles/movd_core.dir/molq.cc.o"
  "CMakeFiles/movd_core.dir/molq.cc.o.d"
  "CMakeFiles/movd_core.dir/movd_model.cc.o"
  "CMakeFiles/movd_core.dir/movd_model.cc.o.d"
  "CMakeFiles/movd_core.dir/optimizer.cc.o"
  "CMakeFiles/movd_core.dir/optimizer.cc.o.d"
  "CMakeFiles/movd_core.dir/overlap.cc.o"
  "CMakeFiles/movd_core.dir/overlap.cc.o.d"
  "CMakeFiles/movd_core.dir/pruned_overlap.cc.o"
  "CMakeFiles/movd_core.dir/pruned_overlap.cc.o.d"
  "CMakeFiles/movd_core.dir/ssc.cc.o"
  "CMakeFiles/movd_core.dir/ssc.cc.o.d"
  "CMakeFiles/movd_core.dir/topk.cc.o"
  "CMakeFiles/movd_core.dir/topk.cc.o.d"
  "CMakeFiles/movd_core.dir/weighted_distance.cc.o"
  "CMakeFiles/movd_core.dir/weighted_distance.cc.o.d"
  "libmovd_core.a"
  "libmovd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
