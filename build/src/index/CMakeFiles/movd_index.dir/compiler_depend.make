# Empty compiler generated dependencies file for movd_index.
# This may be replaced when dependencies are built.
