file(REMOVE_RECURSE
  "CMakeFiles/movd_index.dir/kdtree.cc.o"
  "CMakeFiles/movd_index.dir/kdtree.cc.o.d"
  "CMakeFiles/movd_index.dir/rtree.cc.o"
  "CMakeFiles/movd_index.dir/rtree.cc.o.d"
  "libmovd_index.a"
  "libmovd_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
