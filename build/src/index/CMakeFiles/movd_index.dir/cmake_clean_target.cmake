file(REMOVE_RECURSE
  "libmovd_index.a"
)
