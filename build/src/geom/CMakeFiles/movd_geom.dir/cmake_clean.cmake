file(REMOVE_RECURSE
  "CMakeFiles/movd_geom.dir/expansion.cc.o"
  "CMakeFiles/movd_geom.dir/expansion.cc.o.d"
  "CMakeFiles/movd_geom.dir/gridcontour.cc.o"
  "CMakeFiles/movd_geom.dir/gridcontour.cc.o.d"
  "CMakeFiles/movd_geom.dir/hull.cc.o"
  "CMakeFiles/movd_geom.dir/hull.cc.o.d"
  "CMakeFiles/movd_geom.dir/polygon.cc.o"
  "CMakeFiles/movd_geom.dir/polygon.cc.o.d"
  "CMakeFiles/movd_geom.dir/predicates.cc.o"
  "CMakeFiles/movd_geom.dir/predicates.cc.o.d"
  "libmovd_geom.a"
  "libmovd_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
