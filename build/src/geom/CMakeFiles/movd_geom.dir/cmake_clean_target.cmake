file(REMOVE_RECURSE
  "libmovd_geom.a"
)
