
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/expansion.cc" "src/geom/CMakeFiles/movd_geom.dir/expansion.cc.o" "gcc" "src/geom/CMakeFiles/movd_geom.dir/expansion.cc.o.d"
  "/root/repo/src/geom/gridcontour.cc" "src/geom/CMakeFiles/movd_geom.dir/gridcontour.cc.o" "gcc" "src/geom/CMakeFiles/movd_geom.dir/gridcontour.cc.o.d"
  "/root/repo/src/geom/hull.cc" "src/geom/CMakeFiles/movd_geom.dir/hull.cc.o" "gcc" "src/geom/CMakeFiles/movd_geom.dir/hull.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/geom/CMakeFiles/movd_geom.dir/polygon.cc.o" "gcc" "src/geom/CMakeFiles/movd_geom.dir/polygon.cc.o.d"
  "/root/repo/src/geom/predicates.cc" "src/geom/CMakeFiles/movd_geom.dir/predicates.cc.o" "gcc" "src/geom/CMakeFiles/movd_geom.dir/predicates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/movd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
