# Empty dependencies file for movd_geom.
# This may be replaced when dependencies are built.
