file(REMOVE_RECURSE
  "libmovd_data.a"
)
