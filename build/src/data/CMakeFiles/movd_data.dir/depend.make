# Empty dependencies file for movd_data.
# This may be replaced when dependencies are built.
