file(REMOVE_RECURSE
  "CMakeFiles/movd_data.dir/csv.cc.o"
  "CMakeFiles/movd_data.dir/csv.cc.o.d"
  "CMakeFiles/movd_data.dir/generate.cc.o"
  "CMakeFiles/movd_data.dir/generate.cc.o.d"
  "libmovd_data.a"
  "libmovd_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
