# Empty compiler generated dependencies file for movd_fermat.
# This may be replaced when dependencies are built.
