file(REMOVE_RECURSE
  "CMakeFiles/movd_fermat.dir/batch.cc.o"
  "CMakeFiles/movd_fermat.dir/batch.cc.o.d"
  "CMakeFiles/movd_fermat.dir/fermat_weber.cc.o"
  "CMakeFiles/movd_fermat.dir/fermat_weber.cc.o.d"
  "libmovd_fermat.a"
  "libmovd_fermat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_fermat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
