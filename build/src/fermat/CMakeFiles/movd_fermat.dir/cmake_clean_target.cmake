file(REMOVE_RECURSE
  "libmovd_fermat.a"
)
