
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fermat/batch.cc" "src/fermat/CMakeFiles/movd_fermat.dir/batch.cc.o" "gcc" "src/fermat/CMakeFiles/movd_fermat.dir/batch.cc.o.d"
  "/root/repo/src/fermat/fermat_weber.cc" "src/fermat/CMakeFiles/movd_fermat.dir/fermat_weber.cc.o" "gcc" "src/fermat/CMakeFiles/movd_fermat.dir/fermat_weber.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/movd_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/movd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
