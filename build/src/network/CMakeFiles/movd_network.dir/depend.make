# Empty dependencies file for movd_network.
# This may be replaced when dependencies are built.
