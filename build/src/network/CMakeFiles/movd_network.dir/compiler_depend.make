# Empty compiler generated dependencies file for movd_network.
# This may be replaced when dependencies are built.
