file(REMOVE_RECURSE
  "CMakeFiles/movd_network.dir/graph.cc.o"
  "CMakeFiles/movd_network.dir/graph.cc.o.d"
  "CMakeFiles/movd_network.dir/network_molq.cc.o"
  "CMakeFiles/movd_network.dir/network_molq.cc.o.d"
  "libmovd_network.a"
  "libmovd_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
