file(REMOVE_RECURSE
  "libmovd_network.a"
)
