file(REMOVE_RECURSE
  "libmovd_util.a"
)
