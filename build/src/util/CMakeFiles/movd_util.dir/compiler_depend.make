# Empty compiler generated dependencies file for movd_util.
# This may be replaced when dependencies are built.
