file(REMOVE_RECURSE
  "CMakeFiles/movd_util.dir/flags.cc.o"
  "CMakeFiles/movd_util.dir/flags.cc.o.d"
  "CMakeFiles/movd_util.dir/rng.cc.o"
  "CMakeFiles/movd_util.dir/rng.cc.o.d"
  "CMakeFiles/movd_util.dir/table.cc.o"
  "CMakeFiles/movd_util.dir/table.cc.o.d"
  "libmovd_util.a"
  "libmovd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
